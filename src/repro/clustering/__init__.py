"""``repro.clustering`` — DBSCAN and hierarchical DBSCAN*."""

from .dbscan import dbscan
from .hdbscan import Dendrogram, core_distances, hdbscan, mutual_reachability_mst

__all__ = [
    "Dendrogram",
    "core_distances",
    "dbscan",
    "hdbscan",
    "mutual_reachability_mst",
]
