"""DBSCAN via kd-tree range queries + union-find.

The standard exact DBSCAN semantics: a point is *core* when its closed
eps-ball holds at least ``min_pts`` points (itself included); core
points within eps of each other share a cluster; border (non-core)
points join the cluster of any core point within eps; everything else
is noise (label -1).
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..emst.unionfind import UnionFind
from ..kdtree.range_search import range_query_ball_batch
from ..kdtree.tree import KDTree
from ..parlay.workdepth import charge

__all__ = ["dbscan"]


def dbscan(points, eps: float, min_pts: int, engine: str | None = None) -> np.ndarray:
    """Cluster labels per point (noise = -1), deterministic."""
    pts = as_array(points)
    n = len(pts)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    tree = KDTree(pts)

    # every point's eps-neighborhood in one data-parallel batch
    neighborhoods = range_query_ball_batch(tree, pts, eps, grain=64, engine=engine)
    core = np.array([len(nb) >= min_pts for nb in neighborhoods])

    uf = UnionFind(n)
    for i in np.flatnonzero(core):
        charge(len(neighborhoods[i]))
        for j in neighborhoods[i]:
            if core[j]:
                uf.union(i, int(j))

    labels = np.full(n, -1, dtype=np.int64)
    roots: dict[int, int] = {}
    for i in np.flatnonzero(core):
        r = uf.find(i)
        if r not in roots:
            roots[r] = len(roots)
        labels[i] = roots[r]
    # border points adopt the cluster of the smallest-id core neighbor
    for i in np.flatnonzero(~core):
        nbs = neighborhoods[i]
        core_nbs = nbs[core[nbs]]
        if len(core_nbs):
            labels[i] = labels[int(core_nbs.min())]
    return labels
