"""Hierarchical DBSCAN* (single-linkage over mutual reachability).

Following the EMST-based formulation (Wang et al., which ParGeo's WSPD
module feeds): core distance = distance to the ``min_pts``-th nearest
neighbor (kd-tree k-NN); the mutual-reachability distance of (u, v) is
``max(core(u), core(v), d(u, v))``; the HDBSCAN* hierarchy is the
single-linkage dendrogram of the mutual-reachability EMST.

The MR-EMST here uses dense Prim (O(n^2) vectorized) — exact and simple;
fine for the ~10^4-point workloads this library benches in Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.points import as_array
from ..emst.unionfind import UnionFind
from ..kdtree.tree import KDTree
from ..parlay.workdepth import charge

__all__ = ["core_distances", "mutual_reachability_mst", "hdbscan", "Dendrogram"]


def core_distances(points, min_pts: int) -> np.ndarray:
    """Distance to the min_pts-th nearest neighbor of each point."""
    pts = as_array(points)
    tree = KDTree(pts)
    d, _ = tree.knn(pts, min_pts, exclude_self=True)
    return np.sqrt(d[:, min_pts - 1])


def mutual_reachability_mst(points, min_pts: int) -> tuple[np.ndarray, np.ndarray]:
    """EMST under the mutual-reachability metric (edges, weights)."""
    pts = as_array(points)
    n = len(pts)
    if n < 2:
        return np.empty((0, 2), dtype=np.int64), np.empty(0)
    core = core_distances(pts, min_pts) if min_pts > 1 else np.zeros(n)
    charge(n * n)

    # dense Prim, vectorized over the frontier
    in_tree = np.zeros(n, dtype=bool)
    best_d = np.full(n, np.inf)
    best_src = np.full(n, -1, dtype=np.int64)
    in_tree[0] = True
    cur = 0
    edges = np.empty((n - 1, 2), dtype=np.int64)
    weights = np.empty(n - 1)
    for step in range(n - 1):
        diff = pts - pts[cur]
        d = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        mr = np.maximum(np.maximum(d, core), core[cur])
        better = (~in_tree) & (mr < best_d)
        best_d[better] = mr[better]
        best_src[better] = cur
        cand = np.where(in_tree, np.inf, best_d)
        nxt = int(np.argmin(cand))
        edges[step] = (best_src[nxt], nxt)
        weights[step] = best_d[nxt]
        in_tree[nxt] = True
        cur = nxt
    return edges, weights


@dataclass
class Dendrogram:
    """Single-linkage hierarchy: merges sorted by height."""

    merges: np.ndarray  # (n-1, 2) cluster ids being merged
    heights: np.ndarray  # (n-1,) merge distances
    n: int

    def cut(self, height: float) -> np.ndarray:
        """Flat labels from cutting the hierarchy at ``height``."""
        uf = UnionFind(self.n)
        order = np.argsort(self.heights, kind="stable")
        for i in order:
            if self.heights[i] > height:
                break
            uf.union(int(self.merges[i, 0]), int(self.merges[i, 1]))
        labels = np.empty(self.n, dtype=np.int64)
        roots: dict[int, int] = {}
        for v in range(self.n):
            r = uf.find(v)
            if r not in roots:
                roots[r] = len(roots)
            labels[v] = roots[r]
        return labels

    def n_clusters_at(self, height: float) -> int:
        return len(np.unique(self.cut(height)))


def hdbscan(points, min_pts: int = 5) -> Dendrogram:
    """HDBSCAN* hierarchy of a point set."""
    pts = as_array(points)
    edges, weights = mutual_reachability_mst(pts, min_pts)
    order = np.argsort(weights, kind="stable")
    return Dendrogram(edges[order], weights[order], len(pts))
