"""``repro.views`` — batch-dynamic materialized views (DESIGN.md §10).

Subscribable, version-keyed derived answers over a batch-dynamic index
(:class:`~repro.bdl.bdltree.BDLTree` or
:class:`~repro.cluster.index.ShardedIndex`), maintained *incrementally*
under batched inserts and erases instead of recomputed per query:

* :class:`ClosestPairView` — sparse-partition closest pair; repairs
  scan only the grid neighborhoods the batch touched.
* :class:`DBSCANView` — incremental DBSCAN labels; re-clusters only
  points whose eps-neighborhood changed, merging with union-find.
* :class:`HullView` — 2D hull maintained by the reservation-based
  randomized incremental algorithm over hull ∪ batch candidates.

Every view obeys the canonical-equality contract (see
:mod:`repro.views.base`): its maintained answer is bitwise-equal to the
from-scratch ``compute`` reference at every version.  The
:class:`ViewManager` is the write path and the subscription hub; the
serving layer exposes registered views as the ``view`` request kind.
"""

from .base import MaterializedView, Mirror, pairs_d2
from .closest_pair import ClosestPairView
from .dbscan import DBSCANView
from .hull2d import HullView
from .manager import ViewManager

__all__ = [
    "ClosestPairView",
    "DBSCANView",
    "HullView",
    "MaterializedView",
    "Mirror",
    "ViewManager",
    "pairs_d2",
]
