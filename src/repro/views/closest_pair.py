"""Batch-dynamic closest-pair view (sparse-partition style).

Follows the structure of Wang, Yu, Gu & Shun's parallel batch-dynamic
closest pair: the view keeps the live points bucketed in a uniform grid
whose cell width ``w`` satisfies the **sparse-partition invariant**
``w^2 >= answer_d2`` — every pair that could beat (or tie) the current
answer has per-coordinate extent at most ``w`` and therefore lies in
the same or an adjacent cell.  A batch insert then repairs the answer
by scanning only the ``3^d`` neighborhoods of the cells the batch
touched (the candidate neighbor set); a batch erase that keeps both
answer endpoints alive is free (deleting points can only *remove*
pairs, so the surviving minimum is unchanged); an erase that kills an
endpoint falls back to a counted from-scratch recompute, which also
re-tightens the grid.

The answer is canonical: the lexicographically smallest ``(d2, gi,
gj)`` (``gi < gj`` by global id) over all live pairs, with every
distance evaluated by :func:`~repro.views.base.pairs_d2` — so the
incremental path, the fallback, and the from-scratch reference
:meth:`ClosestPairView.compute` agree bitwise, ties included.
"""

from __future__ import annotations

import numpy as np

from ..closestpair.divide_conquer import _rec
from ..parlay.workdepth import charge
from .base import MaterializedView, Mirror, pairs_d2

__all__ = ["ClosestPairView"]


def _lex_min(a, b):
    """Smaller of two (d2, gi, gj) answers (None = no pair)."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a <= b else b


def _pair_key(d2: float, ga: int, gb: int) -> tuple:
    return (float(d2), min(int(ga), int(gb)), max(int(ga), int(gb)))


def _duplicate_answer(pts: np.ndarray, gids: np.ndarray):
    """Canonical zero-distance answer: lex-min over duplicate groups."""
    view = np.ascontiguousarray(pts).view(
        [("", pts.dtype)] * pts.shape[1]
    ).ravel()
    order = np.argsort(view, kind="stable")
    sv = view[order]
    best = None
    start = 0
    for i in range(1, len(sv) + 1):
        if i == len(sv) or sv[i] != sv[start]:
            if i - start >= 2:
                g = np.sort(gids[order[start:i]])
                best = _lex_min(best, _pair_key(0.0, g[0], g[1]))
            start = i
    return best


class ClosestPairView(MaterializedView):
    """Materialized closest pair over one batch-dynamic index."""

    kind = "closest_pair"

    def __init__(self, name: str = "closest_pair"):
        super().__init__(name)
        self.w = 1.0
        self._cells: dict[tuple, list] = {}

    # ------------------------------------------------------------------
    # canonical from-scratch reference
    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, pts: np.ndarray, gids: np.ndarray):
        """The canonical answer for a live set: ``(d2, gi, gj)`` or None."""
        answer, _w = cls._canonical(
            np.ascontiguousarray(pts, dtype=np.float64),
            np.asarray(gids, dtype=np.int64),
        )
        return answer

    @staticmethod
    def _cells_of(pts: np.ndarray, w: float) -> np.ndarray:
        return np.floor(pts / w).astype(np.int64)

    @classmethod
    def _canonical(cls, pts: np.ndarray, gids: np.ndarray):
        """(answer, grid width) from scratch.

        Uses the repo's divide-and-conquer closest pair for an upper
        bound ``r2``, then canonicalizes: collect every pair within the
        slightly-inflated bound from a grid of width ``sqrt(cutoff)``
        and take the lexicographic minimum under :func:`pairs_d2`.
        """
        n = len(pts)
        if n < 2:
            return None, 1.0
        r2, _i, _j = _rec(pts, np.arange(n, dtype=np.int64), 0, False)
        if r2 == 0.0:
            return _duplicate_answer(pts, gids), 1.0
        # inflate by an ulp + relative slack: _rec's internal distance
        # expression may differ from pairs_d2 by a rounding step, and
        # the canonical minimum must never be excluded by the bound
        cutoff = max(np.nextafter(r2, np.inf), r2 * (1.0 + 1e-12))
        w = float(np.nextafter(np.sqrt(cutoff), np.inf))
        cells = cls._cells_of(pts, w)
        buckets: dict[tuple, list] = {}
        for row, c in enumerate(map(tuple, cells)):
            buckets.setdefault(c, []).append(row)

        d = pts.shape[1]
        offsets = np.stack(
            np.meshgrid(*([np.arange(-1, 2)] * d), indexing="ij"), axis=-1
        ).reshape(-1, d)
        # half-neighborhood: strictly positive lexicographic offsets,
        # so each cell pair is visited once
        half = [tuple(o) for o in offsets if tuple(o) > tuple([0] * d)]

        best = None
        for c, rows in buckets.items():
            rows = np.asarray(rows, dtype=np.int64)
            if len(rows) > 1:
                ii, jj = np.triu_indices(len(rows), k=1)
                best = _lex_min(best, cls._best_of(
                    pts, gids, rows[ii], rows[jj], cutoff))
            for off in half:
                other = buckets.get(tuple(np.add(c, off)))
                if other is None:
                    continue
                other = np.asarray(other, dtype=np.int64)
                ii = np.repeat(rows, len(other))
                jj = np.tile(other, len(rows))
                best = _lex_min(best, cls._best_of(pts, gids, ii, jj, cutoff))
        return best, w

    @staticmethod
    def _best_of(pts, gids, rows_a, rows_b, cutoff):
        """Lex-min (d2, gi, gj) among row pairs with d2 <= cutoff."""
        if len(rows_a) == 0:
            return None
        charge(len(rows_a))
        d2 = pairs_d2(pts[rows_a], pts[rows_b])
        keep = d2 <= cutoff
        if not keep.any():
            return None
        d2 = d2[keep]
        ga = gids[rows_a[keep]]
        gb = gids[rows_b[keep]]
        lo = np.minimum(ga, gb)
        hi = np.maximum(ga, gb)
        k = np.lexsort((hi, lo, d2))[0]
        return _pair_key(d2[k], lo[k], hi[k])

    # ------------------------------------------------------------------
    # state (re)build
    # ------------------------------------------------------------------
    def _rebuild(self, mirror: Mirror) -> None:
        rows = mirror.live_rows()
        self.answer, self.w = self._canonical(
            mirror.pts[rows], mirror.gids[rows]
        )
        self._cells = {}
        self._index_rows(mirror, rows)

    def _index_rows(self, mirror: Mirror, rows) -> None:
        if len(rows) == 0:
            return
        cells = self._cells_of(mirror.pts[rows], self.w)
        for r, c in zip(rows, map(tuple, cells)):
            self._cells.setdefault(c, []).append(int(r))

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def _repair_insert(self, mirror: Mirror, rows: np.ndarray) -> None:
        if self.answer is None and mirror.n_live() - len(rows) >= 1:
            # fewer than 2 points before: nothing to repair against
            if mirror.n_live() >= 2:
                self.note_recompute()
                self._rebuild(mirror)
            return
        if mirror.n_live() < 2:
            return
        self.note_repair()
        self._index_rows(mirror, rows)
        d = mirror.dim
        offsets = np.stack(
            np.meshgrid(*([np.arange(-1, 2)] * d), indexing="ij"), axis=-1
        ).reshape(-1, d)
        cells = self._cells_of(mirror.pts[rows], self.w)
        best = self.answer
        cutoff = best[0] if best is not None else np.inf
        for r, c in zip(rows, cells):
            cand = []
            for off in offsets:
                got = self._cells.get(tuple(c + off))
                if got:
                    cand.extend(got)
            cand = np.asarray(cand, dtype=np.int64)
            cand = cand[mirror.alive[cand] & (cand != r)]
            if len(cand) == 0:
                continue
            here = np.full(len(cand), r, dtype=np.int64)
            # <= cutoff keeps ties, which may be lexicographically smaller
            got = self._best_of(
                mirror.pts, mirror.gids, here, cand,
                cutoff if np.isfinite(cutoff) else np.inf,
            )
            new = _lex_min(best, got)
            if new is not best:
                best = new
                cutoff = best[0]
        self.answer = best
        if self.answer is None:
            # no pair within the invariant width existed yet (previous
            # state had < 2 points); fall back once
            self.note_recompute()
            self._rebuild(mirror)

    def _repair_erase(self, mirror: Mirror, rows: np.ndarray) -> None:
        if mirror.n_live() < 2:
            self.answer = None
            self.note_repair()
            return
        a = self.answer
        if a is not None and a[1] in mirror.row_of and a[2] in mirror.row_of:
            # both endpoints survive: erasing only removes pairs, so the
            # previous lexicographic minimum still wins
            self.note_repair()
            return
        self.note_recompute()
        self._rebuild(mirror)
