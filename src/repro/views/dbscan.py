"""Incrementally maintained DBSCAN labels over a batch-dynamic index.

The view keeps, per mirror row, the exact closed eps-ball population
``ncount`` (so core status is a threshold check), a component id in a
growing union-find space for core rows (merging reuses the repo's
:class:`~repro.emst.unionfind.UnionFind`), and for border rows an
*anchor* — the smallest-gid core neighbor, which is precisely the core
point :func:`repro.clustering.dbscan.dbscan` lets a border point adopt
its label from.

A batch only re-examines points whose eps-neighborhood changed:

* **insert** — ball queries centered at the inserted points update the
  neighbor counts of exactly the rows inside those balls; rows whose
  count crosses ``min_pts`` flip to core; new cores (inserted or
  flipped) get fresh components and union with their core neighbors.
  Existing component edges never break (no distance changed, no point
  left), so untouched components carry over verbatim.
* **erase** — symmetric count updates; components that lost a member
  or a core flip are *broken* and their surviving cores re-cluster
  from fresh singletons, while every unbroken component is provably
  intact (its members and pairwise distances are untouched).

Labels are derived on demand in canonical form — components numbered
by first appearance scanning rows in ascending gid order, borders
adopting their anchor's label — which is exactly the numbering
``dbscan()`` produces on the gid-sorted live set, so the view answer is
identical to the from-scratch reference :meth:`DBSCANView.compute`.

Ball membership uses ``d2 <= eps**2`` with the same row-reduction the
kd-tree range search evaluates, so brute repair queries and the tree
queries the reference runs agree point-for-point.
"""

from __future__ import annotations

import numpy as np

from ..clustering.dbscan import dbscan
from ..emst.unionfind import UnionFind
from ..parlay.workdepth import charge
from .base import MaterializedView, Mirror, pairs_d2

__all__ = ["DBSCANView"]


class DBSCANView(MaterializedView):
    """Materialized DBSCAN labels ``(gids_sorted, labels)`` tuples."""

    kind = "dbscan"

    def __init__(self, name: str, *, eps: float, min_pts: int):
        super().__init__(name)
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self._eps2 = float(eps) ** 2
        # per mirror row (grown lazily alongside the mirror):
        self._ncount = np.zeros(0, dtype=np.int64)
        self._core = np.zeros(0, dtype=bool)
        self._comp = np.full(0, -1, dtype=np.int64)   # uf slot per core row
        self._anchor = np.full(0, -1, dtype=np.int64)  # min-gid core nb row
        self._uf = UnionFind(0)
        self._uf_used = 0

    # ------------------------------------------------------------------
    # canonical from-scratch reference
    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, pts: np.ndarray, gids: np.ndarray, *,
                eps: float, min_pts: int) -> tuple:
        """``((gid, ...), (label, ...))`` over gid-ascending live points."""
        gids = np.asarray(gids, dtype=np.int64)
        order = np.argsort(gids)
        labels = dbscan(
            np.ascontiguousarray(pts, dtype=np.float64)[order],
            eps, min_pts,
        )
        return (
            tuple(int(g) for g in gids[order]),
            tuple(int(v) for v in labels),
        )

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _grow(self, n: int) -> None:
        add = n - len(self._ncount)
        if add <= 0:
            return
        self._ncount = np.concatenate(
            [self._ncount, np.zeros(add, dtype=np.int64)])
        self._core = np.concatenate([self._core, np.zeros(add, dtype=bool)])
        self._comp = np.concatenate(
            [self._comp, np.full(add, -1, dtype=np.int64)])
        self._anchor = np.concatenate(
            [self._anchor, np.full(add, -1, dtype=np.int64)])

    def _fresh_slot(self) -> int:
        if self._uf_used == len(self._uf.parent):
            cap = max(16, 2 * len(self._uf.parent))
            nxt = UnionFind(cap)
            nxt.parent[: self._uf_used] = self._uf.parent[: self._uf_used]
            nxt.rank[: self._uf_used] = self._uf.rank[: self._uf_used]
            self._uf = nxt
        slot = self._uf_used
        self._uf_used += 1
        return slot

    def _balls(self, mirror: Mirror, centers: np.ndarray) -> list[np.ndarray]:
        """Live rows within eps of each center (closed ball, exact).

        A uniform grid with cell width *strictly* greater than eps
        narrows each query to the 3^d cell neighborhood of its center
        — a superset filter only; membership is still decided by the
        exact ``d2 <= eps**2`` predicate, so answers are bitwise
        identical to the brute scan.  The 1/1024 width margin keeps the
        "within eps implies adjacent cells" guarantee sound under the
        float division's rounding for any |coordinate/eps| < 1e12;
        outside that (or when 3^d lookups would rival a linear scan)
        the brute path runs instead.
        """
        rows = mirror.live_rows()
        centers = np.asarray(centers, dtype=np.float64)
        if len(rows) == 0 or len(centers) == 0:
            return [rows[:0]] * len(centers)
        pts = mirror.pts[rows]
        dim = pts.shape[1]
        w = self.eps * (1.0 + 1.0 / 1024.0)
        u = pts / w if w > 0 else None
        cu = centers / w if w > 0 else None
        if (
            u is None or not np.isfinite(w)
            or 3 ** dim >= max(len(rows), 2)
            or (len(u) and np.abs(u).max() >= 1e12)
            or (len(cu) and np.abs(cu).max() >= 1e12)
        ):
            charge(len(centers) * len(rows))
            out = []
            for c in centers:
                d2 = pairs_d2(pts, c.reshape(1, -1))
                out.append(rows[d2 <= self._eps2])
            return out
        cells = np.floor(u).astype(np.int64)
        order = np.lexsort(cells.T[::-1])
        sc = cells[order]
        change = np.any(sc[1:] != sc[:-1], axis=1)
        starts = np.concatenate([[0], np.flatnonzero(change) + 1])
        ends = np.concatenate([starts[1:], [len(sc)]])
        buckets = {
            tuple(sc[s].tolist()): order[s:e]
            for s, e in zip(starts, ends)
        }
        offsets = np.stack(
            np.meshgrid(*([np.arange(-1, 2)] * dim), indexing="ij"),
            axis=-1,
        ).reshape(-1, dim)
        ccells = np.floor(cu).astype(np.int64)
        out = []
        for c, cc in zip(centers, ccells):
            cand: list = []
            for off in offsets:
                b = buckets.get(tuple((cc + off).tolist()))
                if b is not None:
                    cand.append(b)
            if not cand:
                out.append(rows[:0])
                continue
            idx = np.sort(np.concatenate(cand))
            charge(len(idx))
            d2 = pairs_d2(pts[idx], c.reshape(1, -1))
            out.append(rows[idx[d2 <= self._eps2]])
        return out

    def _union_with_core_neighbors(self, r: int, nb_rows: np.ndarray) -> None:
        charge(max(len(nb_rows), 1))
        me = int(self._comp[r])
        for j in nb_rows[self._core[nb_rows]]:
            self._uf.union(me, int(self._comp[j]))

    def _roots(self, slots: np.ndarray) -> np.ndarray:
        """Vectorized union-find roots (no path compression)."""
        p = self._uf.parent
        r = np.asarray(slots, dtype=np.int64)
        while True:
            pr = p[r]
            if np.array_equal(pr, r):
                return r
            r = pr

    def _recluster(self, rows: np.ndarray, nbs: list) -> None:
        """Fresh components for an edge-closed set of core ``rows``.

        ``rows`` must contain every core reachable from any of its
        members (true for all broken components together, and for the
        full core set on rebuild), so the core-core edges inside the
        given balls describe the whole subgraph.  Connected components
        come from vectorized min-label propagation with pointer
        jumping — O(edges * log diameter) array work instead of one
        Python-level union call per edge.
        """
        m = len(rows)
        if m == 0:
            return
        pos = np.full(len(self._comp), -1, dtype=np.int64)
        pos[rows] = np.arange(m)
        ei, ej = [], []
        for i, (r, nb) in enumerate(zip(rows, nbs)):
            cores = nb[self._core[nb]]
            ei.append(np.full(len(cores), i, dtype=np.int64))
            ej.append(pos[cores])
        ei = np.concatenate(ei) if ei else np.empty(0, dtype=np.int64)
        ej = np.concatenate(ej) if ej else np.empty(0, dtype=np.int64)
        charge(len(ei) + m)
        labels = np.arange(m)
        while True:
            new = labels.copy()
            # balls are symmetric and rows edge-closed: every edge
            # appears in both orientations, one scatter covers both
            np.minimum.at(new, ei, labels[ej])
            new = np.minimum(new, new[new])
            if np.array_equal(new, labels):
                break
            labels = new
        uniq, inverse = np.unique(labels, return_inverse=True)
        slots = np.array([self._fresh_slot() for _ in uniq], dtype=np.int64)
        self._comp[rows] = slots[inverse]

    def _reanchor(self, r: int, nb_rows: np.ndarray, mirror: Mirror) -> None:
        """Anchor = row of the min-gid core neighbor (or -1)."""
        cores = nb_rows[self._core[nb_rows] & (nb_rows != r)]
        if len(cores) == 0:
            self._anchor[r] = -1
        else:
            self._anchor[r] = int(cores[np.argmin(mirror.gids[cores])])

    # ------------------------------------------------------------------
    # answer derivation (shared by every maintenance path)
    # ------------------------------------------------------------------
    def _derive_answer(self, mirror: Mirror) -> None:
        rows = mirror.live_rows()
        order = np.argsort(mirror.gids[rows])
        rows = rows[order]
        charge(max(len(rows), 1))
        labels = np.full(len(rows), -1, dtype=np.int64)
        by_row: dict[int, int] = {}
        numbering: dict[int, int] = {}
        for pos, r in enumerate(rows):
            if self._core[r]:
                root = self._uf.find(int(self._comp[r]))
                if root not in numbering:
                    numbering[root] = len(numbering)
                labels[pos] = numbering[root]
                by_row[int(r)] = labels[pos]
        for pos, r in enumerate(rows):
            if not self._core[r] and self._anchor[r] >= 0:
                labels[pos] = by_row[int(self._anchor[r])]
        self.answer = (
            tuple(int(g) for g in mirror.gids[rows]),
            tuple(int(v) for v in labels),
        )

    # ------------------------------------------------------------------
    # state (re)build
    # ------------------------------------------------------------------
    def _rebuild(self, mirror: Mirror) -> None:
        self._grow(len(mirror.gids))
        self._core[:] = False
        self._comp[:] = -1
        self._anchor[:] = -1
        self._uf = UnionFind(0)
        self._uf_used = 0
        rows = mirror.live_rows()
        if len(rows) == 0:
            self._derive_answer(mirror)
            return
        nbs = self._balls(mirror, mirror.pts[rows])
        for r, nb in zip(rows, nbs):
            self._ncount[r] = len(nb)
            self._core[r] = len(nb) >= self.min_pts
        core_mask = self._core[rows]
        self._recluster(rows[core_mask], [
            nb for nb, c in zip(nbs, core_mask) if c])
        for r, nb in zip(rows, nbs):
            if not self._core[r]:
                self._reanchor(int(r), nb, mirror)
        self._derive_answer(mirror)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def _repair_insert(self, mirror: Mirror, rows: np.ndarray) -> None:
        self.note_repair()
        self._grow(len(mirror.gids))
        nbs = self._balls(mirror, mirror.pts[rows])

        # 1. neighbor counts: each inserted point adds one to every row
        #    inside its ball; inserted rows take their full ball size
        add = np.zeros(len(mirror.gids), dtype=np.int64)
        for nb in nbs:
            add[nb] += 1
        was_core = self._core.copy()
        touched = np.flatnonzero(add)
        old_touched = np.setdiff1d(touched, rows, assume_unique=False)
        self._ncount[old_touched] += add[old_touched]
        for r, nb in zip(rows, nbs):
            self._ncount[r] = len(nb)

        # 2. core flips (insert only raises counts: flips are on-only)
        self._core[touched] = self._ncount[touched] >= self.min_pts
        flip_on = old_touched[
            ~was_core[old_touched] & self._core[old_touched]]

        # 3. components: fresh singletons for new cores, then union with
        #    every core neighbor; old edges all survive untouched
        new_cores = np.concatenate([rows[self._core[rows]], flip_on])
        for r in new_cores:
            self._comp[r] = self._fresh_slot()
        flip_nbs = self._balls(mirror, mirror.pts[flip_on])
        nb_of = {int(r): nb for r, nb in zip(rows, nbs)}
        nb_of.update({int(r): nb for r, nb in zip(flip_on, flip_nbs)})
        for r in new_cores:
            self._union_with_core_neighbors(int(r), nb_of[int(r)])

        # 4. anchors: a border row's min-gid core neighbor can only
        #    change through a member of new_cores entering its ball
        for r in new_cores:
            self._anchor[r] = -1
        gained: dict[int, int] = {}
        for c in new_cores:
            for r in nb_of[int(c)]:
                r = int(r)
                if r == int(c) or self._core[r]:
                    continue
                g = int(mirror.gids[c])
                if r not in gained or g < gained[r][0]:
                    gained[r] = (g, int(c))
        for r, (g, c) in gained.items():
            cur = self._anchor[r]
            if cur < 0 or g < mirror.gids[cur]:
                self._anchor[r] = c
        # inserted non-core rows need a full scan of their own ball
        for r, nb in zip(rows, nbs):
            if not self._core[r]:
                self._reanchor(int(r), nb, mirror)
        self._derive_answer(mirror)

    def _repair_erase(self, mirror: Mirror, rows: np.ndarray) -> None:
        self.note_repair()
        was_core = self._core.copy()
        nbs = self._balls(mirror, mirror.pts[rows])  # post-update live set

        # 1. broken components: any component that lost a core member,
        #    found before counts move the flips
        broken = set()
        for r in rows:
            if was_core[r]:
                broken.add(self._uf.find(int(self._comp[r])))

        # 2. neighbor counts drop by the killed multiplicity
        sub = np.zeros(len(mirror.gids), dtype=np.int64)
        for nb in nbs:
            sub[nb] += 1
        touched = np.flatnonzero(sub)
        self._ncount[touched] -= sub[touched]

        # 3. core flips (erase only lowers counts: flips are off-only)
        self._core[touched] = self._ncount[touched] >= self.min_pts
        flip_off = touched[was_core[touched] & ~self._core[touched]]
        for r in flip_off:
            broken.add(self._uf.find(int(self._comp[r])))
            self._comp[r] = -1
        self._core[rows] = False
        self._comp[rows] = -1

        # 4. re-cluster the surviving cores of broken components from
        #    fresh singletons; unbroken components kept no secrets —
        #    same members, same distances — and carry over as-is
        live_cores = mirror.live_rows()
        live_cores = live_cores[self._core[live_cores]]
        if broken and len(live_cores):
            roots = self._roots(self._comp[live_cores])
            affected = live_cores[np.isin(
                roots, np.fromiter(broken, dtype=np.int64))]
        else:
            affected = live_cores[:0]
        aff_nbs = self._balls(mirror, mirror.pts[affected])
        self._recluster(affected, aff_nbs)

        # 5. anchors: stale only where the anchor itself died or
        #    un-cored; flipped-off rows become borders and need their own
        dead_mask = np.zeros(len(self._comp), dtype=bool)
        dead_mask[rows] = True
        dead_mask[flip_off] = True
        live = mirror.live_rows()
        borders = live[~self._core[live]]
        a = self._anchor[borders]
        stale = borders[(a >= 0) & dead_mask[a]]
        need = np.unique(np.concatenate([flip_off, stale]))
        need = need[mirror.alive[need]]
        need_nbs = self._balls(mirror, mirror.pts[need])
        for r, nb in zip(need, need_nbs):
            self._reanchor(int(r), nb, mirror)
        self._derive_answer(mirror)
