"""Shared machinery of materialized views: mirror + repair protocol.

A :class:`MaterializedView` owns a derived answer over the live point
set of one batch-dynamic index, maintained *incrementally*: the
:class:`~repro.views.manager.ViewManager` calls :meth:`apply_insert` /
:meth:`apply_erase` after each effective batch mutation, handing the
view the rows that changed, and the view either repairs its state in
place (cheap, counted in ``repairs``) or falls back to a from-scratch
recompute (counted in ``recomputes`` — the trigger is always counted,
never silent).

The correctness contract every view obeys — and the hypothesis suite
asserts — is **canonical equality**: after any sequence of batches,
``view.answer`` is bitwise-equal to ``type(view).compute(pts, gids,
...)`` over the live mirror.  ``compute`` is the from-scratch reference
(also what :func:`repro.serve.trace.run_unbatched` uses as the
recompute baseline), so an incrementally maintained view can never
drift from what a cold recompute would return.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MaterializedView", "Mirror", "pairs_d2"]


def pairs_d2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise squared distances, one canonical evaluation everywhere.

    Every distance that can reach a view answer — incremental repair,
    recompute fallback, and the from-scratch reference — goes through
    this one expression, so equal point pairs always produce the same
    float64 bit pattern regardless of which path computed them.
    """
    d = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return (d * d).sum(axis=1)


class Mirror:
    """The manager's row-oriented copy of an index's live point set.

    Rows are append-only; erase marks ``alive`` False.  Views index
    into the shared arrays by row, so no view keeps its own coordinate
    copies.  ``row_of`` maps global id -> row (live rows only).
    """

    def __init__(self, pts: np.ndarray, gids: np.ndarray):
        self.pts = np.ascontiguousarray(pts, dtype=np.float64)
        self.gids = np.asarray(gids, dtype=np.int64).copy()
        self.alive = np.ones(len(self.gids), dtype=bool)
        self.row_of = {int(g): i for i, g in enumerate(self.gids)}

    @property
    def dim(self) -> int:
        return self.pts.shape[1]

    def n_live(self) -> int:
        return int(self.alive.sum())

    def live_rows(self) -> np.ndarray:
        return np.flatnonzero(self.alive)

    def live(self) -> tuple[np.ndarray, np.ndarray]:
        """(coords, gids) of the live rows, in row (= insertion) order."""
        rows = self.live_rows()
        return self.pts[rows], self.gids[rows]

    def append(self, pts: np.ndarray, gids: np.ndarray) -> np.ndarray:
        """Add a batch; returns the new row indices."""
        base = len(self.gids)
        self.pts = np.vstack([self.pts, np.asarray(pts, dtype=np.float64)])
        self.gids = np.concatenate(
            [self.gids, np.asarray(gids, dtype=np.int64)]
        )
        self.alive = np.concatenate(
            [self.alive, np.ones(len(gids), dtype=bool)]
        )
        rows = np.arange(base, len(self.gids), dtype=np.int64)
        for r in rows:
            self.row_of[int(self.gids[r])] = int(r)
        return rows

    def kill_matching(self, q: np.ndarray) -> np.ndarray:
        """Mark live rows whose coords match a row of ``q`` dead.

        Returns the killed rows.  Matching replicates the index's erase
        semantics (:func:`repro.bdl.bdltree._match_rows`): *every* live
        row equal to *any* requested coordinate dies.
        """
        from ..bdl.bdltree import _match_rows

        rows = self.live_rows()
        if len(rows) == 0:
            return rows
        hit = _match_rows(self.pts[rows], np.asarray(q, dtype=np.float64))
        killed = rows[hit]
        self.alive[killed] = False
        for r in killed:
            self.row_of.pop(int(self.gids[r]), None)
        return killed


class MaterializedView:
    """Base class: identity, repair/recompute counters, answer cache.

    Subclasses implement ``_rebuild(mirror)`` (from-scratch state +
    answer), ``_repair_insert(mirror, rows)`` and
    ``_repair_erase(mirror, rows)`` (incremental maintenance; may call
    :meth:`note_recompute` + ``_rebuild`` to fall back), and the
    classmethod ``compute(pts, gids, ...)`` (the canonical reference).
    """

    #: subclass view kind tag ("closest_pair" / "dbscan" / "hull2d")
    kind = "view"

    def __init__(self, name: str):
        self.name = name
        self.answer = None
        self.version = -1       #: index version the answer belongs to
        self.repairs = 0        #: incremental repair count
        self.recomputes = 0     #: from-scratch fallback count

    # -- counters ----------------------------------------------------------
    def note_repair(self) -> None:
        self.repairs += 1

    def note_recompute(self) -> None:
        self.recomputes += 1

    # -- protocol ----------------------------------------------------------
    def rebuild(self, mirror: Mirror, version: int) -> None:
        """From-scratch (re)build; counted by the *caller* when it is a
        fallback (initial builds are free)."""
        self._rebuild(mirror)
        self.version = version

    def apply_insert(self, mirror: Mirror, rows: np.ndarray,
                     version: int) -> None:
        self._repair_insert(mirror, rows)
        self.version = version

    def apply_erase(self, mirror: Mirror, rows: np.ndarray,
                    version: int) -> None:
        self._repair_erase(mirror, rows)
        self.version = version

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "version": self.version,
            "repairs": self.repairs,
            "recomputes": self.recomputes,
        }
