"""Incrementally maintained 2D convex hull view.

Insertion rides the repo's reservation-based randomized incremental
hull (:func:`repro.hull.incremental2d.randinc_hull2d`): because a point
inside the convex hull of the others can never become extreme again —
the hull only grows outward under insertion — the candidate set for the
new hull is exactly ``old hull vertices ∪ inserted batch``, so each
repair runs the incremental algorithm over a hull-sized input instead
of the whole live set.  Deletion of a hull coordinate triggers a
counted *filtered rebuild* (recompute over the surviving mirror);
deleting interior coordinates is free — Carathéodory: every non-vertex
lies in the convex hull of the vertex set alone, so removing non-vertex
rows leaves the vertex set intact.

The canonical answer (see :meth:`HullView.compute`) is the *strict*
hull of the distinct live coordinates — collinear boundary points
excluded — as a tuple of global ids, counter-clockwise, starting at the
lexicographically smallest ``(x, y)`` vertex; each coordinate is
represented by the smallest live gid at it.  Both the incremental and
the rebuild path finish by normalizing through the same monotone-chain
pass, so answers are bitwise-identical tuples either way.
"""

from __future__ import annotations

import numpy as np

from ..hull.filter import at_filter
from ..hull.incremental2d import randinc_hull2d
from ..parlay.workdepth import charge
from .base import MaterializedView, Mirror

__all__ = ["HullView"]


def _dedup_lex(pts: np.ndarray, gids: np.ndarray):
    """Distinct coords sorted by (x, y), min gid per coord."""
    if len(pts) == 0:
        return pts.reshape(0, 2), gids[:0]
    order = np.lexsort((gids, pts[:, 1], pts[:, 0]))
    p = pts[order]
    g = gids[order]
    first = np.ones(len(p), dtype=bool)
    first[1:] = np.any(p[1:] != p[:-1], axis=1)
    return p[first], g[first]


def _cross(o, a, b) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _chain(p: np.ndarray) -> list[int]:
    """Monotone chain over lex-sorted distinct coords.

    Strict turns (``<= 0`` pops) exclude collinear boundary points; the
    result is ccw and starts at index 0, the lex-min coordinate.  Fully
    collinear inputs collapse to the two extreme coords.
    """
    n = len(p)
    if n <= 2:
        return list(range(n))
    charge(n)
    lower: list[int] = []
    for i in range(n):
        while len(lower) >= 2 and _cross(p[lower[-2]], p[lower[-1]], p[i]) <= 0:
            lower.pop()
        lower.append(i)
    upper: list[int] = []
    for i in range(n - 1, -1, -1):
        while len(upper) >= 2 and _cross(p[upper[-2]], p[upper[-1]], p[i]) <= 0:
            upper.pop()
        upper.append(i)
    return lower[:-1] + upper[:-1]


class HullView(MaterializedView):
    """Materialized strict 2D hull over one batch-dynamic index."""

    kind = "hull2d"

    def __init__(self, name: str = "hull2d"):
        super().__init__(name)
        self._hull_pts = np.empty((0, 2))
        self._hull_gids = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # canonical from-scratch reference
    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, pts: np.ndarray, gids: np.ndarray) -> tuple:
        """Canonical hull gid tuple for a live set."""
        pts = np.ascontiguousarray(pts, dtype=np.float64)
        if pts.size and pts.shape[1] != 2:
            raise ValueError("hull view requires 2-dimensional points")
        p, g = _dedup_lex(pts.reshape(-1, 2), np.asarray(gids, dtype=np.int64))
        return tuple(int(g[i]) for i in _chain(p))

    # ------------------------------------------------------------------
    # state (re)build
    # ------------------------------------------------------------------
    def _set_answer(self, p: np.ndarray, g: np.ndarray) -> None:
        idx = _chain(p)
        self._hull_pts = p[idx]
        self._hull_gids = g[idx]
        self.answer = tuple(int(x) for x in self._hull_gids)

    def _rebuild(self, mirror: Mirror) -> None:
        pts, gids = mirror.live()
        if pts.size and pts.shape[1] != 2:
            raise ValueError("hull view requires 2-dimensional points")
        p, g = _dedup_lex(pts.reshape(-1, 2), gids)
        if len(p) >= 3:
            # Akl–Toussaint filter-first: certainly-interior coords can
            # never be strict-hull vertices, so dropping them leaves the
            # normalizing chain's answer bitwise-identical (the kept
            # rows stay lex-sorted) while the scalar chain walks a
            # hull-sized input instead of the whole live set
            keep = at_filter(p)
            if not keep.all():
                p, g = p[keep], g[keep]
        self._set_answer(p, g)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def _repair_insert(self, mirror: Mirror, rows: np.ndarray) -> None:
        self.note_repair()
        cand_pts = np.vstack([self._hull_pts, mirror.pts[rows]])
        cand_gids = np.concatenate([self._hull_gids, mirror.gids[rows]])
        p, g = _dedup_lex(cand_pts, cand_gids)
        if len(p) >= 3:
            try:
                idx, _stats = randinc_hull2d(p)
            except ValueError:
                # all candidates collinear: monotone chain handles it
                idx = np.arange(len(p), dtype=np.int64)
            idx = np.sort(idx)  # keep lex order for the normalizing chain
            p, g = p[idx], g[idx]
        self._set_answer(p, g)

    def _repair_erase(self, mirror: Mirror, rows: np.ndarray) -> None:
        if len(self._hull_pts):
            killed = mirror.pts[rows]
            charge(len(killed) * max(len(self._hull_pts), 1))
            hit = (killed[:, None, :] == self._hull_pts[None, :, :]).all(
                axis=2
            )
            if hit.any():
                # a hull coordinate died (erase kills every row at the
                # coord, so it is gone entirely): filtered rebuild
                self.note_recompute()
                self._rebuild(mirror)
                return
        # only interior coords died; reps survive because every row at a
        # killed coordinate was killed, and no hull coordinate was
        self.note_repair()
