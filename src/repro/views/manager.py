"""The :class:`ViewManager`: batch mutations in, repaired views out.

The manager owns the mirror (the row-oriented copy of the index's live
point set) and the registered views, and is the *only* sanctioned write
path to a view-bearing index: :meth:`insert` / :meth:`erase` apply the
batch to the index first, then repair every view inside a traced
``view_repair`` span, emitting per-view repair/recompute counters and
repair-phase timings on the metrics registry.

Answers are version-keyed and never stale: :meth:`get` returns
``(answer, version)`` where ``version`` is the index version the answer
was maintained to, and if the index was mutated *behind the manager's
back* (version drift detected on read), the manager resynchronizes —
a counted full recompute of every view — before answering.

Subscribers registered with :meth:`subscribe` receive one event per
effective batch (op, batch size, new version, and every view's fresh
answer), which is what makes the views *subscribable resources* rather
than polled queries.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.registry import MetricsRegistry
from ..obs.span import span
from .base import Mirror
from .closest_pair import ClosestPairView
from .dbscan import DBSCANView
from .hull2d import HullView

__all__ = ["ViewManager"]


class ViewManager:
    """Maintain materialized views over one batch-dynamic index.

    Parameters
    ----------
    index:
        A :class:`~repro.bdl.bdltree.BDLTree` or
        :class:`~repro.cluster.index.ShardedIndex` — anything with
        ``insert`` / ``erase`` / ``gather_points`` / ``version``.
    registry:
        Metrics registry to publish repair counters on (a private one
        is created when omitted).
    """

    def __init__(self, index, *, registry: MetricsRegistry | None = None):
        self.index = index
        self.registry = registry if registry is not None else MetricsRegistry()
        self.mirror = Mirror(*index.gather_points())
        self.views: dict[str, object] = {}
        self.version = int(index.version)
        self.last_stats = {"apply_s": 0.0, "repair_s": 0.0}
        self._listeners: list = []
        self._c_repairs = self.registry.counter(
            "view_repairs_total", "incremental view repairs", labels=("view",))
        self._c_recomputes = self.registry.counter(
            "view_recomputes_total", "view recompute fallbacks",
            labels=("view",))
        self._c_resyncs = self.registry.counter(
            "view_resyncs_total", "full resyncs after out-of-band mutation")
        self._c_listener_errors = self.registry.counter(
            "view_listener_errors_total", "subscriber callbacks that raised")
        self._h_repair = self.registry.histogram(
            "view_repair_seconds", "per-view repair/recompute wall time",
            labels=("view",))
        # the index advertises its manager so the serving layer can route
        index.views = self

    # ------------------------------------------------------------------
    # view registration
    # ------------------------------------------------------------------
    def register(self, view):
        if view.name in self.views:
            raise ValueError(f"view {view.name!r} already registered")
        view.rebuild(self.mirror, self.version)
        self.views[view.name] = view
        return view

    def closest_pair(self, name: str = "closest_pair") -> ClosestPairView:
        return self.register(ClosestPairView(name))

    def dbscan(self, name: str = "dbscan", *, eps: float,
               min_pts: int) -> DBSCANView:
        return self.register(DBSCANView(name, eps=eps, min_pts=min_pts))

    def hull2d(self, name: str = "hull2d") -> HullView:
        return self.register(HullView(name))

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def insert(self, points, gids=None) -> np.ndarray:
        pts = np.ascontiguousarray(points, dtype=np.float64)
        t0 = time.perf_counter()
        out = self.index.insert(pts, gids)
        t1 = time.perf_counter()
        if len(out) == 0:
            self.last_stats = {"apply_s": t1 - t0, "repair_s": 0.0}
            return out
        rows = self.mirror.append(pts, out)
        self._repair_all("insert", rows, t0, t1)
        return out

    def erase(self, points) -> int:
        pts = np.ascontiguousarray(points, dtype=np.float64)
        t0 = time.perf_counter()
        deleted = int(self.index.erase(pts))
        t1 = time.perf_counter()
        if deleted == 0:
            self.last_stats = {"apply_s": t1 - t0, "repair_s": 0.0}
            return deleted
        killed = self.mirror.kill_matching(pts)
        if len(killed) != deleted:
            # the mirror no longer matches the index: heal via resync
            self.resync()
            self.last_stats["apply_s"] += t1 - t0
            return deleted
        self._repair_all("erase", killed, t0, t1)
        return deleted

    def _repair_all(self, op: str, rows: np.ndarray, t0: float,
                    t1: float) -> None:
        version = int(self.index.version)
        with span("view_repair", cat="views", batch=len(rows), op=op):
            for view in self.views.values():
                r0, rec0 = view.repairs, view.recomputes
                s0 = time.perf_counter()
                if op == "insert":
                    view.apply_insert(self.mirror, rows, version)
                else:
                    view.apply_erase(self.mirror, rows, version)
                self._h_repair.labels(view.name).observe(
                    time.perf_counter() - s0)
                self._c_repairs.labels(view.name).inc(view.repairs - r0)
                self._c_recomputes.labels(view.name).inc(
                    view.recomputes - rec0)
        t2 = time.perf_counter()
        self.version = version
        self.last_stats = {"apply_s": t1 - t0, "repair_s": t2 - t1}
        self._notify(op, len(rows), version)

    # ------------------------------------------------------------------
    # the read path — version-keyed, never stale
    # ------------------------------------------------------------------
    def get(self, name: str):
        """``(answer, version)`` for one view, resyncing on drift."""
        if int(self.index.version) != self.version:
            self.resync()
        view = self.views[name]
        return view.answer, view.version

    def resync(self) -> None:
        """Full counted recompute after an out-of-band index mutation."""
        self._c_resyncs.inc()
        t0 = time.perf_counter()
        self.mirror = Mirror(*self.index.gather_points())
        version = int(self.index.version)
        with span("view_repair", cat="views", op="resync"):
            for view in self.views.values():
                view.note_recompute()
                view.rebuild(self.mirror, version)
                self._c_recomputes.labels(view.name).inc()
        self.version = version
        self.last_stats = {
            "apply_s": 0.0, "repair_s": time.perf_counter() - t0}
        self._notify("resync", 0, version)

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, fn):
        """``fn(event)`` after every effective batch; returns ``fn``."""
        self._listeners.append(fn)
        return fn

    def unsubscribe(self, fn) -> None:
        self._listeners.remove(fn)

    def _notify(self, op: str, count: int, version: int) -> None:
        if not self._listeners:
            return
        event = {
            "op": op,
            "count": count,
            "version": version,
            "answers": {n: v.answer for n, v in self.views.items()},
        }
        for fn in list(self._listeners):
            try:
                fn(event)
            except Exception:
                self._c_listener_errors.inc()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {name: view.stats() for name, view in self.views.items()}
