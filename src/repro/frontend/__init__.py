"""``repro.frontend`` — async multi-tenant serving front-end.

The tenancy/fairness/overload layer above :mod:`repro.serve`: an
``await``-able query API where each tenant owns one registered index,
a token-bucket quota, and a weighted-fair share of the dispatcher.
Admission control is driven by the queue-depth gauges and degrades
gracefully — under load, sharded tenants get home-shard-only answers
explicitly labelled ``approximate=True`` before anyone gets a typed
:class:`~repro.serve.errors.Overloaded` rejection.

Quickstart::

    import asyncio
    from repro import Frontend, ShardedIndex, dataset

    async def main():
        async with Frontend(queue_depth=512) as fe:
            fe.register_tenant(
                "acme", ShardedIndex(dataset("2D-U-10K").coords, 8),
                weight=2.0, rate=500.0,
            )
            reply = await fe.knn("acme", [50.0, 50.0], k=8)
            print(reply.approximate, reply.value)

    asyncio.run(main())

:mod:`repro.frontend.load` adds the open-loop load harness behind the
``load-bench`` CLI and the ``BENCH_load.json`` gate.
"""

from .admission import DEGRADED, NORMAL, OVERLOADED, AdmissionController, Decision
from .dispatch import TokenBucket, WeightedFairScheduler
from .errors import (
    Overloaded,
    QuotaExceeded,
    RequestTimeout,
    ServeError,
    ServiceClosed,
    UnknownTenant,
)
from .frontend import Frontend, Reply
from .load import (
    LoadReport,
    TenantLoad,
    TenantReport,
    run_open_loop,
    verify_degraded,
)

__all__ = [
    "AdmissionController",
    "DEGRADED",
    "Decision",
    "Frontend",
    "LoadReport",
    "NORMAL",
    "OVERLOADED",
    "Overloaded",
    "QuotaExceeded",
    "Reply",
    "RequestTimeout",
    "ServeError",
    "ServiceClosed",
    "TenantLoad",
    "TenantReport",
    "TokenBucket",
    "UnknownTenant",
    "WeightedFairScheduler",
    "run_open_loop",
    "verify_degraded",
]
