"""Depth-driven admission control with hysteresis and retry-after.

The controller turns the front-end's queue-depth gauges into one of
three states:

* ``NORMAL`` — depth below ``degrade_at``: every request is served
  exactly.
* ``DEGRADED`` — depth in ``[degrade_at, reject_at)``: requests are
  still admitted, but tenants whose index supports a cheap approximate
  path (home-shard-only kNN on a
  :class:`~repro.cluster.index.ShardedIndex`) are answered
  approximately, labelled ``approximate=True`` — the system trades
  accuracy for latency instead of queueing everyone.
* ``OVERLOADED`` — depth at/above ``reject_at``: new arrivals are shed
  with a typed :class:`~repro.serve.errors.Overloaded` carrying a
  ``retry_after`` derived from the measured drain rate, so the queue is
  provably bounded and clients back off instead of piling on.

Transitions out of a degraded/overloaded state require the depth to
fall below ``resume_frac`` of the entry threshold (hysteresis), so the
state machine doesn't flap on every request at the boundary::

            depth >= degrade_at              depth >= reject_at
    NORMAL ---------------------> DEGRADED ---------------------> OVERLOADED
      ^                              |  ^                              |
      +------------------------------+  +------------------------------+
        depth < resume_frac*degrade_at    depth < resume_frac*reject_at

The depth is read through a callable — in the front-end this is the
same function backing its ``frontend_queue_depth_total`` gauge, so the
admission decision and the exported metric can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionController", "Decision", "DEGRADED", "NORMAL", "OVERLOADED"]

NORMAL = "normal"
DEGRADED = "degraded"
OVERLOADED = "overloaded"

#: Fallback drain rate (req/s) before any dispatch has been measured.
_BOOTSTRAP_DRAIN = 100.0


@dataclass(frozen=True)
class Decision:
    """One admission verdict: the state plus a retry hint when shedding."""

    state: str
    depth: int
    retry_after: float | None = None

    @property
    def admit(self) -> bool:
        return self.state != OVERLOADED

    @property
    def degrade(self) -> bool:
        return self.state == DEGRADED


class AdmissionController:
    """Maps a queue-depth gauge to NORMAL / DEGRADED / OVERLOADED."""

    def __init__(
        self,
        depth_fn,
        *,
        degrade_at: int,
        reject_at: int,
        resume_frac: float = 0.5,
    ):
        if not 1 <= degrade_at <= reject_at:
            raise ValueError("need 1 <= degrade_at <= reject_at")
        if not 0.0 < resume_frac <= 1.0:
            raise ValueError("resume_frac must be in (0, 1]")
        self._depth_fn = depth_fn
        self.degrade_at = int(degrade_at)
        self.reject_at = int(reject_at)
        self.resume_frac = float(resume_frac)
        self.state = NORMAL
        # EWMA of the dispatcher's drain rate, for retry-after estimates
        self._drain_rate = 0.0

    def note_drained(self, n: int, seconds: float) -> None:
        """Feed one dispatch's throughput into the drain-rate EWMA."""
        if n <= 0 or seconds <= 0:
            return
        rate = n / seconds
        self._drain_rate = (
            rate if self._drain_rate == 0.0
            else 0.8 * self._drain_rate + 0.2 * rate
        )

    @property
    def drain_rate(self) -> float:
        return self._drain_rate

    def _retry_after(self, depth: int) -> float:
        """Time to drain back under the reject threshold, bounded sanely."""
        rate = self._drain_rate or _BOOTSTRAP_DRAIN
        excess = max(depth - self.resume_frac * self.reject_at, 1.0)
        return min(max(excess / rate, 0.001), 30.0)

    def decide(self) -> Decision:
        """Read the depth gauge and advance the state machine."""
        depth = int(self._depth_fn())
        s = self.state
        if s == OVERLOADED:
            if depth < self.resume_frac * self.reject_at:
                s = DEGRADED if depth >= self.degrade_at else NORMAL
        elif s == DEGRADED:
            if depth >= self.reject_at:
                s = OVERLOADED
            elif depth < self.resume_frac * self.degrade_at:
                s = NORMAL
        else:
            if depth >= self.reject_at:
                s = OVERLOADED
            elif depth >= self.degrade_at:
                s = DEGRADED
        self.state = s
        if s == OVERLOADED:
            return Decision(s, depth, self._retry_after(depth))
        return Decision(s, depth)
