"""Typed errors of the multi-tenant serving front-end.

The front-end reuses the service's error taxonomy
(:mod:`repro.serve.errors`) so callers branch on one hierarchy:
``Overloaded`` (now carrying ``retry_after``) remains the backpressure
signal, and the tenant-specific failures below subclass it or
``ServeError`` so existing handlers keep working.
"""

from __future__ import annotations

from ..serve.errors import (
    Overloaded,
    RequestTimeout,
    ServeError,
    ServiceClosed,
)

__all__ = [
    "Overloaded",
    "QuotaExceeded",
    "RequestTimeout",
    "ServeError",
    "ServiceClosed",
    "UnknownTenant",
]


class UnknownTenant(ServeError, KeyError):
    """The request names a tenant that is not registered."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return f"no tenant registered under {self.name!r}"


class QuotaExceeded(Overloaded):
    """The tenant's token-bucket quota is exhausted.

    A subclass of :class:`Overloaded` so generic backoff handlers keep
    working; ``retry_after`` is the exact refill time until the bucket
    holds a token again.
    """

    def __init__(self, tenant: str, retry_after: float):
        super().__init__(0, 0, retry_after)
        self.tenant = tenant
        self.args = (
            f"tenant {tenant!r} exceeded its request quota; "
            f"retry after {retry_after:.4g}s",
        )
