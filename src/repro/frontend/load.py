"""Open-loop load generation and measurement for the front-end.

The harness drives a :class:`~repro.frontend.frontend.Frontend` with
**open-loop** arrivals: each tenant's requests fire on a pre-computed
arrival schedule (:func:`repro.serve.trace.open_loop_arrivals` —
Poisson or bursty) regardless of whether earlier requests have
completed.  That is the property that makes overload measurable: a
closed loop self-throttles when the server slows down and can never
push it past saturation, while an open loop keeps offering load so
queues actually grow, admission control actually trips, and tail
latency means what it says.

One :class:`TenantLoad` per tenant pairs a trace (typically
:func:`repro.serve.trace.zipf_trace` for cache-visible hot spots) with
an arrival rate and pattern; :func:`run_open_loop` runs all tenants
concurrently on one event loop and returns a :class:`LoadReport` with
per-tenant p50/p99/p999 latency, rejection/timeout counts, degraded
counts, and throughput — the numbers the ``load-bench`` CLI prints and
the ``BENCH_load.json`` gate asserts on.

Degraded answers can be spot-checked after the run:
:func:`verify_degraded` recomputes each recorded approximate sample
exactly and checks the two properties the system promises — returned
distances are true distances, and they rank-wise dominate the exact
k-nearest distances (home-shard answers are exact over a *subset* of
the points, never fabricated).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.rtrace import PHASES, percentile
from ..serve.errors import Overloaded, RequestTimeout, ServiceClosed
from ..serve.trace import open_loop_arrivals
from .errors import QuotaExceeded

__all__ = [
    "LoadReport",
    "TenantLoad",
    "TenantReport",
    "percentile",
    "run_open_loop",
    "verify_degraded",
]


@dataclass
class TenantLoad:
    """One tenant's offered load: a trace plus an arrival process."""

    tenant: str
    trace: list
    rate: float
    pattern: str = "poisson"
    burst_factor: float = 8.0
    burst_frac: float = 0.1
    seed: int = 0
    timeout: float | None = None


@dataclass
class TenantReport:
    """Measured outcome for one tenant of an open-loop run."""

    tenant: str
    offered: int = 0
    completed: int = 0
    rejected: int = 0          # admission-control sheds (Overloaded)
    quota_rejected: int = 0    # token-bucket sheds (QuotaExceeded)
    timeouts: int = 0
    errors: int = 0
    degraded: int = 0
    cache_hits: int = 0
    p50: float = 0.0
    p99: float = 0.0
    p999: float = 0.0
    mean: float = 0.0
    max: float = 0.0
    throughput: float = 0.0
    #: per-phase latency decomposition (seconds): phase -> {mean, p50, p99}.
    #: Populated only when the front-end runs with request tracing on —
    #: each completed Reply carries its exact phase split (queue_wait /
    #: dispatch / compute / merge / cache sum to the request's latency).
    phases: dict = field(default_factory=dict)

    @property
    def rejection_rate(self) -> float:
        shed = self.rejected + self.quota_rejected + self.timeouts
        return shed / self.offered if self.offered else 0.0

    def to_json(self) -> dict:
        out = {k: getattr(self, k) for k in (
            "tenant", "offered", "completed", "rejected", "quota_rejected",
            "timeouts", "errors", "degraded", "cache_hits",
            "p50", "p99", "p999", "mean", "max", "throughput",
        )}
        out["rejection_rate"] = self.rejection_rate
        if self.phases:
            out["phases"] = self.phases
        return out


@dataclass
class LoadReport:
    """Whole-run outcome: per-tenant reports plus run-wide aggregates."""

    duration: float
    per_tenant: dict[str, TenantReport]
    queue_high_watermark: int = 0
    degraded_samples: list = field(default_factory=list)

    @property
    def offered(self) -> int:
        return sum(t.offered for t in self.per_tenant.values())

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.per_tenant.values())

    @property
    def throughput(self) -> float:
        """Saturation throughput: completed requests per second of run."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def rejection_rate(self) -> float:
        offered = self.offered
        shed = sum(
            t.rejected + t.quota_rejected + t.timeouts
            for t in self.per_tenant.values()
        )
        return shed / offered if offered else 0.0

    def to_json(self) -> dict:
        return {
            "duration": self.duration,
            "offered": self.offered,
            "completed": self.completed,
            "throughput": self.throughput,
            "rejection_rate": self.rejection_rate,
            "queue_high_watermark": self.queue_high_watermark,
            "degraded_verified": len(self.degraded_samples),
            "per_tenant": {
                name: t.to_json() for name, t in sorted(self.per_tenant.items())
            },
        }

    def summary(self) -> str:
        lines = [
            f"open-loop run: {self.offered} offered, {self.completed} ok "
            f"({self.throughput:.0f} req/s), "
            f"rejection rate {self.rejection_rate:.1%}, "
            f"queue high-watermark {self.queue_high_watermark}"
        ]
        for name, t in sorted(self.per_tenant.items()):
            lines.append(
                f"  {name:>10s}: offered {t.offered:6d}  ok {t.completed:6d}"
                f"  shed {t.rejected + t.quota_rejected:5d}"
                f"  timeout {t.timeouts:4d}  degraded {t.degraded:5d}"
                f"  p50 {t.p50 * 1e3:7.2f}ms  p99 {t.p99 * 1e3:7.2f}ms"
                f"  p999 {t.p999 * 1e3:7.2f}ms"
            )
            if t.phases:
                parts = "  ".join(
                    f"{ph} {stats['mean'] * 1e3:.2f}ms"
                    for ph, stats in t.phases.items()
                )
                lines.append(f"  {'':>10s}  phase means: {parts}")
        return "\n".join(lines)

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")


class _Recorder:
    """Mutable per-tenant tally shared by that tenant's issue tasks."""

    def __init__(self, tenant: str):
        self.tenant = tenant
        self.latencies: list[float] = []
        self.phases: dict[str, list[float]] = {}
        self.rep = TenantReport(tenant)


async def _issue(frontend, load: TenantLoad, op: dict, rec: _Recorder,
                 samples: list, max_samples: int, clock) -> None:
    rec.rep.offered += 1
    t0 = clock()
    try:
        kind = op.get("op")
        if kind == "knn":
            reply = await frontend.knn(
                load.tenant, op["q"], op["k"], timeout=load.timeout
            )
        elif kind == "ball":
            reply = await frontend.ball(
                load.tenant, op["c"], op["r"], timeout=load.timeout
            )
        elif kind == "box":
            reply = await frontend.box(
                load.tenant, op["lo"], op["hi"], timeout=load.timeout
            )
        elif kind == "allnn":
            reply = await frontend.allnn(load.tenant, timeout=load.timeout)
        else:
            raise ValueError(f"unknown trace op {kind!r}")
    except QuotaExceeded:
        rec.rep.quota_rejected += 1
        return
    except Overloaded:
        rec.rep.rejected += 1
        return
    except RequestTimeout:
        rec.rep.timeouts += 1
        return
    except (ServiceClosed, asyncio.CancelledError):
        rec.rep.errors += 1
        return
    except Exception:
        rec.rep.errors += 1
        return
    rec.latencies.append(clock() - t0)
    rec.rep.completed += 1
    if reply.phases:
        for ph, v in reply.phases.items():
            rec.phases.setdefault(ph, []).append(v)
    if reply.cache_hit:
        rec.rep.cache_hits += 1
    if reply.approximate:
        rec.rep.degraded += 1
        if len(samples) < max_samples and kind == "knn":
            d2, gid = reply.value
            samples.append({
                "tenant": load.tenant,
                "q": np.asarray(op["q"], dtype=np.float64),
                "k": int(op["k"]),
                "d2": np.asarray(d2, dtype=np.float64).copy(),
                "gid": np.asarray(gid, dtype=np.int64).copy(),
            })


async def _drive(frontend, load: TenantLoad, rec: _Recorder, samples,
                 max_samples, time_scale: float, watermark, clock) -> None:
    """Fire one tenant's trace on its open-loop schedule."""
    offs = open_loop_arrivals(
        len(load.trace), load.rate,
        pattern=load.pattern, burst_factor=load.burst_factor,
        burst_frac=load.burst_frac, seed=load.seed,
    )
    start = clock()
    tasks = []
    for op, off in zip(load.trace, offs):
        delay = off * time_scale - (clock() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        # open loop: issue unconditionally, never wait for completion
        tasks.append(asyncio.ensure_future(
            _issue(frontend, load, op, rec, samples, max_samples, clock)
        ))
        watermark[0] = max(watermark[0], frontend.pending())
    if tasks:
        await asyncio.gather(*tasks)


async def run_open_loop(
    frontend,
    loads: list[TenantLoad],
    *,
    time_scale: float = 1.0,
    max_degraded_samples: int = 64,
    clock=time.monotonic,
) -> LoadReport:
    """Run all tenant loads concurrently; returns the measured report.

    ``time_scale`` stretches (>1) or compresses (<1) every arrival
    schedule — compressing is how a fixed trace is pushed past
    saturation without regenerating it.  Up to ``max_degraded_samples``
    approximate kNN replies are recorded verbatim for post-hoc exact
    verification with :func:`verify_degraded`.
    """
    recs = {ld.tenant: _Recorder(ld.tenant) for ld in loads}
    if len(recs) != len(loads):
        raise ValueError("one TenantLoad per tenant, tenants must be unique")
    samples: list = []
    watermark = [0]
    t_start = clock()
    await asyncio.gather(*[
        _drive(frontend, ld, recs[ld.tenant], samples, max_degraded_samples,
               time_scale, watermark, clock)
        for ld in loads
    ])
    duration = clock() - t_start

    per_tenant: dict[str, TenantReport] = {}
    for name, rec in recs.items():
        rep = rec.rep
        lats = rec.latencies
        if lats:
            rep.p50 = percentile(lats, 50.0)
            rep.p99 = percentile(lats, 99.0)
            rep.p999 = percentile(lats, 99.9)
            rep.mean = float(np.mean(lats))
            rep.max = float(np.max(lats))
        rep.throughput = rep.completed / duration if duration > 0 else 0.0
        rep.phases = {
            ph: {
                "mean": float(np.mean(vals)),
                "p50": percentile(vals, 50.0),
                "p99": percentile(vals, 99.0),
            }
            for ph in PHASES
            if (vals := rec.phases.get(ph))
        }
        per_tenant[name] = rep
    return LoadReport(
        duration=duration,
        per_tenant=per_tenant,
        queue_high_watermark=int(watermark[0]),
        degraded_samples=samples,
    )


def verify_degraded(index, samples) -> int:
    """Exactly recompute recorded approximate kNN samples; returns count.

    For each sample the exact k-nearest squared distances over the
    *full* index are recomputed and two properties are asserted:

    1. **Distance truth** — every returned (finite) distance equals the
       true squared distance from the query to the returned point id,
       i.e. degraded answers are real points at real distances;
    2. **Rank-wise dominance** — the degraded i-th distance is >= the
       exact i-th distance (a subset's k-nearest can only be farther).

    Raises ``AssertionError`` on any violation.
    """
    if hasattr(index, "shards"):  # ShardedIndex: gather live (coords, gids)
        parts = [sh.gather() for sh in index.shards]
        pts = np.vstack([p for p, _ in parts])
        gids_all = np.concatenate([g for _, g in parts])
        by_gid = np.full(int(gids_all.max()) + 1, -1, dtype=np.int64)
        by_gid[gids_all] = np.arange(len(gids_all))
    else:
        pts = np.asarray(index.points, dtype=np.float64)
        by_gid = np.arange(len(pts))
    for s in samples:
        q = np.asarray(s["q"], dtype=np.float64)
        k = int(s["k"])
        d2 = np.asarray(s["d2"], dtype=np.float64)
        gid = np.asarray(s["gid"], dtype=np.int64)
        exact_d2, _ = index.knn(q[None, :], k)
        exact_d2 = np.asarray(exact_d2, dtype=np.float64).reshape(-1)
        live = gid >= 0
        rows = by_gid[gid[live]]
        assert np.all(rows >= 0), f"degraded answer cites dead gid for q={q!r}"
        got = np.linalg.norm(pts[rows] - q[None, :], axis=1) ** 2
        assert np.allclose(d2[live], got, rtol=1e-9, atol=1e-9), (
            f"degraded distances are not true distances for q={q!r}"
        )
        finite = np.isfinite(exact_d2) & np.isfinite(d2)
        assert np.all(d2[finite] >= exact_d2[finite] - 1e-9), (
            f"degraded answer beats exact kNN for q={q!r} (impossible)"
        )
    return len(samples)
