"""Fair-dispatch primitives: token buckets and weighted fair queueing.

Both classes are plain synchronous objects (no asyncio, injectable
clock) so the scheduling math is unit-testable in isolation; the
:class:`~repro.frontend.frontend.Frontend` drives them from its event
loop.

* :class:`TokenBucket` — the per-tenant admission quota: a bucket of
  ``burst`` tokens refilling at ``rate`` tokens/second.  Acquisition is
  all-or-nothing and never blocks; on failure it returns the exact
  refill time, which becomes the typed rejection's ``retry_after``.

* :class:`WeightedFairScheduler` — virtual-time weighted fair queueing
  across tenant backlogs (start-time fair queueing, batch granularity).
  Each tenant carries a virtual finish tag; dispatching ``b`` requests
  from tenant ``t`` advances its tag by ``b / weight_t``, and the next
  dispatch always goes to the backlogged tenant with the smallest tag.
  A tenant that goes idle and returns resumes at the scheduler's
  current virtual time (``max(own tag, now)``), so idleness never banks
  credit — the property that bounds a light tenant's delay to one
  quantum of each heavy competitor instead of their whole backlog.
"""

from __future__ import annotations

import math
import time

__all__ = ["TokenBucket", "WeightedFairScheduler"]


class TokenBucket:
    """A token-bucket rate limiter with an injectable clock.

    ``rate`` is tokens per second; ``burst`` is the bucket capacity
    (defaults to one second's worth, at least 1).  ``rate=None`` means
    unlimited: every acquisition succeeds.
    """

    def __init__(self, rate: float | None, burst: float | None = None, *,
                 clock=time.monotonic):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be > 0 tokens/s (or None for unlimited)")
        self.rate = None if rate is None else float(rate)
        if burst is None:
            burst = max(1.0, rate) if rate is not None else math.inf
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.burst = float(burst)
        self._tokens = self.burst
        self._clock = clock
        self._last = clock()

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        dt = now - self._last
        if dt > 0:
            self._tokens = min(self.burst, self._tokens + dt * self.rate)
        self._last = now

    @property
    def tokens(self) -> float:
        self._refill(self._clock())
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available; returns the retry-after.

        ``0.0`` means the tokens were taken.  A positive value is the
        time until ``n`` tokens will have accrued — nothing was taken
        (all-or-nothing, so a rejected request costs no quota).
        """
        if self.rate is None:
            return 0.0
        self._refill(self._clock())
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate


class _TenantState:
    __slots__ = ("weight", "vtag", "backlog")

    def __init__(self, weight: float):
        self.weight = weight
        self.vtag = 0.0
        self.backlog = 0


class WeightedFairScheduler:
    """Virtual-time weighted fair queueing over tenant backlogs."""

    def __init__(self) -> None:
        self._tenants: dict[str, _TenantState] = {}
        self._vnow = 0.0

    def add(self, name: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError("weight must be > 0")
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already scheduled")
        t = _TenantState(float(weight))
        t.vtag = self._vnow
        self._tenants[name] = t

    def remove(self, name: str) -> None:
        del self._tenants[name]

    def set_weight(self, name: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("weight must be > 0")
        self._tenants[name].weight = float(weight)

    def backlog(self, name: str) -> int:
        return self._tenants[name].backlog

    def total_backlog(self) -> int:
        return sum(t.backlog for t in self._tenants.values())

    def arrive(self, name: str, n: int = 1) -> None:
        """Record ``n`` new requests queued for ``name``."""
        t = self._tenants[name]
        if t.backlog == 0:
            # re-activation: resume at the current virtual time so idle
            # periods cannot be hoarded as dispatch credit
            t.vtag = max(t.vtag, self._vnow)
        t.backlog += n

    def pick(self) -> str | None:
        """The backlogged tenant with the smallest virtual finish tag.

        Ties (common right after a light tenant reactivates at ``vnow``)
        go to the heavier weight, so a high-priority tenant is never
        stuck behind an equal-tagged bulk tenant by insertion order.
        """
        best, best_key = None, (math.inf, 0.0)
        for name, t in self._tenants.items():
            if t.backlog > 0:
                key = (t.vtag, -t.weight)
                if key < best_key:
                    best, best_key = name, key
        return best

    def dispatched(self, name: str, n: int) -> None:
        """Account ``n`` requests dispatched from ``name``'s queue."""
        t = self._tenants[name]
        t.backlog = max(0, t.backlog - n)
        t.vtag += n / t.weight
        self._vnow = max(self._vnow, min(
            (s.vtag for s in self._tenants.values() if s.backlog > 0),
            default=t.vtag,
        ))
