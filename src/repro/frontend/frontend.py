"""The asyncio multi-tenant serving front-end.

:class:`Frontend` is the tenancy/fairness/overload layer above
:class:`~repro.serve.service.GeometryService` (which stays the
batching/caching layer).  Each **tenant** owns one registered index
(:class:`~repro.kdtree.tree.KDTree`, :class:`~repro.bdl.bdltree.BDLTree`
or :class:`~repro.cluster.index.ShardedIndex`), a scheduling weight,
and an optional token-bucket quota.  Clients call the ``await``-able
query API (:meth:`Frontend.knn` / :meth:`box` / :meth:`ball` /
:meth:`allnn`) and get back a :class:`Reply` whose ``approximate`` flag
is the degradation label.

Request lifecycle::

    await frontend.knn("acme", q, k=8)
      │ quota: tenant token bucket — exhausted -> QuotaExceeded(retry_after)
      │ admission: depth-driven state machine — in OVERLOADED, tenants
      │   at/above their weighted fair share of the queue budget get a
      │   typed Overloaded(retry_after); under-share tenants stay admitted
      │ enqueue on the tenant's queue, wake the dispatcher
      ▼
    dispatcher task (one per frontend)
      │ weighted-fair pick: backlogged tenant with smallest virtual tag
      │ drain one quantum (<= max_batch) of that tenant's queue
      │ execute in a worker thread:
      │   exact   -> GeometryService.submit(...) + flush(tenant)   (coalesced + cached)
      │   degraded-> ShardedIndex.knn_home(...)                    (home shard only)
      ▼
    resolve futures with Reply(value, approximate=...)

Fairness is **weighted-fair dispatch**, not FIFO: a heavy tenant that
floods its queue only advances its own virtual time, so a light
tenant's requests are picked within one quantum per competitor and its
tail latency stays bounded (the load gate in ``BENCH_load.json`` holds
the light tenant's p99 to <= 3x its solo value under heavy-tenant
saturation).

Degradation is **explicit and labelled**: in the DEGRADED admission
state, kNN requests of tenants whose index has the home-shard-only
path are answered by :meth:`ShardedIndex.knn_home` and returned with
``approximate=True`` — real points at true distances, just possibly
not the globally nearest — never a silently wrong exact-looking
answer.  All other requests (and all tenants without a degraded path)
stay exact.

The executor keeps numpy work off the event loop, so open-loop load
generators (:mod:`repro.frontend.load`) measure genuine queueing
behaviour: arrivals keep being admitted (or typed-rejected) while a
batch executes.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..obs.registry import MetricsRegistry
from ..obs.rtrace import (
    PHASES,
    FlightRecorder,
    RequestTrace,
    make_context,
)
from ..obs.slo import Objective, SLOTracker
from ..serve.service import KINDS, GeometryService
from .admission import DEGRADED, NORMAL, OVERLOADED, AdmissionController
from .dispatch import TokenBucket, WeightedFairScheduler
from .errors import (
    Overloaded,
    QuotaExceeded,
    RequestTimeout,
    ServiceClosed,
    UnknownTenant,
)

__all__ = ["Frontend", "MUTATION_KINDS", "Reply"]

_STATE_CODE = {NORMAL: 0, DEGRADED: 1, OVERLOADED: 2}

#: Mutation request kinds: routed to the tenant's index (through its
#: ViewManager when one is attached) instead of the coalescing service,
#: acting as barriers inside a dispatch quantum.
MUTATION_KINDS = ("insert", "erase")


@dataclass(frozen=True)
class Reply:
    """One answered front-end request.

    ``value`` is exactly what the underlying query returns ((sq-dists,
    ids) for kNN/allnn, an id array for ranges).  ``approximate`` is
    the degradation label: True if and only if the answer came from the
    home-shard-only path under overload — approximate replies are never
    returned unlabelled, and exact replies never carry the flag.
    """

    value: object
    approximate: bool
    tenant: str
    kind: str
    queue_wait: float = 0.0
    cache_hit: bool = False
    trace_id: str | None = None          #: request-tracing id (rtrace on)
    phases: dict | None = None           #: phase breakdown, sums to latency


class _Request:
    __slots__ = ("kind", "payload", "kw", "future", "enqueued_at", "degraded",
                 "ctx")

    def __init__(self, kind, payload, kw, future, enqueued_at, degraded,
                 ctx=None):
        self.kind = kind
        self.payload = payload
        self.kw = kw
        self.future = future
        self.enqueued_at = enqueued_at
        self.degraded = degraded
        self.ctx = ctx


@dataclass
class _Tenant:
    name: str
    index: object
    weight: float
    bucket: TokenBucket
    max_depth: int
    degradable: bool
    queue: deque = field(default_factory=deque)
    # per-tenant metric children resolved once at registration, so the
    # per-request path skips the family lock + label-tuple resolution
    m_requests: object = None
    m_completed: object = None
    m_hits: object = None
    m_degraded: object = None
    m_rejected: object = None
    m_quota: object = None
    m_latency: object = None
    m_phase: dict | None = None


class Frontend:
    """Async multi-tenant front-end with fair dispatch and admission.

    Parameters
    ----------
    service:
        The :class:`GeometryService` to execute through (manual mode;
        the front-end is its dispatcher).  One is created — and owned,
        i.e. closed by :meth:`close` — when omitted.
    max_batch:
        Dispatch quantum: most requests drained from one tenant's queue
        per scheduling decision (also the coalescing bound downstream).
    queue_depth:
        Per-tenant queue bound; arrivals past it are shed with a typed
        :class:`Overloaded` even in the NORMAL state.
    degrade_at / reject_at:
        Total-depth thresholds of the admission state machine (default
        ``queue_depth // 2`` and ``queue_depth``).  See
        :mod:`repro.frontend.admission` for the hysteresis rules.
    registry:
        Metrics registry for the per-tenant labelled gauges/counters
        (the owned service publishes on the same one, so a single
        scrape covers both layers).
    clock:
        Injectable monotonic clock (tests drive quotas deterministically).
    rtrace:
        Request tracing: mint a :class:`~repro.obs.rtrace.RequestContext`
        per request, decompose every answer into phases (queue_wait /
        dispatch / compute / merge / cache — they sum to the measured
        latency), feed the always-on tail-sampling flight recorder and
        the per-tenant SLO tracker, and publish phase histograms with
        exemplar trace ids.  On by default; ``rtrace=False`` is the
        zero-overhead baseline the ``BENCH_rtrace.json`` gate compares
        against.
    flight / slo:
        Inject a pre-built :class:`~repro.obs.rtrace.FlightRecorder` /
        :class:`~repro.obs.slo.SLOTracker` (tests use tiny capacities
        and fake clocks); defaults are created when ``rtrace`` is on.
    flight_capacity / tail_frac:
        Flight-recorder ring size and the retained latency tail
        fraction (0.10 = slowest decile) for the default recorder.
    """

    def __init__(
        self,
        *,
        service: GeometryService | None = None,
        max_batch: int = 256,
        queue_depth: int = 1024,
        degrade_at: int | None = None,
        reject_at: int | None = None,
        resume_frac: float = 0.5,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
        rtrace: bool = True,
        flight: FlightRecorder | None = None,
        slo: SLOTracker | None = None,
        flight_capacity: int = 512,
        tail_frac: float = 0.10,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.max_batch = int(max_batch)
        self.queue_depth = int(queue_depth)
        self._clock = clock

        self.registry = registry if registry is not None else MetricsRegistry()
        self._own_service = service is None
        if service is None:
            service = GeometryService(
                max_batch=max_batch,
                max_pending=max(4 * queue_depth, 4096),
                registry=self.registry,
            )
        self._service = service

        self._tenants: dict[str, _Tenant] = {}
        self._sched = WeightedFairScheduler()

        reg = self.registry
        self._g_depth = reg.gauge(
            "frontend_queue_depth", "per-tenant front-end queue depth",
            labels=("tenant",),
        )
        self._g_depth_total = reg.gauge(
            "frontend_queue_depth_total", "front-end queue depth, all tenants"
        ).set_function(lambda: sum(len(t.queue) for t in self._tenants.values()))
        self._g_state = reg.gauge(
            "frontend_admission_state",
            "admission state (0=normal, 1=degraded, 2=overloaded)",
        )
        self._g_hit_rate = reg.gauge(
            "frontend_hit_rate", "per-tenant result-cache hit rate",
            labels=("tenant",),
        )
        self._c_requests = reg.counter(
            "frontend_requests_total", "requests submitted per tenant",
            labels=("tenant",),
        )
        self._c_completed = reg.counter(
            "frontend_completed_total", "requests answered per tenant",
            labels=("tenant",),
        )
        self._c_hits = reg.counter(
            "frontend_cache_hits_total", "cache-served requests per tenant",
            labels=("tenant",),
        )
        self._c_degraded = reg.counter(
            "frontend_degraded_total",
            "requests answered approximately (home shard only) per tenant",
            labels=("tenant",),
        )
        self._c_rejected = reg.counter(
            "frontend_rejected_total",
            "requests shed by admission control per tenant",
            labels=("tenant",),
        )
        self._c_quota = reg.counter(
            "frontend_quota_rejections_total",
            "requests shed by token-bucket quotas per tenant",
            labels=("tenant",),
        )

        # request tracing: flight recorder + SLOs + phase histograms
        self._rtrace = bool(rtrace) or flight is not None or slo is not None
        self.flight: FlightRecorder | None = None
        self.slo: SLOTracker | None = None
        self._h_latency = self._h_phase = None
        if self._rtrace:
            self.flight = flight if flight is not None else FlightRecorder(
                capacity=flight_capacity, tail_frac=tail_frac, registry=reg
            )
            self.slo = slo if slo is not None else SLOTracker(
                clock=clock, registry=reg
            )
            self._h_latency = reg.histogram(
                "frontend_latency_seconds",
                "end-to-end request latency per tenant",
                labels=("tenant",),
            )
            self._h_phase = reg.histogram(
                "frontend_phase_seconds",
                "per-request phase breakdown (phases sum to latency)",
                labels=("tenant", "phase"),
            )

        # the admission controller reads the same gauge the registry
        # exports, so the decision input and the metric cannot diverge
        self.admission = AdmissionController(
            lambda: self._g_depth_total.value,
            degrade_at=degrade_at if degrade_at is not None
            else max(1, queue_depth // 2),
            reject_at=reject_at if reject_at is not None else queue_depth,
            resume_frac=resume_frac,
        )

        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-frontend"
        )
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closing = False
        self._closed = False

    # ------------------------------------------------------------------
    # tenancy
    # ------------------------------------------------------------------
    def register_tenant(
        self,
        name: str,
        index,
        *,
        weight: float = 1.0,
        rate: float | None = None,
        burst: float | None = None,
        max_depth: int | None = None,
        slo: Objective | None = None,
    ) -> None:
        """Register a tenant owning ``index`` under ``name``.

        ``weight`` is the fair-dispatch share; ``rate``/``burst`` the
        token-bucket quota in requests/second (None = unlimited);
        ``max_depth`` a per-tenant queue bound (defaults to the
        front-end's ``queue_depth``); ``slo`` the tenant's
        latency/availability :class:`~repro.obs.slo.Objective` (a
        default objective is registered when request tracing is on).
        """
        if self._closed or self._closing:
            raise ServiceClosed("frontend is closed")
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already registered")
        self._service.register(name, index)
        t = _Tenant(
            name=name,
            index=index,
            weight=float(weight),
            bucket=TokenBucket(rate, burst, clock=self._clock),
            max_depth=int(max_depth) if max_depth is not None else self.queue_depth,
            degradable=hasattr(index, "knn_home"),
        )
        t.m_requests = self._c_requests.labels(name)
        t.m_completed = self._c_completed.labels(name)
        t.m_hits = self._c_hits.labels(name)
        t.m_degraded = self._c_degraded.labels(name)
        t.m_rejected = self._c_rejected.labels(name)
        t.m_quota = self._c_quota.labels(name)
        if self._h_latency is not None:
            t.m_latency = self._h_latency.labels(name)
            t.m_phase = {p: self._h_phase.labels(name, p) for p in PHASES}
        self._tenants[name] = t
        self._sched.add(name, weight)
        self._g_depth.labels(name).set_function(lambda t=t: len(t.queue))
        self._g_hit_rate.labels(name).set_function(
            lambda n=name: self._hit_rate(n)
        )
        if self.slo is not None:
            self.slo.set_objective(name, slo)

    def _fair_share(self, t: _Tenant) -> float:
        """``t``'s weight-proportional share of the global queue budget."""
        total_w = sum(s.weight for s in self._tenants.values())
        return max(1.0, self.admission.reject_at * t.weight / total_w)

    def _hit_rate(self, name: str) -> float:
        done = self._c_completed.labels(name).value
        return self._c_hits.labels(name).value / done if done else 0.0

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def tenant_index(self, name: str):
        t = self._tenants.get(name)
        if t is None:
            raise UnknownTenant(name)
        return t.index

    # ------------------------------------------------------------------
    # await-able query API
    # ------------------------------------------------------------------
    async def knn(self, tenant: str, q, k: int, *, exclude_self: bool = False,
                  timeout: float | None = None) -> Reply:
        """k nearest neighbors of one query point; value is ((k,), (k,))."""
        return await self._submit(
            tenant, "knn", q, {"k": int(k), "exclude_self": bool(exclude_self)},
            timeout,
        )

    async def box(self, tenant: str, lo, hi, *,
                  timeout: float | None = None) -> Reply:
        """Ids of the tenant's points inside the closed box [lo, hi]."""
        return await self._submit(tenant, "box", (lo, hi), {}, timeout)

    async def ball(self, tenant: str, center, radius: float, *,
                   timeout: float | None = None) -> Reply:
        """Ids of the tenant's points within ``radius`` of ``center``."""
        return await self._submit(
            tenant, "ball", center, {"radius": float(radius)}, timeout
        )

    async def allnn(self, tenant: str, *, timeout: float | None = None) -> Reply:
        """Each point's nearest neighbor: value is ((n,), (n,))."""
        return await self._submit(tenant, "allnn", None, {}, timeout)

    async def view(self, tenant: str, name: str, *,
                   timeout: float | None = None) -> Reply:
        """A materialized view's ``(answer, version)`` — never stale."""
        return await self._submit(tenant, "view", name, {}, timeout)

    async def insert(self, tenant: str, points, gids=None, *,
                     timeout: float | None = None) -> Reply:
        """Batch-insert into the tenant's dynamic index.

        The mutation queues through the same weighted-fair scheduler as
        queries and acts as a *barrier* inside its quantum: requests
        ahead of it see the old version, requests behind it the new.
        Value is ``(gids, version)``; registered views are repaired
        before the reply resolves (the ``view_repair`` phase).
        """
        return await self._submit(
            tenant, "insert", points, {"gids": gids}, timeout)

    async def erase(self, tenant: str, points, *,
                    timeout: float | None = None) -> Reply:
        """Batch-erase by coordinates; value is ``(deleted, version)``."""
        return await self._submit(tenant, "erase", points, {}, timeout)

    def subscribe_view(self, tenant: str, fn):
        """Register ``fn(event)`` on the tenant's view manager."""
        mgr = getattr(self.tenant_index(tenant), "views", None)
        if mgr is None:
            raise ValueError(f"tenant {tenant!r} has no materialized views")
        return mgr.subscribe(fn)

    def unsubscribe_view(self, tenant: str, fn) -> None:
        mgr = getattr(self.tenant_index(tenant), "views", None)
        if mgr is not None:
            mgr.unsubscribe(fn)

    async def submit(self, tenant: str, kind: str, payload=None, *,
                     timeout: float | None = None, **kw) -> Reply:
        """Generic entry point mirroring ``GeometryService.submit``,
        extended with the ``insert`` / ``erase`` mutation kinds."""
        if kind not in KINDS and kind not in MUTATION_KINDS:
            raise ValueError(
                f"unknown request kind {kind!r}; expected one of "
                f"{KINDS + MUTATION_KINDS}"
            )
        return await self._submit(tenant, kind, payload, kw, timeout)

    # ------------------------------------------------------------------
    # admission + enqueue
    # ------------------------------------------------------------------
    def _record_dropped(self, ctx, outcome: str, error=None) -> None:
        """Flight-record + SLO-score a request that never got an answer."""
        if ctx is None or self.flight is None:
            return
        latency = self._clock() - ctx.t_start
        phases = {"queue_wait": latency} if outcome in ("shed", "timeout") else {}
        self.flight.observe(RequestTrace(
            trace_id=ctx.trace_id, tenant=ctx.tenant, kind=ctx.kind,
            t_start=ctx.t_start, latency=latency,
            phases=phases, outcome=outcome,
            error=repr(error) if error is not None else None,
        ))
        if self.slo is not None:
            self.slo.record(ctx.tenant, latency=None)

    @staticmethod
    def _phase_split(latency, queue_wait, compute, merge, cache,
                     view_repair=0.0) -> dict:
        """Close the phase decomposition so it sums to ``latency``.

        The attributed phases (compute / view_repair / merge / cache)
        are scaled down if they overrun the post-queue window (clock
        skew between the serve-side walls and the end-to-end latency);
        ``dispatch`` is the non-negative residual, so the six phases
        always sum to the measured latency (within a float ulp of the
        subtraction).
        """
        avail = max(latency - queue_wait, 0.0)
        heavy = compute + merge + cache + view_repair
        if heavy > avail:
            s = avail / heavy if heavy > 0 else 0.0
            compute, merge = compute * s, merge * s
            cache, view_repair = cache * s, view_repair * s
        dispatch = max(
            latency - queue_wait - compute - merge - cache - view_repair, 0.0
        )
        return {"queue_wait": queue_wait, "dispatch": dispatch,
                "compute": compute, "view_repair": view_repair,
                "merge": merge, "cache": cache}

    def _observe_ok(self, t, r, t0, *, m=None, hit=False, approximate=False,
                    compute=None, view_repair=0.0):
        """Phase-decompose and record one *answered* request.

        Returns ``(trace_id, phases)`` for the Reply, or ``(None,
        None)`` with request tracing off.  ``compute`` overrides the
        attributed compute seconds (the degraded path passes its own
        group wall share); otherwise it is the request's exact work
        share of the batch (``m.work / m.batch_work``) applied to the
        batch's execution wall.
        """
        if r.ctx is None or self.flight is None:
            return None, None
        ctx = r.ctx
        latency = self._clock() - ctx.t_start
        qw = min(max(t0 - r.enqueued_at, 0.0), latency)
        cache = merge = 0.0
        if compute is None:
            if hit or m is None:
                compute = 0.0
                cache = max(latency - qw, 0.0) if hit else 0.0
            else:
                frac = (m.work / m.batch_work if m.batch_work > 0
                        else (1.0 / m.batch_size if m.batch_size else 0.0))
                compute = frac * m.exec_wall
                merge = m.merge_wall
        phases = self._phase_split(latency, qw, compute, merge, cache,
                                   view_repair)
        trt = RequestTrace(
            trace_id=ctx.trace_id, tenant=ctx.tenant, kind=ctx.kind,
            t_start=ctx.t_start, latency=latency, phases=phases,
            outcome="ok", cache_hit=hit, approximate=approximate,
            batch_size=(m.batch_size if m else 0),
            work=(m.work if m else 0.0), depth=(m.depth if m else 0.0),
            batch_sid=(m.batch_sid if m else None),
        )
        reason = self.flight.observe(
            trt, spans=(m.bundle if m is not None else None)
        )
        # exemplars only for retained traces, so every exemplar in the
        # exposition resolves to a trace the flight recorder can replay
        ex = {"trace_id": ctx.trace_id} if reason else None
        t.m_latency.observe(latency, exemplar=ex)
        m_phase = t.m_phase
        for p in PHASES:
            m_phase[p].observe(phases[p], exemplar=ex)
        if self.slo is not None:
            self.slo.record(t.name, latency=latency)
        return ctx.trace_id, phases

    async def _submit(self, tenant, kind, payload, kw, timeout) -> Reply:
        if self._closed or self._closing:
            raise ServiceClosed("frontend is closed")
        t = self._tenants.get(tenant)
        if t is None:
            raise UnknownTenant(tenant)
        t.m_requests.inc()
        ctx = (make_context(tenant, kind, clock=self._clock)
               if self._rtrace else None)

        # per-tenant quota: all-or-nothing token take, exact retry-after
        wait = t.bucket.try_acquire()
        if wait > 0.0:
            t.m_quota.inc()
            t.m_rejected.inc()
            self._record_dropped(ctx, "shed")
            raise QuotaExceeded(tenant, wait)

        # depth-driven admission state machine.  In OVERLOADED only the
        # tenants at/above their weighted fair share of the queue budget
        # are shed — a light tenant with a near-empty queue keeps being
        # served (degraded when possible) no matter how hard a heavy
        # tenant floods the shared front-end.
        decision = self.admission.decide()
        self._g_state.set(_STATE_CODE[decision.state])
        if not decision.admit and len(t.queue) >= self._fair_share(t):
            t.m_rejected.inc()
            self._record_dropped(ctx, "shed")
            raise Overloaded(
                decision.depth, self.admission.reject_at, decision.retry_after
            )
        if len(t.queue) >= t.max_depth:
            t.m_rejected.inc()
            self._record_dropped(ctx, "shed")
            raise Overloaded(
                len(t.queue), t.max_depth, decision.retry_after
                or self.admission._retry_after(len(t.queue))
            )
        degraded = decision.state != NORMAL and kind == "knn" and t.degradable

        loop = asyncio.get_running_loop()
        req = _Request(kind, payload, kw, loop.create_future(),
                       self._clock(), degraded, ctx)
        t.queue.append(req)
        self._sched.arrive(tenant)
        self._ensure_dispatcher(loop)
        self._wake.set()

        if timeout is None:
            return await req.future
        try:
            return await asyncio.wait_for(req.future, timeout)
        except asyncio.TimeoutError:
            self._record_dropped(ctx, "timeout")
            raise RequestTimeout(timeout) from None

    # ------------------------------------------------------------------
    # weighted-fair dispatcher
    # ------------------------------------------------------------------
    def _ensure_dispatcher(self, loop) -> None:
        if self._wake is None:
            self._wake = asyncio.Event()
        if self._task is None or self._task.done():
            self._task = loop.create_task(
                self._dispatch_loop(), name="repro-frontend-dispatch"
            )

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if self._sched.total_backlog() == 0:
                if self._closing:
                    return
                self._wake.clear()
                if self._sched.total_backlog() == 0 and not self._closing:
                    await self._wake.wait()
                continue

            name = self._sched.pick()
            t = self._tenants[name]
            batch: list[_Request] = []
            taken = 0
            while t.queue and len(batch) < self.max_batch:
                req = t.queue.popleft()
                taken += 1
                if not req.future.cancelled():
                    batch.append(req)
            self._sched.dispatched(name, taken)
            if not batch:
                continue

            t0 = self._clock()
            try:
                outcomes = await loop.run_in_executor(
                    self._pool, self._execute_batch, t, batch, t0
                )
            except Exception as exc:  # executor itself failed (shutdown race)
                outcomes = [(False, exc)] * len(batch)
            self.admission.note_drained(len(batch), self._clock() - t0)
            for req, (ok, val) in zip(batch, outcomes):
                fut = req.future
                if fut.cancelled():
                    continue
                if ok:
                    fut.set_result(val)
                else:
                    fut.set_exception(val)

    # -- worker-thread execution ---------------------------------------
    def _execute_batch(self, t: _Tenant, batch: list[_Request], t0: float):
        """Execute one tenant quantum off the event loop.

        Mutations act as barriers: the quantum splits into query
        segments at each insert/erase, so a request's answer always
        reflects exactly the mutations queued ahead of it.  Within a
        segment, exact requests ride the coalescing service (batching +
        cache) and degraded kNN requests go straight to the index's
        home-shard-only path.
        """
        out: dict[int, tuple[bool, object]] = {}
        segment: list[_Request] = []
        for r in batch:
            if r.kind in MUTATION_KINDS:
                if segment:
                    self._run_segment(t, segment, t0, out)
                    segment = []
                self._run_mutation(t, r, t0, out)
            else:
                segment.append(r)
        if segment:
            self._run_segment(t, segment, t0, out)
        return [out[id(r)] for r in batch]

    def _run_mutation(self, t: _Tenant, r: _Request, t0: float,
                      out: dict) -> None:
        """Apply one batch mutation, repairing views before replying."""
        mgr = getattr(t.index, "views", None)
        a0 = self._clock()
        try:
            pts = np.ascontiguousarray(r.payload, dtype=np.float64)
            if r.kind == "insert":
                target = mgr if mgr is not None else t.index
                value = target.insert(pts, r.kw.get("gids"))
            else:
                target = mgr if mgr is not None else t.index
                value = target.erase(pts)
        except Exception as exc:
            out[id(r)] = (False, exc)
            self._record_dropped(r.ctx, "error", error=exc)
            return
        wall = self._clock() - a0
        repair = mgr.last_stats["repair_s"] if mgr is not None else 0.0
        t.m_completed.inc()
        trace_id, phases = self._observe_ok(
            t, r, t0, compute=max(wall - repair, 0.0), view_repair=repair
        )
        out[id(r)] = (True, Reply(
            value=(value, int(getattr(t.index, "version", 0))),
            approximate=False, tenant=t.name, kind=r.kind,
            queue_wait=t0 - r.enqueued_at,
            trace_id=trace_id, phases=phases,
        ))

    def _run_segment(self, t: _Tenant, batch: list[_Request], t0: float,
                     out: dict) -> None:
        exact = [r for r in batch if not r.degraded]
        degraded = [r for r in batch if r.degraded]

        tickets = []
        for r in exact:
            try:
                tickets.append(
                    (r, self._service.submit(t.name, r.kind, r.payload,
                                             timeout=None, ctx=r.ctx, **r.kw))
                )
            except Exception as exc:
                out[id(r)] = (False, exc)
                self._record_dropped(r.ctx, "error", error=exc)
        if tickets:
            self._service.flush(t.name)
        for r, tk in tickets:
            try:
                value = tk.result(0)
            except Exception as exc:
                out[id(r)] = (False, exc)
                self._record_dropped(r.ctx, "error", error=exc)
                continue
            m = tk.metrics
            hit = bool(m.cache_hit) if m else False
            if hit:
                t.m_hits.inc()
            t.m_completed.inc()
            trace_id, phases = self._observe_ok(t, r, t0, m=m, hit=hit)
            out[id(r)] = (True, Reply(
                value=value, approximate=False, tenant=t.name,
                kind=r.kind, queue_wait=t0 - r.enqueued_at, cache_hit=hit,
                trace_id=trace_id, phases=phases,
            ))

        if degraded:
            groups: dict[tuple, list[_Request]] = {}
            for r in degraded:
                groups.setdefault(
                    (r.kw["k"], r.kw.get("exclude_self", False)), []
                ).append(r)
            for (k, excl), reqs in groups.items():
                t_g0 = self._clock()
                try:
                    qs = np.ascontiguousarray(
                        [np.asarray(r.payload, dtype=np.float64) for r in reqs]
                    )
                    d2, gid = t.index.knn_home(qs, k, exclude_self=excl)
                except Exception as exc:
                    for r in reqs:
                        out[id(r)] = (False, exc)
                        self._record_dropped(r.ctx, "error", error=exc)
                    continue
                group_share = (self._clock() - t_g0) / len(reqs)
                for i, r in enumerate(reqs):
                    t.m_degraded.inc()
                    t.m_completed.inc()
                    trace_id, phases = self._observe_ok(
                        t, r, t0, approximate=True, compute=group_share
                    )
                    out[id(r)] = (True, Reply(
                        value=(d2[i], gid[i]), approximate=True,
                        tenant=t.name, kind="knn",
                        queue_wait=t0 - r.enqueued_at,
                        trace_id=trace_id, phases=phases,
                    ))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def close(self, *, drain: bool = True) -> None:
        """Close the front-end; idempotent and drain-safe.

        With ``drain=True`` (default) every queued request executes
        before the dispatcher exits; with ``drain=False`` queued
        requests are rejected with a typed :class:`ServiceClosed`.
        Either way in-flight work completes, a second close is a no-op,
        and submissions after the first close raise ``ServiceClosed``.
        """
        if self._closed:
            return
        self._closing = True
        if not drain:
            for t in self._tenants.values():
                while t.queue:
                    req = t.queue.popleft()
                    if not req.future.done():
                        req.future.set_exception(
                            ServiceClosed("frontend is closed")
                        )
                self._sched.dispatched(t.name, self._sched.backlog(t.name))
        if self._task is not None:
            if self._wake is not None:
                self._wake.set()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
        if self._closed:  # a concurrent close finished the teardown
            return
        self._closed = True
        # stragglers (enqueued between drain and task exit) get typed errors
        for t in self._tenants.values():
            while t.queue:
                req = t.queue.popleft()
                if not req.future.done():
                    req.future.set_exception(ServiceClosed("frontend is closed"))
        if self._own_service:
            self._service.close()
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "Frontend":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def pending(self, tenant: str | None = None) -> int:
        if tenant is None:
            return int(self._g_depth_total.value)
        t = self._tenants.get(tenant)
        if t is None:
            raise UnknownTenant(tenant)
        return len(t.queue)

    def snapshot(self) -> dict:
        """Front-end-wide stats: per-tenant counters + admission state."""
        out = {
            "tenants": self.tenants(),
            "admission_state": self.admission.state,
            "queue_depth_total": self.pending(),
            "drain_rate": self.admission.drain_rate,
            "per_tenant": {},
        }
        if self.flight is not None:
            out["flight"] = self.flight.snapshot()
        if self.slo is not None:
            out["slo"] = self.slo.snapshot()
        for name in self._tenants:
            out["per_tenant"][name] = {
                "queue_depth": self.pending(name),
                "requests": int(self._c_requests.labels(name).value),
                "completed": int(self._c_completed.labels(name).value),
                "rejected": int(self._c_rejected.labels(name).value),
                "quota_rejections": int(self._c_quota.labels(name).value),
                "degraded": int(self._c_degraded.labels(name).value),
                "cache_hits": int(self._c_hits.labels(name).value),
                "hit_rate": self._hit_rate(name),
            }
        return out

    def metrics_text(self) -> str:
        """The shared registry in Prometheus text exposition format."""
        return self.registry.render_prometheus()
