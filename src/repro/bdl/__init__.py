"""``repro.bdl`` — the BDL-tree (batch-dynamic log-structured kd-tree).

Paper §5 and Appendix C, plus the B1 (rebuild) and B2 (in-place)
baselines from the evaluation in §6.3.
"""

from .baselines import InPlaceTree, RebuildTree
from .bdltree import BDLTree

__all__ = ["BDLTree", "InPlaceTree", "RebuildTree"]
