"""Baseline dynamic kd-trees from the paper's BDL evaluation (§6.3).

**B1** rebuilds the whole (static, perfectly balanced) kd-tree on every
batch insertion or deletion: slow updates, fast queries.

**B2** inserts points directly into the existing spatial structure
without recalculating splits (per-leaf grow buffers), and deletes by
tombstoning: very fast updates, but trees built through a sequence of
batch inserts become unbalanced and query performance suffers.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..kdtree.knnbuffer import KNNBuffer
from ..kdtree.tree import KDTree, OBJECT_MEDIAN, SPATIAL_MEDIAN
from ..parlay.scheduler import get_scheduler
from ..parlay.primitives import query_blocks
from ..parlay.workdepth import charge

__all__ = ["RebuildTree", "InPlaceTree"]


class RebuildTree:
    """Baseline B1: full rebuild on every batch update."""

    def __init__(self, dim: int, split: str = OBJECT_MEDIAN, leaf_size: int = 16):
        self.dim = dim
        self.split = split
        self.leaf_size = leaf_size
        self.pts = np.empty((0, dim), dtype=np.float64)
        self.gids = np.empty(0, dtype=np.int64)
        self.next_gid = 0
        self.tree: KDTree | None = None

    def _rebuild(self) -> None:
        if len(self.pts):
            self.tree = KDTree(
                self.pts, split=self.split, leaf_size=self.leaf_size, gids=self.gids
            )
        else:
            self.tree = None

    def insert(self, points) -> np.ndarray:
        pts = as_array(points)
        m = len(pts)
        gids = np.arange(self.next_gid, self.next_gid + m, dtype=np.int64)
        self.next_gid += m
        self.pts = np.vstack([self.pts, pts])
        self.gids = np.concatenate([self.gids, gids])
        self._rebuild()
        return gids

    def erase(self, points) -> int:
        q = as_array(points)
        if len(q) == 0 or len(self.pts) == 0:
            return 0
        from .bdltree import _match_rows

        hit = _match_rows(self.pts, q)
        k = int(np.count_nonzero(hit))
        if k:
            self.pts = self.pts[~hit]
            self.gids = self.gids[~hit]
            self._rebuild()
        return k

    def size(self) -> int:
        return len(self.pts)

    def knn(self, queries, k: int, exclude_self: bool = False):
        if self.tree is None:
            qs = as_array(queries)
            return (
                np.full((len(qs), k), np.inf),
                np.full((len(qs), k), -1, dtype=np.int64),
            )
        return self.tree.knn(queries, k, exclude_self=exclude_self)


class _B2Node:
    """A node of the in-place (B2) tree.

    Leaves hold capacity-doubled numpy buffers — the "separate memory
    buffer at each leaf" the paper describes (and the reason B2's bulk
    construction is slower than B1's).
    """

    __slots__ = ("split_dim", "split_val", "left", "right", "lo", "hi",
                 "count", "buf", "bgids", "balive", "n")

    def __init__(self):
        self.split_dim = -1
        self.split_val = 0.0
        self.left: "_B2Node | None" = None
        self.right: "_B2Node | None" = None
        self.lo: np.ndarray | None = None
        self.hi: np.ndarray | None = None
        self.count = 0  # live points in subtree
        # leaf buffers (None on internal nodes)
        self.buf: np.ndarray | None = None
        self.bgids: np.ndarray | None = None
        self.balive: np.ndarray | None = None
        self.n = 0  # filled slots in the leaf buffers

    @property
    def is_leaf(self) -> bool:
        return self.split_dim < 0

    @property
    def alive(self) -> np.ndarray:
        """Alive flags of the leaf's filled slots (testing/introspection)."""
        return self.balive[: self.n] if self.balive is not None else np.empty(0, bool)

    def leaf_set(self, pts: np.ndarray, gids: np.ndarray) -> None:
        """Initialize leaf storage with the given points."""
        m = len(pts)
        cap = max(8, 2 * m)
        d = pts.shape[1]
        self.buf = np.empty((cap, d))
        self.buf[:m] = pts
        self.bgids = np.empty(cap, dtype=np.int64)
        self.bgids[:m] = gids
        self.balive = np.zeros(cap, dtype=bool)
        self.balive[:m] = True
        self.n = m

    def leaf_extend(self, pts: np.ndarray, gids: np.ndarray) -> None:
        """Append points, doubling capacity as needed."""
        m = len(pts)
        need = self.n + m
        if self.buf is None:
            self.leaf_set(pts, gids)
            return
        if need > len(self.buf):
            cap = max(2 * len(self.buf), need)
            nb = np.empty((cap, self.buf.shape[1]))
            nb[: self.n] = self.buf[: self.n]
            ng = np.empty(cap, dtype=np.int64)
            ng[: self.n] = self.bgids[: self.n]
            na = np.zeros(cap, dtype=bool)
            na[: self.n] = self.balive[: self.n]
            self.buf, self.bgids, self.balive = nb, ng, na
        self.buf[self.n : need] = pts
        self.bgids[self.n : need] = gids
        self.balive[self.n : need] = True
        self.n = need


class InPlaceTree:
    """Baseline B2: direct insertion into the existing structure.

    Initial construction builds a balanced tree (with per-leaf buffers);
    later insertions descend by the existing splits and append to leaf
    buffers, splitting a leaf locally when its buffer overflows — no
    rebalancing ever happens, so incremental construction yields skewed
    trees.  Deletion tombstones matching points.
    """

    def __init__(self, dim: int, split: str = OBJECT_MEDIAN, leaf_size: int = 16):
        self.dim = dim
        self.split = split
        self.leaf_size = leaf_size
        self.root: _B2Node | None = None
        self.next_gid = 0

    # -- construction -------------------------------------------------------
    def _build_node(self, pts: np.ndarray, gids: np.ndarray, depth: int) -> _B2Node:
        node = _B2Node()
        m = len(pts)
        charge(max(m, 1))
        node.lo = pts.min(axis=0)
        node.hi = pts.max(axis=0)
        node.count = m
        if m <= self.leaf_size:
            node.leaf_set(pts, gids)
            return node
        if self.split == SPATIAL_MEDIAN:
            d = int(np.argmax(node.hi - node.lo))
            sv = 0.5 * (float(node.lo[d]) + float(node.hi[d]))
            mask = pts[:, d] <= sv
            if not mask.any() or mask.all():
                d = depth % self.dim
                sv = float(np.median(pts[:, d]))
                mask = pts[:, d] <= sv
                if not mask.any() or mask.all():
                    node.leaf_set(pts, gids)
                    return node
        else:
            d = depth % self.dim
            half = m // 2
            order = np.argpartition(pts[:, d], half)
            sv = float(pts[order[half], d])
            mask = np.zeros(m, dtype=bool)
            mask[order[:half]] = True
        node.split_dim = d
        node.split_val = sv
        node.left = self._build_node(pts[mask], gids[mask], depth + 1)
        node.right = self._build_node(pts[~mask], gids[~mask], depth + 1)
        return node

    # -- updates --------------------------------------------------------------
    def insert(self, points) -> np.ndarray:
        pts = as_array(points)
        m = len(pts)
        gids = np.arange(self.next_gid, self.next_gid + m, dtype=np.int64)
        self.next_gid += m
        if m == 0:
            return gids
        if self.root is None:
            self.root = self._build_node(pts, gids, 0)
            return gids
        # batch descent: partition the batch by each node's existing
        # split (vectorized) and append the groups to the leaves — the
        # same structural result as point-at-a-time insertion, and
        # data-parallel across subtrees like the real B2
        self._insert_batch_rec(self.root, pts, gids)
        return gids

    def _insert_batch_rec(self, node: _B2Node, pts: np.ndarray, gids: np.ndarray) -> None:
        m = len(pts)
        if m == 0:
            return
        charge(max(m, 1))
        node.count += m
        node.lo = np.minimum(node.lo, pts.min(axis=0)) if node.lo is not None else pts.min(axis=0)
        node.hi = np.maximum(node.hi, pts.max(axis=0)) if node.hi is not None else pts.max(axis=0)
        if node.is_leaf:
            # per-leaf grow buffer; no split — see note in _insert_one
            node.leaf_extend(pts, gids)
            return
        mask = pts[:, node.split_dim] <= node.split_val
        from ..parlay.workdepth import fork_costs

        fork_costs(
            [
                lambda: self._insert_batch_rec(node.left, pts[mask], gids[mask]),
                lambda: self._insert_batch_rec(node.right, pts[~mask], gids[~mask]),
            ]
        )

    def _insert_one(self, p: np.ndarray, gid: int) -> None:
        node = self.root
        assert node is not None
        charge(1, 1)
        while not node.is_leaf:
            charge(1, 1)
            node.count += 1
            node.lo = np.minimum(node.lo, p)
            node.hi = np.maximum(node.hi, p)
            node = node.left if p[node.split_dim] <= node.split_val else node.right
        node.count += 1
        node.lo = np.minimum(node.lo, p) if node.lo is not None else p.copy()
        node.hi = np.maximum(node.hi, p) if node.hi is not None else p.copy()
        node.leaf_extend(p[None, :], np.array([gid], dtype=np.int64))
        # NOTE: no leaf split — B2 "inserts points directly into the
        # existing tree structure without recalculating the splits"
        # (paper §6.3).  Leaves grow unboundedly, which is precisely why
        # incrementally-built B2 trees answer k-NN slowly (Fig. 14).

    def split_leaf(self, node: _B2Node) -> None:
        """Optional local leaf split (not used by default — the paper's
        B2 never restructures; exposed for experimentation)."""
        return self._split_leaf(node)

    def _split_leaf(self, node: _B2Node) -> None:
        alive = node.balive[: node.n]
        pts = node.buf[: node.n][alive]
        gids = node.bgids[: node.n][alive]
        if len(pts) < 2:
            return
        d = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        sv = float(np.median(pts[:, d]))
        mask = pts[:, d] <= sv
        if not mask.any() or mask.all():
            return  # cannot split (duplicates); stay a big leaf
        charge(len(pts))
        node.split_dim = d
        node.split_val = sv
        left, right = _B2Node(), _B2Node()
        for child, cmask in ((left, mask), (right, ~mask)):
            sub_p = pts[cmask]
            child.leaf_set(sub_p, gids[cmask])
            child.lo = sub_p.min(axis=0)
            child.hi = sub_p.max(axis=0)
            child.count = len(sub_p)
        node.left, node.right = left, right
        node.count = left.count + right.count
        node.buf = node.bgids = node.balive = None
        node.n = 0

    def erase(self, points) -> int:
        """Tombstone matching points; no structural change."""
        q = as_array(points)
        if self.root is None or len(q) == 0:
            return 0
        return self._erase_rec(self.root, q)

    def _erase_rec(self, node: _B2Node, q: np.ndarray) -> int:
        charge(max(len(q), 1))
        if node.is_leaf:
            if node.n == 0:
                return 0
            from .bdltree import _match_rows

            pts = node.buf[: node.n]
            alive = node.balive[: node.n]
            hit = _match_rows(pts, q) & alive
            k = int(np.count_nonzero(hit))
            if k:
                alive[hit] = False
                node.count -= k
            return k
        d, sv = node.split_dim, node.split_val
        ql = q[q[:, d] <= sv]
        qr = q[q[:, d] >= sv]
        # the two subtrees tombstone independently (fork-join)
        from ..parlay.workdepth import fork_costs

        tasks = []
        if len(ql) and node.left is not None:
            tasks.append(lambda: self._erase_rec(node.left, ql))
        if len(qr) and node.right is not None:
            tasks.append(lambda: self._erase_rec(node.right, qr))
        k = sum(fork_costs(tasks)) if tasks else 0
        node.count -= k
        return k

    def size(self) -> int:
        return self.root.count if self.root is not None else 0

    # -- queries --------------------------------------------------------------
    def _knn_one(self, node: _B2Node, p: np.ndarray, buf: KNNBuffer) -> None:
        charge(1, 1)
        if node.count == 0:
            return
        if node.is_leaf:
            if node.n:
                alive = node.balive[: node.n]
                pts = node.buf[: node.n][alive]
                gids = node.bgids[: node.n][alive]
                if len(pts):
                    charge(len(pts) * self.dim)
                    diff = pts - p
                    d2 = np.einsum("ij,ij->i", diff, diff)
                    buf.insert_batch(d2, gids)
            return
        first, second = (
            (node.left, node.right)
            if p[node.split_dim] <= node.split_val
            else (node.right, node.left)
        )
        if first is not None:
            self._knn_one(first, p, buf)
        if second is None or second.count == 0:
            return
        if not buf.full():
            self._knn_one(second, p, buf)
            return
        gap = np.maximum(second.lo - p, 0.0) + np.maximum(p - second.hi, 0.0)
        if float(gap @ gap) < buf.bound:
            self._knn_one(second, p, buf)

    def knn(self, queries, k: int, exclude_self: bool = False):
        qs = as_array(queries)
        m = len(qs)
        kk = k + 1 if exclude_self else k
        dists = np.full((m, k), np.inf)
        ids = np.full((m, k), -1, dtype=np.int64)
        if self.root is None:
            return dists, ids
        sched = get_scheduler()
        blocks = query_blocks(m, grain=64)
        buffers = [KNNBuffer(kk) for _ in range(m)]

        def run_block(b):
            lo, hi = blocks[b]
            for i in range(lo, hi):
                self._knn_one(self.root, qs[i], buffers[i])

        sched.parallel_for(len(blocks), run_block)
        from ..kdtree.knn import extract_knn_results

        return extract_knn_results(buffers, k, exclude_self)

    def height(self) -> int:
        def h(n: _B2Node | None) -> int:
            if n is None:
                return 0
            if n.is_leaf:
                return 1
            return 1 + max(h(n.left), h(n.right))

        return h(self.root)
