"""The BDL-tree: a parallel batch-dynamic kd-tree (paper §5, App. C).

The BDL-tree applies the logarithmic method (Bentley–Saxe) to the static
vEB kd-tree: a small *buffer tree* of capacity ``X`` plus static trees
of capacities ``X·2^0, X·2^1, …``.  A bitmask ``F`` marks which static
trees are occupied.

**Batch insert** (Alg. 3): points are staged through the buffer; every
``X`` staged points convert into "units".  ``F_new = F + units`` — the
bitwise difference tells exactly which trees to destroy and which to
build; destroyed trees' points plus the new points are rebuilt into the
new trees, each construction running in parallel.

**Batch delete** (Alg. 4): erase the batch from every tree in parallel;
gather trees that dropped below half capacity; reinsert their points.

**k-NN** (App. C.4): one k-NN buffer per query, reused across the
log-structure's trees, so results merge across trees.
"""

from __future__ import annotations

import numpy as np

from ..core.bbox import TouchedRegion, _touched
from ..core.points import as_array
from ..kdtree.knnbuffer import KNNBuffer
from ..kdtree.tree import KDTree, OBJECT_MEDIAN
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge

__all__ = ["BDLTree"]


class BDLTree:
    """Batch-dynamic kd-tree built from a log-structured set of kd-trees.

    Parameters
    ----------
    dim:
        Dimensionality of the points.
    buffer_size:
        The buffer-tree capacity ``X`` (the paper's tuning constant).
    split:
        Split rule for the underlying static trees ('object'/'spatial').
    leaf_size:
        Leaf capacity of the static trees.
    build_engine:
        Construction engine for the static trees ('batched'/'recursive',
        see :mod:`repro.kdtree.build`); None uses the process default.
        Every rebuild a mutation triggers goes through it.
    """

    def __init__(
        self,
        dim: int,
        buffer_size: int = 1024,
        split: str = OBJECT_MEDIAN,
        leaf_size: int = 16,
        build_engine: str | None = None,
    ):
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.dim = dim
        self.X = buffer_size
        self.split = split
        self.leaf_size = leaf_size
        self.build_engine = build_engine

        # buffer tree contents (kept as arrays; X is small)
        self.buf_pts = np.empty((0, dim), dtype=np.float64)
        self.buf_gids = np.empty(0, dtype=np.int64)

        # static trees: index i has capacity X * 2^i; None when empty
        self.trees: list[KDTree | None] = []
        self.next_gid = 0
        # monotonic mutation counter: bumped once per batch insert/erase
        # that changes the live point set (version-keyed result caches —
        # repro.serve — rely on it to never serve stale answers)
        self.version = 0
        # key-range of the last effective mutation, so derived-structure
        # maintainers can scope invalidation instead of rebuilding
        self.last_touched: TouchedRegion | None = None

    @classmethod
    def _from_parts(
        cls,
        *,
        dim: int,
        buffer_size: int,
        split: str,
        leaf_size: int,
        next_gid: int,
        version: int,
        buf_pts: np.ndarray,
        buf_gids: np.ndarray,
        trees: list[KDTree | None],
        build_engine: str | None = None,
    ) -> "BDLTree":
        """Reassemble a BDL-tree around existing state (no copies, no build).

        Used by :mod:`repro.cluster.snapshot` to reconstruct a read-only
        queryable view inside worker processes from shared-memory-backed
        arrays.  The caller owns the lifetime of the arrays; the result
        must not be mutated.
        """
        self = cls.__new__(cls)
        self.dim = dim
        self.X = buffer_size
        self.split = split
        self.leaf_size = leaf_size
        self.build_engine = build_engine
        self.buf_pts = buf_pts
        self.buf_gids = buf_gids
        self.trees = trees
        self.next_gid = next_gid
        self.version = version
        self.last_touched = None
        return self

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def capacity(self, i: int) -> int:
        return self.X * (1 << i)

    @property
    def bitmask(self) -> int:
        """Bitmask F of occupied static trees (bit i = tree i in use)."""
        f = 0
        for i, t in enumerate(self.trees):
            if t is not None and t.size() > 0:
                f |= 1 << i
        return f

    def size(self) -> int:
        """Number of live points across the whole structure."""
        return len(self.buf_pts) + sum(
            t.size() for t in self.trees if t is not None
        )

    def __len__(self) -> int:
        return self.size()

    def gather_points(self) -> tuple[np.ndarray, np.ndarray]:
        """All live (coords, gids) across buffer and static trees."""
        chunks_p = [self.buf_pts]
        chunks_g = [self.buf_gids]
        for t in self.trees:
            if t is not None and t.size() > 0:
                ids = t.gather_alive()
                chunks_p.append(t.points[ids])
                chunks_g.append(t.gids[ids])
        return np.vstack(chunks_p), np.concatenate(chunks_g)

    # ------------------------------------------------------------------
    # batch insertion (paper Algorithm 3)
    # ------------------------------------------------------------------
    def insert(self, points, gids=None) -> np.ndarray:
        """Insert a batch of points; returns their assigned global ids.

        ``gids`` optionally fixes the global ids of the batch (one per
        point) instead of drawing fresh ones from the internal counter —
        used by sharded indexes whose id space spans many BDL-trees.
        """
        pts = as_array(points)
        if pts.shape[1] != self.dim:
            raise ValueError("dimension mismatch")
        m = len(pts)
        if gids is None:
            gids = np.arange(self.next_gid, self.next_gid + m, dtype=np.int64)
            self.next_gid += m
        else:
            gids = np.asarray(gids, dtype=np.int64)
            if gids.shape != (m,):
                raise ValueError("gids must have one id per inserted point")
            if m:
                self.next_gid = max(self.next_gid, int(gids.max()) + 1)
        if m == 0:
            return gids
        self._insert_with_ids(pts, gids)
        self.version += 1
        self.last_touched = _touched("insert", pts, m, self.version)
        return gids

    def _insert_with_ids(self, pts: np.ndarray, gids: np.ndarray) -> None:
        charge(len(pts))
        # stage through the buffer: keep (buffer + batch) mod X points
        # buffered, convert the rest into whole units of X
        all_pts = np.vstack([self.buf_pts, pts])
        all_gids = np.concatenate([self.buf_gids, gids])
        total = len(all_pts)
        keep = total % self.X
        move = total - keep

        self.buf_pts = all_pts[move:]
        self.buf_gids = all_gids[move:]
        if move == 0:
            return
        units = move // self.X

        f = self.bitmask
        f_new = f + units
        destroy = f & ~f_new
        build = f_new & ~f

        # gather source points: destroyed trees + the staged points
        pool_p = [all_pts[:move]]
        pool_g = [all_gids[:move]]
        for i in range(len(self.trees)):
            if destroy >> i & 1:
                t = self.trees[i]
                if t is not None:
                    ids = t.gather_alive()
                    pool_p.append(t.points[ids])
                    pool_g.append(t.gids[ids])
                self.trees[i] = None
        src_p = np.vstack(pool_p)
        src_g = np.concatenate(pool_g)

        # build the new trees in parallel, largest first; if earlier
        # deletions left the destroyed trees under-full, the largest new
        # tree absorbs the shortfall
        bits = [i for i in range(f_new.bit_length()) if build >> i & 1]
        while len(self.trees) < f_new.bit_length():
            self.trees.append(None)

        plans = []
        offset = 0
        for i in sorted(bits):
            c = min(self.capacity(i), len(src_p) - offset)
            plans.append((i, offset, offset + c))
            offset += c
        # any residue goes to the largest new tree
        if offset < len(src_p) and plans:
            i, lo, hi = plans[-1]
            plans[-1] = (i, lo, len(src_p))

        sched = get_scheduler()

        def build_one(plan):
            i, lo, hi = plan
            if hi > lo:
                self.trees[i] = KDTree(
                    src_p[lo:hi],
                    split=self.split,
                    leaf_size=self.leaf_size,
                    gids=src_g[lo:hi],
                    engine=self.build_engine,
                )

        if len(plans) > 1:
            sched.parallel_do([(lambda p=p: build_one(p)) for p in plans])
        elif plans:
            build_one(plans[0])

    # ------------------------------------------------------------------
    # batch deletion (paper Algorithm 4)
    # ------------------------------------------------------------------
    def erase(self, points) -> int:
        """Delete a batch of points by coordinates; returns #deleted."""
        q = as_array(points)
        if q.shape[1] != self.dim:
            raise ValueError("dimension mismatch")
        if len(q) == 0:
            return 0
        sched = get_scheduler()
        deleted = 0

        # 1. erase from the buffer
        if len(self.buf_pts):
            hit = _match_rows(self.buf_pts, q)
            k = int(np.count_nonzero(hit))
            if k:
                self.buf_pts = self.buf_pts[~hit]
                self.buf_gids = self.buf_gids[~hit]
                deleted += k

        # 2. erase from each nonempty static tree in parallel
        live_trees = [t for t in self.trees if t is not None and t.size() > 0]
        counts = sched.map_tasks(lambda t: t.erase(q), live_trees)
        deleted += sum(counts)

        # 3. gather under-half-capacity trees and reinsert their points
        re_p = []
        re_g = []
        for i, t in enumerate(self.trees):
            if t is None:
                continue
            if t.size() < self.capacity(i) / 2:
                ids = t.gather_alive()
                if len(ids):
                    re_p.append(t.points[ids])
                    re_g.append(t.gids[ids])
                self.trees[i] = None
        if re_p:
            self._insert_with_ids(np.vstack(re_p), np.concatenate(re_g))
        if deleted:
            self.version += 1
            self.last_touched = _touched("erase", q, deleted, self.version)
        return deleted

    # ------------------------------------------------------------------
    # data-parallel k-NN (paper App. C.4)
    # ------------------------------------------------------------------
    def knn(
        self,
        queries,
        k: int,
        exclude_self: bool = False,
        engine: str | None = None,
        bound: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k nearest neighbors of each query across all trees.

        Returns (squared distances, global ids), each (m, k) sorted by
        distance per row.  ``engine`` selects the per-tree search
        strategy (vectorized "batched" frontier vs per-query
        "recursive" walk); results and charges are identical.

        ``bound`` is an optional per-query *exclusive* squared-distance
        cutoff: candidates at ``d2 >= bound[i]`` are pruned and rows
        may come back underfull (inf/-1 padded).  A sharded index's
        fan-out phase uses it so shards outside the candidate ball
        prune near the root instead of running a full search.  It is a
        pruning hint only honored by the batched engine; the recursive
        path ignores it (returning a superset is equally correct for
        callers that merge).
        """
        from ..kdtree.batch import resolve_engine

        if resolve_engine(engine) == "batched":
            return self._knn_batched(queries, k, exclude_self, bound)
        qs = as_array(queries)
        m = len(qs)
        kk = k + 1 if exclude_self else k
        buffers = [KNNBuffer(kk) for _ in range(m)]

        # iterate over the non-empty trees sequentially; each k-NN call
        # is internally data-parallel and reuses the same buffers
        from ..kdtree.knn import knn_into

        for t in self.trees:
            if t is not None and t.size() > 0:
                knn_into(t, qs, buffers)

        # the buffer tree: brute-force scan (it holds < X points)
        if len(self.buf_pts):
            charge(m * len(self.buf_pts))
            for i in range(m):
                diff = self.buf_pts - qs[i]
                d2 = np.einsum("ij,ij->i", diff, diff)
                buffers[i].insert_batch(d2, self.buf_gids)

        from ..kdtree.knn import extract_knn_results

        return extract_knn_results(buffers, k, exclude_self)

    def _knn_batched(
        self, queries, k: int, exclude_self: bool, bound: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array-at-a-time k-NN: one batch buffer set shared across the
        log-structure's trees, then a vectorized buffer-tree scan."""
        from ..kdtree.batch import BatchKNNBuffers, batched_knn_into

        qs = as_array(queries)
        m = len(qs)
        kk = k + 1 if exclude_self else k
        buf = BatchKNNBuffers(m, kk)
        if bound is not None:
            # seed the pruning bound: the search only ever tightens it
            # (_compact takes the max of the k best, all < the seed)
            buf.bound[:] = np.asarray(bound, dtype=np.float64)

        for t in self.trees:
            if t is not None and t.size() > 0:
                batched_knn_into(t, qs, buf)

        nb = len(self.buf_pts)
        if nb:
            charge(m * nb)
            rows = np.arange(m, dtype=np.int64)
            lens = np.full(m, nb, dtype=np.int64)
            # chunk the (m, nb) cross-distance matrix to bound memory
            step = max(1, (1 << 22) // max(nb, 1))
            for lo in range(0, m, step):
                hi = min(lo + step, m)
                diff = self.buf_pts[None, :, :] - qs[lo:hi, None, :]
                d2 = np.einsum("ijk,ijk->ij", diff, diff).ravel()
                g = np.tile(self.buf_gids, hi - lo)
                buf.insert_grouped(rows[lo:hi], d2, g, lens[lo:hi])
            # the recursive path charges each query's insert serially
            buf.flush_serial()

        return buf.extract(k, exclude_self)

    # ------------------------------------------------------------------
    # range search across the log-structure
    # ------------------------------------------------------------------
    def range_query_box(self, lo, hi) -> np.ndarray:
        """Global ids of live points in the closed box [lo, hi]."""
        from ..kdtree.range_search import range_query_box

        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        parts = []
        for t in self.trees:
            if t is not None and t.size() > 0:
                local = range_query_box(t, lo, hi)
                if len(local):
                    parts.append(t.gids[local])
        if len(self.buf_pts):
            charge(len(self.buf_pts))
            mask = np.all((self.buf_pts >= lo) & (self.buf_pts <= hi), axis=1)
            if mask.any():
                parts.append(self.buf_gids[mask])
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def range_query_ball(self, center, radius: float) -> np.ndarray:
        """Global ids of live points within ``radius`` of ``center``."""
        from ..kdtree.range_search import range_query_ball

        c = np.asarray(center, dtype=np.float64)
        parts = []
        for t in self.trees:
            if t is not None and t.size() > 0:
                local = range_query_ball(t, c, radius)
                if len(local):
                    parts.append(t.gids[local])
        if len(self.buf_pts):
            charge(len(self.buf_pts))
            diff = self.buf_pts - c
            d2 = np.einsum("ij,ij->i", diff, diff)
            mask = d2 <= float(radius) ** 2
            if mask.any():
                parts.append(self.buf_gids[mask])
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # batched range search (array-at-a-time across the log-structure)
    # ------------------------------------------------------------------
    def range_query_box_batch(self, los, his) -> list[np.ndarray]:
        """Per-query global ids for a batch of box queries.

        Each query's hits concatenate in the same order as the
        single-query path (static trees in slot order, then the buffer
        tree), so row ``i`` is bitwise-identical to
        ``range_query_box(los[i], his[i])``.
        """
        from ..kdtree.batch import batched_range_query_batch

        los = np.asarray(los, dtype=np.float64)
        his = np.asarray(his, dtype=np.float64)
        m = len(los)
        parts: list[list[np.ndarray]] = [[] for _ in range(m)]
        for t in self.trees:
            if t is not None and t.size() > 0:
                for i, local in enumerate(batched_range_query_batch(t, los, his)):
                    if len(local):
                        parts[i].append(t.gids[local])
        if len(self.buf_pts):
            charge(m * len(self.buf_pts))
            inside = np.all(
                (self.buf_pts[None, :, :] >= los[:, None, :])
                & (self.buf_pts[None, :, :] <= his[:, None, :]),
                axis=2,
            )
            for i in np.flatnonzero(inside.any(axis=1)):
                parts[i].append(self.buf_gids[inside[i]])
        return [
            np.concatenate(p) if p else np.empty(0, dtype=np.int64) for p in parts
        ]

    def range_query_ball_batch(self, centers, radii) -> list[np.ndarray]:
        """Per-query global ids for a batch of ball queries."""
        from ..kdtree.batch import batched_range_query_ball_batch

        cs = np.asarray(centers, dtype=np.float64)
        m = len(cs)
        rr = np.broadcast_to(np.asarray(radii, dtype=np.float64), (m,))
        parts: list[list[np.ndarray]] = [[] for _ in range(m)]
        for t in self.trees:
            if t is not None and t.size() > 0:
                for i, local in enumerate(
                    batched_range_query_ball_batch(t, cs, rr)
                ):
                    if len(local):
                        parts[i].append(t.gids[local])
        if len(self.buf_pts):
            charge(m * len(self.buf_pts))
            diff = self.buf_pts[None, :, :] - cs[:, None, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            inside = d2 <= np.square(rr)[:, None]
            for i in np.flatnonzero(inside.any(axis=1)):
                parts[i].append(self.buf_gids[inside[i]])
        return [
            np.concatenate(p) if p else np.empty(0, dtype=np.int64) for p in parts
        ]


def _match_rows(pts: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Mask over pts rows exactly matching some row of q."""
    if len(q) * len(pts) <= 4096:
        return (pts[:, None, :] == q[None, :, :]).all(axis=2).any(axis=1)
    pv = np.ascontiguousarray(pts).view([("", pts.dtype)] * pts.shape[1]).ravel()
    qv = np.ascontiguousarray(q).view([("", q.dtype)] * q.shape[1]).ravel()
    return np.isin(pv, qv)
