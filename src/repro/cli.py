"""Command-line interface: ``python -m repro <command>``.

Commands mirror ParGeo's executable tools: generate datasets, run an
algorithm over a point file, and report timings.

Examples::

    python -m repro generate 2D-U-100K -o pts.npy
    python -m repro hull pts.npy --method divide_conquer
    python -m repro seb pts.npy --method sampling
    python -m repro knn pts.npy -k 8 -o neighbors.csv
    python -m repro emst pts.npy -o mst.csv
    python -m repro graph pts.npy --kind gabriel -o edges.csv
    python -m repro build-bench pts.npy --json-out build.json
    python -m repro serve-replay pts.npy --synthetic 2000 --compare
    python -m repro stream-bench pts.npy --mutation-frac 0.35 --views closest_pair,hull2d
    python -m repro profile --trace-out knn.trace.json knn pts.npy -k 8
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _use_backend(args):
    """Context manager honoring a subcommand's ``--backend`` flag."""
    from contextlib import nullcontext

    backend = getattr(args, "backend", None)
    if not backend:
        return nullcontext()
    from .parlay.scheduler import use_backend

    return use_backend(backend)


def _use_build_engine(args):
    """Context manager honoring a subcommand's ``--build-engine`` flag.

    Installs the requested engine as the process default for the
    duration, so every tree the command constructs — monolithic,
    sharded, or BDL rebuilds — goes through it.
    """
    from contextlib import contextmanager, nullcontext

    engine = getattr(args, "build_engine", None)
    if not engine:
        return nullcontext()
    from .kdtree import default_build_engine, set_default_build_engine

    @contextmanager
    def ctx():
        prev = default_build_engine()
        set_default_build_engine(engine)
        try:
            yield
        finally:
            set_default_build_engine(prev)

    return ctx()


def _load(path: str):
    """Load a point file, exiting 2 with a one-line message on bad input."""
    from .generators.io import load_points

    try:
        return load_points(path)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        raise SystemExit(2)
    except OSError as e:
        print(f"error: cannot read {path!r}: {e.strerror or e}", file=sys.stderr)
        raise SystemExit(2)


def cmd_generate(args) -> int:
    from .generators import dataset
    from .generators.io import save_points

    pts = dataset(args.name, seed=args.seed)
    save_points(args.output, pts)
    print(f"wrote {pts} to {args.output}")
    return 0


def cmd_hull(args) -> int:
    from .hull import convex_hull

    pts = _load(args.input)
    t0 = time.perf_counter()
    h = convex_hull(pts, method=args.method)
    dt = time.perf_counter() - t0
    print(f"hull: {len(h)} vertices in {dt:.3f}s ({args.method})")
    if args.output:
        np.savetxt(args.output, h, fmt="%d")
    return 0


def cmd_seb(args) -> int:
    from .seb import smallest_enclosing_ball

    pts = _load(args.input)
    t0 = time.perf_counter()
    b = smallest_enclosing_ball(pts, method=args.method)
    dt = time.perf_counter() - t0
    print(f"ball: center={b.center.tolist()} radius={b.radius:.6g} in {dt:.3f}s")
    return 0


def cmd_knn(args) -> int:
    from .kdtree import KDTree

    pts = _load(args.input)
    with _use_backend(args), _use_build_engine(args):
        t0 = time.perf_counter()
        if args.shards > 0:
            from .cluster import ShardedIndex

            index = ShardedIndex(pts.coords, args.shards)
            d, i = index.knn(
                pts.coords, args.k, exclude_self=True, engine=args.engine
            )
            dt = time.perf_counter() - t0
            stats = index.pruning_stats()
            print(
                f"k-NN (k={args.k}) over {len(pts)} points in {dt:.3f}s "
                f"({args.engine} engine, {index.n_shards} shards, "
                f"{stats['mean_touched_frac']:.1%} shards touched/query)"
            )
        else:
            tree = KDTree(pts, split=args.split)
            d, i = tree.knn(
                pts.coords, args.k, exclude_self=True, engine=args.engine
            )
            dt = time.perf_counter() - t0
            print(f"k-NN (k={args.k}) over {len(pts)} points in {dt:.3f}s "
                  f"({args.engine} engine)")
    if args.output:
        np.savetxt(args.output, i, fmt="%d", delimiter=",")
    return 0


def cmd_emst(args) -> int:
    from .emst import emst

    pts = _load(args.input)
    t0 = time.perf_counter()
    e, w = emst(pts)
    dt = time.perf_counter() - t0
    print(f"emst: {len(e)} edges, total weight {w.sum():.6g} in {dt:.3f}s")
    if args.output:
        np.savetxt(args.output, np.column_stack([e, w]), delimiter=",")
    return 0


def cmd_graph(args) -> int:
    from .graphs import (
        beta_skeleton,
        delaunay_graph,
        emst_graph,
        gabriel_graph,
        knn_graph,
        wspd_spanner,
    )

    pts = _load(args.input)
    builders = {
        "knn": lambda p: knn_graph(p, args.k),
        "delaunay": delaunay_graph,
        "gabriel": gabriel_graph,
        "beta": lambda p: beta_skeleton(p, args.beta),
        "emst": emst_graph,
        "spanner": lambda p: wspd_spanner(p, s=args.separation),
    }
    t0 = time.perf_counter()
    g = builders[args.kind](pts.coords)
    dt = time.perf_counter() - t0
    print(f"{args.kind} graph: {g.m} edges over {g.n} points in {dt:.3f}s")
    if args.output:
        np.savetxt(args.output, np.column_stack([g.edges, g.weights]), delimiter=",")
    return 0


def cmd_cluster(args) -> int:
    from .clustering import dbscan

    pts = _load(args.input)
    t0 = time.perf_counter()
    labels = dbscan(pts, eps=args.eps, min_pts=args.min_pts)
    dt = time.perf_counter() - t0
    k = len(set(labels.tolist()) - {-1})
    noise = float((labels == -1).mean())
    print(f"dbscan: {k} clusters, {noise:.1%} noise in {dt:.3f}s")
    if args.output:
        np.savetxt(args.output, labels, fmt="%d")
    return 0


def _write_metrics(path: str, service) -> None:
    """Write the service's post-run metrics snapshot as JSON."""
    import json

    snap = service.snapshot()
    snap["registry"] = service.registry.snapshot()
    with open(path, "w") as f:
        json.dump(snap, f, indent=2, sort_keys=True, default=str)
        f.write("\n")


def cmd_serve_replay(args) -> int:
    from .bdl import BDLTree
    from .kdtree import KDTree
    from .serve import (
        GeometryService,
        TraceMismatch,
        load_trace,
        replay,
        run_unbatched,
        save_trace,
        synthetic_trace,
        validate_trace,
    )

    pts = _load(args.input)
    coords = pts.coords
    dynamic = args.dynamic or args.shards > 0
    view_names = _parse_views(args, coords)
    if (view_names or args.mutation_frac > 0) and not dynamic:
        print("serve-replay: --views / --mutation-frac need a dynamic index "
              "(--dynamic or --shards)", file=sys.stderr)
        return 2

    if args.trace:
        trace = load_trace(args.trace)
        try:
            validate_trace(trace, len(coords), coords.shape[1],
                           dynamic=dynamic)
        except TraceMismatch as exc:
            print(f"serve-replay: trace does not fit the loaded dataset: {exc}",
                  file=sys.stderr)
            return 2
    else:
        kinds = tuple(args.mix.split(","))
        if view_names and "view" not in kinds:
            kinds = kinds + ("view",)
        trace = synthetic_trace(
            coords,
            args.synthetic,
            kinds=kinds,
            k=args.k,
            repeat_frac=args.repeat_frac,
            mutation_frac=args.mutation_frac,
            mutation_batch=args.mutation_batch,
            view_names=view_names,
            seed=args.seed,
        )
    if args.save_trace:
        save_trace(args.save_trace, trace)
        print(f"wrote {len(trace)} requests to {args.save_trace}")

    def build_index():
        if args.shards > 0:
            from .cluster import ShardedIndex

            index = ShardedIndex(coords, args.shards)
        elif args.dynamic:
            index = BDLTree(dim=coords.shape[1])
            index.insert(coords)
        else:
            return KDTree(coords)
        if view_names:
            _attach_views(index, view_names, args)
        return index

    with _use_backend(args), _use_build_engine(args):
        service = GeometryService(
            max_batch=args.max_batch,
            max_wait=args.max_wait,
            max_pending=args.max_pending,
            cache_capacity=args.cache,
        )
        service.register("data", build_index())
        report = replay(service, "data", trace)
        if args.shards > 0:
            kind = f"ShardedIndex[{args.shards}]"
        elif args.dynamic:
            kind = "BDLTree"
        else:
            kind = "KDTree"
        print(f"serve-replay: {len(coords)} points ({kind}), "
              f"{len(trace)} requests")
        print(report.summary())
        if args.metrics_out:
            _write_metrics(args.metrics_out, service)
            print(f"wrote metrics snapshot to {args.metrics_out}")
        if report.errors:
            print(
                f"serve-replay: {report.errors} request(s) failed; "
                f"first error: {report.first_error}",
                file=sys.stderr,
            )
            return 1

        if args.compare:
            index = build_index()  # fresh index: same state as the service
            t0 = time.perf_counter()
            run_unbatched(index, trace,
                          views=_view_computes(view_names, args) or None)
            dt = time.perf_counter() - t0
            ratio = dt / report.seconds if report.seconds > 0 else float("inf")
            print(
                f"unbatched loop (recursive engine): {dt:.3f}s "
                f"({len(trace) / dt:,.0f} req/s) -> service is {ratio:.2f}x faster"
            )
    return 0


_VIEW_CHOICES = ("closest_pair", "dbscan", "hull2d")


def _parse_views(args, coords) -> tuple[str, ...]:
    """Parse a ``--views`` flag into validated view names (may exit 2)."""
    raw = getattr(args, "views", None)
    if not raw:
        return ()
    names = tuple(s.strip() for s in raw.split(",") if s.strip())
    for n in names:
        if n not in _VIEW_CHOICES:
            print(f"error: unknown view {n!r} (choose from "
                  f"{', '.join(_VIEW_CHOICES)})", file=sys.stderr)
            raise SystemExit(2)
    if "hull2d" in names and coords.shape[1] != 2:
        print("error: the hull2d view needs 2-dimensional points",
              file=sys.stderr)
        raise SystemExit(2)
    return names


def _attach_views(index, names, args):
    """Attach a ViewManager with the named views to a dynamic index."""
    from .views import ViewManager

    mgr = ViewManager(index)
    for n in names:
        if n == "closest_pair":
            mgr.closest_pair()
        elif n == "dbscan":
            mgr.dbscan(eps=args.eps, min_pts=args.min_pts)
        else:
            mgr.hull2d()
    return mgr


def _view_computes(names, args) -> dict:
    """name -> from-scratch ``compute(pts, gids)``: the recompute baseline."""
    from .views import ClosestPairView, DBSCANView, HullView

    out = {}
    for n in names:
        if n == "closest_pair":
            out[n] = ClosestPairView.compute
        elif n == "dbscan":
            out[n] = (lambda pts, gids, _e=args.eps, _m=args.min_pts:
                      DBSCANView.compute(pts, gids, eps=_e, min_pts=_m))
        else:
            out[n] = HullView.compute
    return out


def cmd_stream_bench(args) -> int:
    """Incremental view maintenance vs recompute-from-scratch, same trace."""
    from .bdl import BDLTree
    from .serve import run_unbatched, save_trace, synthetic_trace

    pts = _load(args.input)
    coords = pts.coords
    args.views = args.views or "closest_pair" + (
        ",hull2d" if coords.shape[1] == 2 else "")
    view_names = _parse_views(args, coords)
    if not 0.0 < args.mutation_frac <= 1.0:
        print("error: stream-bench needs --mutation-frac in (0, 1]",
              file=sys.stderr)
        return 2

    def build_index():
        if args.shards > 0:
            from .cluster import ShardedIndex

            return ShardedIndex(coords, args.shards)
        bdl = BDLTree(dim=coords.shape[1])
        bdl.insert(coords)
        return bdl

    trace = synthetic_trace(
        coords,
        args.requests,
        kinds=("view",),
        mutation_frac=args.mutation_frac,
        mutation_batch=args.mutation_batch,
        view_names=view_names,
        seed=args.seed,
    )
    if args.save_trace:
        save_trace(args.save_trace, trace)
    n_mut = sum(1 for op in trace if op["op"] in ("insert", "erase"))
    n_view = len(trace) - n_mut

    with _use_backend(args):
        # incremental side: mutations repair the registered views in place
        mgr = _attach_views(build_index(), view_names, args)
        t0 = time.perf_counter()
        inc = []
        for op in trace:
            if op["op"] == "insert":
                mgr.insert(np.asarray(op["pts"], dtype=np.float64))
                inc.append(None)
            elif op["op"] == "erase":
                mgr.erase(np.asarray(op["pts"], dtype=np.float64))
                inc.append(None)
            else:
                inc.append(mgr.get(op["name"]))
        t_inc = time.perf_counter() - t0

        # baseline side: same trace, every view read recomputed from scratch
        base_index = build_index()
        t0 = time.perf_counter()
        base = run_unbatched(base_index, trace,
                             views=_view_computes(view_names, args))
        t_base = time.perf_counter() - t0

    mismatches = sum(1 for a, b in zip(inc, base) if a != b)
    speedup = t_base / t_inc if t_inc > 0 else float("inf")
    kind = (f"ShardedIndex[{args.shards}]" if args.shards > 0 else "BDLTree")
    print(f"stream-bench: {len(coords)} points ({kind}), {len(trace)} ops "
          f"({n_mut} mutations / {n_view} view reads, "
          f"batch {args.mutation_batch})")
    print(f"views: {', '.join(view_names)}")
    print(f"incremental maintenance: {t_inc:.3f}s | recompute-from-scratch: "
          f"{t_base:.3f}s -> {speedup:.2f}x faster")
    for name, st in mgr.stats().items():
        print(f"  {name}: {st['repairs']} repairs, "
              f"{st['recomputes']} recompute fallbacks")
    if mismatches:
        print(f"error: {mismatches} view answer(s) diverged from the "
              f"recompute baseline", file=sys.stderr)
        return 1
    print(f"all {n_view} view answers bitwise-equal to the baseline")
    if args.json_out:
        import json

        rec = {
            "n_points": int(len(coords)),
            "dim": int(coords.shape[1]),
            "index": kind,
            "views": list(view_names),
            "n_ops": len(trace),
            "n_mutations": n_mut,
            "n_view_reads": n_view,
            "mutation_frac": args.mutation_frac,
            "mutation_batch": args.mutation_batch,
            "incremental_s": t_inc,
            "recompute_s": t_base,
            "speedup": speedup,
            "answers_equal": mismatches == 0,
            "view_stats": mgr.stats(),
        }
        with open(args.json_out, "w") as f:
            json.dump(rec, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json_out}")
    return 0


def cmd_cluster_bench(args) -> int:
    from .cluster import compare_cluster
    from .cluster.bench import compare_procs, summary, summary_procs

    pts = _load(args.input)
    if args.procs:
        ladder = tuple(int(p) for p in args.procs.split(","))
        with _use_build_engine(args):
            rec = compare_procs(
                pts.coords,
                n_shards=args.shards,
                k=args.k,
                n_queries=args.queries,
                procs=ladder,
                seed=args.seed,
            )
        print(summary_procs(rec))
    else:
        with _use_backend(args), _use_build_engine(args):
            rec = compare_cluster(
                pts.coords,
                n_shards=args.shards,
                k=args.k,
                n_queries=args.queries,
                workers=args.workers,
                seed=args.seed,
            )
        print(summary(rec))
    if not (rec["knn_distances_equal"] and rec["ball_results_equal"]):
        print("error: sharded results diverged from the monolithic tree",
              file=sys.stderr)
        return 1
    if args.json_out:
        import json

        with open(args.json_out, "w") as f:
            json.dump(rec, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json_out}")
    return 0


def _build_load(args, coords):
    """The two-tenant front-end + open-loop loads ``load-bench``/``dash`` share."""
    from .cluster import ShardedIndex
    from .frontend import Frontend
    from .frontend.load import TenantLoad
    from .kdtree import KDTree
    from .serve import zipf_trace

    heavy_n = int(args.seconds * args.heavy_rate)
    light_n = int(args.seconds * args.light_rate)
    if heavy_n < 1 or light_n < 1:
        print("error: seconds * rate must give at least one request per tenant",
              file=sys.stderr)
        raise SystemExit(2)

    heavy_idx = ShardedIndex(coords, args.shards) if args.shards > 0 \
        else KDTree(coords)
    fe = Frontend(
        max_batch=args.max_batch,
        queue_depth=args.queue_depth,
        degrade_at=args.degrade_at,
    )
    fe.register_tenant("heavy", heavy_idx, weight=1.0)
    fe.register_tenant("light", KDTree(coords), weight=args.light_weight)
    loads = [
        TenantLoad(
            "heavy",
            zipf_trace(coords, heavy_n, kinds=("knn",), k=args.k,
                       s=args.zipf_s, seed=args.seed),
            rate=args.heavy_rate, pattern=args.pattern,
            seed=args.seed + 1,
        ),
        TenantLoad(
            "light",
            zipf_trace(coords, light_n, kinds=("knn", "ball"), k=args.k,
                       s=args.zipf_s, seed=args.seed + 2),
            rate=args.light_rate, pattern="poisson", seed=args.seed + 3,
        ),
    ]
    return fe, loads, heavy_idx


def cmd_load_bench(args) -> int:
    import asyncio

    from .frontend.load import run_open_loop, verify_degraded

    pts = _load(args.input)
    coords = pts.coords
    fe, loads, heavy_idx = _build_load(args, coords)

    async def run():
        try:
            return await run_open_loop(fe, loads)
        finally:
            await fe.close()

    rec = None
    if args.trace_out:
        # span bundles only exist with a recorder installed; the flight
        # recorder attaches each retained request's batch subtree
        from .obs.span import SpanRecorder, disable_tracing, enable_tracing

        rec = SpanRecorder()
        enable_tracing(rec)
    try:
        report = asyncio.run(run())
    finally:
        if rec is not None:
            disable_tracing()
    print(f"load-bench: {len(coords)} points, "
          f"{'ShardedIndex[%d]' % args.shards if args.shards > 0 else 'KDTree'} "
          f"heavy tenant, {args.pattern} arrivals at "
          f"{args.heavy_rate:,.0f}/{args.light_rate:,.0f} req/s "
          f"for {args.seconds:.0f}s")
    print(report.summary())
    n_ver = verify_degraded(heavy_idx, report.degraded_samples)
    if n_ver:
        print(f"verified {n_ver} degraded answers against exact recompute")
    if args.json_out:
        report.save(args.json_out)
        print(f"wrote {args.json_out}")
    if args.trace_out:
        from .obs.rtrace import validate_request_trace, write_flight_trace

        retained = fe.flight.retained() if fe.flight is not None else []
        problems = [
            (t.trace_id, p)
            for t in retained for p in validate_request_trace(t)
        ]
        obj = write_flight_trace(args.trace_out, retained,
                                 name="repro load-bench")
        print(f"wrote {len(retained)} retained request traces "
              f"({obj['otherData']['spans']} spans) to {args.trace_out} "
              f"-- load in https://ui.perfetto.dev")
        if problems:
            for tid, p in problems[:10]:
                print(f"invalid trace {tid}: {p}", file=sys.stderr)
            print(f"error: {len(problems)} validation problem(s) in "
                  f"retained traces", file=sys.stderr)
            return 1
    return 0


def cmd_dash(args) -> int:
    import asyncio

    from .frontend.load import run_open_loop
    from .obs.dash import render

    pts = _load(args.input)
    coords = pts.coords
    fe, loads, heavy_idx = _build_load(args, coords)
    clear = "" if args.no_clear else "\x1b[2J\x1b[H"

    mgr = None
    if args.views:
        if args.shards <= 0:
            print("error: dash --views needs a dynamic heavy tenant "
                  "(--shards > 0)", file=sys.stderr)
            return 2
        names = ("closest_pair",) + (
            ("hull2d",) if coords.shape[1] == 2 else ())
        mgr = _attach_views(heavy_idx, names, args)
    rng = np.random.default_rng(args.seed + 9)
    stash: list = []

    async def churn():
        # alternate jittered inserts with erases of what we inserted, so
        # the views column moves while the dataset stays near its size
        try:
            if stash and rng.random() < 0.5:
                await fe.erase("heavy", stash.pop(0))
            else:
                batch = (coords[rng.integers(len(coords), size=8)]
                         + rng.normal(0, 0.01, (8, coords.shape[1])))
                stash.append(batch)
                await fe.insert("heavy", batch)
        except Exception:
            pass  # dash keeps drawing even when mutations are shed

    async def run():
        task = asyncio.ensure_future(run_open_loop(fe, loads))
        try:
            while not task.done():
                if mgr is not None:
                    await churn()
                print(clear + render(fe), flush=True)
                await asyncio.sleep(args.interval)
            report = await task
            print(clear + render(fe), flush=True)
            print()
            print(report.summary())
        finally:
            await fe.close()

    asyncio.run(run())
    return 0


def cmd_build_bench(args) -> int:
    """Filter-first construction micro-benchmark: batched vs recursive
    kd/BDL builds and the Akl–Toussaint-filtered vs plain quickhull, on
    one dataset, with the equality contracts re-checked on the spot."""
    from .bdl import BDLTree
    from .kdtree import KDTree

    pts = _load(args.input)
    coords = pts.coords

    def best_of(fn):
        out, t = None, float("inf")
        for _ in range(max(args.reps, 1)):
            t0 = time.perf_counter()
            out = fn()
            t = min(t, time.perf_counter() - t0)
        return out, t

    rec = {"n_points": int(len(coords)), "dim": int(coords.shape[1])}

    tr, t_rec = best_of(lambda: KDTree(coords, engine="recursive"))
    tb, t_bat = best_of(lambda: KDTree(coords, engine="batched"))
    same = all(
        np.array_equal(getattr(tr, f), getattr(tb, f))
        for f in ("perm", "split_val", "left", "right", "box_lo", "box_hi")
    )
    ratio = t_rec / t_bat if t_bat > 0 else float("inf")
    rec["kdtree"] = {"recursive_s": t_rec, "batched_s": t_bat,
                     "speedup": ratio, "identical": same}
    print(f"kd-tree build ({len(coords)} points): recursive {t_rec:.3f}s, "
          f"batched {t_bat:.3f}s -> {ratio:.2f}x"
          + ("" if same else "  [MISMATCH]"))

    def bdl_build(engine):
        b = BDLTree(coords.shape[1], build_engine=engine)
        b.insert(coords)
        return b

    br, t_brec = best_of(lambda: bdl_build("recursive"))
    bb, t_bbat = best_of(lambda: bdl_build("batched"))
    bdl_same = br.bitmask == bb.bitmask and all(
        ta is None or np.array_equal(ta.perm, tbt.perm)
        for ta, tbt in zip(br.trees, bb.trees)
    )
    bdl_ratio = t_brec / t_bbat if t_bbat > 0 else float("inf")
    rec["bdl"] = {"recursive_s": t_brec, "batched_s": t_bbat,
                  "speedup": bdl_ratio, "identical": bdl_same}
    print(f"BDL build: recursive {t_brec:.3f}s, batched {t_bbat:.3f}s "
          f"-> {bdl_ratio:.2f}x" + ("" if bdl_same else "  [MISMATCH]"))

    if coords.shape[1] == 2:
        from .hull import quickhull2d_seq

        hu, t_unf = best_of(lambda: quickhull2d_seq(coords, prefilter=False))
        hf, t_fil = best_of(lambda: quickhull2d_seq(coords, prefilter=True))
        h_same = np.array_equal(hu, hf)
        h_ratio = t_unf / t_fil if t_fil > 0 else float("inf")
        rec["hull2d"] = {"unfiltered_s": t_unf, "filtered_s": t_fil,
                         "speedup": h_ratio, "identical": h_same}
        print(f"quickhull2d: unfiltered {t_unf:.3f}s, AT-filtered "
              f"{t_fil:.3f}s -> {h_ratio:.2f}x"
              + ("" if h_same else "  [MISMATCH]"))

    if args.json_out:
        import json

        with open(args.json_out, "w") as f:
            json.dump(rec, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json_out}")
    ok = all(v["identical"] for v in rec.values() if isinstance(v, dict))
    if not ok:
        print("error: engines disagreed (see [MISMATCH] above)",
              file=sys.stderr)
        return 1
    return 0


def cmd_profile(args) -> int:
    from .obs import summary, trace, write_chrome_trace
    from .obs.span import DEFAULT_MAX_SPANS
    from .parlay.workdepth import tracker

    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        print("error: profile needs a command to run, "
              "e.g. 'profile knn pts.npy -k 8'", file=sys.stderr)
        return 2
    if cmd[0] == "profile":
        print("error: profile cannot wrap itself", file=sys.stderr)
        return 2

    from .parlay.scheduler import get_scheduler

    inner = build_parser().parse_args(cmd)
    tracker.reset()
    with trace(f"cli.{cmd[0]}",
               max_spans=args.max_spans or DEFAULT_MAX_SPANS) as rec:
        rc = inner.fn(inner)
    sched = get_scheduler()
    print(f"\nactive backend: {sched.backend} ({sched.workers} workers)"
          + (f" [inner run used --backend {inner.backend}]"
             if getattr(inner, "backend", None) else ""))
    from .hull import default_hull_prefilter
    from .kdtree import default_build_engine

    print(f"build engine: {default_build_engine()}"
          + (f" [inner run used --build-engine {inner.build_engine}]"
             if getattr(inner, "build_engine", None) else "")
          + f", hull prefilter: "
          f"{'on' if default_hull_prefilter() else 'off'}")
    spans = rec.spans()
    obj = write_chrome_trace(args.trace_out, spans,
                             workers=args.workers, name=f"repro {cmd[0]}")
    print()
    print(summary(spans, top=args.top, workers=args.workers))
    print()
    dropped = f" ({rec.dropped} dropped)" if rec.dropped else ""
    print(f"wrote {len(obj['traceEvents'])} trace events "
          f"({len(spans)} spans{dropped}) to {args.trace_out} "
          f"-- load in https://ui.perfetto.dev")
    return rc


def _add_load_args(sp) -> None:
    """Arguments shaping the shared two-tenant open-loop load."""
    sp.add_argument("input", help="point file both tenants query")
    sp.add_argument("--seconds", type=float, default=5.0,
                    help="offered-load duration per tenant (default 5)")
    sp.add_argument("--heavy-rate", type=float, default=5000.0,
                    help="heavy tenant arrival rate, req/s (default 5000)")
    sp.add_argument("--light-rate", type=float, default=200.0,
                    help="light tenant arrival rate, req/s (default 200)")
    sp.add_argument("--light-weight", type=float, default=4.0,
                    help="fair-dispatch weight of the light tenant")
    sp.add_argument("--pattern", choices=("poisson", "bursty"),
                    default="poisson", help="heavy tenant arrival process")
    sp.add_argument("--zipf-s", type=float, default=1.2,
                    help="Zipf exponent of the hot-spot skew")
    sp.add_argument("-k", type=int, default=8, help="k for kNN requests")
    sp.add_argument("--shards", type=int, default=16, metavar="N",
                    help="heavy tenant's shard count (0 = plain KDTree, "
                    "which disables graceful degradation)")
    sp.add_argument("--queue-depth", type=int, default=512,
                    help="per-tenant queue bound / reject threshold")
    sp.add_argument("--degrade-at", type=int, default=None,
                    help="total depth that triggers approximate answers "
                    "(default: queue-depth / 2)")
    sp.add_argument("--max-batch", type=int, default=256)
    sp.add_argument("--seed", type=int, default=0)


def _add_backend_arg(sp) -> None:
    from .parlay.scheduler import BACKENDS

    sp.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="scheduler backend to run under (default: the ambient "
             "backend, REPRO_BACKEND or sequential)",
    )


def _add_build_engine_arg(sp) -> None:
    from .kdtree import BUILD_ENGINES

    sp.add_argument(
        "--build-engine", choices=list(BUILD_ENGINES), default=None,
        help="kd-tree construction engine for every tree the command "
             "builds (default: REPRO_BUILD_ENGINE or batched)",
    )


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="create a synthetic dataset")
    g.add_argument("name", help="paper-style name, e.g. 2D-U-100K")
    g.add_argument("-o", "--output", required=True)
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(fn=cmd_generate)

    h = sub.add_parser("hull", help="convex hull (2d/3d)")
    h.add_argument("input")
    h.add_argument("--method", default="divide_conquer",
                   choices=["divide_conquer", "quickhull", "randinc", "pseudo"])
    h.add_argument("-o", "--output")
    h.set_defaults(fn=cmd_hull)

    s = sub.add_parser("seb", help="smallest enclosing ball")
    s.add_argument("input")
    s.add_argument("--method", default="sampling",
                   choices=["sampling", "orthant", "welzl", "welzl_mtf",
                            "welzl_mtf_pivot", "parallel_welzl"])
    s.set_defaults(fn=cmd_seb)

    k = sub.add_parser("knn", help="all-points k nearest neighbors")
    k.add_argument("input")
    k.add_argument("-k", type=int, default=5)
    k.add_argument("--split", default="object", choices=["object", "spatial"])
    k.add_argument("--engine", default="batched", choices=["batched", "recursive"],
                   help="query execution engine (vectorized batch vs per-query walk)")
    k.add_argument("--shards", type=int, default=0, metavar="N",
                   help="serve from a Hilbert-sharded index with N shards "
                        "(0 = monolithic kd-tree)")
    k.add_argument("-o", "--output")
    _add_backend_arg(k)
    _add_build_engine_arg(k)
    k.set_defaults(fn=cmd_knn)

    e = sub.add_parser("emst", help="Euclidean minimum spanning tree")
    e.add_argument("input")
    e.add_argument("-o", "--output")
    e.set_defaults(fn=cmd_emst)

    gr = sub.add_parser("graph", help="spatial graph generators")
    gr.add_argument("input")
    gr.add_argument("--kind", required=True,
                    choices=["knn", "delaunay", "gabriel", "beta", "emst", "spanner"])
    gr.add_argument("-k", type=int, default=5)
    gr.add_argument("--beta", type=float, default=1.5)
    gr.add_argument("--separation", type=float, default=8.0)
    gr.add_argument("-o", "--output")
    gr.set_defaults(fn=cmd_graph)

    c = sub.add_parser("cluster", help="DBSCAN clustering")
    c.add_argument("input")
    c.add_argument("--eps", type=float, required=True)
    c.add_argument("--min-pts", type=int, default=8)
    c.add_argument("-o", "--output")
    c.set_defaults(fn=cmd_cluster)

    sr = sub.add_parser(
        "serve-replay",
        help="replay a request trace through the geometry query service",
        description="Replay a JSONL request trace (or a synthetic one) "
        "through repro.serve.GeometryService and report throughput, "
        "cache hit-rate, and batching behaviour.",
    )
    sr.add_argument("input", help="point file the queries run against")
    sr.add_argument("--trace", help="JSONL trace file (default: synthesize one)")
    sr.add_argument("--synthetic", type=int, default=2000, metavar="N",
                    help="requests to synthesize when no --trace is given")
    sr.add_argument("--mix", default="knn,ball,box",
                    help="comma-separated kinds for synthetic traces")
    sr.add_argument("-k", type=int, default=8, help="k for synthetic kNN requests")
    sr.add_argument("--repeat-frac", type=float, default=0.25,
                    help="fraction of synthetic requests repeating earlier ones")
    sr.add_argument("--seed", type=int, default=0)
    sr.add_argument("--save-trace", help="also write the replayed trace as JSONL")
    sr.add_argument("--mutation-frac", type=float, default=0.0,
                    help="fraction of synthetic ops that are insert/erase "
                         "batches (needs a dynamic index)")
    sr.add_argument("--mutation-batch", type=int, default=8,
                    help="points per synthetic mutation batch (default 8)")
    sr.add_argument("--views", metavar="NAMES",
                    help="comma-separated materialized views to register "
                         "and read (closest_pair,dbscan,hull2d); adds "
                         "'view' ops to synthetic traces")
    sr.add_argument("--eps", type=float, default=0.1,
                    help="eps for the dbscan view (default 0.1)")
    sr.add_argument("--min-pts", type=int, default=8,
                    help="min_pts for the dbscan view (default 8)")
    sr.add_argument("--dynamic", action="store_true",
                    help="serve from a BDLTree instead of a static KDTree")
    sr.add_argument("--shards", type=int, default=0, metavar="N",
                    help="serve from a Hilbert-sharded index with N shards "
                         "(scatter-gather routing; 0 = unsharded)")
    sr.add_argument("--max-batch", type=int, default=256)
    sr.add_argument("--max-wait", type=float, default=0.002)
    sr.add_argument("--max-pending", type=int, default=4096)
    sr.add_argument("--cache", type=int, default=8192,
                    help="result-cache capacity (entries)")
    sr.add_argument("--compare", action="store_true",
                    help="also time the one-request-at-a-time recursive loop")
    sr.add_argument("--metrics-out", metavar="PATH",
                    help="write the post-run service metrics snapshot as JSON")
    _add_backend_arg(sr)
    _add_build_engine_arg(sr)
    sr.set_defaults(fn=cmd_serve_replay)

    sb = sub.add_parser(
        "stream-bench",
        help="incremental view maintenance vs recompute on an update-heavy trace",
        description="Replay an update-heavy synthetic trace (insert/erase "
        "batches interleaved with materialized-view reads) twice: once "
        "with repro.views maintaining the views incrementally, once with "
        "every view read recomputed from scratch; verify the answers are "
        "bitwise-equal at every version and report the speedup.",
    )
    sb.add_argument("input", help="point file the stream runs against")
    sb.add_argument("--requests", type=int, default=2000, metavar="N",
                    help="ops to synthesize (default 2000)")
    sb.add_argument("--mutation-frac", type=float, default=0.35,
                    help="fraction of ops that are insert/erase batches "
                         "(default 0.35 — update-heavy)")
    sb.add_argument("--mutation-batch", type=int, default=8,
                    help="points per mutation batch (default 8)")
    sb.add_argument("--views", metavar="NAMES",
                    help="comma-separated views to maintain "
                         "(default: closest_pair, plus hull2d when 2D)")
    sb.add_argument("--eps", type=float, default=0.1,
                    help="eps for the dbscan view (default 0.1)")
    sb.add_argument("--min-pts", type=int, default=8,
                    help="min_pts for the dbscan view (default 8)")
    sb.add_argument("--shards", type=int, default=0, metavar="N",
                    help="maintain views over a Hilbert-sharded index "
                         "with N shards (0 = BDLTree)")
    sb.add_argument("--seed", type=int, default=0)
    sb.add_argument("--save-trace", help="also write the trace as JSONL")
    sb.add_argument("--json-out", metavar="PATH",
                    help="write the comparison record as JSON")
    _add_backend_arg(sb)
    sb.set_defaults(fn=cmd_stream_bench)

    cb = sub.add_parser(
        "cluster-bench",
        help="compare a Hilbert-sharded index against the monolithic kd-tree",
        description="Run the same kNN + ball-range workload against a "
        "monolithic kd-tree and a ShardedIndex, reporting wall-clock, "
        "work/depth charges, simulated T_p under the work-depth model, "
        "and the scatter-gather pruning rate.",
    )
    cb.add_argument("input", help="point file the workload runs against")
    cb.add_argument("--shards", type=int, default=16, metavar="N",
                    help="shard count for the sharded side (default 16)")
    cb.add_argument("-k", type=int, default=10, help="k for the kNN queries")
    cb.add_argument("--queries", type=int, default=2000, metavar="N",
                    help="number of kNN queries (plus N/2 ball queries)")
    cb.add_argument("--workers", type=float, default=36,
                    help="simulated cores for T_p (default: the paper's 36)")
    cb.add_argument("--seed", type=int, default=0)
    cb.add_argument("--procs", metavar="P1,P2,...",
                    help="instead: run the processes-backend ladder "
                    "(e.g. 1,2,4), reporting measured wall-clock speedup "
                    "next to the simulated T_p at each p")
    cb.add_argument("--json-out", metavar="PATH",
                    help="also write the comparison record as JSON")
    _add_backend_arg(cb)
    _add_build_engine_arg(cb)
    cb.set_defaults(fn=cmd_cluster_bench)

    bb = sub.add_parser(
        "build-bench",
        help="batched vs recursive construction and filter-first hull timings",
        description="Time kd-tree and BDL-tree construction under both "
        "engines and 2D quickhull with and without the Akl-Toussaint "
        "prefilter, re-checking that each pair produces identical output.",
    )
    bb.add_argument("input", help="point file to build over")
    bb.add_argument("--reps", type=int, default=3,
                    help="repetitions per timing (best-of, default 3)")
    bb.add_argument("--json-out", metavar="PATH",
                    help="write the timing record as JSON")
    bb.set_defaults(fn=cmd_build_bench)

    lb = sub.add_parser(
        "load-bench",
        help="open-loop multi-tenant load test of the async front-end",
        description="Drive repro.frontend.Frontend with a saturating heavy "
        "tenant and a light tenant on open-loop (Poisson or bursty) Zipf "
        "traces; report per-tenant p50/p99/p999 latency, rejection rate, "
        "degraded-answer counts, and saturation throughput.",
    )
    _add_load_args(lb)
    lb.add_argument("--json-out", metavar="PATH",
                    help="write the full load report as JSON")
    lb.add_argument("--trace-out", metavar="PATH",
                    help="dump the flight recorder's retained request "
                    "traces (validated) as a Perfetto-loadable timeline")
    lb.set_defaults(fn=cmd_load_bench)

    da = sub.add_parser(
        "dash",
        help="live text dashboard over a synthetic open-loop load",
        description="Drive the same two-tenant open-loop load as "
        "load-bench while redrawing a live dashboard: per-tenant "
        "queues, SLO burn rates, flight-recorder retention, and the "
        "slowest retained requests decomposed into phases.",
    )
    _add_load_args(da)
    da.add_argument("--interval", type=float, default=0.5,
                    help="seconds between dashboard redraws (default 0.5)")
    da.add_argument("--no-clear", action="store_true",
                    help="append frames instead of clearing the screen")
    da.add_argument("--views", action="store_true",
                    help="maintain materialized views on the heavy tenant "
                         "and churn mutations so the views column moves")
    da.set_defaults(fn=cmd_dash)

    pr = sub.add_parser(
        "profile",
        help="run any command under the span tracer and export its trace",
        description="Wrap another repro command (hull, knn, serve-replay, ...) "
        "in the span-tree tracer, write a Perfetto-loadable Chrome trace, "
        "and print a flame-style work/depth summary.",
    )
    pr.add_argument("--trace-out", default="trace.json", metavar="PATH",
                    help="Chrome trace-event JSON output (default: trace.json)")
    pr.add_argument("--workers", type=int, default=36,
                    help="simulated cores for the scheduled timeline")
    pr.add_argument("--top", type=int, default=12,
                    help="rows in the top-spans tables")
    pr.add_argument("--max-spans", type=int, default=None,
                    help="recorder capacity (spans beyond it are dropped)")
    pr.add_argument("cmd", nargs=argparse.REMAINDER,
                    help="the command line to profile, e.g. 'knn pts.npy -k 8'")
    pr.set_defaults(fn=cmd_profile)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
