"""Command-line interface: ``python -m repro <command>``.

Commands mirror ParGeo's executable tools: generate datasets, run an
algorithm over a point file, and report timings.

Examples::

    python -m repro generate 2D-U-100K -o pts.npy
    python -m repro hull pts.npy --method divide_conquer
    python -m repro seb pts.npy --method sampling
    python -m repro knn pts.npy -k 8 -o neighbors.csv
    python -m repro emst pts.npy -o mst.csv
    python -m repro graph pts.npy --kind gabriel -o edges.csv
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _load(path: str):
    from .generators.io import load_points

    return load_points(path)


def cmd_generate(args) -> int:
    from .generators import dataset
    from .generators.io import save_points

    pts = dataset(args.name, seed=args.seed)
    save_points(args.output, pts)
    print(f"wrote {pts} to {args.output}")
    return 0


def cmd_hull(args) -> int:
    from .hull import convex_hull

    pts = _load(args.input)
    t0 = time.perf_counter()
    h = convex_hull(pts, method=args.method)
    dt = time.perf_counter() - t0
    print(f"hull: {len(h)} vertices in {dt:.3f}s ({args.method})")
    if args.output:
        np.savetxt(args.output, h, fmt="%d")
    return 0


def cmd_seb(args) -> int:
    from .seb import smallest_enclosing_ball

    pts = _load(args.input)
    t0 = time.perf_counter()
    b = smallest_enclosing_ball(pts, method=args.method)
    dt = time.perf_counter() - t0
    print(f"ball: center={b.center.tolist()} radius={b.radius:.6g} in {dt:.3f}s")
    return 0


def cmd_knn(args) -> int:
    from .kdtree import KDTree

    pts = _load(args.input)
    t0 = time.perf_counter()
    tree = KDTree(pts, split=args.split)
    d, i = tree.knn(pts.coords, args.k, exclude_self=True, engine=args.engine)
    dt = time.perf_counter() - t0
    print(f"k-NN (k={args.k}) over {len(pts)} points in {dt:.3f}s ({args.engine} engine)")
    if args.output:
        np.savetxt(args.output, i, fmt="%d", delimiter=",")
    return 0


def cmd_emst(args) -> int:
    from .emst import emst

    pts = _load(args.input)
    t0 = time.perf_counter()
    e, w = emst(pts)
    dt = time.perf_counter() - t0
    print(f"emst: {len(e)} edges, total weight {w.sum():.6g} in {dt:.3f}s")
    if args.output:
        np.savetxt(args.output, np.column_stack([e, w]), delimiter=",")
    return 0


def cmd_graph(args) -> int:
    from .graphs import (
        beta_skeleton,
        delaunay_graph,
        emst_graph,
        gabriel_graph,
        knn_graph,
        wspd_spanner,
    )

    pts = _load(args.input)
    builders = {
        "knn": lambda p: knn_graph(p, args.k),
        "delaunay": delaunay_graph,
        "gabriel": gabriel_graph,
        "beta": lambda p: beta_skeleton(p, args.beta),
        "emst": emst_graph,
        "spanner": lambda p: wspd_spanner(p, s=args.separation),
    }
    t0 = time.perf_counter()
    g = builders[args.kind](pts.coords)
    dt = time.perf_counter() - t0
    print(f"{args.kind} graph: {g.m} edges over {g.n} points in {dt:.3f}s")
    if args.output:
        np.savetxt(args.output, np.column_stack([g.edges, g.weights]), delimiter=",")
    return 0


def cmd_cluster(args) -> int:
    from .clustering import dbscan

    pts = _load(args.input)
    t0 = time.perf_counter()
    labels = dbscan(pts, eps=args.eps, min_pts=args.min_pts)
    dt = time.perf_counter() - t0
    k = len(set(labels.tolist()) - {-1})
    noise = float((labels == -1).mean())
    print(f"dbscan: {k} clusters, {noise:.1%} noise in {dt:.3f}s")
    if args.output:
        np.savetxt(args.output, labels, fmt="%d")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="create a synthetic dataset")
    g.add_argument("name", help="paper-style name, e.g. 2D-U-100K")
    g.add_argument("-o", "--output", required=True)
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(fn=cmd_generate)

    h = sub.add_parser("hull", help="convex hull (2d/3d)")
    h.add_argument("input")
    h.add_argument("--method", default="divide_conquer",
                   choices=["divide_conquer", "quickhull", "randinc", "pseudo"])
    h.add_argument("-o", "--output")
    h.set_defaults(fn=cmd_hull)

    s = sub.add_parser("seb", help="smallest enclosing ball")
    s.add_argument("input")
    s.add_argument("--method", default="sampling",
                   choices=["sampling", "orthant", "welzl", "welzl_mtf",
                            "welzl_mtf_pivot", "parallel_welzl"])
    s.set_defaults(fn=cmd_seb)

    k = sub.add_parser("knn", help="all-points k nearest neighbors")
    k.add_argument("input")
    k.add_argument("-k", type=int, default=5)
    k.add_argument("--split", default="object", choices=["object", "spatial"])
    k.add_argument("--engine", default="batched", choices=["batched", "recursive"],
                   help="query execution engine (vectorized batch vs per-query walk)")
    k.add_argument("-o", "--output")
    k.set_defaults(fn=cmd_knn)

    e = sub.add_parser("emst", help="Euclidean minimum spanning tree")
    e.add_argument("input")
    e.add_argument("-o", "--output")
    e.set_defaults(fn=cmd_emst)

    gr = sub.add_parser("graph", help="spatial graph generators")
    gr.add_argument("input")
    gr.add_argument("--kind", required=True,
                    choices=["knn", "delaunay", "gabriel", "beta", "emst", "spanner"])
    gr.add_argument("-k", type=int, default=5)
    gr.add_argument("--beta", type=float, default=1.5)
    gr.add_argument("--separation", type=float, default=8.0)
    gr.add_argument("-o", "--output")
    gr.set_defaults(fn=cmd_graph)

    c = sub.add_parser("cluster", help="DBSCAN clustering")
    c.add_argument("input")
    c.add_argument("--eps", type=float, required=True)
    c.add_argument("--min-pts", type=int, default=8)
    c.add_argument("-o", "--output")
    c.set_defaults(fn=cmd_cluster)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
