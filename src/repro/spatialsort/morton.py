"""Morton (Z-order) spatial sorting for arbitrary dimensions.

Coordinates are quantized onto a 2^bits grid per dimension (bits chosen
so the interleaved code fits 63 bits) and their bits interleaved.
Sorting by the code gives the Z-order curve traversal — ParGeo's
"spatial sorting" module, also used to accelerate incremental Delaunay
insertion and the Zd-tree comparison (paper §6.3).
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..parlay.sort import argsort_parallel
from ..parlay.workdepth import charge

__all__ = ["morton_codes", "morton_argsort", "morton_sort"]


def morton_codes(points, bits: int | None = None) -> np.ndarray:
    """Z-order code of each point (uint64).

    ``bits`` is the per-dimension resolution; default fills 62 bits.
    """
    pts = as_array(points)
    n, d = pts.shape
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    if bits is None:
        bits = max(1, 62 // d)
    if bits * d > 63:
        raise ValueError("bits * dim must be <= 63")
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    scale = (1 << bits) - 1
    q = ((pts - lo) / span * scale).astype(np.uint64)
    np.clip(q, 0, scale, out=q)

    charge(n * bits * d)
    codes = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        for j in range(d):
            bit = (q[:, j] >> np.uint64(b)) & np.uint64(1)
            codes |= bit << np.uint64(b * d + j)
    return codes


def morton_argsort(points, bits: int | None = None, seed: int = 0) -> np.ndarray:
    """Permutation ordering points along the Z-order curve."""
    return argsort_parallel(morton_codes(points, bits), seed=seed)


def morton_sort(points, bits: int | None = None) -> np.ndarray:
    """Points reordered along the Z-order curve."""
    pts = as_array(points)
    return pts[morton_argsort(pts, bits)]
