"""A Morton-ordered batch-dynamic tree (Zd-tree stand-in, paper §6.3).

Blelloch & Dobson's Zd-tree couples a kd-tree with the Morton ordering:
the structure *is* the sorted code array, nodes are contiguous ranges
split by code bits, and batch updates are merges into the sorted order.
We implement that design: construction = parallel Morton sort; batch
insert/delete = sorted merges/filters (cheap — the property the paper's
comparison highlights); k-NN = implicit traversal of the code-bit tree
with grid-cell pruning.

Only low dimensions are practical (code bits per dimension shrink as d
grows) — matching the real Zd-tree's 2-/3-d restriction.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..kdtree.knnbuffer import KNNBuffer
from ..parlay.scheduler import get_scheduler
from ..parlay.primitives import query_blocks
from ..parlay.workdepth import charge

__all__ = ["ZdTree"]

_LEAF = 32


class ZdTree:
    """Batch-dynamic point structure ordered by Morton code."""

    def __init__(self, dim: int, bounds_lo=None, bounds_hi=None, bits: int | None = None):
        if dim > 7:
            raise ValueError("ZdTree supports d <= 7 (Morton bits run out)")
        self.dim = dim
        self.bits = bits if bits is not None else max(1, 62 // dim)
        # fixed quantization frame; defaults resolve on first insert
        self._lo = None if bounds_lo is None else np.asarray(bounds_lo, dtype=np.float64)
        self._hi = None if bounds_hi is None else np.asarray(bounds_hi, dtype=np.float64)
        self.pts = np.empty((0, dim), dtype=np.float64)
        self.gids = np.empty(0, dtype=np.int64)
        self.codes = np.empty(0, dtype=np.uint64)
        self.next_gid = 0

    # -- quantization ---------------------------------------------------------
    def _ensure_frame(self, pts: np.ndarray) -> None:
        if self._lo is None:
            lo = pts.min(axis=0)
            hi = pts.max(axis=0)
            pad = 0.5 * np.where(hi > lo, hi - lo, 1.0)
            self._lo = lo - pad
            self._hi = hi + pad

    def _code(self, pts: np.ndarray) -> np.ndarray:
        scale = (1 << self.bits) - 1
        span = self._hi - self._lo
        q = np.clip((pts - self._lo) / span * scale, 0, scale).astype(np.uint64)
        charge(len(pts) * self.bits * self.dim)
        codes = np.zeros(len(pts), dtype=np.uint64)
        for b in range(self.bits):
            for j in range(self.dim):
                codes |= ((q[:, j] >> np.uint64(b)) & np.uint64(1)) << np.uint64(
                    b * self.dim + j
                )
        return codes

    # -- updates --------------------------------------------------------------
    def insert(self, points) -> np.ndarray:
        pts = as_array(points)
        m = len(pts)
        gids = np.arange(self.next_gid, self.next_gid + m, dtype=np.int64)
        self.next_gid += m
        if m == 0:
            return gids
        self._ensure_frame(pts)
        codes = self._code(pts)
        order = np.argsort(codes, kind="stable")
        charge(m * max(np.log2(max(m, 2)), 1))
        pts, gids_s, codes = pts[order], gids[order], codes[order]
        # merge into the existing sorted order
        pos = np.searchsorted(self.codes, codes, side="right")
        charge(len(self.codes) + m)
        self.pts = np.insert(self.pts, pos, pts, axis=0)
        self.gids = np.insert(self.gids, pos, gids_s)
        self.codes = np.insert(self.codes, pos, codes)
        return gids

    def erase(self, points) -> int:
        q = as_array(points)
        if len(q) == 0 or len(self.pts) == 0:
            return 0
        self._ensure_frame(q)
        codes = self._code(q)
        charge(len(q) * max(np.log2(max(len(self.codes), 2)), 1))
        kill = np.zeros(len(self.pts), dtype=bool)
        for c, row in zip(codes, q):
            lo = int(np.searchsorted(self.codes, c, side="left"))
            hi = int(np.searchsorted(self.codes, c, side="right"))
            for i in range(lo, hi):
                if not kill[i] and np.all(self.pts[i] == row):
                    kill[i] = True
        k = int(np.count_nonzero(kill))
        if k:
            keep = ~kill
            self.pts = self.pts[keep]
            self.gids = self.gids[keep]
            self.codes = self.codes[keep]
        return k

    def size(self) -> int:
        return len(self.pts)

    # -- k-NN -------------------------------------------------------------------
    def _knn_rec(self, lo: int, hi: int, level: int, prefix: int,
                 cell_lo: np.ndarray, cell_hi: np.ndarray,
                 q: np.ndarray, buf: KNNBuffer) -> None:
        charge(1, 1)
        if hi - lo <= _LEAF or level < 0:
            seg = self.pts[lo:hi]
            charge(max(hi - lo, 1) * self.dim)
            diff = seg - q
            d2 = np.einsum("ij,ij->i", diff, diff)
            buf.insert_batch(d2, self.gids[lo:hi])
            return
        dim_j = level % self.dim
        boundary = np.uint64(prefix | (1 << level))
        mid = lo + int(np.searchsorted(self.codes[lo:hi], boundary, side="left"))
        midval = 0.5 * (cell_lo[dim_j] + cell_hi[dim_j])
        lo_hi = cell_hi.copy(); lo_hi[dim_j] = midval
        hi_lo = cell_lo.copy(); hi_lo[dim_j] = midval
        children = [
            (lo, mid, prefix, cell_lo, lo_hi),
            (mid, hi, prefix | (1 << level), hi_lo, cell_hi),
        ]
        # visit the child containing q first
        if q[dim_j] > midval:
            children.reverse()
        # cells are derived by float halving while codes come from a
        # multiply-quantize; inflate cells a hair so 1-ulp disagreements
        # at cell boundaries can never prune the true neighbor
        margin = 1e-9 * float(np.max(self._hi - self._lo))
        for (clo, chi, cpfx, cl, ch) in children:
            if chi <= clo:
                continue
            gap = np.maximum(cl - margin - q, 0.0) + np.maximum(q - ch - margin, 0.0)
            if buf.full() and float(gap @ gap) >= buf.bound:
                continue
            self._knn_rec(clo, chi, level - 1, cpfx, cl, ch, q, buf)

    def knn(self, queries, k: int, exclude_self: bool = False):
        qs = as_array(queries)
        m = len(qs)
        kk = k + 1 if exclude_self else k
        dists = np.full((m, k), np.inf)
        ids = np.full((m, k), -1, dtype=np.int64)
        if len(self.pts) == 0:
            return dists, ids
        top = self.bits * self.dim - 1
        sched = get_scheduler()
        blocks = query_blocks(m, grain=64)
        buffers = [KNNBuffer(kk) for _ in range(m)]

        def run_block(b):
            blo, bhi = blocks[b]
            for i in range(blo, bhi):
                self._knn_rec(
                    0, len(self.pts), top, 0, self._lo.copy(), self._hi.copy(),
                    qs[i], buffers[i],
                )

        sched.parallel_for(len(blocks), run_block)
        from ..kdtree.knn import extract_knn_results

        return extract_knn_results(buffers, k, exclude_self)
