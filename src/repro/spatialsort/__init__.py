"""``repro.spatialsort`` — Morton (Z-order) spatial sorting."""

from .hilbert import hilbert_argsort, hilbert_codes, hilbert_sort
from .morton import morton_argsort, morton_codes, morton_sort
from .zdtree import ZdTree

__all__ = [
    "ZdTree",
    "hilbert_argsort",
    "hilbert_codes",
    "hilbert_sort",
    "morton_argsort",
    "morton_codes",
    "morton_sort",
]
