"""Hilbert-curve spatial ordering (any dimension >= 2).

The Hilbert curve preserves locality strictly better than the Z-order
curve (no long diagonal jumps), at the cost of a more expensive index
computation.  Implemented with the classical bitwise transpose
algorithm (Skilling's method), vectorized over numpy arrays.  The
transpose algorithm is dimension-generic, so codes are available for
any ``d >= 2`` as long as the interleaved index fits 63 bits
(``bits * d <= 63``).
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..parlay.sort import argsort_parallel
from ..parlay.workdepth import charge

__all__ = ["hilbert_codes", "hilbert_argsort", "hilbert_sort"]


def _transpose_to_hilbert_int(x: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's TransposetoAxes inverse: Gray-code a transposed
    coordinate matrix into Hilbert indices.

    ``x`` is (n, d) uint64 coordinates quantized to ``bits`` bits.
    Returns (n,) uint64 Hilbert indices.
    """
    x = x.copy()
    n, d = x.shape
    m = np.uint64(1) << np.uint64(bits - 1)

    # inverse undo excess work
    q = m
    while q > np.uint64(1):
        p = q - np.uint64(1)
        for i in range(d):
            flip = (x[:, i] & q) != 0
            # invert low bits of x[0]
            x[flip, 0] ^= p
            # exchange low bits of x[i] and x[0]
            t = (x[:, 0] ^ x[:, i]) & p
            t = np.where(flip, np.uint64(0), t)
            x[:, 0] ^= t
            x[:, i] ^= t
        q >>= np.uint64(1)

    # Gray encode
    for i in range(1, d):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.uint64)
    q = m
    while q > np.uint64(1):
        has = (x[:, d - 1] & q) != 0
        t ^= np.where(has, q - np.uint64(1), np.uint64(0))
        q >>= np.uint64(1)
    for i in range(d):
        x[:, i] ^= t

    # interleave the transposed bits into one index
    codes = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        for i in range(d):
            bit = (x[:, i] >> np.uint64(bits - 1 - b)) & np.uint64(1)
            codes = (codes << np.uint64(1)) | bit
    return codes


def hilbert_codes(points, bits: int | None = None, bounds=None) -> np.ndarray:
    """Hilbert index of each point (uint64), for any ``d >= 2``.

    ``bits`` is the per-dimension resolution (default fills 62 bits:
    ``62 // d``); ``bits * d`` must stay ``<= 63``.

    ``bounds`` optionally fixes the quantization box as ``(lo, hi)``
    arrays of shape (d,).  By default the box is the data's bounding
    box, which makes codes a function of the *point set*; passing
    explicit bounds makes the code of each point independent of its
    companions — what a sharded index needs so that points inserted
    later route to the same Hilbert range as the build did.  Points
    outside the box clamp onto its surface.
    """
    pts = as_array(points)
    n, d = pts.shape
    if d < 2:
        raise ValueError("hilbert_codes needs at least 2 dimensions")
    if bits is None:
        bits = max(1, 62 // d)
    if bits < 1 or bits * d > 63:
        raise ValueError("bits must be >= 1 with bits * dim <= 63")
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    if bounds is None:
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
    else:
        lo = np.asarray(bounds[0], dtype=np.float64)
        hi = np.asarray(bounds[1], dtype=np.float64)
        if lo.shape != (d,) or hi.shape != (d,):
            raise ValueError(f"bounds must be (lo, hi) arrays of shape ({d},)")
    span = np.where(hi > lo, hi - lo, 1.0)
    scale = (1 << bits) - 1
    # clamp in float space *before* the unsigned cast so out-of-box
    # points (insert routing) land on the near face, not wrap around
    q = np.clip((pts - lo) / span * scale, 0, scale).astype(np.uint64)
    charge(n * bits * d)
    return _transpose_to_hilbert_int(q, bits)


def hilbert_argsort(points, bits: int | None = None, seed: int = 0) -> np.ndarray:
    """Permutation ordering points along the Hilbert curve."""
    return argsort_parallel(hilbert_codes(points, bits), seed=seed)


def hilbert_sort(points, bits: int | None = None) -> np.ndarray:
    """Points reordered along the Hilbert curve."""
    pts = as_array(points)
    return pts[hilbert_argsort(pts, bits)]
