"""Hilbert-curve spatial ordering (2D and 3D).

The Hilbert curve preserves locality strictly better than the Z-order
curve (no long diagonal jumps), at the cost of a more expensive index
computation.  Implemented with the classical bitwise transpose
algorithm (Skilling's method), vectorized over numpy arrays.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..parlay.sort import argsort_parallel
from ..parlay.workdepth import charge

__all__ = ["hilbert_codes", "hilbert_argsort", "hilbert_sort"]


def _transpose_to_hilbert_int(x: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's TransposetoAxes inverse: Gray-code a transposed
    coordinate matrix into Hilbert indices.

    ``x`` is (n, d) uint64 coordinates quantized to ``bits`` bits.
    Returns (n,) uint64 Hilbert indices.
    """
    x = x.copy()
    n, d = x.shape
    m = np.uint64(1) << np.uint64(bits - 1)

    # inverse undo excess work
    q = m
    while q > np.uint64(1):
        p = q - np.uint64(1)
        for i in range(d):
            flip = (x[:, i] & q) != 0
            # invert low bits of x[0]
            x[flip, 0] ^= p
            # exchange low bits of x[i] and x[0]
            t = (x[:, 0] ^ x[:, i]) & p
            t = np.where(flip, np.uint64(0), t)
            x[:, 0] ^= t
            x[:, i] ^= t
        q >>= np.uint64(1)

    # Gray encode
    for i in range(1, d):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.uint64)
    q = m
    while q > np.uint64(1):
        has = (x[:, d - 1] & q) != 0
        t ^= np.where(has, q - np.uint64(1), np.uint64(0))
        q >>= np.uint64(1)
    for i in range(d):
        x[:, i] ^= t

    # interleave the transposed bits into one index
    codes = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        for i in range(d):
            bit = (x[:, i] >> np.uint64(bits - 1 - b)) & np.uint64(1)
            codes = (codes << np.uint64(1)) | bit
    return codes


def hilbert_codes(points, bits: int | None = None) -> np.ndarray:
    """Hilbert index of each point (uint64); d must be 2 or 3."""
    pts = as_array(points)
    n, d = pts.shape
    if d not in (2, 3):
        raise ValueError("hilbert_codes supports 2 or 3 dimensions")
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    if bits is None:
        bits = 62 // d
    if bits * d > 63:
        raise ValueError("bits * dim must be <= 63")
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    scale = (1 << bits) - 1
    q = ((pts - lo) / span * scale).astype(np.uint64)
    np.clip(q, 0, scale, out=q)
    charge(n * bits * d)
    return _transpose_to_hilbert_int(q, bits)


def hilbert_argsort(points, bits: int | None = None, seed: int = 0) -> np.ndarray:
    """Permutation ordering points along the Hilbert curve."""
    return argsort_parallel(hilbert_codes(points, bits), seed=seed)


def hilbert_sort(points, bits: int | None = None) -> np.ndarray:
    """Points reordered along the Hilbert curve."""
    pts = as_array(points)
    return pts[hilbert_argsort(pts, bits)]
