"""repro — a Python reproduction of **ParGeo: A Library for Parallel
Computational Geometry** (Wang et al., PPoPP 2022).

Modules mirror the paper's architecture (Figure 1):

* :mod:`repro.parlay` — the ParlayLib-equivalent substrate: fork-join
  scheduler, data-parallel primitives, parallel sort, priority writes,
  and the work-depth cost model that simulates multicore speedups.
* :mod:`repro.kdtree` — static vEB-layout kd-tree: build, k-NN, range
  search, batch deletion (Module 1).
* :mod:`repro.bdl` — the BDL batch-dynamic kd-tree + B1/B2 baselines.
* :mod:`repro.hull` — convex hull in R^2/R^3 incl. the reservation-based
  parallel incremental algorithms (Module 2).
* :mod:`repro.seb` — smallest enclosing ball: Welzl variants, orthant
  scan, the new sampling algorithm (Module 2).
* :mod:`repro.wspd`, :mod:`repro.emst`, :mod:`repro.closestpair`,
  :mod:`repro.delaunay`, :mod:`repro.spatialsort`,
  :mod:`repro.clustering` — the remaining Module-2 algorithms.
* :mod:`repro.graphs` — spatial graph generators (Module 3).
* :mod:`repro.generators` — benchmark data generators (Module 4).
* :mod:`repro.serve` — the in-process geometry query service: dynamic
  batching of single requests through the batched engine, versioned
  result caching, and bounded-queue backpressure.
* :mod:`repro.cluster` — the sharded spatial index: Hilbert-range
  partitioning, scatter-gather routing with geometric pruning, and
  skew-triggered rebalancing behind the same query API.
* :mod:`repro.obs` — observability: span-tree tracing over the
  fork-join runtime, Chrome-trace/summary exporters, and the unified
  metrics registry (``python -m repro profile ...``).
* :mod:`repro.views` — batch-dynamic materialized views (closest pair,
  DBSCAN labels, 2D hull) maintained incrementally over a dynamic
  index, bitwise-equal to from-scratch recomputation at every version.

Quickstart::

    import repro
    pts = repro.uniform(100_000, 2, seed=0)
    hull = repro.convex_hull(pts)
    ball = repro.smallest_enclosing_ball(pts)
    tree = repro.KDTree(pts)
    dists, ids = tree.knn(pts[:10], k=5)
"""

from .bdl import BDLTree, InPlaceTree, RebuildTree
from .clustering import dbscan, hdbscan
from .closestpair import bccp_points, closest_pair
from .core import PointSet, as_points
from .delaunay import delaunay
from .emst import emst
from .generators import (
    dataset,
    dragon,
    in_sphere,
    on_cube,
    on_sphere,
    thai_statue,
    uniform,
    visual_var,
)
from .graphs import (
    Graph,
    beta_skeleton,
    delaunay_graph,
    emst_graph,
    gabriel_graph,
    knn_graph,
    wspd_spanner,
)
from .cluster import ShardedIndex
from .hull import convex_hull
from .kdtree import KDTree
from .parlay import set_backend, use_backend
from .frontend import Frontend
from .serve import GeometryService
from .seb import Ball, smallest_enclosing_ball
from .spatialsort import ZdTree, morton_sort
from .views import ViewManager
from .wspd import wspd

__version__ = "1.0.0"

__all__ = [
    "BDLTree",
    "Ball",
    "Frontend",
    "GeometryService",
    "Graph",
    "InPlaceTree",
    "KDTree",
    "PointSet",
    "RebuildTree",
    "ShardedIndex",
    "ViewManager",
    "ZdTree",
    "as_points",
    "bccp_points",
    "beta_skeleton",
    "closest_pair",
    "convex_hull",
    "dataset",
    "dbscan",
    "delaunay",
    "delaunay_graph",
    "dragon",
    "emst",
    "emst_graph",
    "gabriel_graph",
    "hdbscan",
    "in_sphere",
    "knn_graph",
    "morton_sort",
    "on_cube",
    "on_sphere",
    "set_backend",
    "smallest_enclosing_ball",
    "thai_statue",
    "uniform",
    "use_backend",
    "visual_var",
    "wspd",
    "wspd_spanner",
]
