"""Parallel batch deletion from a static kd-tree (paper Algorithm 2).

The batch of points to erase is partitioned around each node's splitting
hyperplane and pushed to both relevant subtrees in parallel; leaves mark
matching points as deleted.  On the way back up, nodes whose subtrees
emptied are removed, and internal nodes left with a single child are
contracted (the child replaces the node), flattening unnecessary
traversal — exactly the structure-maintenance rule in the paper.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.points import as_array
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge, fork_costs
from .tree import KDTree

__all__ = ["erase"]

_SEQ_CUTOFF = 2048


def erase(tree: KDTree, point_coords) -> int:
    """Delete points (by coordinates) from the tree; returns #deleted.

    Points not present are ignored.  Duplicates in the tree matching a
    single query row are all deleted (coordinate equality is exact).
    """
    q = as_array(point_coords)
    if q.shape[1] != tree.dim:
        raise ValueError("dimension mismatch")
    if tree.root < 0 or len(q) == 0:
        return 0
    deleted = _CountBox()
    new_root = _erase_rec(tree, tree.root, q, deleted, get_scheduler())
    tree.root = new_root if new_root is not None else -1
    tree.n_alive -= deleted.count
    if deleted.count:
        # the live point set changed: invalidate version-keyed caches
        tree.version += 1
    return deleted.count


class _CountBox:
    """Deletion counter, lock-protected for the threads backend."""

    __slots__ = ("count", "_lock")

    def __init__(self):
        import threading

        self.count = 0
        self._lock = threading.Lock()

    def add(self, k: int) -> None:
        with self._lock:
            self.count += k


def _erase_rec(tree: KDTree, idx: int, q: np.ndarray, deleted: _CountBox, sched) -> int | None:
    """Returns the node that should replace ``idx`` (None = removed)."""
    m = len(q)
    charge(max(m, 1), math.log2(m) if m > 1 else 1.0)
    if tree.is_leaf[idx]:
        ids = tree.node_points(idx)
        if len(ids) == 0:
            return None if tree.live[idx] == 0 else idx
        pts = tree.points[ids]
        # exact coordinate match against the batch
        charge(len(ids) * max(m, 1))
        # compare via sorted structured view for efficiency
        hit = _match_rows(pts, q)
        if np.any(hit):
            k = int(np.count_nonzero(hit))
            tree.alive[ids[hit]] = False
            tree.live[idx] -= k
            deleted.add(k)
        return None if tree.live[idx] == 0 else idx

    d = int(tree.split_dim[idx])
    sv = float(tree.split_val[idx])
    mask_l = q[:, d] <= sv
    mask_r = q[:, d] >= sv
    ql = q[mask_l]
    qr = q[mask_r]
    li, ri = int(tree.left[idx]), int(tree.right[idx])

    results: list[int | None] = [None, None]

    def do_left():
        results[0] = _erase_rec(tree, li, ql, deleted, sched) if (li >= 0 and len(ql)) else (li if li >= 0 else None)

    def do_right():
        results[1] = _erase_rec(tree, ri, qr, deleted, sched) if (ri >= 0 and len(qr)) else (ri if ri >= 0 else None)

    if m > _SEQ_CUTOFF and len(ql) and len(qr):
        sched.parallel_do([do_left, do_right])
    else:
        fork_costs([do_left, do_right])

    new_l, new_r = results
    # a child that wasn't visited but is empty should also disappear
    if new_l is not None and tree.live[new_l] == 0:
        new_l = None
    if new_r is not None and tree.live[new_r] == 0:
        new_r = None

    tree.left[idx] = new_l if new_l is not None else -1
    tree.right[idx] = new_r if new_r is not None else -1
    tree.live[idx] = (tree.live[new_l] if new_l is not None else 0) + (
        tree.live[new_r] if new_r is not None else 0
    )
    if new_l is None and new_r is None:
        return None
    if new_l is None:
        return new_r
    if new_r is None:
        return new_l
    return idx


def _match_rows(pts: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Boolean mask over ``pts`` rows that exactly equal some row of q."""
    if len(q) * len(pts) <= 4096:
        return (pts[:, None, :] == q[None, :, :]).all(axis=2).any(axis=1)
    # large batches: hash rows through a void view + sorted membership
    pv = np.ascontiguousarray(pts).view([("", pts.dtype)] * pts.shape[1]).ravel()
    qv = np.ascontiguousarray(q).view([("", q.dtype)] * q.shape[1]).ravel()
    return np.isin(pv, qv)
