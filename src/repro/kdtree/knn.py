"""Data-parallel k-nearest-neighbor search (paper Appendix C.1.3).

Queries are parallelized across the batch; each individual search walks
the tree serially with a :class:`~repro.kdtree.knnbuffer.KNNBuffer`.
The search descends to the query's leaf first, then unwinds: while the
buffer is not yet full it greedily ingests sibling subtrees; once full,
it prunes with the k-th-nearest bound (taking whole subtrees when their
box lies inside the bound, skipping them when disjoint, recursing when
they straddle it — exactly the paper's strategy).
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..obs.span import span
from ..parlay.scheduler import get_scheduler
from ..parlay.primitives import query_blocks
from ..parlay.workdepth import charge
from .knnbuffer import KNNBuffer
from .tree import KDTree

__all__ = ["extract_knn_results", "knn", "knn_into", "knn_single"]


def _ingest_subtree(tree: KDTree, idx: int, q: np.ndarray, buf: KNNBuffer) -> None:
    """Add every live point under ``idx`` to the buffer."""
    ids = tree.node_points(idx)
    if len(ids) == 0:
        return
    pts = tree.points[ids]
    diff = pts - q
    charge(len(ids) * tree.dim)
    d2 = np.einsum("ij,ij->i", diff, diff)
    buf.insert_batch(d2, tree.gids[ids])


def _search(tree: KDTree, idx: int, q: np.ndarray, buf: KNNBuffer) -> None:
    if idx < 0 or tree.live[idx] == 0:
        return
    charge(2 * tree.dim + 4, 1)  # per-node box/plane arithmetic
    if tree.is_leaf[idx]:
        _ingest_subtree(tree, idx, q, buf)
        return

    # distance-ordered descent
    li, ri = int(tree.left[idx]), int(tree.right[idx])
    d = int(tree.split_dim[idx])
    first, second = (li, ri) if q[d] <= tree.split_val[idx] else (ri, li)

    _search(tree, first, q, buf)

    if second < 0 or tree.live[second] == 0:
        return
    if not buf.full():
        # fill up with nearby points as fast as possible (paper C.1.3)
        _search(tree, second, q, buf)
        return
    lo, hi = tree.box_lo[second], tree.box_hi[second]
    gap = np.maximum(lo - q, 0.0) + np.maximum(q - hi, 0.0)
    # einsum, not dot: the batched engine reduces rows with einsum, and
    # the two must round identically so tie-breaking pruning agrees
    dist2 = float(np.einsum("i,i->", gap, gap))
    if dist2 >= buf.bound:
        return  # disjoint from the k-NN ball: prune
    far = np.maximum(np.abs(q - lo), np.abs(q - hi))
    if float(np.einsum("i,i->", far, far)) < buf.bound:
        _ingest_subtree(tree, second, q, buf)  # wholly inside: take all
    else:
        _search(tree, second, q, buf)


def knn_single(tree: KDTree, q: np.ndarray, k: int, buf: KNNBuffer | None = None) -> KNNBuffer:
    """k-NN of a single query point; returns the filled buffer."""
    if buf is None:
        buf = KNNBuffer(k)
    if tree.root >= 0:
        _search(tree, tree.root, np.asarray(q, dtype=np.float64), buf)
    return buf


def knn_into(tree: KDTree, queries, buffers: list[KNNBuffer], exclude_self: bool = False) -> None:
    """Run k-NN for each query, accumulating into existing buffers.

    This is the subroutine BDL-trees use: the same buffers are passed to
    each of the log-structure's trees so results merge across trees.
    ``exclude_self`` drops candidates at squared distance 0 at result
    time — callers handle it; here we simply search.
    """
    qs = as_array(queries)
    if len(qs) != len(buffers):
        raise ValueError("queries and buffers length mismatch")
    if tree.root < 0:
        return
    sched = get_scheduler()
    blocks = query_blocks(len(qs), grain=64)

    def run_block(b: int) -> None:
        lo, hi = blocks[b]
        for i in range(lo, hi):
            _search(tree, tree.root, qs[i], buffers[i])

    sched.parallel_for(len(blocks), run_block)


def knn(
    tree: KDTree,
    queries,
    k: int,
    exclude_self: bool = False,
    engine: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Data-parallel k-NN over a batch of query points.

    Returns ``(dists, ids)`` of shape (m, k): *squared* distances and
    point ids, each row sorted by distance.  With ``exclude_self`` the
    query point itself (matched by id when the queries are the tree's
    own points, else by zero distance) is excluded; callers should then
    ask for ``k`` true neighbors.

    ``engine`` selects the execution strategy: ``"batched"`` (default)
    runs the whole batch through the vectorized frontier engine of
    :mod:`repro.kdtree.batch`; ``"recursive"`` walks the tree once per
    query.  Results and work/depth charges are identical.
    """
    from .batch import batched_knn, resolve_engine

    eng = resolve_engine(engine)
    qs = as_array(queries)
    with span("kdtree.knn", batch=len(qs), k=k, engine=eng):
        if eng == "batched":
            return batched_knn(tree, qs, k, exclude_self)
        m = len(qs)
        kk = k + 1 if exclude_self else k
        buffers = [KNNBuffer(kk) for _ in range(m)]
        knn_into(tree, qs, buffers)
        return extract_knn_results(buffers, k, exclude_self)


def extract_knn_results(
    buffers: list[KNNBuffer], k: int, exclude_self: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Data-parallel extraction of (dists, ids) from k-NN buffers."""
    m = len(buffers)
    dists = np.full((m, k), np.inf)
    ids = np.full((m, k), -1, dtype=np.int64)
    sched = get_scheduler()
    blocks = query_blocks(m, grain=256)

    def run_block(b: int) -> None:
        lo, hi = blocks[b]
        for i in range(lo, hi):
            d, j = buffers[i].result()
            if exclude_self:
                # drop the closest zero-distance hit (the query itself)
                if len(d) and d[0] <= 1e-18:
                    d, j = d[1:], j[1:]
                else:
                    d, j = d[:k], j[:k]
            take = min(k, len(d))
            dists[i, :take] = d[:take]
            ids[i, :take] = j[:take]

    sched.parallel_for(len(blocks), run_block)
    return dists, ids
