"""Array-at-a-time kd-tree construction engine.

The recursive builder (:meth:`repro.kdtree.tree.KDTree._build`) runs one
numpy call chain *per node* — an argpartition, a couple of gathers and a
box reduction over segments that shrink geometrically — so construction
cost is dominated by interpreter and numpy-dispatch overhead long before
the arrays get interesting.  This module builds the same tree
*level-at-a-time*: all median splits of one tree depth run as a single
2-D ``argpartition`` over the whole frontier, and bounding boxes come
from one ``reduceat`` over the leaf tiling plus a bottom-up combine.

**Bitwise equivalence.**  With the object-median split rule the segment
boundaries are data-independent (``mid = lo + m // 2``), so the entire
node structure — vEB slot assignment, leaf set, split dimensions, the
frontier wiring — is computed in a cheap structural pass that mirrors
``_build``'s recursion exactly.  The point pass then replays each
level's partitions with the same kernel the recursive path uses
(``np.argpartition`` row-by-row semantics are identical to the 1-D
call), so ``perm``, ``split_val`` and the boxes match the recursive
build bitwise.  Spatial-median trees have data-dependent structure and
always take the recursive path (see :class:`~repro.kdtree.tree.KDTree`).

**Cost invariance.**  The structural pass also replays the recursive
builder's work/depth accounting — every ``charge`` and every
``merge_parallel`` in the exact order the recursion performs them, with
the same float arithmetic — and issues the total as one charge.  The
charges are therefore identical on every backend; what the batched
engine gives up is per-task ``parlay.task`` spans under tracing (the
same trade the batched query engine made).

The engine is selected with ``engine="batched" | "recursive"`` on the
construction entry points, defaulting to ``REPRO_BUILD_ENGINE``
(batched).
"""

from __future__ import annotations

import math
import os

import numpy as np

from ..parlay.workdepth import charge

__all__ = [
    "BUILD_ENGINES",
    "build_batched",
    "default_build_engine",
    "resolve_build_engine",
    "set_default_build_engine",
]

#: Recognized construction engines.
BUILD_ENGINES = ("batched", "recursive")

_default_build_engine = os.environ.get("REPRO_BUILD_ENGINE", "batched")


def default_build_engine() -> str:
    """The engine used when a tree is built without ``engine=``."""
    return _default_build_engine


def set_default_build_engine(name: str) -> None:
    """Set the process-wide default construction engine."""
    global _default_build_engine
    if name not in BUILD_ENGINES:
        raise ValueError(
            f"unknown build engine {name!r}; expected one of {BUILD_ENGINES}"
        )
    _default_build_engine = name


def resolve_build_engine(engine: str | None) -> str:
    """Validate an ``engine=`` argument, applying the default for None."""
    if engine is None:
        engine = _default_build_engine
        if engine not in BUILD_ENGINES:
            raise ValueError(
                f"unknown build engine {engine!r} (from REPRO_BUILD_ENGINE); "
                f"expected one of {BUILD_ENGINES}"
            )
        return engine
    if engine not in BUILD_ENGINES:
        raise ValueError(
            f"unknown build engine {engine!r}; expected one of {BUILD_ENGINES}"
        )
    return engine


# ----------------------------------------------------------------------
# cost replay: the recursive builder's accounting, as plain floats
# ----------------------------------------------------------------------
def _charge_into(fr: list, work: int, depth: float | None = None) -> None:
    """Replays ``tracker.charge`` into a [work, depth] frame accumulator."""
    if depth is None:
        depth = math.log2(work) if work > 1 else 1.0
    fr[0] += work
    fr[1] += depth


def _merge_parallel(fr: list, costs: list, fanout: int) -> None:
    """Replays ``tracker.merge_parallel`` (sum work / max depth + fork)."""
    if not costs:
        return
    fr[0] += sum(c[0] for c in costs) + fanout
    fr[1] += max(c[1] for c in costs) + math.log2(max(fanout, 2))


# ----------------------------------------------------------------------
# the batched builder
# ----------------------------------------------------------------------
def build_batched(tree) -> None:
    """Populate ``tree``'s node arrays level-at-a-time (object median).

    Structural pass: a pure-Python mirror of ``KDTree._build`` that
    assigns vEB slots, marks leaves, wires children, groups every
    median split by global tree depth, and replays the recursion's cost
    accounting.  Point pass: per depth, one 2-D ``argpartition`` over
    all of that depth's segments; then leaf boxes via ``reduceat`` and
    internal boxes bottom-up.  The result is bitwise-identical to the
    recursive build, including the work/depth charges.
    """
    from .tree import _SEQ_CUTOFF, hyperceiling

    n = tree.n_points
    if n == 0:
        return
    dim = tree.dim
    leaf_size = tree.leaf_size

    # (idx, lo, hi) of every internal node, grouped by global depth;
    # split dim at depth t is t % dim (the recursion cycles dimensions)
    splits_by_depth: list[list] = [[] for _ in range(tree.levels)]
    leaves: list = []

    def rec(lo, hi, idx, l, top, fr, depth_t, frontier_out):
        # mirrors _build.build_rec; fr is the enclosing cost frame
        m = hi - lo
        if l == 1:
            tree.used[idx] = True
            tree.start[idx] = lo
            tree.end[idx] = hi
            tree.live[idx] = m
            _charge_into(fr, max(m, 1))
            if top and m >= 2:
                _charge_into(fr, m, math.log2(m) if m > 1 else 1.0)
                mid = lo + m // 2
                tree.split_dim[idx] = depth_t % dim
                splits_by_depth[depth_t].append((idx, lo, hi))
                frontier_out.append((idx, lo, mid, hi, depth_t))
            else:
                tree.is_leaf[idx] = True
                leaves.append((idx, lo))
            return
        if m <= leaf_size or m < 2:
            tree.used[idx] = True
            tree.start[idx] = lo
            tree.end[idx] = hi
            tree.live[idx] = m
            _charge_into(fr, max(m, 1))
            tree.is_leaf[idx] = True
            leaves.append((idx, lo))
            return

        lb = hyperceiling((l + 1) // 2)
        lt = l - lb

        frontier: list = []
        rec(lo, hi, idx, lt, True, fr, depth_t, frontier)

        idx_b = idx + (1 << lt) - 1
        subtree_slots = (1 << lb) - 1
        tasks = []
        pos = idx_b
        for (pidx, plo, pmid, phi, pdepth) in frontier:
            for child, (clo, chi) in (("L", (plo, pmid)), ("R", (pmid, phi))):
                cidx = pos
                pos += subtree_slots
                if chi - clo == 0:
                    continue
                if child == "L":
                    tree.left[pidx] = cidx
                else:
                    tree.right[pidx] = cidx
                tasks.append((clo, chi, cidx, lb, top, pdepth + 1))

        costs = []
        for (clo, chi, cidx, cl, ctop, cdepth) in tasks:
            child_fr = [0.0, 0.0]
            local: list = []
            rec(clo, chi, cidx, cl, ctop, child_fr, cdepth, local)
            costs.append(child_fr)
            frontier_out.extend(local)
        # same composition the recursive build performs: parallel_do for
        # big fan-outs, fork_costs otherwise (identical merge arithmetic)
        if m > _SEQ_CUTOFF and len(tasks) > 1:
            _merge_parallel(fr, costs, len(tasks))
        else:
            _merge_parallel(fr, costs, len(costs) or 1)

    root_fr = [0.0, 0.0]
    rec(0, n, 0, tree.levels, False, root_fr, 0, [])
    charge(root_fr[0], root_fr[1])

    # --- point pass: one argpartition per (depth, segment size) -------
    perm = tree.perm
    points = tree.points
    for t, splits in enumerate(splits_by_depth):
        if not splits:
            continue
        cols = points[:, t % dim]
        # object-median halving keeps segment sizes within two values
        # per depth, so this groups into at most a couple of kernels
        by_size: dict[int, list] = {}
        for (idx, lo, hi) in splits:
            by_size.setdefault(hi - lo, []).append((idx, lo))
        for m, group in by_size.items():
            half = m // 2
            idxs = np.array([g[0] for g in group], dtype=np.int64)
            starts = np.array([g[1] for g in group], dtype=np.int64)
            seg = starts[:, None] + np.arange(m, dtype=np.int64)[None, :]
            rows = perm[seg]
            vals = cols[rows]
            order = np.argpartition(vals, half, axis=1)
            perm[seg] = np.take_along_axis(rows, order, axis=1)
            tree.split_val[idxs] = np.take_along_axis(
                vals, order[:, half : half + 1], axis=1
            )[:, 0]

    # --- boxes: leaves tile [0, n), internal combine bottom-up --------
    leaves.sort(key=lambda e: e[1])
    lidx = np.array([e[0] for e in leaves], dtype=np.int64)
    lstarts = np.array([e[1] for e in leaves], dtype=np.int64)
    laid = points[perm]
    tree.box_lo[lidx] = np.minimum.reduceat(laid, lstarts, axis=0)
    tree.box_hi[lidx] = np.maximum.reduceat(laid, lstarts, axis=0)
    for t in range(len(splits_by_depth) - 1, -1, -1):
        if not splits_by_depth[t]:
            continue
        ii = np.array([s[0] for s in splits_by_depth[t]], dtype=np.int64)
        li = tree.left[ii]
        ri = tree.right[ii]
        tree.box_lo[ii] = np.minimum(tree.box_lo[li], tree.box_lo[ri])
        tree.box_hi[ii] = np.maximum(tree.box_hi[li], tree.box_hi[ri])
