"""Dual-tree all-nearest-neighbors.

For "every point's nearest neighbor" workloads (the EMST's base case,
boruvka steps, k-NN graph with k=1), the dual-tree traversal beats
point-at-a-time searches: node pairs prune when the box distance
exceeds every query's current bound.  Classic Callahan–Kosaraju /
Gray–Moore style.
"""

from __future__ import annotations

import numpy as np

from ..core.distance import cross_dists_sq
from ..core.points import as_array
from ..parlay.workdepth import charge
from .tree import KDTree

__all__ = ["all_nearest_neighbors"]

_BRUTE = 1024


def all_nearest_neighbors(points, engine: str | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Nearest neighbor of every point (excluding itself).

    Returns (dists, ids): Euclidean distance and index of each point's
    nearest other point.

    ``engine="batched"`` (default) runs the whole point set as one
    vectorized 1-NN batch over the frontier engine, banning each
    query's own id so duplicates still pair up with each other;
    ``engine="recursive"`` uses the classic dual-tree traversal.
    """
    from .batch import BatchKNNBuffers, batched_knn_into, resolve_engine

    pts = as_array(points)
    n = len(pts)
    if n < 2:
        raise ValueError("need at least 2 points")
    if resolve_engine(engine) == "batched":
        tree = KDTree(pts, leaf_size=16)
        buf = BatchKNNBuffers(n, 1)
        batched_knn_into(tree, pts, buf, ban=np.arange(n, dtype=np.int64))
        d, i = buf.extract(1, exclude_self=False)
        return np.sqrt(d[:, 0]), i[:, 0]
    tree = KDTree(pts, leaf_size=16)
    best_d = np.full(n, np.inf)
    best_i = np.full(n, -1, dtype=np.int64)

    def node_bound(q: int) -> float:
        """Max of the current bounds over query points in node q."""
        ids = tree.node_points(q)
        charge(max(len(ids), 1))
        return float(best_d[ids].max()) if len(ids) else 0.0

    def box_dist(a: int, b: int) -> float:
        gap = np.maximum(tree.box_lo[a] - tree.box_hi[b], 0.0) + np.maximum(
            tree.box_lo[b] - tree.box_hi[a], 0.0
        )
        return float(gap @ gap)

    def dual(q: int, r: int) -> None:
        charge(1, 1)
        if box_dist(q, r) >= node_bound(q):
            return
        nq = int(tree.end[q] - tree.start[q])
        nr = int(tree.end[r] - tree.start[r])
        if nq * nr <= _BRUTE or (tree.is_leaf[q] and tree.is_leaf[r]):
            qi = tree.node_points(q)
            ri = tree.node_points(r)
            if len(qi) == 0 or len(ri) == 0:
                return
            d2 = cross_dists_sq(pts[qi], pts[ri])
            if q == r:
                np.fill_diagonal(d2, np.inf)
            else:
                same = qi[:, None] == ri[None, :]
                d2[same] = np.inf
            j = np.argmin(d2, axis=1)
            dmin = d2[np.arange(len(qi)), j]
            better = dmin < best_d[qi]
            best_d[qi[better]] = dmin[better]
            best_i[qi[better]] = ri[j[better]]
            return
        # recurse: split the bigger node; visit nearer ref child first
        if (nq >= nr and not tree.is_leaf[q]) or tree.is_leaf[r]:
            for child in (int(tree.left[q]), int(tree.right[q])):
                if child >= 0:
                    dual(child, r)
        else:
            kids = [int(tree.left[r]), int(tree.right[r])]
            kids = [k for k in kids if k >= 0]
            kids.sort(key=lambda k: box_dist(q, k))
            for k in kids:
                dual(q, k)

    dual(tree.root, tree.root)
    return np.sqrt(best_d), best_i
