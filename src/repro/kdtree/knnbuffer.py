"""The k-NN buffer of ParGeo Appendix C.1.3.

A buffer of capacity 2k holding candidate neighbors.  Inserting appends;
when the buffer fills, a selection partition keeps the k nearest and
discards the rest — amortized O(1) per insert.  ``bound`` is the current
k-th nearest distance (infinity until k candidates have been seen),
used by the kd-tree search to prune subtrees.
"""

from __future__ import annotations

import numpy as np

from ..parlay.workdepth import charge

__all__ = ["KNNBuffer"]


class KNNBuffer:
    """Buffer of the current k nearest neighbors of one query point."""

    __slots__ = ("k", "dists", "ids", "count", "bound")

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.dists = np.empty(2 * k, dtype=np.float64)
        self.ids = np.empty(2 * k, dtype=np.int64)
        self.count = 0
        self.bound = np.inf

    def _compact(self) -> None:
        """Selection-partition down to the k nearest candidates."""
        charge(self.count, 1)
        k = self.k
        if self.count <= k:
            if self.count == k:
                self.bound = float(np.max(self.dists[: self.count]))
            return
        sel = np.argpartition(self.dists[: self.count], k - 1)[:k]
        self.dists[:k] = self.dists[sel]
        self.ids[:k] = self.ids[sel]
        self.count = k
        self.bound = float(np.max(self.dists[:k]))

    def insert(self, dist: float, pid: int) -> None:
        """Add one candidate (squared distance, point id)."""
        if dist >= self.bound:
            return
        charge(1, 1)
        self.dists[self.count] = dist
        self.ids[self.count] = pid
        self.count += 1
        if self.count == 2 * self.k:
            self._compact()
        elif self.count == self.k and np.isinf(self.bound):
            # bound becomes finite once k candidates exist
            self.bound = float(np.max(self.dists[: self.count]))

    def insert_batch(self, dists: np.ndarray, pids: np.ndarray) -> None:
        """Add many candidates at once (vectorized leaf processing)."""
        m = len(dists)
        if m == 0:
            return
        charge(m, 1)
        keep = dists < self.bound
        dists = dists[keep]
        pids = pids[keep]
        m = len(dists)
        i = 0
        while i < m:
            space = 2 * self.k - self.count
            take = min(space, m - i)
            self.dists[self.count : self.count + take] = dists[i : i + take]
            self.ids[self.count : self.count + take] = pids[i : i + take]
            self.count += take
            i += take
            if self.count >= 2 * self.k or (self.count >= self.k and np.isinf(self.bound)):
                self._compact()
        if self.count >= self.k:
            self._compact()

    def result(self, sort: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, ids) of the k nearest seen so far.

        Distances are *squared* Euclidean.  If fewer than k candidates
        were inserted, returns what exists.
        """
        self._compact()
        m = min(self.count, self.k)
        d = self.dists[:m].copy()
        i = self.ids[:m].copy()
        if sort:
            order = np.argsort(d, kind="stable")
            d, i = d[order], i[order]
        return d, i

    def full(self) -> bool:
        """True once k candidates have been collected."""
        return self.count >= self.k
