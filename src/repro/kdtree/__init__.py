"""``repro.kdtree`` — static cache-oblivious (vEB-layout) kd-tree.

Module (1) of ParGeo: construction (Alg. 1), data-parallel k-NN
(App. C.1.3), range search, and parallel batch deletion (Alg. 2).
"""

from .allnn import all_nearest_neighbors
from .batch import (
    BatchKNNBuffers,
    batched_knn,
    batched_knn_into,
    default_engine,
    resolve_engine,
    set_default_engine,
)
from .build import (
    BUILD_ENGINES,
    build_batched,
    default_build_engine,
    resolve_build_engine,
    set_default_build_engine,
)
from .delete import erase
from .knn import extract_knn_results, knn, knn_into, knn_single
from .knnbuffer import KNNBuffer
from .range_search import (
    range_count_box,
    range_query_ball,
    range_query_ball_batch,
    range_query_batch,
    range_query_box,
)
from .tree import KDTree, OBJECT_MEDIAN, SPATIAL_MEDIAN, hyperceiling

__all__ = [
    "BUILD_ENGINES",
    "BatchKNNBuffers",
    "KDTree",
    "KNNBuffer",
    "OBJECT_MEDIAN",
    "all_nearest_neighbors",
    "SPATIAL_MEDIAN",
    "batched_knn",
    "batched_knn_into",
    "build_batched",
    "default_build_engine",
    "default_engine",
    "erase",
    "resolve_build_engine",
    "resolve_engine",
    "set_default_build_engine",
    "set_default_engine",
    "extract_knn_results",
    "hyperceiling",
    "knn",
    "knn_into",
    "knn_single",
    "range_count_box",
    "range_query_ball",
    "range_query_ball_batch",
    "range_query_batch",
    "range_query_box",
]
