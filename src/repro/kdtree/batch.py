"""Batched array-at-a-time kd-tree query engine.

The recursive query paths (:mod:`.knn`, :mod:`.range_search`) walk the
tree once per query point, paying thousands of interpreter-level node
visits per query.  This module executes an *entire query batch*
simultaneously: a structure-of-arrays frontier of ``(query, node)``
pairs advances one step per iteration, with every geometric test — box
distance pruning against ``box_lo``/``box_hi``, split-plane sidedness,
bulk leaf ingestion — performed by one vectorized numpy kernel over the
whole frontier.

**k-NN** is order-sensitive (the pruning bound tightens as candidates
arrive), so the engine runs a *lock-step DFS*: each query owns a tiny
explicit stack replaying exactly the recursion of ``knn._search``, and
one engine step pops the top entry of every active query at once.  The
per-query visit sequence — and therefore the visit set, the candidate
insertion order, and every ``KNNBuffer`` compaction — is identical to
the recursive path, so results are bitwise-equal and the work/depth
charges match.

**Range search** has no adaptive bound, so it uses a plain breadth-
first frontier; emitted hits are re-ordered by permutation position,
which is exactly the DFS emission order of the recursive collector.

**Cost accounting** is charged per visit into per-query accumulators
(same constants as the recursive path charges per node), then composed
with :func:`repro.parlay.workdepth.charge_blocked` using the *same*
block structure the recursive path hands to the scheduler — so the
simulated-speedup numbers are unchanged: only wall-clock drops.

The engine is selected with ``engine="batched" | "recursive"`` on the
query entry points, defaulting to ``REPRO_QUERY_ENGINE`` (batched).
"""

from __future__ import annotations

import os

import numpy as np

from ..core.points import as_array
from ..obs.span import span
from ..parlay.primitives import query_blocks
from ..parlay.workdepth import charge, charge_blocked
from .tree import KDTree

__all__ = [
    "ENGINES",
    "BatchKNNBuffers",
    "batched_allnn_on_tree",
    "batched_knn",
    "batched_knn_into",
    "batched_range_query_batch",
    "batched_range_query_ball_batch",
    "default_engine",
    "execute_requests",
    "resolve_engine",
    "set_default_engine",
]

#: Recognized query engines.
ENGINES = ("batched", "recursive")

_default_engine = os.environ.get("REPRO_QUERY_ENGINE", "batched")


def default_engine() -> str:
    """The engine used when a query is issued without ``engine=``."""
    return _default_engine


def set_default_engine(name: str) -> None:
    """Set the process-wide default query engine."""
    global _default_engine
    if name not in ENGINES:
        raise ValueError(f"unknown query engine {name!r}; expected one of {ENGINES}")
    _default_engine = name


def resolve_engine(engine: str | None) -> str:
    """Validate an ``engine=`` argument, applying the default for None."""
    if engine is None:
        engine = _default_engine
        if engine not in ENGINES:
            raise ValueError(
                f"unknown query engine {engine!r} (from REPRO_QUERY_ENGINE); "
                f"expected one of {ENGINES}"
            )
        return engine
    if engine not in ENGINES:
        raise ValueError(f"unknown query engine {engine!r}; expected one of {ENGINES}")
    return engine


def _ragged_arange(lens: np.ndarray) -> np.ndarray:
    """[0..lens[0]), [0..lens[1]), ... concatenated."""
    total = int(lens.sum())
    out = np.arange(total, dtype=np.int64)
    return out - np.repeat(np.cumsum(lens) - lens, lens)


def _charge_like(w: np.ndarray) -> np.ndarray:
    """Default depth of ``charge(w)``: log2(w) for w > 1 else 1."""
    w = np.asarray(w, dtype=np.float64)
    return np.where(w > 1, np.log2(np.maximum(w, 2.0)), 1.0)


# ----------------------------------------------------------------------
# Vectorized k-NN buffers (structure-of-arrays KNNBuffer batch)
# ----------------------------------------------------------------------
class BatchKNNBuffers:
    """``m`` KNNBuffer(k) instances stored as flat arrays.

    Semantics (candidate filtering, chunked insertion, selection
    compaction, bound updates) replicate :class:`~.knnbuffer.KNNBuffer`
    exactly, including the charge sequence, so a batched search is
    indistinguishable from ``m`` scalar buffers fed in the same order.

    Per-query (work, depth) charges accumulate in ``qwork``/``qdepth``
    and are flushed by the engine with the block composition of the
    recursive path.
    """

    __slots__ = ("m", "k", "cap", "dists", "ids", "count", "bound", "qwork", "qdepth")

    def __init__(self, m: int, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.m = m
        self.k = k
        self.cap = 2 * k
        self.dists = np.empty((m, self.cap), dtype=np.float64)
        self.ids = np.empty((m, self.cap), dtype=np.int64)
        self.count = np.zeros(m, dtype=np.int64)
        self.bound = np.full(m, np.inf)
        self.qwork = np.zeros(m, dtype=np.float64)
        self.qdepth = np.zeros(m, dtype=np.float64)

    # -- cost flushing -----------------------------------------------------
    def flush_blocked(self, grain: int) -> None:
        """Charge accumulated per-query costs as parallel query blocks."""
        charge_blocked(self.qwork, self.qdepth, query_blocks(self.m, grain=grain))
        self.qwork[:] = 0.0
        self.qdepth[:] = 0.0

    def flush_serial(self) -> None:
        """Charge accumulated per-query costs as one serial scan."""
        charge(float(self.qwork.sum()), float(self.qdepth.sum()))
        self.qwork[:] = 0.0
        self.qdepth[:] = 0.0

    # -- KNNBuffer._compact, vectorized ------------------------------------
    def _compact(self, rows: np.ndarray) -> None:
        cnt = self.count[rows]
        self.qwork[rows] += cnt
        self.qdepth[rows] += 1.0
        at_k = rows[cnt == self.k]
        if len(at_k):
            self.bound[at_k] = self.dists[at_k, : self.k].max(axis=1)
        over = rows[cnt > self.k]
        if len(over):
            # selection-partition per distinct fill level so each row sees
            # the exact argpartition the scalar buffer would run
            for c in np.unique(self.count[over]):
                sub = over[self.count[over] == c]
                d = self.dists[sub, :c]
                sel = np.argpartition(d, self.k - 1, axis=1)[:, : self.k]
                self.dists[sub, : self.k] = np.take_along_axis(d, sel, axis=1)
                self.ids[sub, : self.k] = np.take_along_axis(
                    self.ids[sub, :c], sel, axis=1
                )
            self.count[over] = self.k
            self.bound[over] = self.dists[over, : self.k].max(axis=1)

    # -- KNNBuffer.insert_batch, vectorized over one candidate block
    #    per query -----------------------------------------------------------
    def insert_grouped(
        self,
        rows: np.ndarray,
        cand_d: np.ndarray,
        cand_g: np.ndarray,
        lens: np.ndarray,
    ) -> None:
        """Insert one candidate segment per row (flat, grouped by row).

        ``rows`` must be unique query indices with ``lens > 0``; the
        flat ``cand_d``/``cand_g`` hold each row's candidates back to
        back in insertion order.
        """
        nr = len(rows)
        if nr == 0:
            return
        self.qwork[rows] += lens
        self.qdepth[rows] += 1.0

        rowrep = np.repeat(np.arange(nr, dtype=np.int64), lens)
        keep = cand_d < self.bound[rows][rowrep]
        kd = cand_d[keep]
        kg = cand_g[keep]
        klen = np.bincount(rowrep[keep], minlength=nr).astype(np.int64)
        koff = np.cumsum(klen) - klen
        consumed = np.zeros(nr, dtype=np.int64)
        rem = klen.copy()

        act = np.flatnonzero(rem > 0)
        while len(act):
            q = rows[act]
            space = self.cap - self.count[q]
            take = np.minimum(space, rem[act])
            ins = take > 0
            if np.any(ins):
                pos = act[ins]
                qi = rows[pos]
                t = take[ins]
                rep = np.repeat(np.arange(len(pos), dtype=np.int64), t)
                within = _ragged_arange(t)
                src = (koff[pos] + consumed[pos])[rep] + within
                drow = qi[rep]
                dcol = self.count[qi][rep] + within
                self.dists[drow, dcol] = kd[src]
                self.ids[drow, dcol] = kg[src]
                self.count[qi] += t
                consumed[pos] += t
                rem[pos] -= t
            cq = self.count[q]
            needc = (cq >= self.cap) | ((cq >= self.k) & np.isinf(self.bound[q]))
            if np.any(needc):
                self._compact(q[needc])
            act = act[rem[act] > 0]

        fin = rows[self.count[rows] >= self.k]
        if len(fin):
            self._compact(fin)

    # -- extract_knn_results + KNNBuffer.result, vectorized -----------------
    def extract(self, k: int, exclude_self: bool) -> tuple[np.ndarray, np.ndarray]:
        """Final (dists, ids) of shape (m, k), rows sorted by distance."""
        m = self.m
        self._compact(np.arange(m, dtype=np.int64))

        cnt = self.count
        col = np.arange(self.cap)
        valid = col[None, :] < cnt[:, None]
        d_pad = np.where(valid, self.dists, np.inf)
        order = np.argsort(d_pad, axis=1, kind="stable")
        d_sorted = np.take_along_axis(d_pad, order, axis=1)
        i_sorted = np.where(
            np.take_along_axis(valid, order, axis=1),
            np.take_along_axis(self.ids, order, axis=1),
            -1,
        )
        navail = np.minimum(cnt, self.k)
        if exclude_self:
            # drop the closest zero-distance hit (the query itself)
            hit = (navail > 0) & (d_sorted[:, 0] <= 1e-18)
            shift = np.where(hit, 1, 0)
            take_cols = shift[:, None] + col[None, : self.cap - 1]
            d_sorted = np.take_along_axis(d_pad, order, axis=1)
            d_sorted = np.take_along_axis(d_sorted, take_cols, axis=1)
            i_sorted = np.take_along_axis(i_sorted, take_cols, axis=1)
            navail = navail - shift
            # the non-hit branch of the scalar code truncates to k first;
            # both branches below are clipped to k columns anyway
        navail = np.minimum(navail, k)
        dists = np.full((m, k), np.inf)
        ids = np.full((m, k), -1, dtype=np.int64)
        w = min(k, d_sorted.shape[1])
        cols = np.arange(w)
        fill = cols[None, :] < navail[:, None]
        dists[:, :w] = np.where(fill, d_sorted[:, :w], np.inf)
        ids[:, :w] = np.where(fill, i_sorted[:, :w], -1)

        # charges of extract_knn_results: per-query result() compaction,
        # composed over grain-256 blocks (already accumulated by _compact)
        self.flush_blocked(grain=256)
        return dists, ids


# ----------------------------------------------------------------------
# Lock-step DFS k-NN search
# ----------------------------------------------------------------------
# stack entries encode (node << 1) | kind
_VISIT = 0  # run _search(node)
_SECOND = 1  # post-first-child continuation of _search(node)


def _live_at(tree: KDTree, nodes: np.ndarray) -> np.ndarray:
    """tree.live[nodes] that tolerates -1 entries (returns 0 for them)."""
    safe = np.where(nodes >= 0, nodes, 0)
    return np.where(nodes >= 0, tree.live[safe], 0)


def _frontier_knn(
    tree: KDTree,
    qs: np.ndarray,
    buf: BatchKNNBuffers,
    qids: np.ndarray,
    ban: np.ndarray | None,
) -> None:
    """Advance every query's DFS of ``knn._search`` in lock step.

    ``qids`` are the buffer rows driven by this call; ``ban`` optionally
    holds one global point id per row that must never enter the buffer
    (used by all-NN to exclude each query's own point by identity).
    """
    d = tree.dim
    visit_w = 2 * d + 4
    maxstack = tree.levels + 3
    nq = len(qids)
    stack = np.zeros((nq, maxstack), dtype=np.int64)
    sp = np.zeros(nq, dtype=np.int64)
    if tree.live[tree.root] > 0:
        stack[:, 0] = tree.root << 1
        sp[:] = 1

    act = np.flatnonzero(sp > 0)
    while len(act):
        sp[act] -= 1
        ent = stack[act, sp[act]]
        kind = ent & 1
        node = ent >> 1

        vmask = kind == _VISIT
        vrow = act[vmask]
        vnode = node[vmask]
        ing_rows = []
        ing_nodes = []
        if len(vrow):
            # per-node box/plane arithmetic charge of _search
            buf.qwork[qids[vrow]] += visit_w
            buf.qdepth[qids[vrow]] += 1.0
            leaf = tree.is_leaf[vnode]
            lrow, lnode = vrow[leaf], vnode[leaf]
            if len(lrow):
                ing_rows.append(lrow)
                ing_nodes.append(lnode)
            irow, inode = vrow[~leaf], vnode[~leaf]
            if len(irow):
                sd = tree.split_dim[inode]
                go_left = qs[irow, sd] <= tree.split_val[inode]
                first = np.where(go_left, tree.left[inode], tree.right[inode])
                # LIFO: continuation below the first-child visit
                stack[irow, sp[irow]] = (inode << 1) | _SECOND
                sp[irow] += 1
                okf = (first >= 0) & (_live_at(tree, first) > 0)
                frow = irow[okf]
                if len(frow):
                    stack[frow, sp[frow]] = first[okf] << 1
                    sp[frow] += 1

        srow = act[~vmask]
        snode = node[~vmask]
        if len(srow):
            sd = tree.split_dim[snode]
            go_left = qs[srow, sd] <= tree.split_val[snode]
            second = np.where(go_left, tree.right[snode], tree.left[snode])
            ok = (second >= 0) & (_live_at(tree, second) > 0)
            srow, second = srow[ok], second[ok]
            if len(srow):
                # still filling AND no externally seeded bound: descend
                # unconditionally (paper C.1.3).  A seeded row (finite
                # bound before the buffer fills) must keep pruning even
                # while underfull — that is the point of the seed.
                notfull = (buf.count[qids[srow]] < buf.k) & np.isinf(
                    buf.bound[qids[srow]]
                )
                prow = srow[notfull]
                if len(prow):
                    stack[prow, sp[prow]] = second[notfull] << 1
                    sp[prow] += 1
                frow, fnode = srow[~notfull], second[~notfull]
                if len(frow):
                    lo = tree.box_lo[fnode]
                    hi = tree.box_hi[fnode]
                    qq = qs[frow]
                    gap = np.maximum(lo - qq, 0.0) + np.maximum(qq - hi, 0.0)
                    dist2 = np.einsum("ij,ij->i", gap, gap)
                    near = dist2 < buf.bound[qids[frow]]
                    frow, fnode = frow[near], fnode[near]
                    if len(frow):
                        qq = qq[near]
                        lo, hi = lo[near], hi[near]
                        far = np.maximum(np.abs(qq - lo), np.abs(qq - hi))
                        far2 = np.einsum("ij,ij->i", far, far)
                        whole = far2 < buf.bound[qids[frow]]
                        wrow, wnode = frow[whole], fnode[whole]
                        if len(wrow):
                            # box wholly inside the k-NN ball: take all
                            ing_rows.append(wrow)
                            ing_nodes.append(wnode)
                        rrow, rnode = frow[~whole], fnode[~whole]
                        if len(rrow):
                            stack[rrow, sp[rrow]] = rnode << 1
                            sp[rrow] += 1

        if ing_rows:
            _ingest(
                tree,
                qs,
                buf,
                qids,
                np.concatenate(ing_rows),
                np.concatenate(ing_nodes),
                ban,
            )
        act = act[sp[act] > 0]


def _ingest(
    tree: KDTree,
    qs: np.ndarray,
    buf: BatchKNNBuffers,
    qids: np.ndarray,
    rows: np.ndarray,
    nodes: np.ndarray,
    ban: np.ndarray | None,
) -> None:
    """Bulk `_ingest_subtree`: every live point under nodes[i] feeds
    the buffer of rows[i].  At most one node per row per call."""
    start = tree.start[nodes]
    lens = tree.end[nodes] - start
    rowrep = np.repeat(np.arange(len(rows), dtype=np.int64), lens)
    pos = np.repeat(start, lens) + _ragged_arange(lens)
    pids = tree.perm[pos]
    am = tree.alive[pids]
    pids, rowrep = pids[am], rowrep[am]
    if ban is not None:
        okb = tree.gids[pids] != ban[rows[rowrep]]
        pids, rowrep = pids[okb], rowrep[okb]
    klen = np.bincount(rowrep, minlength=len(rows)).astype(np.int64)
    nz = klen > 0
    if not np.any(nz):
        return
    # distance-computation charge of _ingest_subtree
    w = klen[nz] * tree.dim
    r = rows[nz]
    buf.qwork[qids[r]] += w
    buf.qdepth[qids[r]] += _charge_like(w)

    diff = tree.points[pids] - qs[rows[rowrep]]
    d2 = np.einsum("ij,ij->i", diff, diff)
    gid = tree.gids[pids]
    buf.insert_grouped(qids[r], d2, gid, klen[nz])


def batched_knn_into(
    tree: KDTree,
    queries,
    buf: BatchKNNBuffers,
    ban: np.ndarray | None = None,
) -> None:
    """Array-at-a-time counterpart of :func:`repro.kdtree.knn.knn_into`.

    Accumulates into the batch buffers (reused across a BDL structure's
    trees) and charges exactly what the recursive path would: per-visit
    costs composed over grain-64 query blocks.
    """
    qs = as_array(queries)
    if len(qs) != buf.m:
        raise ValueError("queries and buffers length mismatch")
    if tree.root < 0:
        return
    blocks = query_blocks(len(qs), grain=64)
    if not blocks:
        return
    with span("kdtree.batch.frontier", batch=len(qs)):
        _frontier_knn(tree, qs, buf, np.arange(buf.m, dtype=np.int64), ban)
        charge_blocked(buf.qwork, buf.qdepth, blocks)
    buf.qwork[:] = 0.0
    buf.qdepth[:] = 0.0


def batched_knn(
    tree: KDTree, queries, k: int, exclude_self: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Batched engine behind :func:`repro.kdtree.knn.knn`."""
    qs = as_array(queries)
    kk = k + 1 if exclude_self else k
    buf = BatchKNNBuffers(len(qs), kk)
    batched_knn_into(tree, qs, buf)
    return buf.extract(k, exclude_self)


# ----------------------------------------------------------------------
# Breadth-first batched range search
# ----------------------------------------------------------------------
def _split_hits(m: int, hq: list, hp: list, perm: np.ndarray) -> list[np.ndarray]:
    """Reassemble per-query hit lists in recursive (DFS) emission order.

    The DFS collector emits hits in ascending permutation position, so
    sorting each query's hits by ``perm`` position reproduces its output
    array exactly.
    """
    results: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * m
    if not hq:
        return results
    q = np.concatenate(hq)
    p = np.concatenate(hp)
    order = np.lexsort((p, q))
    q, p = q[order], p[order]
    ids = perm[p]
    counts = np.bincount(q, minlength=m)
    offs = np.cumsum(counts) - counts
    for i in np.flatnonzero(counts):
        results[i] = ids[offs[i] : offs[i] + counts[i]]
    return results


def batched_range_query_batch(tree: KDTree, los, his, grain: int = 16) -> list[np.ndarray]:
    """Array-at-a-time batch of orthogonal (box) range queries."""
    los = np.asarray(los, dtype=np.float64)
    his = np.asarray(his, dtype=np.float64)
    m = len(los)
    blocks = query_blocks(m, grain=grain)
    if not blocks:
        return []
    qwork = np.zeros(m, dtype=np.float64)
    qdepth = np.zeros(m, dtype=np.float64)
    hq: list = []
    hp: list = []
    d = tree.dim

    with span("kdtree.batch.box", batch=m):
        if tree.root >= 0 and tree.live[tree.root] > 0:
            fq = np.arange(m, dtype=np.int64)
            fn = np.full(m, tree.root, dtype=np.int64)
            while len(fq):
                np.add.at(qwork, fq, 2 * d + 4)
                np.add.at(qdepth, fq, 1.0)
                nlo = tree.box_lo[fn]
                nhi = tree.box_hi[fn]
                qlo = los[fq]
                qhi = his[fq]
                keep = ~(np.any(nlo > qhi, axis=1) | np.any(nhi < qlo, axis=1))
                fq, fn = fq[keep], fn[keep]
                nlo, nhi, qlo, qhi = nlo[keep], nhi[keep], qlo[keep], qhi[keep]
                if not len(fq):
                    break
                contained = np.all(nlo >= qlo, axis=1) & np.all(nhi <= qhi, axis=1)
                crow, cnode = fq[contained], fn[contained]
                if len(crow):
                    _emit_whole(tree, crow, cnode, hq, hp)
                fq, fn = fq[~contained], fn[~contained]
                qlo, qhi = qlo[~contained], qhi[~contained]
                leaf = tree.is_leaf[fn]
                lrow, lnode = fq[leaf], fn[leaf]
                if len(lrow):
                    _emit_leaf_box(tree, los, his, lrow, lnode, hq, hp, qwork, qdepth)
                fq, fn = fq[~leaf], fn[~leaf]
                nxt_q = []
                nxt_n = []
                for child in (tree.left[fn], tree.right[fn]):
                    ok = (child >= 0) & (_live_at(tree, child) > 0)
                    nxt_q.append(fq[ok])
                    nxt_n.append(child[ok])
                fq = np.concatenate(nxt_q)
                fn = np.concatenate(nxt_n)

        results = _split_hits(m, hq, hp, tree.perm)
        charge_blocked(qwork, qdepth, blocks)
    return results


def _emit_whole(tree, rows, nodes, hq, hp) -> None:
    """Emit every live point under each node (contained case; uncharged,
    matching ``node_points`` in the recursive collector)."""
    start = tree.start[nodes]
    lens = tree.end[nodes] - start
    rowrep = np.repeat(rows, lens)
    pos = np.repeat(start, lens) + _ragged_arange(lens)
    am = tree.alive[tree.perm[pos]]
    hq.append(rowrep[am])
    hp.append(pos[am])


def _emit_leaf_box(tree, los, his, rows, nodes, hq, hp, qwork, qdepth) -> None:
    start = tree.start[nodes]
    lens = tree.end[nodes] - start
    rowrep = np.repeat(rows, lens)
    pos = np.repeat(start, lens) + _ragged_arange(lens)
    pids = tree.perm[pos]
    am = tree.alive[pids]
    pos, pids, rowrep = pos[am], pids[am], rowrep[am]
    klen = np.bincount(
        np.repeat(np.arange(len(rows), dtype=np.int64), lens)[am], minlength=len(rows)
    )
    nz = klen > 0
    if not np.any(nz):
        return
    w = klen[nz] * tree.dim
    np.add.at(qwork, rows[nz], w)
    np.add.at(qdepth, rows[nz], _charge_like(w))
    pts = tree.points[pids]
    inside = np.all((pts >= los[rowrep]) & (pts <= his[rowrep]), axis=1)
    hq.append(rowrep[inside])
    hp.append(pos[inside])


def batched_range_query_ball_batch(
    tree: KDTree, centers, radii, grain: int = 16
) -> list[np.ndarray]:
    """Array-at-a-time batch of spherical range queries."""
    cs = np.asarray(centers, dtype=np.float64)
    m = len(cs)
    r2 = np.square(np.broadcast_to(np.asarray(radii, dtype=np.float64), (m,)))
    blocks = query_blocks(m, grain=grain)
    if not blocks:
        return []
    qwork = np.zeros(m, dtype=np.float64)
    qdepth = np.zeros(m, dtype=np.float64)
    hq: list = []
    hp: list = []
    d = tree.dim

    with span("kdtree.batch.ball", batch=m):
        if tree.root >= 0 and tree.live[tree.root] > 0:
            fq = np.arange(m, dtype=np.int64)
            fn = np.full(m, tree.root, dtype=np.int64)
            while len(fq):
                np.add.at(qwork, fq, 2 * d + 4)
                np.add.at(qdepth, fq, 1.0)
                nlo = tree.box_lo[fn]
                nhi = tree.box_hi[fn]
                c = cs[fq]
                gap = np.maximum(nlo - c, 0.0) + np.maximum(c - nhi, 0.0)
                keep = np.einsum("ij,ij->i", gap, gap) <= r2[fq]
                fq, fn = fq[keep], fn[keep]
                nlo, nhi, c = nlo[keep], nhi[keep], c[keep]
                if not len(fq):
                    break
                far = np.maximum(np.abs(c - nlo), np.abs(c - nhi))
                contained = np.einsum("ij,ij->i", far, far) <= r2[fq]
                crow, cnode = fq[contained], fn[contained]
                if len(crow):
                    _emit_whole(tree, crow, cnode, hq, hp)
                fq, fn = fq[~contained], fn[~contained]
                leaf = tree.is_leaf[fn]
                lrow, lnode = fq[leaf], fn[leaf]
                if len(lrow):
                    _emit_leaf_ball(tree, cs, r2, lrow, lnode, hq, hp, qwork, qdepth)
                fq, fn = fq[~leaf], fn[~leaf]
                nxt_q = []
                nxt_n = []
                for child in (tree.left[fn], tree.right[fn]):
                    ok = (child >= 0) & (_live_at(tree, child) > 0)
                    nxt_q.append(fq[ok])
                    nxt_n.append(child[ok])
                fq = np.concatenate(nxt_q)
                fn = np.concatenate(nxt_n)

        results = _split_hits(m, hq, hp, tree.perm)
        charge_blocked(qwork, qdepth, blocks)
    return results


# ----------------------------------------------------------------------
# Heterogeneous-batch entry point (used by repro.serve)
# ----------------------------------------------------------------------
def batched_allnn_on_tree(tree: KDTree) -> tuple[np.ndarray, np.ndarray]:
    """1-NN of every *alive* point of an existing tree, banning self by id.

    Rows follow ascending alive point index; distances are Euclidean
    (not squared), matching :func:`repro.kdtree.allnn.all_nearest_neighbors`.
    """
    aids = np.flatnonzero(tree.alive)
    if len(aids) < 2:
        raise ValueError("allnn needs at least 2 alive points")
    qs = tree.points[aids]
    buf = BatchKNNBuffers(len(aids), 1)
    batched_knn_into(tree, qs, buf, ban=tree.gids[aids])
    d, i = buf.extract(1, exclude_self=False)
    return np.sqrt(d[:, 0]), i[:, 0]


def _range_box_results(index, los: np.ndarray, his: np.ndarray) -> list[np.ndarray]:
    """Per-query global-id hits for a box batch on a KDTree or BDL index."""
    if isinstance(index, KDTree):
        return [index.gids[ids] for ids in batched_range_query_batch(index, los, his)]
    return index.range_query_box_batch(los, his)


def _range_ball_results(index, centers: np.ndarray, radii: np.ndarray) -> list[np.ndarray]:
    if isinstance(index, KDTree):
        return [
            index.gids[ids]
            for ids in batched_range_query_ball_batch(index, centers, radii)
        ]
    return index.range_query_ball_batch(centers, radii)


def execute_requests(index, requests, costs_out: list | None = None) -> list:
    """Execute a *heterogeneous* batch of single-query requests.

    ``requests`` is a sequence of ``(kind, payload, params)`` where

    * ``("knn", q, {"k": k, "exclude_self": bool})`` — ``q`` of shape
      (d,); result ``(sq_dists, ids)``, each of shape (k,);
    * ``("box", box, {})`` — ``box`` of shape (2, d) holding (lo, hi);
      result: global ids inside the closed box;
    * ``("ball", (center, radius), {})`` — result: global ids within
      ``radius`` of ``center`` (per-request radii batch together);
    * ``("allnn", None, {})`` — result ``(dists, ids)`` over all alive
      points (KDTree indexes only);
    * ``("view", name, {"name": name})`` — the named materialized
      view's ``(answer, version)`` from the index's attached
      :class:`~repro.views.manager.ViewManager` (one lookup per group;
      requires a view-bearing dynamic dataset).

    Requests are grouped by ``(kind, params)`` preserving first-seen
    order and each group runs as ONE vectorized shot through the
    batched engine, so a mixed slab from the service's coalescer costs
    a handful of numpy dispatches instead of one tree walk per request.
    Results come back in input order and are bitwise-identical to
    running each request alone through the recursive engine.

    ``index`` is a :class:`KDTree` or a BDL-style index exposing
    ``knn`` / ``range_query_box_batch`` / ``range_query_ball_batch``;
    ids are global (``gids``) in either case.

    When ``costs_out`` is a list it is filled with one per-request
    *work weight* aligned to ``requests``: each group's execution is
    captured separately and its charged work divides evenly across the
    group's members (the engine runs a group as one vectorized shot, so
    within-group per-item work is not individually observable).  The
    weights are attribution inputs — see
    :func:`repro.obs.rtrace.partition_work` — and sum to the total work
    the batch charged, up to float re-association from the per-group
    capture.  Charge *composition* is unchanged: captures absorb
    serially into the enclosing frame, the same composition the
    uncaptured path records.
    """
    results: list = [None] * len(requests)
    groups: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for i, (kind, _payload, params) in enumerate(requests):
        key = (kind, tuple(sorted(dict(params).items())))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)

    if costs_out is not None:
        from ..parlay.workdepth import capture as _capture

        del costs_out[:]
        costs_out.extend([0.0] * len(requests))

    for key in order:
        kind, params = key[0], dict(key[1])
        idxs = groups[key]
        if costs_out is not None:
            with _capture() as _group_cost:
                _run_group(index, requests, results, kind, params, idxs)
            per_member = _group_cost.work / len(idxs)
            for i in idxs:
                costs_out[i] = per_member
        else:
            _run_group(index, requests, results, kind, params, idxs)
    return results


def _run_group(index, requests, results, kind, params, idxs) -> None:
    """One (kind, params) group as a single vectorized dispatch."""
    if kind == "knn":
        qs = np.stack([np.asarray(requests[i][1], dtype=np.float64) for i in idxs])
        d, g = index.knn(
            qs,
            params["k"],
            exclude_self=params.get("exclude_self", False),
            engine="batched",
        )
        for r, i in enumerate(idxs):
            results[i] = (d[r].copy(), g[r].copy())
    elif kind == "box":
        boxes = np.stack(
            [np.asarray(requests[i][1], dtype=np.float64) for i in idxs]
        )
        hits = _range_box_results(index, boxes[:, 0, :], boxes[:, 1, :])
        for r, i in enumerate(idxs):
            results[i] = hits[r]
    elif kind == "ball":
        centers = np.stack(
            [np.asarray(requests[i][1][0], dtype=np.float64) for i in idxs]
        )
        radii = np.array([float(requests[i][1][1]) for i in idxs])
        hits = _range_ball_results(index, centers, radii)
        for r, i in enumerate(idxs):
            results[i] = hits[r]
    elif kind == "allnn":
        if not isinstance(index, KDTree):
            raise ValueError("allnn requests require a static KDTree dataset")
        shared = batched_allnn_on_tree(index)
        for i in idxs:
            results[i] = shared
    elif kind == "view":
        manager = getattr(index, "views", None)
        if manager is None:
            raise ValueError(
                "view requests require a dataset with a ViewManager attached"
            )
        shared = manager.get(params["name"])
        for i in idxs:
            results[i] = shared
    else:
        raise ValueError(f"unknown request kind {kind!r}")


def _emit_leaf_ball(tree, cs, r2, rows, nodes, hq, hp, qwork, qdepth) -> None:
    start = tree.start[nodes]
    lens = tree.end[nodes] - start
    rowrep = np.repeat(rows, lens)
    pos = np.repeat(start, lens) + _ragged_arange(lens)
    pids = tree.perm[pos]
    am = tree.alive[pids]
    pos, pids, rowrep = pos[am], pids[am], rowrep[am]
    klen = np.bincount(
        np.repeat(np.arange(len(rows), dtype=np.int64), lens)[am], minlength=len(rows)
    )
    nz = klen > 0
    if not np.any(nz):
        return
    w = klen[nz] * tree.dim
    np.add.at(qwork, rows[nz], w)
    np.add.at(qdepth, rows[nz], _charge_like(w))
    diff = tree.points[pids] - cs[rowrep]
    d2 = np.einsum("ij,ij->i", diff, diff)
    inside = d2 <= r2[rowrep]
    hq.append(rowrep[inside])
    hp.append(pos[inside])
