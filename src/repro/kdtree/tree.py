"""Static kd-tree in van Emde Boas (cache-oblivious) layout.

Implements paper Algorithm 1 (parallel vEB construction): nodes live in
one contiguous array; each recursive step lays out the top "half" of the
tree (``l_t`` levels) followed by the ``2^{l_t}`` bottom subtrees
consecutively, which is exactly the vEB recursive layout of Agarwal et
al.  Splits are either by **object median** (median coordinate among the
points) or **spatial median** (midpoint of the node's box).

The tree stores a permutation of point indices; leaves reference
contiguous slices of it.  Deletion (paper Algorithm 2) tombstones points
and contracts the structure; see :mod:`repro.kdtree.delete`.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.bbox import BBox
from ..core.points import as_array
from ..obs.span import span
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge, fork_costs
from .build import build_batched, resolve_build_engine

__all__ = ["KDTree", "hyperceiling", "SPATIAL_MEDIAN", "OBJECT_MEDIAN"]

OBJECT_MEDIAN = "object"
SPATIAL_MEDIAN = "spatial"

#: Subproblems below this size build sequentially (task grain).
_SEQ_CUTOFF = 4096


def hyperceiling(n: int) -> int:
    """Smallest power of two >= n (paper footnote 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


class KDTree:
    """A static kd-tree over an (n, d) point array.

    Parameters
    ----------
    points:
        (n, d) array or PointSet.  The tree keeps a reference (it does
        not copy coordinates).
    split:
        ``'object'`` (object median) or ``'spatial'`` (spatial median).
    leaf_size:
        Target maximum points per leaf.
    engine:
        Construction engine: ``'batched'`` (level-at-a-time vectorized
        build, see :mod:`repro.kdtree.build`) or ``'recursive'`` (the
        per-node recursion below).  Defaults to ``REPRO_BUILD_ENGINE``.
        Both produce bitwise-identical trees and charges; spatial-median
        trees have data-dependent structure and always build via the
        recursive path.
    """

    def __init__(self, points, split: str = OBJECT_MEDIAN, leaf_size: int = 16, gids=None,
                 engine: str | None = None):
        pts = as_array(points)
        if split not in (OBJECT_MEDIAN, SPATIAL_MEDIAN):
            raise ValueError(f"unknown split rule {split!r}")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.points = pts
        # global point ids (used by BDL-trees whose points span many
        # static trees); defaults to local indices
        if gids is None:
            self.gids = np.arange(len(pts), dtype=np.int64)
        else:
            self.gids = np.asarray(gids, dtype=np.int64)
            if len(self.gids) != len(pts):
                raise ValueError("gids length mismatch")
        self.split = split
        self.leaf_size = leaf_size
        self.build_engine = resolve_build_engine(engine)
        n, d = pts.shape
        self.n_points = n
        self.dim = d

        # number of levels: enough that a balanced tree has <= leaf_size
        # points per leaf
        if n == 0:
            levels = 1
        else:
            levels = max(1, math.ceil(math.log2(max(1, n / leaf_size))) + 1)
        self.levels = levels
        nslots = (1 << levels) - 1

        # flat node storage (vEB order = array order)
        self.split_dim = np.full(nslots, -1, dtype=np.int32)
        self.split_val = np.zeros(nslots, dtype=np.float64)
        self.left = np.full(nslots, -1, dtype=np.int64)
        self.right = np.full(nslots, -1, dtype=np.int64)
        self.is_leaf = np.zeros(nslots, dtype=bool)
        self.used = np.zeros(nslots, dtype=bool)
        self.start = np.zeros(nslots, dtype=np.int64)
        self.end = np.zeros(nslots, dtype=np.int64)
        self.box_lo = np.zeros((nslots, d), dtype=np.float64)
        self.box_hi = np.zeros((nslots, d), dtype=np.float64)
        self.live = np.zeros(nslots, dtype=np.int64)

        self.perm = np.arange(n, dtype=np.int64)
        self.alive = np.ones(n, dtype=bool)
        self.n_alive = n
        self.root = 0 if n > 0 else -1
        # monotonic mutation counter: bumped whenever the live point set
        # changes, so result caches keyed on it can never serve stale data
        self.version = 0

        if n > 0:
            with span("kdtree.build", batch=n, split=split,
                      engine=self.build_engine):
                if self.build_engine == "batched" and split == OBJECT_MEDIAN:
                    build_batched(self)
                else:
                    self._build()

    # ------------------------------------------------------------------
    # Construction (paper Algorithm 1)
    # ------------------------------------------------------------------
    def _set_node(self, idx: int, lo: int, hi: int) -> None:
        self.used[idx] = True
        self.start[idx] = lo
        self.end[idx] = hi
        self.live[idx] = hi - lo
        seg = self.points[self.perm[lo:hi]]
        charge(max(hi - lo, 1))
        self.box_lo[idx] = seg.min(axis=0)
        self.box_hi[idx] = seg.max(axis=0)

    def _partition(self, lo: int, hi: int, dim: int) -> tuple[int, float]:
        """Partition perm[lo:hi] about a split on ``dim``.

        Returns (mid, split_val): left child gets [lo, mid), right
        [mid, hi), points with coordinate <= split_val on the left.
        Charges the parallel-partition cost W=m, D=log m.
        """
        m = hi - lo
        charge(m, math.log2(m) if m > 1 else 1.0)
        seg = self.perm[lo:hi]
        vals = self.points[seg, dim]
        if self.split == SPATIAL_MEDIAN:
            sv = 0.5 * (float(vals.min()) + float(vals.max()))
            mask = vals <= sv
            nl = int(np.count_nonzero(mask))
            if nl == 0 or nl == m:
                # degenerate spatial split: fall back to object median
                return self._object_partition(lo, hi, seg, vals)
            left_ids = seg[mask]  # copies: seg views perm, which we overwrite
            right_ids = seg[~mask]
            self.perm[lo : lo + nl] = left_ids
            self.perm[lo + nl : hi] = right_ids
            return lo + nl, sv
        return self._object_partition(lo, hi, seg, vals)

    def _object_partition(self, lo, hi, seg, vals) -> tuple[int, float]:
        m = hi - lo
        half = m // 2
        order = np.argpartition(vals, half)
        self.perm[lo:hi] = seg[order]
        sv = float(vals[order[half]])
        return lo + half, sv

    def _build(self) -> None:
        sched = get_scheduler()

        def build_rec(
            lo: int,
            hi: int,
            idx: int,
            cdim: int,
            l: int,
            top: bool,
            frontier_out: list,
        ) -> None:
            """BuildvEBRecursive (paper Alg. 1).

            ``frontier_out`` collects (node, lo, mid, hi) for base-case
            internal nodes of a TOP build, so the caller can wire their
            children to the roots of the bottom subtrees.  Each forked
            task collects into its own local list, merged in task order
            after the join — frontier order (and hence vEB slot
            assignment) is deterministic on every backend.
            """
            m = hi - lo
            if l == 1:
                if top and m >= 2:
                    # internal node: parallel median partition on cdim
                    self._set_node(idx, lo, hi)
                    mid, sv = self._partition(lo, hi, cdim)
                    self.split_dim[idx] = cdim
                    self.split_val[idx] = sv
                    # children are wired by the caller (frontier)
                    frontier_out.append((idx, lo, mid, hi))
                else:
                    self._set_node(idx, lo, hi)
                    self.is_leaf[idx] = True
                return
            if m <= self.leaf_size or m < 2:
                # short subtree: make a leaf here; descendant slots unused
                self._set_node(idx, lo, hi)
                self.is_leaf[idx] = True
                return

            lb = hyperceiling((l + 1) // 2)
            lt = l - lb

            # build top half (collects a frontier of split ranges)
            frontier: list = []
            build_rec(lo, hi, idx, cdim, lt, True, frontier)

            # lay out bottom subtrees consecutively after the top half
            idx_b = idx + (1 << lt) - 1
            subtree_slots = (1 << lb) - 1
            tasks = []
            pos = idx_b
            for (pidx, plo, pmid, phi) in frontier:
                for child, (clo, chi) in (("L", (plo, pmid)), ("R", (pmid, phi))):
                    cidx = pos
                    pos += subtree_slots
                    if chi - clo == 0:
                        continue
                    if child == "L":
                        self.left[pidx] = cidx
                    else:
                        self.right[pidx] = cidx
                    ndim = (cdim + lt) % self.dim
                    tasks.append((clo, chi, cidx, ndim, lb, top))

            def run_task(a):
                local: list = []
                build_rec(*a, local)
                return local

            thunks = [(lambda a=a: run_task(a)) for a in tasks]
            if m > _SEQ_CUTOFF and len(tasks) > 1:
                locals_by_task = sched.parallel_do(thunks)
            else:
                # inline execution, parallel cost composition (the
                # subtree builds are independent either way)
                locals_by_task = fork_costs(thunks)
            for local in locals_by_task:
                frontier_out.extend(local)

        build_rec(0, self.n_points, 0, 0, self.levels, False, [])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_box(self, idx: int) -> BBox:
        return BBox(self.box_lo[idx], self.box_hi[idx])

    def node_points(self, idx: int, alive_only: bool = True) -> np.ndarray:
        """Point ids stored under node ``idx``."""
        ids = self.perm[self.start[idx] : self.end[idx]]
        if alive_only:
            ids = ids[self.alive[ids]]
        return ids

    def gather_alive(self) -> np.ndarray:
        """Ids of all non-deleted points in the tree."""
        return self.perm[self.alive[self.perm]]

    def size(self) -> int:
        return self.n_alive

    def height(self) -> int:
        """Actual height of the built tree (root = height 1)."""
        if self.root < 0:
            return 0

        def h(i: int) -> int:
            if i < 0:
                return 0
            if self.is_leaf[i]:
                return 1
            return 1 + max(h(int(self.left[i])), h(int(self.right[i])))

        return h(self.root)

    def check_invariants(self) -> None:
        """Validate structural invariants (used by tests)."""
        if self.root < 0:
            return
        seen: list[int] = []

        def rec(i: int, lo_req: np.ndarray, hi_req: np.ndarray) -> int:
            assert self.used[i], f"unused node {i} reachable"
            ids = self.perm[self.start[i] : self.end[i]]
            pts = self.points[ids]
            assert np.all(pts >= self.box_lo[i] - 1e-12)
            assert np.all(pts <= self.box_hi[i] + 1e-12)
            seen.extend(ids.tolist())
            if self.is_leaf[i]:
                return len(ids)
            d = int(self.split_dim[i])
            sv = float(self.split_val[i])
            total = 0
            li, ri = int(self.left[i]), int(self.right[i])
            if li >= 0:
                lids = self.perm[self.start[li] : self.end[li]]
                assert np.all(self.points[lids, d] <= sv + 1e-12)
                total += rec(li, lo_req, hi_req)
            if ri >= 0:
                rids = self.perm[self.start[ri] : self.end[ri]]
                assert np.all(self.points[rids, d] >= sv - 1e-12)
                total += rec(ri, lo_req, hi_req)
            # internal node ranges must cover exactly the children
            assert total == len(ids), f"node {i}: child sizes {total} != {len(ids)}"
            return len(ids)

        n_seen = rec(self.root, self.box_lo[self.root], self.box_hi[self.root])
        assert n_seen == self.n_points

    # -- queries are provided by the sibling modules and re-exported on the
    #    class for convenience --------------------------------------------
    def knn(self, queries, k: int, exclude_self: bool = False, engine: str | None = None):
        from .knn import knn as _knn

        return _knn(self, queries, k, exclude_self=exclude_self, engine=engine)

    def knn_into(self, queries, buffers, exclude_self: bool = False):
        from .knn import knn_into as _knn_into

        return _knn_into(self, queries, buffers, exclude_self=exclude_self)

    def range_query_box(self, lo, hi):
        from .range_search import range_query_box as _rq

        return _rq(self, lo, hi)

    def range_query_ball(self, center, radius):
        from .range_search import range_query_ball as _rb

        return _rb(self, center, radius)

    def erase(self, point_coords) -> int:
        from .delete import erase as _erase

        return _erase(self, point_coords)
