"""Flat, picklable snapshots of kd-tree query state (``FlatTree``).

A built :class:`~repro.kdtree.tree.KDTree` already keeps its nodes in
flat vEB-order arrays; the only non-flat parts are the Python object
itself and its handful of scalars.  A **FlatTree** is the tree reduced
to exactly that: a byte-layout table (name, dtype, shape, offset) over
one contiguous buffer holding every query-relevant array — points,
gids, the vEB node arrays, the permutation and the alive mask — plus a
scalar spec.

This is the shape that real (process) parallelism rewards: the parent
packs a tree into a :class:`multiprocessing.shared_memory.SharedMemory`
block once per tree version, and workers *attach* — reconstructing a
fully functional ``KDTree`` whose arrays are zero-copy views into the
shared block — instead of unpickling Python node objects.  Queries on
an attached tree run the identical engine code on identical bytes, so
results are bitwise-equal and work/depth charges unchanged.

Attached arrays are marked read-only: queries never write tree state,
and a worker scribbling on a shared segment would corrupt every other
attacher.
"""

from __future__ import annotations

import numpy as np

from .tree import KDTree

__all__ = [
    "attach_tree",
    "pack_tree",
    "tree_nbytes",
    "tree_spec_arrays",
]

#: Query-relevant array attributes of a built KDTree.  ``points`` and
#: ``box_lo``/``box_hi`` are (n, d)-shaped; the rest are 1-D.
_ARRAY_FIELDS = (
    "points",
    "gids",
    "split_dim",
    "split_val",
    "left",
    "right",
    "is_leaf",
    "used",
    "start",
    "end",
    "box_lo",
    "box_hi",
    "live",
    "perm",
    "alive",
)

#: Scalars needed to reconstruct the object around the arrays.
_SCALAR_FIELDS = (
    "split",
    "leaf_size",
    "n_points",
    "dim",
    "levels",
    "n_alive",
    "root",
    "version",
)

_ALIGN = 64  # cache-line alignment for every packed array


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def tree_spec_arrays(tree: KDTree, offset: int = 0) -> tuple[list, int]:
    """Layout table for ``tree``'s arrays starting at ``offset``.

    Returns ``(table, end_offset)`` where each table row is
    ``(name, dtype_str, shape, offset)``.
    """
    table = []
    for name in _ARRAY_FIELDS:
        arr = getattr(tree, name)
        offset = _aligned(offset)
        table.append((name, arr.dtype.str, tuple(arr.shape), offset))
        offset += arr.nbytes
    return table, offset


def tree_nbytes(tree: KDTree, offset: int = 0) -> int:
    """Bytes needed to pack ``tree`` at ``offset`` (with alignment)."""
    return tree_spec_arrays(tree, offset)[1]


def pack_tree(tree: KDTree, buf, offset: int = 0) -> tuple[dict, int]:
    """Copy ``tree``'s arrays into ``buf`` (a writable buffer).

    Returns ``(spec, end_offset)``; ``spec`` is picklable and, together
    with the buffer, sufficient for :func:`attach_tree`.
    """
    table, end = tree_spec_arrays(tree, offset)
    for (name, dtype, shape, off) in table:
        src = getattr(tree, name)
        dst = np.ndarray(shape, dtype=dtype, buffer=buf, offset=off)
        dst[...] = src
    spec = {
        "arrays": table,
        "scalars": {name: getattr(tree, name) for name in _SCALAR_FIELDS},
    }
    return spec, end


def attach_tree(spec: dict, buf) -> KDTree:
    """Reconstruct a ``KDTree`` over zero-copy views into ``buf``.

    The returned tree answers every query (both engines) identically to
    the packed original; its arrays are read-only views, so it must not
    be mutated (no erase/insert) and must not outlive the buffer.
    """
    tree = KDTree.__new__(KDTree)
    for name, value in spec["scalars"].items():
        setattr(tree, name, value)
    for (name, dtype, shape, off) in spec["arrays"]:
        view = np.ndarray(shape, dtype=dtype, buffer=buf, offset=off)
        view.flags.writeable = False
        setattr(tree, name, view)
    return tree
