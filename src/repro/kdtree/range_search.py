"""Orthogonal (box) and spherical range search over the kd-tree.

The traversal takes whole subtrees whose bounding box is contained in
the query region, skips disjoint subtrees, and recurses on the rest —
the standard data-parallel range search ParGeo performs.
"""

from __future__ import annotations

import numpy as np

from ..parlay.workdepth import charge
from .tree import KDTree

__all__ = ["range_query_box", "range_query_ball", "range_count_box"]


def _collect_box(tree: KDTree, idx: int, lo: np.ndarray, hi: np.ndarray, out: list) -> None:
    if idx < 0 or tree.live[idx] == 0:
        return
    charge(2 * tree.dim + 4, 1)  # per-node box arithmetic
    nlo, nhi = tree.box_lo[idx], tree.box_hi[idx]
    if np.any(nlo > hi) or np.any(nhi < lo):
        return  # disjoint
    if np.all(nlo >= lo) and np.all(nhi <= hi):
        out.append(tree.node_points(idx))  # contained: take all
        return
    if tree.is_leaf[idx]:
        ids = tree.node_points(idx)
        if len(ids):
            pts = tree.points[ids]
            charge(len(ids) * tree.dim)
            mask = np.all((pts >= lo) & (pts <= hi), axis=1)
            out.append(ids[mask])
        return
    _collect_box(tree, int(tree.left[idx]), lo, hi, out)
    _collect_box(tree, int(tree.right[idx]), lo, hi, out)


def range_query_box(tree: KDTree, lo, hi) -> np.ndarray:
    """Ids of live points inside the closed box [lo, hi]."""
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    out: list = []
    _collect_box(tree, tree.root, lo, hi, out)
    if not out:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(out)


def range_count_box(tree: KDTree, lo, hi) -> int:
    """Number of live points inside the closed box [lo, hi]."""
    return len(range_query_box(tree, lo, hi))


def _collect_ball(tree: KDTree, idx: int, c: np.ndarray, r2: float, out: list) -> None:
    if idx < 0 or tree.live[idx] == 0:
        return
    charge(2 * tree.dim + 4, 1)  # per-node box arithmetic
    nlo, nhi = tree.box_lo[idx], tree.box_hi[idx]
    gap = np.maximum(nlo - c, 0.0) + np.maximum(c - nhi, 0.0)
    # einsum matches the batched engine's row reduction bit-for-bit
    if float(np.einsum("i,i->", gap, gap)) > r2:
        return  # disjoint
    far = np.maximum(np.abs(c - nlo), np.abs(c - nhi))
    if float(np.einsum("i,i->", far, far)) <= r2:
        out.append(tree.node_points(idx))  # contained
        return
    if tree.is_leaf[idx]:
        ids = tree.node_points(idx)
        if len(ids):
            pts = tree.points[ids]
            charge(len(ids) * tree.dim)
            diff = pts - c
            d2 = np.einsum("ij,ij->i", diff, diff)
            out.append(ids[d2 <= r2])
        return
    _collect_ball(tree, int(tree.left[idx]), c, r2, out)
    _collect_ball(tree, int(tree.right[idx]), c, r2, out)


def range_query_ball(tree: KDTree, center, radius: float) -> np.ndarray:
    """Ids of live points within Euclidean distance ``radius`` of center."""
    c = np.asarray(center, dtype=np.float64)
    out: list = []
    _collect_ball(tree, tree.root, c, float(radius) ** 2, out)
    if not out:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(out)


def range_query_batch(
    tree: KDTree, los, his, grain: int = 16, engine: str | None = None
) -> list[np.ndarray]:
    """Data-parallel batch of box queries (one result list per box).

    Queries run in blocks across the scheduler — the paper's range
    search benchmark shape (parallel across queries).  ``engine``
    selects between the vectorized frontier traversal ("batched",
    default) and the per-query recursion ("recursive"); results and
    charges are identical.
    """
    from .batch import batched_range_query_batch, resolve_engine

    if resolve_engine(engine) == "batched":
        return batched_range_query_batch(tree, los, his, grain=grain)

    from ..parlay.scheduler import get_scheduler
    from ..parlay.primitives import query_blocks

    los = np.asarray(los, dtype=np.float64)
    his = np.asarray(his, dtype=np.float64)
    m = len(los)
    results: list = [None] * m
    sched = get_scheduler()
    blocks = query_blocks(m, grain=grain)

    def run_block(b: int) -> None:
        lo_i, hi_i = blocks[b]
        for i in range(lo_i, hi_i):
            results[i] = range_query_box(tree, los[i], his[i])

    sched.parallel_for(len(blocks), run_block)
    return results


def range_query_ball_batch(
    tree: KDTree, centers, radii, grain: int = 16, engine: str | None = None
) -> list[np.ndarray]:
    """Data-parallel batch of ball queries (per-query radii allowed)."""
    from .batch import batched_range_query_ball_batch, resolve_engine

    if resolve_engine(engine) == "batched":
        return batched_range_query_ball_batch(tree, centers, radii, grain=grain)

    from ..parlay.scheduler import get_scheduler
    from ..parlay.primitives import query_blocks

    centers = np.asarray(centers, dtype=np.float64)
    radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (len(centers),))
    results: list = [None] * len(centers)
    sched = get_scheduler()
    blocks = query_blocks(len(centers), grain=grain)

    def run_block(b: int) -> None:
        lo_i, hi_i = blocks[b]
        for i in range(lo_i, hi_i):
            results[i] = range_query_ball(tree, centers[i], float(radii[i]))

    sched.parallel_for(len(blocks), run_block)
    return results
