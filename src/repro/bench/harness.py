"""Benchmark harness: wall-clock timing plus simulated parallel speedup.

The paper reports T_1 (one thread) and T_36h (36 cores, two-way
hyper-threading).  Here T_1 is measured wall-clock and T_p comes from
the work-depth cost model (DESIGN.md §1): the tracked (W, D) of the run
give the Brent-bound speedup, which is applied to the measured T_1.

``REPRO_BENCH_SCALE`` scales every benchmark's input size (default 1.0;
the defaults are chosen so the whole suite runs in minutes in Python).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import (
    HYPERTHREAD_FACTOR,
    Cost,
    simulated_speedup,
    tracker,
)

__all__ = [
    "EngineComparison",
    "Measurement",
    "measure",
    "measure_engines",
    "Table",
    "bench_scale",
    "PAPER_CORES",
]

#: the paper's machine: 36 cores, 2-way hyper-threading
PAPER_CORES = 36 * HYPERTHREAD_FACTOR


def bench_scale(n: int) -> int:
    """Scale a benchmark size by the REPRO_BENCH_SCALE env var."""
    return max(16, int(n * float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))


@dataclass
class Measurement:
    """One benchmark run: wall time + modeled parallel behavior.

    ``meta`` carries run metadata (n, dims, k, engine, repeat, backend,
    ...) so serialized records are self-describing; :func:`measure`
    always stamps ``repeat`` and the scheduler ``backend``.
    """

    name: str
    t1: float  # measured single-thread wall-clock seconds
    cost: Cost
    result: object = None
    meta: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)  # best run's spans when traced

    def speedup(self, workers: float = PAPER_CORES) -> float:
        # a parallel implementation can always fall back to its serial
        # schedule, so the modeled speedup is never below 1
        return max(1.0, simulated_speedup(self.cost, workers))

    def tp(self, workers: float = PAPER_CORES) -> float:
        s = self.speedup(workers)
        return self.t1 / s if s > 0 else self.t1

    def to_json(self) -> dict:
        """A self-describing JSON-ready record of this run."""
        return {
            "name": self.name,
            "t1": self.t1,
            "work": self.cost.work,
            "depth": self.cost.depth,
            "meta": dict(self.meta),
        }


def measure(name: str, fn, *args, repeat: int = 1, meta: dict | None = None,
            tracing: bool = False, **kwargs) -> Measurement:
    """Run ``fn`` and capture wall time and work-depth cost.

    ``meta`` is merged into the measurement's metadata, alongside the
    automatically recorded ``repeat`` and scheduler ``backend``.  With
    ``tracing=True`` each repeat runs under a fresh span recorder (see
    :mod:`repro.obs`) rooted at ``name``; the best run's spans are kept
    on the measurement.
    """
    best_t = float("inf")
    cost = Cost()
    result = None
    spans: list = []
    for _ in range(max(repeat, 1)):
        tracker.reset()
        if tracing:
            from ..obs import trace

            t0 = time.perf_counter()
            with trace(name) as rec:
                result = fn(*args, **kwargs)
            dt = time.perf_counter() - t0
        else:
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            dt = time.perf_counter() - t0
        if dt < best_t:
            best_t = dt
            cost = tracker.total()
            if tracing:
                spans = rec.spans()
    tracker.reset()
    full_meta = {"repeat": max(repeat, 1), "backend": get_scheduler().backend}
    if tracing:
        full_meta["tracing"] = True
    if meta:
        full_meta.update(meta)
    return Measurement(name, best_t, cost, result, full_meta, spans)


@dataclass
class EngineComparison:
    """Wall-clock comparison of one query workload across engines."""

    name: str
    batched: Measurement
    recursive: Measurement

    @property
    def ratio(self) -> float:
        """How many times faster the batched engine ran (wall-clock)."""
        if self.batched.t1 <= 0:
            return float("inf")
        return self.recursive.t1 / self.batched.t1

    def charges_match(self, rtol: float = 1e-9) -> bool:
        cb, cr = self.batched.cost, self.recursive.cost
        return (
            abs(cb.work - cr.work) <= rtol * max(cr.work, 1.0)
            and abs(cb.depth - cr.depth) <= rtol * max(cr.depth, 1.0)
        )

    def summary(self) -> str:
        return (
            f"{self.name}: batched {self.batched.t1:.4g}s vs recursive "
            f"{self.recursive.t1:.4g}s ({self.ratio:.2f}x), "
            f"charges {'match' if self.charges_match() else 'DIFFER'}"
        )

    def to_json(self) -> dict:
        """Self-describing record: both engines' runs + shared metadata.

        Metadata common to both runs (n, dims, k, repeat, backend, ...)
        is lifted into a top-level ``meta`` so a ``BENCH_*.json`` entry
        explains itself without reference to the generating script.
        """
        b, r = self.batched.to_json(), self.recursive.to_json()
        shared = {k: v for k, v in b["meta"].items()
                  if k in r["meta"] and r["meta"][k] == v and k != "engine"}
        for rec in (b, r):
            rec["meta"] = {k: v for k, v in rec["meta"].items() if k not in shared}
        return {
            "name": self.name,
            "meta": shared,
            "ratio": self.ratio,
            "charges_match": self.charges_match(),
            "batched": b,
            "recursive": r,
        }


def measure_engines(name: str, fn, *args, repeat: int = 1,
                    meta: dict | None = None, **kwargs) -> EngineComparison:
    """Run ``fn(engine=...)`` under both query engines and compare.

    ``fn`` must accept an ``engine`` keyword (e.g. ``knn``,
    ``range_query_batch``, ``BDLTree.knn``).  Returns the two
    measurements plus the wall-clock ratio; the work/depth charges of
    the two runs should agree (``charges_match``) since the engines are
    cost-equivalent by construction.
    """
    batched = measure(
        f"{name}[batched]", fn, *args, repeat=repeat,
        meta={**(meta or {}), "engine": "batched"}, engine="batched", **kwargs,
    )
    recursive = measure(
        f"{name}[recursive]", fn, *args, repeat=repeat,
        meta={**(meta or {}), "engine": "recursive"}, engine="recursive", **kwargs,
    )
    return EngineComparison(name, batched, recursive)


class Table:
    """Accumulates measurement rows and prints a paper-style table."""

    def __init__(self, title: str, columns: tuple[str, ...] = ("T1", "T36h", "speedup")):
        self.title = title
        self.columns = columns
        self.rows: list[tuple] = []

    def add(self, m: Measurement, workers: float = PAPER_CORES, extra: str = "") -> None:
        self.rows.append(
            (m.name, m.t1, m.tp(workers), m.speedup(workers), extra)
        )

    def add_raw(self, name: str, *values) -> None:
        self.rows.append((name, *values))

    def render(self) -> str:
        lines = [f"== {self.title} =="]
        head = f"{'benchmark':<42} " + " ".join(f"{c:>12}" for c in self.columns)
        lines.append(head)
        lines.append("-" * len(head))
        for row in self.rows:
            name = row[0]
            cells = []
            for v in row[1:]:
                if isinstance(v, float):
                    cells.append(f"{v:>12.4g}")
                else:
                    cells.append(f"{v!s:>12}")
            lines.append(f"{name:<42} " + " ".join(cells))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())
