"""``repro.bench`` — timing + simulated-speedup benchmark harness."""

from .harness import Measurement, PAPER_CORES, Table, bench_scale, measure

__all__ = ["Measurement", "PAPER_CORES", "Table", "bench_scale", "measure"]
