"""``repro.bench`` — timing + simulated-speedup benchmark harness."""

from .harness import (
    EngineComparison,
    Measurement,
    PAPER_CORES,
    Table,
    bench_scale,
    measure,
    measure_engines,
)

__all__ = [
    "EngineComparison",
    "Measurement",
    "PAPER_CORES",
    "Table",
    "bench_scale",
    "measure",
    "measure_engines",
]
