"""``repro.wspd`` — well-separated pair decomposition (Callahan–Kosaraju)."""

from .wspd import WSPair, well_separated, wspd, wspd_pairs_count

__all__ = ["WSPair", "well_separated", "wspd", "wspd_pairs_count"]
