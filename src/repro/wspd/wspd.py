"""Well-separated pair decomposition (Callahan–Kosaraju) on the kd-tree.

Two kd-tree nodes A, B are *s-well-separated* when the distance between
their bounding boxes is at least ``s`` times the larger box's enclosing
radius.  The decomposition covers every pair of distinct points by
exactly one node pair; with separation s=2 it yields O(n) pairs and
underlies the EMST and spanner constructions (paper Module (2)/(3)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kdtree.tree import KDTree
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge, parallel_merge, tracker

__all__ = ["WSPair", "well_separated", "wspd", "wspd_pairs_count"]


@dataclass(frozen=True)
class WSPair:
    """A well-separated pair of kd-tree node ids."""

    a: int
    b: int


def _radius_sq(tree: KDTree, n: int) -> float:
    d = tree.box_hi[n] - tree.box_lo[n]
    return float(d @ d) / 4.0


def _box_dist_sq(tree: KDTree, a: int, b: int) -> float:
    gap = np.maximum(tree.box_lo[a] - tree.box_hi[b], 0.0) + np.maximum(
        tree.box_lo[b] - tree.box_hi[a], 0.0
    )
    return float(gap @ gap)


def well_separated(tree: KDTree, a: int, b: int, s: float) -> bool:
    """Callahan–Kosaraju separation test on bounding boxes."""
    charge(1, 1)
    r2 = max(_radius_sq(tree, a), _radius_sq(tree, b))
    return _box_dist_sq(tree, a, b) >= s * s * r2


def wspd(tree: KDTree, s: float = 2.0) -> list[WSPair]:
    """Compute the s-WSPD of the tree's points.

    Returns node-id pairs; use ``tree.node_points(pair.a)`` for the
    member point ids.
    """
    if s <= 0:
        raise ValueError("separation must be positive")
    if tree.leaf_size != 1:
        # CK's decomposition needs singleton leaves: intra-leaf point
        # pairs would otherwise never be covered by any node pair
        raise ValueError("wspd requires a KDTree built with leaf_size=1")
    if tree.root < 0:
        return []
    sched = get_scheduler()
    out: list[WSPair] = []

    def find_pairs(a: int, b: int, sink: list) -> None:
        charge(1, 1)
        if well_separated(tree, a, b, s):
            sink.append(WSPair(a, b))
            return
        # split the node with the larger diameter
        if _radius_sq(tree, a) < _radius_sq(tree, b):
            a, b = b, a
        if tree.is_leaf[a]:
            if tree.is_leaf[b]:
                # two singleton leaves are always well-separated (their
                # radii are 0), so this only happens for degenerate
                # multi-point leaves; emit the covering pair directly
                sink.append(WSPair(a, b))
                return
            a, b = b, a
        # the two recursive calls are a fork-join pair in CK's algorithm;
        # execute serially but compose their costs in parallel
        la, ra = int(tree.left[a]), int(tree.right[a])
        costs = []
        for child in (la, ra):
            if child >= 0:
                with tracker.frame() as c:
                    find_pairs(child, b, sink)
                costs.append(c)
        parallel_merge(costs)

    def rec(node: int, sink: list) -> None:
        if node < 0 or tree.is_leaf[node]:
            return
        l, r = int(tree.left[node]), int(tree.right[node])
        size = tree.end[node] - tree.start[node]
        if size > 8192 and l >= 0 and r >= 0:
            sinks = [[], [], []]
            sched.parallel_do(
                [
                    lambda: rec(l, sinks[0]),
                    lambda: rec(r, sinks[1]),
                    lambda: find_pairs(l, r, sinks[2]),
                ]
            )
            for sk in sinks:
                sink.extend(sk)
        else:
            costs = []
            for task in (
                (lambda: rec(l, sink)) if l >= 0 else None,
                (lambda: rec(r, sink)) if r >= 0 else None,
                (lambda: find_pairs(l, r, sink)) if (l >= 0 and r >= 0) else None,
            ):
                if task is None:
                    continue
                with tracker.frame() as c:
                    task()
                costs.append(c)
            parallel_merge(costs)

    rec(tree.root, out)
    return out


def wspd_pairs_count(tree: KDTree, s: float = 2.0) -> int:
    return len(wspd(tree, s))
