"""Parallel Welzl via prefix doubling (Blelloch et al.) — paper §4.

The algorithm processes prefixes of a random permutation of
exponentially increasing size.  Each prefix is checked *in parallel*
for visible points; if one exists, the earliest violator p_i is found
and the ball is recomputed on the prefix up to i with p_i forced into
the support (a recursive call).  ParGeo's practical optimization:
prefixes below a cutoff are handled by the sequential algorithm
(little parallelism, lower overhead) — we keep that structure with a
Python-scaled cutoff.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..parlay.random import random_permutation
from ..parlay.workdepth import charge
from .ball import EPS, Ball, circumball
from .welzl import _mtf_mb

__all__ = ["parallel_welzl"]

#: prefixes smaller than this run through the sequential algorithm
#: (the paper uses 500000 on its 36-core machine; scaled down here)
_SEQ_PREFIX_CUTOFF = 4096


def _first_violator(pts: np.ndarray, prefix: np.ndarray, ball: Ball) -> int:
    """Index (within prefix order) of the earliest outside point, or -1.

    A data-parallel scan: distances vectorized, earliest via argmax of
    the violation mask (W=m, D=log m).
    """
    m = len(prefix)
    charge(max(m, 1))
    diff = pts[prefix] - ball.center
    d2 = np.einsum("ij,ij->i", diff, diff)
    lim = (ball.radius * (1.0 + EPS)) ** 2
    out = d2 > lim + 1e-300
    if not out.any():
        return -1
    return int(np.argmax(out))


def _pw(pts: np.ndarray, order: np.ndarray, support: list[int]) -> Ball:
    """Ball of pts[order] with ``support`` point ids on the boundary."""
    d = pts.shape[1]
    if support:
        ball = circumball(pts[np.asarray(support, dtype=np.int64)])
    else:
        ball = Ball(np.zeros(d), -1.0)
    if len(support) == d + 1 or len(order) == 0:
        return ball

    if len(order) <= _SEQ_PREFIX_CUTOFF:
        # sequential Welzl on small prefixes (ParGeo's optimization)
        lst = list(order)
        return _mtf_mb(lst, len(lst), list(support), pts, mtf=True)

    i = 0
    size = _SEQ_PREFIX_CUTOFF
    n = len(order)
    while i < n:
        hi = min(i + size, n)
        if ball.radius < 0:
            j = 0
        else:
            j = _first_violator(pts, order[i:hi], ball)
            if j < 0:
                i = hi
                size *= 2  # prefix doubling
                continue
        vid = int(order[i + j])
        # recompute on the prefix up to the violator, with it in support
        ball = _pw(pts, order[: i + j], support + [vid])
        i = i + j + 1
    return ball


def parallel_welzl(points, seed: int = 0) -> Ball:
    """Smallest enclosing ball via the parallel prefix-doubling Welzl."""
    pts = as_array(points)
    if len(pts) == 0:
        raise ValueError("empty input")
    order = random_permutation(len(pts), seed=seed)
    return _pw(pts, order, [])
