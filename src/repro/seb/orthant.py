"""Larsson et al.'s iterative orthant scan (parallelized) — paper §4.

The space around the current ball center divides into the 2^d orthants.
An *orthant scan* finds, per orthant, the furthest point outside the
ball (a "visible point").  The ball is then recomputed as the smallest
enclosing ball of {current support} ∪ {orthant extremes}, and the scan
repeats until no point is outside.

The scan is parallelized by blocks: each block is processed
sequentially, blocks run in parallel, and the per-orthant extrema merge
at the end — exactly the paper's parallelization.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..parlay.primitives import query_blocks
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge
from .ball import EPS, Ball, ball_of_support

__all__ = ["orthant_scan_once", "orthant_scan_seb"]

#: cap on orthant count for high dimensions (beyond ~7d, orthants are
#: mostly empty anyway; we bucket by the first 7 coordinate signs)
_MAX_SIGN_DIMS = 7


def orthant_scan_once(pts: np.ndarray, ball: Ball) -> tuple[bool, np.ndarray]:
    """One parallel orthant scan of ``pts`` against ``ball``.

    Returns (has_outlier, extreme_points): the furthest outside point of
    each nonempty orthant (stacked as rows; empty if no outliers).
    """
    n = len(pts)
    d = pts.shape[1]
    sd = min(d, _MAX_SIGN_DIMS)
    n_orth = 1 << sd
    sched = get_scheduler()
    blocks = query_blocks(n, grain=2048)

    def scan_block(b: int):
        lo, hi = blocks[b]
        seg = pts[lo:hi]
        charge(max(hi - lo, 1))
        diff = seg - ball.center
        d2 = np.einsum("ij,ij->i", diff, diff)
        lim = (ball.radius * (1.0 + EPS)) ** 2
        out = d2 > lim + 1e-300
        if not out.any():
            return None
        # orthant id: sign bits of (p - center) on the first sd dims
        bits = (diff[out][:, :sd] > 0).astype(np.int64)
        oid = bits @ (1 << np.arange(sd, dtype=np.int64))
        dist = d2[out]
        best_d = np.full(n_orth, -1.0)
        best_i = np.full(n_orth, -1, dtype=np.int64)
        idx = np.flatnonzero(out) + lo
        np.maximum.at(best_d, oid, dist)
        # earliest index achieving each orthant's max: reversed fancy
        # assignment makes the first (lowest idx) candidate win
        hit = np.flatnonzero(dist == best_d[oid])[::-1]
        best_i[oid[hit]] = idx[hit]
        return best_d, best_i

    results = sched.parallel_do([(lambda b=b: scan_block(b)) for b in range(len(blocks))])
    best_d = np.full(n_orth, -1.0)
    best_i = np.full(n_orth, -1, dtype=np.int64)
    for r in results:
        if r is None:
            continue
        bd, bi = r
        better = bd > best_d
        best_d[better] = bd[better]
        best_i[better] = bi[better]
    sel = best_i[best_i >= 0]
    if len(sel) == 0:
        return False, np.empty((0, d))
    return True, pts[sel]


def orthant_scan_seb(points, max_iter: int = 1000, seed: int = 0) -> Ball:
    """Smallest enclosing ball via iterated orthant scans (Larsson).

    Each round scans the whole input; the ball's support set plus the
    orthant extremes define the next candidate ball.  Terminates when a
    scan finds no visible points.
    """
    pts = as_array(points)
    if len(pts) == 0:
        raise ValueError("empty input")
    d = pts.shape[1]
    init = pts[: min(len(pts), d + 1)]
    ball = ball_of_support(init, seed=seed)
    prev_radius = -1.0
    for _ in range(max_iter):
        has_out, extremes = orthant_scan_once(pts, ball)
        if not has_out:
            return ball
        support = np.vstack([ball.support, extremes]) if len(ball.support) else extremes
        ball = ball_of_support(support, seed=seed)
        if ball.radius <= prev_radius * (1.0 + 1e-15):
            # radius stalled: nudge with the single furthest point
            diff = pts - ball.center
            d2 = np.einsum("ij,ij->i", diff, diff)
            j = int(np.argmax(d2))
            support = np.vstack([ball.support, pts[None, j]])
            ball = ball_of_support(support, seed=seed)
        prev_radius = ball.radius
    # convergence fallback (should not trigger on real data): exact solve
    from .welzl import welzl_mtf_pivot

    return welzl_mtf_pivot(pts, seed=seed)
