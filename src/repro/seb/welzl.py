"""Welzl's algorithm for smallest enclosing ball — sequential variants.

``welzl_seq`` is the classic randomized incremental algorithm expressed
in Gärtner's bounded-depth form (recursion only over the support set, a
linear scan over the prefix).  ``welzl_mtf`` adds the move-to-front
heuristic [Welzl'91]; ``welzl_mtf_pivot`` additionally uses Gärtner's
pivoting: instead of processing the violating point directly, process
the point *furthest* from the current center.

All return a :class:`~repro.seb.ball.Ball`.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..parlay.workdepth import charge
from .ball import EPS, Ball, circumball

__all__ = ["welzl_seq", "welzl_mtf", "welzl_mtf_pivot"]


def _mtf_mb(order: list[int], end: int, support: list[int], pts: np.ndarray, mtf: bool) -> Ball:
    """Ball of pts[order[:end]] with ``support`` forced on the boundary.

    Recursion depth is bounded by d+1 (only grows the support).

    The containment scan is batched: the ball only changes at a
    violation, so every check between violations tests the same ball —
    one vectorized distance reduction per round finds the earliest
    violator, replacing the per-point scalar loop.  The violator
    sequence (and the per-point charges) are those of the scalar scan.
    """
    d = pts.shape[1]
    if support:
        b = circumball(pts[np.asarray(support, dtype=np.int64)])
    else:
        b = Ball(pts[order[0]] * 0.0, -1.0)
    if len(support) == d + 1:
        return b
    i = 0
    while i < end:
        if b.radius < 0:
            # the empty ball contains nothing: the next point violates
            charge(1, 1)
            j = i
        else:
            tail = np.asarray(order[i:end], dtype=np.int64)
            diff = pts[tail] - b.center
            dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            out = dist > b.radius * (1.0 + EPS) + 1e-300
            if not out.any():
                charge(end - i, end - i)
                return b
            k = int(np.argmax(out))
            charge(k + 1, k + 1)
            j = i + k
        pid = order[j]
        b = _mtf_mb(order, j, support + [pid], pts, mtf)
        if mtf and j > 0:
            # move the violator to the front so later passes see it
            # early (reduces future violations)
            order.insert(0, order.pop(j))
        i = j + 1
    return b


def welzl_seq(points, seed: int = 0) -> Ball:
    """Classic Welzl randomized incremental algorithm (no heuristics)."""
    pts = as_array(points)
    if len(pts) == 0:
        raise ValueError("empty input")
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(len(pts)))
    return _mtf_mb(order, len(order), [], pts, mtf=False)


def welzl_mtf(points, seed: int = 0) -> Ball:
    """Welzl with the move-to-front heuristic."""
    pts = as_array(points)
    if len(pts) == 0:
        raise ValueError("empty input")
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(len(pts)))
    return _mtf_mb(order, len(order), [], pts, mtf=True)


def welzl_mtf_pivot(points, seed: int = 0, max_iter: int = 10_000) -> Ball:
    """Welzl with move-to-front and Gärtner's pivoting heuristic.

    The outer loop checks all points against the current ball; on a
    violation it *pivots*: the point furthest from the center (found
    with a parallel max-reduce in ParGeo) is pushed through the
    move-to-front machinery.
    """
    pts = as_array(points)
    n = len(pts)
    if n == 0:
        raise ValueError("empty input")
    rng = np.random.default_rng(seed)
    # start from a small random active list; pivots join it as found
    active = list(rng.permutation(n)[: min(n, pts.shape[1] + 1)])
    b = _mtf_mb(active, len(active), [], pts, mtf=True)
    for _ in range(max_iter):
        diff = pts - b.center
        d2 = np.einsum("ij,ij->i", diff, diff)
        charge(n)
        j = int(np.argmax(d2))  # pivot: furthest point overall
        lim = (b.radius * (1.0 + EPS)) ** 2
        if d2[j] <= lim + 1e-300:
            return b
        if j not in active:
            active.insert(0, j)
        else:
            active.insert(0, active.pop(active.index(j)))
        b = _mtf_mb(active, len(active), [], pts, mtf=True)
    return b
