"""Balls and support-set solvers for the smallest enclosing ball.

The smallest enclosing ball of a set in R^d is defined by a *support*
of at most d+1 points on its surface (paper Fig. 2(b)).  The two
kernels here are:

* :func:`circumball` — the smallest ball with *all* given (affinely
  independent) points on its boundary; the center is the point in the
  points' affine hull equidistant from all of them (a least-squares
  solve, min-norm for degenerate inputs).
* :func:`ball_of_support` — the smallest enclosing ball of a *tiny*
  point set (≤ ~2^d + d + 1 points), via exact Welzl recursion.  Used
  to recompute the ball from support candidates in the orthant-scan and
  sampling algorithms.
"""

from __future__ import annotations

import numpy as np

from ..parlay.workdepth import charge

__all__ = ["Ball", "circumball", "ball_of_support"]

#: Relative slack for "inside the ball" tests.
EPS = 1e-10


class Ball:
    """A d-ball with center, radius, and the support points defining it."""

    __slots__ = ("center", "radius", "support")

    def __init__(self, center: np.ndarray, radius: float, support: np.ndarray | None = None):
        self.center = np.asarray(center, dtype=np.float64)
        self.radius = float(radius)
        self.support = (
            np.asarray(support, dtype=np.float64)
            if support is not None
            else np.empty((0, len(self.center)))
        )

    @property
    def dim(self) -> int:
        return len(self.center)

    def contains(self, p: np.ndarray, tol: float = EPS) -> bool:
        d = p - self.center
        return float(np.sqrt(d @ d)) <= self.radius * (1.0 + tol) + 1e-300

    def contains_all(self, pts: np.ndarray, tol: float = EPS) -> bool:
        if len(pts) == 0:
            return True
        charge(len(pts))
        diff = pts - self.center
        d2 = np.einsum("ij,ij->i", diff, diff)
        lim = (self.radius * (1.0 + tol)) ** 2
        return bool(np.all(d2 <= lim + 1e-300))

    def outside_mask(self, pts: np.ndarray, tol: float = EPS) -> np.ndarray:
        """Boolean mask of points strictly outside (the 'visible' points)."""
        charge(max(len(pts), 1))
        diff = pts - self.center
        d2 = np.einsum("ij,ij->i", diff, diff)
        lim = (self.radius * (1.0 + tol)) ** 2
        return d2 > lim

    def __repr__(self) -> str:
        return f"Ball(center={self.center}, radius={self.radius:.6g})"


def circumball(points: np.ndarray) -> Ball:
    """Smallest ball with every given point on its boundary.

    ``points`` is a (k, d) array with 1 <= k <= d+1.  For k=1 the ball
    is the point itself with radius 0.  Degenerate (affinely dependent)
    inputs resolve to the min-norm center via ``lstsq``.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValueError("circumball requires a nonempty (k, d) array")
    k = len(pts)
    charge(k * k)
    if k == 1:
        return Ball(pts[0], 0.0, pts)
    p0 = pts[0]
    q = pts[1:] - p0
    rhs = 0.5 * np.einsum("ij,ij->i", q, q)
    sol, *_ = np.linalg.lstsq(q, rhs, rcond=None)
    center = p0 + sol
    radius = float(np.sqrt(sol @ sol))
    return Ball(center, radius, pts)


def _welzl_small(pts: np.ndarray, r_rows: list[np.ndarray], d: int, rng: np.random.Generator) -> Ball:
    """Exact Welzl recursion for tiny point sets (support computation)."""
    if len(pts) == 0 or len(r_rows) == d + 1:
        if not r_rows:
            return Ball(np.zeros(d), -1.0)  # empty ball contains nothing
        return circumball(np.asarray(r_rows))
    p = pts[-1]
    b = _welzl_small(pts[:-1], r_rows, d, rng)
    if b.radius >= 0 and b.contains(p):
        return b
    return _welzl_small(pts[:-1], r_rows + [p], d, rng)


def ball_of_support(points: np.ndarray, seed: int = 0) -> Ball:
    """Smallest enclosing ball of a small point set (exact Welzl).

    Intended for support-candidate sets (a few dozen points at most);
    recursion is O(2^k) in the worst case but tiny in practice because
    the recursion prunes with containment checks.
    """
    pts = np.unique(np.asarray(points, dtype=np.float64), axis=0)
    if len(pts) == 0:
        raise ValueError("ball_of_support of empty set")
    d = pts.shape[1]
    rng = np.random.default_rng(seed)
    pts = pts[rng.permutation(len(pts))]
    b = _welzl_small(pts, [], d, rng)
    # tighten support to boundary points
    if len(b.support):
        diff = b.support - b.center
        on = np.abs(np.sqrt(np.einsum("ij,ij->i", diff, diff)) - b.radius) <= (
            EPS * max(b.radius, 1.0)
        )
        b.support = b.support[on] if on.any() else b.support
    return b
