"""The paper's new sampling-based smallest enclosing ball (§4, Fig. 6).

Phase 1 (sampling): walk a random permutation in constant-size chunks —
each chunk is a uniform random sample.  Orthant-scan the chunk against
the current ball and recompute the ball from the support candidates.
When a chunk contains no visible point, the ball is already a good
estimate and sampling stops (on average the paper observes only ~5% of
the input is scanned).

Phase 2 (final computation): run Larsson's full orthant scan until no
visible points remain — usually 1–2 scans thanks to the good start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.points import as_array
from ..obs.span import span
from ..parlay.random import random_permutation
from ..parlay.workdepth import charge
from .ball import Ball, ball_of_support
from .orthant import orthant_scan_once

__all__ = ["sampling_seb", "SamplingStats"]


@dataclass
class SamplingStats:
    """Instrumentation: how much work the sampling phase saved."""

    sample_chunks: int = 0
    points_sampled: int = 0
    final_scans: int = 0
    fraction_sampled: float = 0.0


def sampling_seb(
    points,
    chunk: int = 2048,
    seed: int = 0,
    max_iter: int = 1000,
) -> tuple[Ball, SamplingStats]:
    """Smallest enclosing ball via sampling + final orthant scans.

    Returns (ball, stats).
    """
    pts = as_array(points)
    n = len(pts)
    if n == 0:
        raise ValueError("empty input")
    d = pts.shape[1]
    stats = SamplingStats()

    perm = random_permutation(n, seed=seed)
    shuffled = pts[perm]

    # initialize with a few arbitrary points (Fig. 6 line 3)
    ball = ball_of_support(shuffled[: min(n, d + 1)], seed=seed)

    # --- sampling phase (Fig. 6 lines 5-13) ---
    with span("seb.sample", batch=chunk):
        scanned = 0
        while scanned < n:
            seg = shuffled[scanned : min(scanned + chunk, n)]
            scanned += len(seg)
            stats.sample_chunks += 1
            stats.points_sampled += len(seg)
            has_out, extremes = orthant_scan_once(seg, ball)
            if not has_out:
                break  # current sample does not violate B
            support = np.vstack([ball.support, extremes]) if len(ball.support) else extremes
            ball = ball_of_support(support, seed=seed)
        stats.fraction_sampled = stats.points_sampled / n

    # --- final computation phase (Fig. 6 lines 15-20) ---
    with span("seb.final", batch=n):
        prev_radius = -1.0
        for _ in range(max_iter):
            stats.final_scans += 1
            has_out, extremes = orthant_scan_once(pts, ball)
            if not has_out:
                return ball, stats
            support = np.vstack([ball.support, extremes]) if len(ball.support) else extremes
            ball = ball_of_support(support, seed=seed)
            if ball.radius <= prev_radius * (1.0 + 1e-15):
                charge(n)
                diff = pts - ball.center
                d2 = np.einsum("ij,ij->i", diff, diff)
                j = int(np.argmax(d2))
                ball = ball_of_support(np.vstack([ball.support, pts[None, j]]), seed=seed)
            prev_radius = ball.radius
    from .welzl import welzl_mtf_pivot

    return welzl_mtf_pivot(pts, seed=seed), stats
