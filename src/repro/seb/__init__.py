"""``repro.seb`` — smallest enclosing ball (paper §4).

Welzl variants (plain / move-to-front / pivoting), Larsson's parallel
orthant scan, the paper's new sampling-based algorithm, and the parallel
prefix-doubling Welzl of Blelloch et al.
"""

from __future__ import annotations

from .ball import Ball, ball_of_support, circumball
from .orthant import orthant_scan_once, orthant_scan_seb
from .parallel_welzl import parallel_welzl
from .sampling import SamplingStats, sampling_seb
from .welzl import welzl_mtf, welzl_mtf_pivot, welzl_seq

__all__ = [
    "Ball",
    "SamplingStats",
    "ball_of_support",
    "circumball",
    "orthant_scan_once",
    "orthant_scan_seb",
    "parallel_welzl",
    "sampling_seb",
    "smallest_enclosing_ball",
    "welzl_mtf",
    "welzl_mtf_pivot",
    "welzl_seq",
]


def smallest_enclosing_ball(points, method: str = "sampling", seed: int = 0) -> Ball:
    """Smallest enclosing ball of a point set.

    ``method``: 'sampling' (the paper's fastest, default),
    'orthant' (Larsson's scan), 'welzl', 'welzl_mtf',
    'welzl_mtf_pivot', or 'parallel_welzl'.
    """
    if method == "sampling":
        return sampling_seb(points, seed=seed)[0]
    if method == "orthant":
        return orthant_scan_seb(points, seed=seed)
    if method == "welzl":
        return welzl_seq(points, seed=seed)
    if method == "welzl_mtf":
        return welzl_mtf(points, seed=seed)
    if method == "welzl_mtf_pivot":
        return welzl_mtf_pivot(points, seed=seed)
    if method == "parallel_welzl":
        return parallel_welzl(points, seed=seed)
    raise ValueError(f"unknown method {method!r}")
