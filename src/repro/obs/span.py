"""Span-tree tracing over the fork-join runtime.

A *span* is one timed, cost-attributed scope of the computation: a
scheduler task, a named algorithm phase (``hull2d.partition``,
``kdtree.batch.frontier``, ``seb.sample``), or a whole run.  Spans nest
the way the fork-join DAG nests — every span records its parent — so
the recorded set forms the span tree of the run, each node carrying

* wall-clock start/end (``t0``/``t1``, ``time.perf_counter`` seconds),
* the (work, depth) its frame charged to the cost model (inclusive of
  children, exactly the :class:`~repro.parlay.workdepth.Cost` of the
  scope),
* the scheduler backend and batch size where applicable.

Tracing is **off by default** and costs one global load plus a ``None``
check per instrumented scope when disabled; the runtime never allocates
a span unless a recorder is installed.  Enabling installs a
:class:`SpanRecorder` into :mod:`repro.parlay.workdepth`'s tracer hook;
:func:`trace` is the scoped form, wrapping a block in a root span.

The recorder is thread-safe and **bounded**: spans past ``max_spans``
are counted as dropped, and the bound is enforced at *begin* time so a
recorded span's ancestors are always recorded too (the tree stays
closed under parents; drops only ever prune subtrees).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..parlay import workdepth

__all__ = [
    "Span",
    "SpanRecorder",
    "active_recorder",
    "disable_tracing",
    "enable_tracing",
    "span",
    "spans_to_payload",
    "trace",
    "tracing_enabled",
]

#: Default recorder capacity; ~100 bytes/span, so ~20 MB worst case.
DEFAULT_MAX_SPANS = 200_000

_INHERIT = object()


@dataclass(frozen=True)
class Span:
    """One completed scope of the fork-join computation."""

    sid: int                    #: unique id, allocated in begin order
    parent: int | None          #: parent span's sid (None = root)
    name: str
    cat: str                    #: "run" | "task" | "phase" | "serve" | ...
    t0: float                   #: perf_counter at scope entry (seconds)
    t1: float                   #: perf_counter at scope exit
    work: float                 #: work charged inside the scope (inclusive)
    depth: float                #: depth charged inside the scope (inclusive)
    backend: str | None = None  #: scheduler backend, for task spans
    batch: int | None = None    #: batch size / fanout where applicable
    tid: int = 0                #: OS thread ident that ran the scope
    meta: dict | None = field(default=None, compare=False)

    @property
    def wall(self) -> float:
        return self.t1 - self.t0


class _OpenSpan:
    """Begin-time token; turned into a :class:`Span` at end()."""

    __slots__ = ("sid", "parent", "name", "cat", "t0", "backend", "batch",
                 "meta", "tid", "dropped")

    def __init__(self, sid, parent, name, cat, backend, batch, meta, dropped):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        self.backend = backend
        self.batch = batch
        self.meta = meta
        self.tid = threading.get_ident()
        self.dropped = dropped
        self.t0 = time.perf_counter()


class SpanRecorder:
    """Thread-safe, bounded collector of completed spans.

    Each thread keeps its own open-span stack (for parenting); completed
    spans land in one shared list under a lock.  Cross-thread edges —
    a task forked onto a pool worker — are recorded by passing the
    forking span's id as ``parent`` explicitly (the scheduler does
    this), so the tree spans threads.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_sid = 1
        self._local = threading.local()

    # -- open-span stack ---------------------------------------------------
    def _stack(self) -> list:
        stk = getattr(self._local, "stack", None)
        if stk is None:
            stk = self._local.stack = []
        return stk

    def current_id(self) -> int | None:
        """sid of this thread's innermost open span (None outside spans)."""
        stk = self._stack()
        return stk[-1].sid if stk else None

    # -- recording ---------------------------------------------------------
    def begin(self, name, cat="span", parent=_INHERIT, backend=None,
              batch=None, **meta) -> _OpenSpan:
        """Open a span; returns the token to pass to :meth:`end`.

        ``parent`` defaults to the calling thread's innermost open span;
        pass an explicit sid (or None) to parent across threads.  Spans
        past the capacity bound are dropped *here*, before allocation,
        so recorded children always have recorded ancestors.
        """
        stk = self._stack()
        if parent is _INHERIT:
            parent = stk[-1].sid if stk else None
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
            dropped = sid > self.max_spans
            if dropped:
                self.dropped += 1
        tok = _OpenSpan(sid, parent, str(name), cat, backend,
                        int(batch) if batch is not None else None,
                        meta or None, dropped)
        if not dropped:
            stk.append(tok)
        return tok

    def end(self, tok: _OpenSpan, work: float, depth: float) -> None:
        """Close a span with the (work, depth) its scope charged."""
        t1 = time.perf_counter()
        if tok.dropped:
            return
        stk = self._stack()
        # frames unwind LIFO even under exceptions, so the top *is* tok;
        # tolerate strays defensively rather than corrupt the stack
        while stk and stk[-1] is not tok:
            stk.pop()
        if stk:
            stk.pop()
        s = Span(tok.sid, tok.parent, tok.name, tok.cat, tok.t0, t1,
                 float(work), float(depth), tok.backend, tok.batch,
                 tok.tid, tok.meta)
        with self._lock:
            self._spans.append(s)

    # -- access ------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Completed spans in sid (begin) order — parents before children."""
        with self._lock:
            return sorted(self._spans, key=lambda s: s.sid)

    def mark(self) -> int:
        """Position token for :meth:`spans_since` (completion order)."""
        with self._lock:
            return len(self._spans)

    def spans_since(self, mark: int) -> list[Span]:
        """Spans completed (or ingested) after ``mark`` was taken.

        Completion order, not sid order; spans from other threads that
        completed in the window are included — callers filtering to one
        logical scope should walk the subtree from a known root (see
        :func:`repro.obs.rtrace.batch_subtree`).
        """
        with self._lock:
            return list(self._spans[mark:])

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0
            self._next_sid = 1

    # -- cross-process forwarding ------------------------------------------
    def ingest(self, payload: list[tuple], *, parent: int | None = None,
               pid: int | None = None) -> None:
        """Splice spans recorded in another process into this recorder.

        ``payload`` is the :func:`spans_to_payload` form of a worker
        recorder's spans.  Sids are remapped into this recorder's space
        (intra-payload parent links preserved); spans whose parent is
        not in the payload are re-parented under ``parent`` — the
        forking span in this process — so the tree stays connected
        across the process boundary.  Each span's meta is tagged with
        the worker ``pid`` so exporters can render real process lanes.

        The capacity bound applies: a payload overflowing ``max_spans``
        is dropped whole (keeping the tree closed under parents).
        """
        if not payload:
            return
        with self._lock:
            if self._next_sid + len(payload) - 1 > self.max_spans:
                self.dropped += len(payload)
                return
            base = self._next_sid
            self._next_sid += len(payload)
            sid_map: dict[int, int] = {}
            for i, row in enumerate(payload):
                sid_map[row[0]] = base + i
            for row in payload:
                (sid, par, name, cat, t0, t1, work, depth,
                 backend, batch, tid, meta) = row
                meta = dict(meta) if meta else {}
                if pid is not None:
                    meta.setdefault("pid", pid)
                self._spans.append(Span(
                    sid_map[sid], sid_map.get(par, parent), name, cat,
                    t0, t1, work, depth, backend, batch, tid,
                    meta or None,
                ))


def spans_to_payload(spans: list[Span]) -> list[tuple]:
    """Flatten spans to plain tuples for cheap pickling across processes.

    The inverse is :meth:`SpanRecorder.ingest`, which remaps sids into
    the receiving recorder's space.
    """
    return [
        (s.sid, s.parent, s.name, s.cat, s.t0, s.t1, s.work, s.depth,
         s.backend, s.batch, s.tid, s.meta)
        for s in spans
    ]


# ----------------------------------------------------------------------
# process-wide enable/disable (installs into the workdepth tracer hook)
# ----------------------------------------------------------------------
def enable_tracing(recorder: SpanRecorder | None = None, *,
                   max_spans: int = DEFAULT_MAX_SPANS) -> SpanRecorder:
    """Install a recorder; every instrumented scope now emits spans."""
    rec = recorder if recorder is not None else SpanRecorder(max_spans=max_spans)
    workdepth.set_tracer(rec)
    return rec


def disable_tracing() -> SpanRecorder | None:
    """Uninstall the active recorder (returned, for inspection)."""
    rec = workdepth.get_tracer()
    workdepth.set_tracer(None)
    return rec


def tracing_enabled() -> bool:
    return workdepth.get_tracer() is not None


def active_recorder() -> SpanRecorder | None:
    return workdepth.get_tracer()


@contextmanager
def trace(name: str = "run", *, max_spans: int = DEFAULT_MAX_SPANS,
          recorder: SpanRecorder | None = None):
    """Trace the enclosed block: install a recorder, wrap it in a root span.

    Yields the :class:`SpanRecorder`; on exit the previous tracer (if
    any) is restored.  The root span's (work, depth) is exactly the cost
    the block charged — it reconciles with ``tracker.total()`` when the
    tracker was reset at block entry — and, like
    :func:`~repro.parlay.workdepth.capture`, the cost is folded serially
    into the enclosing frame so outer accounting is unchanged.
    """
    rec = recorder if recorder is not None else SpanRecorder(max_spans=max_spans)
    prev = workdepth.get_tracer()
    workdepth.set_tracer(rec)
    c = None
    try:
        with workdepth.tracker.frame(label=name, cat="run") as c:
            yield rec
    finally:
        workdepth.set_tracer(prev)
        if c is not None:
            workdepth.tracker.merge_serial(c)


@contextmanager
def span(name: str, *, cat: str = "phase", backend: str | None = None,
         batch: int | None = None, **meta):
    """Emit a named phase span around the enclosed block.

    The no-op path (tracing disabled) is a single global load and a
    ``None`` check — safe to leave in hot entry points.  When enabled,
    the block runs in its own cost frame whose total is folded serially
    into the parent on exit (even if the block raises), so the charge
    composition is bit-identical to the untraced run.

    Yields the frame's :class:`~repro.parlay.workdepth.Cost` (or None
    when disabled).
    """
    if workdepth.get_tracer() is None:
        yield None
        return
    c = None
    try:
        with workdepth.tracker.frame(label=name, cat=cat, backend=backend,
                                     batch=batch, **meta) as c:
            yield c
    finally:
        if c is not None:
            workdepth.tracker.merge_serial(c)
