"""Request-scoped tracing: contexts, exact attribution, flight recorder.

PR 3's span tree sees the *inside* of one fork-join computation; this
module adds the other half — **per-request attribution** across the
serving stack.  A :class:`RequestContext` is minted when a request
enters the front-end and rides it through the weighted-fair queue, the
coalescer batch, the scatter-gather slabs, and the worker processes, so
a p999 outlier can be decomposed into *phases*:

``queue_wait``
    waiting in the tenant's front-end queue for the weighted-fair
    dispatcher to pick its quantum;
``dispatch``
    executor hand-off, coalescing, and grouping overhead (the residual
    of the measured latency after the attributed phases — computed
    last, so the phases always sum to the request's latency);
``compute``
    the request's attributed slice of the coalesced batch execution
    (proportional to the work its group charged — see
    :func:`partition_work`, which splits the batch total *exactly*);
``view_repair``
    a mutation request's time repairing registered materialized views
    (:mod:`repro.views`) after the batch applied to the index;
``merge``
    result distribution after the batch executed (cache fills, top-k
    gather, ticket resolution);
``cache``
    a cache-served request's whole post-queue time (it never computes).

The **flight recorder** keeps these request traces in a bounded ring
with *tail-based sampling*: every request is tallied, but full span
detail is retained only for the slowest :class:`TailSampler` decile,
errors, shed requests, and degraded answers — near-zero cost for the
fast majority.  Retained traces can be rendered into one
Perfetto-loadable timeline (:func:`flight_chrome_trace`) that shows the
request phase lanes on top and the shared batch / worker-process spans
below, on one wall-clock axis.

Trace ids propagate across threads and processes via
:func:`batch_context` (thread-local, set by the service around one
coalesced execution) — the scatter-gather router and the process-pool
workers read it to tag their spans, and the batch span carries ``links``
to every member request's trace id.
"""

from __future__ import annotations

import itertools
import math
import os
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .span import Span

__all__ = [
    "FlightRecorder",
    "PHASES",
    "RequestContext",
    "RequestTrace",
    "TailSampler",
    "batch_context",
    "batch_subtree",
    "current_trace_ids",
    "flight_chrome_trace",
    "make_context",
    "new_trace_id",
    "partition_work",
    "percentile",
    "validate_request_trace",
    "write_flight_trace",
]

#: Request phases, in timeline order.  ``dispatch`` is the residual, so
#: the phases always sum to the request's measured latency.
#: ``view_repair`` is the slice a mutation request spends repairing
#: materialized views (:mod:`repro.views`) after the batch applied.
PHASES = ("queue_wait", "dispatch", "compute", "view_repair", "merge", "cache")

_COUNTER = itertools.count(1)
_SALT = os.urandom(4).hex()


def new_trace_id() -> str:
    """A process-unique 20-hex-char trace id (salt + pid + counter)."""
    return f"{_SALT}{os.getpid() & 0xFFFF:04x}{next(_COUNTER):08x}"


def percentile(latencies, q: float) -> float:
    """The ``q``-th percentile (0-100) of a latency sample, 0.0 if empty."""
    if len(latencies) == 0:
        return 0.0
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))


# ----------------------------------------------------------------------
# exact proportional attribution
# ----------------------------------------------------------------------
def partition_work(total: float, weights) -> list[float]:
    """Split ``total`` across ``weights`` proportionally and *exactly*.

    Returns one share per weight such that every share is >= 0 and
    ``math.fsum(shares) == total`` — the property that lets a coalesced
    batch's charged work be attributed to its member requests without
    creating or destroying any (the partition property the hypothesis
    suite asserts).  Non-finite or non-positive weights count as zero;
    an all-zero weight vector splits evenly.

    Exactness: every share is quantized down to a multiple of
    ``ulp(total)`` (a power of two, so the quantization is itself
    exact), which makes all partial sums and the final residual exactly
    representable; the residual — a multiple of the same ulp — is added
    to the largest share in one exact float addition.  The real-number
    sum of the shares then equals ``total`` exactly, and ``fsum``
    (correctly rounded) reproduces it bit-for-bit.  The cost is at most
    one ``ulp(total)`` of proportionality error per share — attribution
    noise far below anything measurable.
    """
    total = float(total)
    n = len(weights)
    if n == 0:
        return []
    if not math.isfinite(total) or total < 0.0:
        raise ValueError(f"cannot partition non-finite/negative total {total!r}")
    if total == 0.0:
        return [0.0] * n
    w = []
    for x in weights:
        x = float(x)
        w.append(x if math.isfinite(x) and x > 0.0 else 0.0)
    # normalize by the max first: scale-invariant, and the sum of n
    # values <= 1.0 can never overflow the way raw near-max floats can
    wmax = max(w)
    if wmax > 0.0:
        w = [wi / wmax for wi in w]
    wsum = math.fsum(w)
    if wsum <= 0.0:
        w = [1.0] * n
        wsum = float(n)
    u = math.ulp(total)
    shares = [
        math.floor(total * (wi / wsum) / u) * u for wi in w
    ]
    resid = total - math.fsum(shares)  # multiple of u in [0, n*u): exact
    j = max(range(n), key=shares.__getitem__)
    shares[j] += resid  # multiples of u summing <= total: exact
    return shares


# ----------------------------------------------------------------------
# request context + completed request trace
# ----------------------------------------------------------------------
@dataclass
class RequestContext:
    """One in-flight request's identity, minted at the front-end door."""

    trace_id: str
    tenant: str
    kind: str
    t_start: float
    meta: dict = field(default_factory=dict)


def make_context(tenant: str, kind: str, *, clock=time.monotonic) -> RequestContext:
    return RequestContext(new_trace_id(), tenant, kind, clock())


@dataclass
class RequestTrace:
    """One *completed* request: its outcome, phases, and attribution.

    ``phases`` maps each name in :data:`PHASES` to seconds; for an
    ``ok`` request they sum to ``latency`` (``dispatch`` is computed as
    the residual).  ``work`` is the request's exact share of its
    batch's charged work (:func:`partition_work`); ``spans`` holds the
    batch's span subtree — populated only when the flight recorder
    retained the trace (tail / error / shed / degraded).
    """

    trace_id: str
    tenant: str
    kind: str
    t_start: float
    latency: float
    phases: dict[str, float] = field(default_factory=dict)
    outcome: str = "ok"            #: "ok" | "error" | "shed" | "timeout"
    cache_hit: bool = False
    approximate: bool = False
    batch_size: int = 0
    work: float = 0.0              #: exact share of the batch's work
    depth: float = 0.0             #: the batch's critical path (shared)
    batch_sid: int | None = None   #: sid of the serve.dispatch span
    error: str | None = None
    spans: list[Span] | None = None

    def phase_total(self) -> float:
        return sum(self.phases.values())

    def to_json(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "latency": self.latency,
            "phases": {p: self.phases.get(p, 0.0) for p in PHASES},
            "outcome": self.outcome,
            "cache_hit": self.cache_hit,
            "approximate": self.approximate,
            "batch_size": self.batch_size,
            "work": self.work,
            "depth": self.depth,
            "batch_sid": self.batch_sid,
            "error": self.error,
            "n_spans": len(self.spans) if self.spans else 0,
        }


# ----------------------------------------------------------------------
# cross-layer propagation (thread-local batch context)
# ----------------------------------------------------------------------
_tls = threading.local()


@contextmanager
def batch_context(trace_ids):
    """Mark the current thread as executing one coalesced batch.

    The service wraps each batch execution in this; the scatter-gather
    router and the process-map dispatcher read the ids back with
    :func:`current_trace_ids` to tag shard/worker spans, so worker
    lanes in an exported timeline name the requests they computed for.
    """
    ids = tuple(trace_ids)
    prev = getattr(_tls, "trace_ids", None)
    _tls.trace_ids = ids or None
    try:
        yield
    finally:
        _tls.trace_ids = prev


def current_trace_ids() -> tuple[str, ...] | None:
    """Trace ids of the batch executing on this thread (None outside)."""
    return getattr(_tls, "trace_ids", None)


def batch_subtree(spans: list[Span], root_name: str = "serve.dispatch"):
    """The batch span and its descendants from a recorder slice.

    ``spans`` is the slice of spans completed during one batch window
    (:meth:`SpanRecorder.spans_since`); concurrent spans from other
    threads are filtered out by descent.  Returns ``(root_sid, subtree)``
    with the subtree in sid order (root first), or ``(None, [])`` when
    no span named ``root_name`` is in the slice.
    """
    root = None
    for s in spans:
        if s.name == root_name and (root is None or s.sid < root.sid):
            root = s
    if root is None:
        return None, []
    kids: dict[int, list[Span]] = {}
    for s in spans:
        if s.parent is not None:
            kids.setdefault(s.parent, []).append(s)
    out = []
    stack = [root]
    while stack:
        s = stack.pop()
        out.append(s)
        stack.extend(kids.get(s.sid, ()))
    return root.sid, sorted(out, key=lambda s: s.sid)


# ----------------------------------------------------------------------
# tail-based sampling
# ----------------------------------------------------------------------
class TailSampler:
    """Streaming estimator of the latency tail threshold.

    Keeps a rolling window of completed-request latencies and refreshes
    the ``1 - tail_frac`` quantile every ``window // 8`` observations;
    :meth:`note` answers "is this latency in the slowest decile right
    now".  During warm-up (threshold still 0) everything counts as
    tail, so the first requests of a run are always explainable.
    """

    def __init__(self, window: int = 1024, tail_frac: float = 0.10):
        if not 0.0 < tail_frac <= 1.0:
            raise ValueError("tail_frac must be in (0, 1]")
        self.tail_frac = float(tail_frac)
        self._window: deque = deque(maxlen=max(16, int(window)))
        self._refresh = max(16, int(window) // 8)
        self._since = 0
        self._thresh = 0.0

    @property
    def threshold(self) -> float:
        return self._thresh

    def note(self, latency: float) -> bool:
        """Record one latency; True if it lands in the tail."""
        self._window.append(float(latency))
        self._since += 1
        if self._since >= self._refresh or self._thresh == 0.0:
            self._thresh = percentile(
                list(self._window), 100.0 * (1.0 - self.tail_frac)
            )
            self._since = 0
        return latency >= self._thresh


class FlightRecorder:
    """Always-on bounded ring of explained requests, sampled at the tail.

    Every completed request is offered via :meth:`observe`; the
    recorder tallies it, updates the tail threshold, and *retains* the
    full :class:`RequestTrace` (including the batch span subtree, when
    tracing was enabled) only when the request is interesting:

    * ``error``    — the request failed,
    * ``shed``     — typed admission/quota/timeout rejection,
    * ``degraded`` — answered approximately under overload,
    * ``tail``     — latency in the slowest ``tail_frac`` of the
      rolling window (:class:`TailSampler`).

    Everything else costs one lock, one deque append, and a counter —
    the recorder can stay on in production.  Retention is bounded by
    ``capacity`` (oldest retained trace evicted first).
    """

    def __init__(self, capacity: int = 512, *, window: int = 1024,
                 tail_frac: float = 0.10, registry=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, RequestTrace] = OrderedDict()
        self._sampler = TailSampler(window=window, tail_frac=tail_frac)
        self.seen = 0
        self._c_seen = self._f_retained = None
        if registry is not None:
            self._c_seen = registry.counter(
                "obs_flight_seen_total", "requests offered to the flight recorder"
            )
            self._f_retained = registry.counter(
                "obs_flight_retained_total",
                "requests retained with full trace detail, by reason",
                labels=("reason",),
            )

    def observe(self, trt: RequestTrace, spans: list[Span] | None = None,
                ) -> str | None:
        """Offer one completed request; returns the retention reason.

        ``spans`` is the batch span subtree to attach when retained.
        Returns ``"error" | "shed" | "degraded" | "tail"`` or None
        (not retained).
        """
        with self._lock:
            self.seen += 1
            reason = None
            if trt.outcome == "error":
                reason = "error"
            elif trt.outcome in ("shed", "timeout"):
                reason = "shed"
            else:
                # only successful completions train the tail threshold
                is_tail = self._sampler.note(trt.latency)
                if trt.approximate:
                    reason = "degraded"
                elif is_tail:
                    reason = "tail"
            if reason is not None:
                if spans is not None and trt.spans is None:
                    trt.spans = spans
                self._traces[trt.trace_id] = trt
                self._traces.move_to_end(trt.trace_id)
                while len(self._traces) > self.capacity:
                    self._traces.popitem(last=False)
        if self._c_seen is not None:
            self._c_seen.inc()
            if reason is not None:
                self._f_retained.labels(reason).inc()
        return reason

    @property
    def tail_threshold(self) -> float:
        return self._sampler.threshold

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def lookup(self, trace_id: str) -> RequestTrace | None:
        with self._lock:
            return self._traces.get(trace_id)

    def retained(self) -> list[RequestTrace]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._traces.values())

    def slowest(self, n: int = 5) -> list[RequestTrace]:
        """The ``n`` slowest retained traces, slowest first."""
        with self._lock:
            traces = list(self._traces.values())
        return sorted(traces, key=lambda t: -t.latency)[:n]

    def snapshot(self) -> dict:
        with self._lock:
            traces = list(self._traces.values())
            seen = self.seen
        by_reason: dict[str, int] = {}
        for t in traces:
            r = ("error" if t.outcome == "error"
                 else "shed" if t.outcome in ("shed", "timeout")
                 else "degraded" if t.approximate else "tail")
            by_reason[r] = by_reason.get(r, 0) + 1
        return {
            "seen": seen,
            "retained": len(traces),
            "tail_threshold": self.tail_threshold,
            "by_reason": by_reason,
        }


# ----------------------------------------------------------------------
# validation + Perfetto export
# ----------------------------------------------------------------------
def validate_request_trace(trt: RequestTrace, *, rtol: float = 1e-6,
                           atol: float = 1e-9) -> list[str]:
    """Structural checks on one retained trace; returns problems ([] = ok).

    * phases are known, non-negative, and (for ``ok`` outcomes) sum to
      the measured latency within attribution tolerance;
    * the attached span subtree is *closed*: every span finished
      (``t1 >= t0``), every parent link lands inside the subtree except
      the batch root's, and the root is the ``serve.dispatch`` span the
      trace's ``batch_sid`` names;
    * links resolve: the batch span's ``links`` include this trace id.
    """
    problems: list[str] = []
    if trt.latency < 0:
        problems.append(f"negative latency {trt.latency!r}")
    for name, v in trt.phases.items():
        if name not in PHASES:
            problems.append(f"unknown phase {name!r}")
        if v < 0:
            problems.append(f"negative phase {name}={v!r}")
    if trt.outcome == "ok":
        tol = max(atol, rtol * max(trt.latency, 1e-6))
        if abs(trt.phase_total() - trt.latency) > tol:
            problems.append(
                f"phases sum {trt.phase_total():.9f}s != latency "
                f"{trt.latency:.9f}s"
            )
    if trt.spans:
        sids = {s.sid for s in trt.spans}
        if len(sids) != len(trt.spans):
            problems.append("duplicate sids in span subtree")
        roots = [s for s in trt.spans if s.parent not in sids]
        for s in trt.spans:
            if s.t1 < s.t0:
                problems.append(f"span {s.sid} ({s.name}) not closed: t1 < t0")
        if len(roots) != 1:
            problems.append(f"subtree has {len(roots)} roots, expected 1")
        else:
            root = roots[0]
            if trt.batch_sid is not None and root.sid != trt.batch_sid:
                problems.append(
                    f"root sid {root.sid} != batch_sid {trt.batch_sid}"
                )
            links = (root.meta or {}).get("links") or ()
            if trt.trace_id not in links:
                problems.append(
                    "batch span links do not include this trace id"
                )
    return problems


def flight_chrome_trace(traces: list[RequestTrace], *,
                        name: str = "repro flight recorder") -> dict:
    """Retained request traces as one Chrome trace-event JSON timeline.

    One shared wall-clock axis: pid 0 holds one lane per retained
    request with its phase slices (queue_wait / dispatch / compute /
    merge / cache); pid 1 holds the parent-process batch spans; worker
    processes (spans tagged with a ``pid`` by
    :meth:`~repro.obs.span.SpanRecorder.ingest`) get their own process
    groups — so a single Perfetto view shows the request waiting, the
    batch it joined, and the worker lanes that computed it.
    """
    events: list[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "retained requests (flight recorder)"}},
    ]
    traces = sorted(traces, key=lambda t: t.t_start)
    # one origin across phases and spans, so lanes align
    origins = [t.t_start for t in traces]
    uniq_spans: dict[int, Span] = {}
    for t in traces:
        for s in t.spans or ():
            uniq_spans.setdefault(s.sid, s)
            origins.append(s.t0)
    if not origins:
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"tool": name, "traces": 0}}
    t_origin = min(origins)

    for lane, t in enumerate(traces):
        label = f"{t.tenant} {t.trace_id[-8:]} [{t.outcome}]"
        events.append({"ph": "M", "pid": 0, "tid": lane,
                       "name": "thread_name", "args": {"name": label}})
        cursor = (t.t_start - t_origin) * 1e6
        for phase in PHASES:
            dur = t.phases.get(phase, 0.0) * 1e6
            if dur <= 0.0:
                continue
            events.append({
                "name": phase, "cat": "request", "ph": "X", "pid": 0,
                "tid": lane, "ts": round(cursor, 3),
                "dur": round(max(dur, 0.001), 3),
                "args": {"trace_id": t.trace_id, "tenant": t.tenant,
                         "kind": t.kind, "outcome": t.outcome,
                         "batch_size": t.batch_size, "work": t.work},
            })
            cursor += dur

    # batch + worker spans on shared lanes below the request lanes
    spans = sorted(uniq_spans.values(), key=lambda s: s.sid)
    worker_pids = sorted({
        s.meta["pid"] for s in spans if s.meta and "pid" in s.meta
    })
    cpid_for = {wp: 2 + i for i, wp in enumerate(worker_pids)}
    events.append({"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
                   "args": {"name": "serving process (batch spans)"}})
    for wp, cpid in cpid_for.items():
        events.append({"ph": "M", "pid": cpid, "tid": 0,
                       "name": "process_name",
                       "args": {"name": f"worker pid {wp}"}})
    groups: dict[int, list[Span]] = {}
    for s in spans:
        wp = s.meta.get("pid") if s.meta else None
        groups.setdefault(cpid_for.get(wp, 1), []).append(s)
    for cpid, group in sorted(groups.items()):
        tids = sorted({s.tid for s in group})
        lane_for = {tid: i for i, tid in enumerate(tids)}
        for i, tid in enumerate(tids):
            events.append({"ph": "M", "pid": cpid, "tid": i,
                           "name": "thread_name",
                           "args": {"name": f"thread {tid}"}})
        for s in group:
            args = {"sid": s.sid, "work": s.work, "depth": s.depth,
                    "backend": s.backend}
            meta = s.meta or {}
            if "links" in meta:
                args["links"] = list(meta["links"])
            if "trace_ids" in meta:
                args["trace_ids"] = list(meta["trace_ids"])
            events.append({
                "name": s.name, "cat": s.cat, "ph": "X", "pid": cpid,
                "tid": lane_for[s.tid],
                "ts": round((s.t0 - t_origin) * 1e6, 3),
                "dur": round(max((s.t1 - s.t0) * 1e6, 0.001), 3),
                "args": args,
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": name,
            "traces": len(traces),
            "spans": len(spans),
        },
    }


def write_flight_trace(path, traces: list[RequestTrace], *,
                       name: str = "repro flight recorder") -> dict:
    """Serialize :func:`flight_chrome_trace` to ``path``; returns the object."""
    import json

    obj = flight_chrome_trace(traces, name=name)
    with open(os.fspath(path), "w") as f:
        json.dump(obj, f)
        f.write("\n")
    return obj
