"""Live text dashboard over a running :class:`~repro.frontend.frontend.Frontend`.

One :func:`render` call turns the front-end's snapshot — per-tenant
queue/counter state, SLO burn rates over both windows, and the flight
recorder's retention tallies — into a fixed-width text frame, with the
slowest retained requests decomposed into their phase bars.  The
``dash`` CLI subcommand drives a synthetic open-loop load and redraws
the frame every ``--interval`` seconds, which is the quickest way to
*watch* admission control trip, burn rates spike, and the tail
threshold chase the p90.

The renderer is read-only and lock-free on the caller's side: it only
touches :meth:`Frontend.snapshot` and :meth:`FlightRecorder.slowest`,
both of which take their own locks briefly.
"""

from __future__ import annotations

from .rtrace import PHASES, RequestTrace

__all__ = ["render", "render_trace_line"]

#: One glyph per phase, in timeline order, for the inline bars.
_PHASE_GLYPHS = dict(zip(PHASES, "░▒█▪▓·"))


def _bar(trt: RequestTrace, width: int = 24) -> str:
    """A ``width``-char bar slicing the request's latency into phases."""
    if trt.latency <= 0.0 or not trt.phases:
        return " " * width
    out = []
    for p in PHASES:
        n = int(round(width * trt.phases.get(p, 0.0) / trt.latency))
        out.append(_PHASE_GLYPHS[p] * n)
    s = "".join(out)[:width]
    return s + " " * (width - len(s))


def render_trace_line(trt: RequestTrace, width: int = 24) -> str:
    """One slowest-trace row: identity, latency, phase bar, top phases."""
    top = sorted(
        ((p, v) for p, v in trt.phases.items() if v > 0.0),
        key=lambda kv: -kv[1],
    )[:3]
    detail = "  ".join(f"{p} {v * 1e3:.1f}ms" for p, v in top)
    return (
        f"  {trt.tenant:>8s} {trt.trace_id[-8:]} [{trt.outcome:>5s}]"
        f" {trt.latency * 1e3:8.2f}ms  {_bar(trt, width)}  {detail}"
    )


def render(frontend, *, slowest: int = 5, width: int = 78) -> str:
    """Render one dashboard frame for ``frontend`` as a multi-line string."""
    snap = frontend.snapshot()
    lines = [
        f"repro dash  admission={snap['admission_state']}"
        f"  queued={snap['queue_depth_total']}"
        f"  drain={snap['drain_rate']:.0f} req/s",
        "-" * width,
    ]

    slo = snap.get("slo", {})
    header = (f"{'tenant':>10s} {'queued':>6s} {'done':>8s} {'shed':>6s}"
              f" {'degr':>6s} {'hit%':>5s}")
    if slo:
        header += f"  {'burn lat 5m/1h':>14s} {'avail 5m/1h':>12s}"
    lines.append(header)
    for name, t in sorted(snap["per_tenant"].items()):
        shed = t["rejected"] + t["quota_rejections"]
        row = (f"{name:>10s} {t['queue_depth']:6d} {t['completed']:8d}"
               f" {shed:6d} {t['degraded']:6d} {t['hit_rate'] * 100:4.0f}%")
        burn = slo.get(name, {}).get("burn")
        if burn:
            lat, av = burn.get("latency", {}), burn.get("availability", {})
            row += (f"  {lat.get('5m', 0.0):6.2f}/{lat.get('1h', 0.0):<6.2f}"
                    f" {av.get('5m', 0.0):5.2f}/{av.get('1h', 0.0):<5.2f}")
        lines.append(row)

    view_rows = []
    for name in sorted(snap["per_tenant"]):
        mgr = getattr(frontend.tenant_index(name), "views", None)
        if mgr is None:
            continue
        for vname, vs in sorted(mgr.stats().items()):
            view_rows.append(
                f"{name:>10s} {vname:>14s} v{vs['version']:<6d}"
                f" repairs {vs['repairs']:6d}  recomputes {vs['recomputes']:4d}"
            )
    if view_rows:
        lines.append("-" * width)
        lines.append(f"{'tenant':>10s} {'view':>14s} {'ver':<7s}"
                     f" repairs vs recompute-fallbacks")
        lines.extend(view_rows)

    flight = snap.get("flight")
    if flight:
        by = flight.get("by_reason", {})
        reasons = "  ".join(f"{k} {v}" for k, v in sorted(by.items()))
        lines.append("-" * width)
        lines.append(
            f"flight: {flight['seen']} seen, {flight['retained']} retained"
            f" ({reasons or 'none'}),"
            f" tail >= {flight['tail_threshold'] * 1e3:.2f}ms"
        )
        slow = frontend.flight.slowest(slowest) if frontend.flight else []
        if slow:
            key = "  ".join(f"{g}={p}" for p, g in _PHASE_GLYPHS.items())
            lines.append(f"slowest retained   ({key})")
            lines.extend(render_trace_line(t) for t in slow)
    return "\n".join(lines)
