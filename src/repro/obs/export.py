"""Span-tree exporters: Chrome trace-event JSON and text summaries.

Two renderings of one recorded span tree:

**Chrome trace JSON** (:func:`chrome_trace`, loadable in Perfetto /
``chrome://tracing``) with two process groups:

* *simulated schedule* (pid 0): the span DAG greedy-list-scheduled onto
  ``p`` worker lanes.  Each span contributes one task of duration equal
  to its *self work* (work minus recorded children's work, in
  work-units = microseconds); a task becomes ready when its parent
  starts (the fork point), and Graham's greedy rule assigns it to the
  earliest-free lane.  The resulting makespan obeys Brent's bound
  ``W/p <= makespan <~ W/p + D`` — a visual answer to "what does this
  run look like on 36 cores".
* *recorded wall clock* (pid 1): the spans at their measured
  ``perf_counter`` times, one lane per OS thread — what actually
  happened on this machine.

**Text summary** (:func:`summary`): totals (W, D, parallelism, Brent
speedup), a flame-style top-by-self-work table aggregated by span name,
the deepest individual spans by depth share, and the critical-path
listing.  :func:`critical_path` walks root-to-leaf choosing the
max-depth child at every step; its head's depth is the tracked D when
the root span wraps the run.

:func:`validate_chrome_trace` is the schema check the CI gate runs on
exported traces.
"""

from __future__ import annotations

import json
import os

from ..parlay.workdepth import DEPTH_OVERHEAD
from .span import Span

__all__ = [
    "chrome_trace",
    "critical_path",
    "self_work",
    "simulate_schedule",
    "span_children",
    "span_roots",
    "summary",
    "totals",
    "validate_chrome_trace",
    "write_chrome_trace",
]


# ----------------------------------------------------------------------
# tree helpers
# ----------------------------------------------------------------------
def span_children(spans: list[Span]) -> dict[int | None, list[Span]]:
    """parent sid -> children (sid order).  Unknown parents map to None."""
    known = {s.sid for s in spans}
    kids: dict[int | None, list[Span]] = {}
    for s in sorted(spans, key=lambda s: s.sid):
        p = s.parent if s.parent in known else None
        kids.setdefault(p, []).append(s)
    return kids


def span_roots(spans: list[Span]) -> list[Span]:
    """Spans whose parent was not recorded (usually the run roots)."""
    return span_children(spans).get(None, [])


def self_work(spans: list[Span]) -> dict[int, float]:
    """sid -> exclusive work: own work minus recorded children's work.

    Sums to the roots' total work exactly (fork bookkeeping charged to
    the parent frame stays with the parent); clamped at 0 for spans
    whose children were captured with ``absorb=False``.
    """
    kids = span_children(spans)
    return {
        s.sid: max(s.work - sum(c.work for c in kids.get(s.sid, [])), 0.0)
        for s in spans
    }


def totals(spans: list[Span]) -> tuple[float, float]:
    """(W, D) over the recorded roots — the whole run when traced via
    :func:`~repro.obs.span.trace`."""
    roots = span_roots(spans)
    return sum(s.work for s in roots), sum(s.depth for s in roots)


def critical_path(spans: list[Span]) -> list[Span]:
    """Root-to-leaf chain following the max-depth child at every step.

    Starts at the deepest root; the head's ``depth`` is the critical
    path's total, which equals the tracked D for a run-rooted trace.
    """
    if not spans:
        return []
    kids = span_children(spans)
    node = max(span_roots(spans), key=lambda s: s.depth)
    path = [node]
    while kids.get(node.sid):
        node = max(kids[node.sid], key=lambda s: s.depth)
        path.append(node)
    return path


# ----------------------------------------------------------------------
# simulated schedule (greedy list scheduling under Brent's bound)
# ----------------------------------------------------------------------
def simulate_schedule(
    spans: list[Span], workers: int
) -> tuple[list[tuple[Span, int, float, float]], float]:
    """Greedy-list-schedule the span DAG onto ``workers`` lanes.

    Tasks are spans with duration = self work; a task is ready at its
    parent's start time (the fork point) and is placed, in begin order
    (a topological order — parents begin before children), on the lane
    where it can start earliest, preferring the parent's lane on ties.

    Returns ``(placements, makespan)`` where each placement is
    ``(span, lane, start, duration)`` in work-units.
    """
    p = max(1, int(workers))
    selfw = self_work(spans)
    free = [0.0] * p
    start: dict[int, float] = {}
    lane_of: dict[int, int] = {}
    placements: list[tuple[Span, int, float, float]] = []
    for s in sorted(spans, key=lambda s: s.sid):
        ready = start.get(s.parent, 0.0) if s.parent is not None else 0.0
        pref = lane_of.get(s.parent, 0) if s.parent is not None else 0
        best_lane, best_start = pref, max(ready, free[pref])
        for lane in range(p):
            st = max(ready, free[lane])
            if st < best_start:
                best_lane, best_start = lane, st
        dur = selfw[s.sid]
        free[best_lane] = best_start + dur
        start[s.sid] = best_start
        lane_of[s.sid] = best_lane
        placements.append((s, best_lane, best_start, dur))
    return placements, max(free) if placements else 0.0


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(spans: list[Span], *, workers: int = 36,
                 name: str = "repro") -> dict:
    """The span tree as a Chrome trace-event JSON object (Perfetto)."""
    W, D = totals(spans)
    placements, makespan = simulate_schedule(spans, workers)
    events: list[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": f"simulated {int(workers)}-core schedule"}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "recorded wall clock"}},
    ]
    for lane in range(max(1, int(workers))):
        events.append({"ph": "M", "pid": 0, "tid": lane, "name": "thread_name",
                       "args": {"name": f"core {lane}"}})

    # pid 0: simulated lanes; 1 work-unit = 1 us
    for s, lane, start, dur in placements:
        events.append({
            "name": s.name, "cat": s.cat, "ph": "X", "pid": 0, "tid": lane,
            "ts": round(start, 3), "dur": round(max(dur, 0.001), 3),
            "args": {"sid": s.sid, "work": s.work, "depth": s.depth,
                     **({"batch": s.batch} if s.batch is not None else {})},
        })

    # pid 1+: measured wall clock.  Spans forwarded from worker
    # processes carry their worker's OS pid in meta["pid"] and get a
    # chrome process lane of their own (pid 2, 3, ...); everything else
    # — the parent process — lands on pid 1, one lane per OS thread.
    if spans:
        t_origin = min(s.t0 for s in spans)
        worker_pids = sorted({
            s.meta["pid"] for s in spans if s.meta and "pid" in s.meta
        })
        cpid_for = {wp: 2 + i for i, wp in enumerate(worker_pids)}
        for wp, cpid in cpid_for.items():
            events.append({"ph": "M", "pid": cpid, "tid": 0,
                           "name": "process_name",
                           "args": {"name": f"worker pid {wp}"}})
        groups: dict[int, list[Span]] = {}
        for s in spans:
            wp = s.meta.get("pid") if s.meta else None
            groups.setdefault(cpid_for.get(wp, 1), []).append(s)
        for cpid, group in sorted(groups.items()):
            tids = sorted({s.tid for s in group})
            lane_for = {tid: i for i, tid in enumerate(tids)}
            for i, tid in enumerate(tids):
                events.append({"ph": "M", "pid": cpid, "tid": i,
                               "name": "thread_name",
                               "args": {"name": f"thread {tid}"}})
            for s in group:
                events.append({
                    "name": s.name, "cat": s.cat, "ph": "X", "pid": cpid,
                    "tid": lane_for[s.tid],
                    "ts": round((s.t0 - t_origin) * 1e6, 3),
                    "dur": round(max((s.t1 - s.t0) * 1e6, 0.001), 3),
                    "args": {"sid": s.sid, "work": s.work, "depth": s.depth,
                             "backend": s.backend},
                })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": name,
            "workers": int(workers),
            "work": W,
            "depth": D,
            "brent_tp": (W / max(int(workers), 1)) + DEPTH_OVERHEAD * D,
            "makespan": makespan,
            "spans": len(spans),
        },
    }


def write_chrome_trace(path: str | os.PathLike, spans: list[Span], *,
                       workers: int = 36, name: str = "repro") -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the object."""
    obj = chrome_trace(spans, workers=workers, name=name)
    with open(os.fspath(path), "w") as f:
        json.dump(obj, f)
        f.write("\n")
    return obj


def validate_chrome_trace(obj) -> list[str]:
    """Schema-check a trace-event JSON object; returns problems ([] = ok).

    Checks the JSON-object trace format: a ``traceEvents`` list whose
    events carry ``ph``/``pid``/``tid``/``name``, with numeric
    non-negative ``ts``/``dur`` on complete (``X``) events.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"trace must be a JSON object, got {type(obj).__name__}"]
    ev = obj.get("traceEvents")
    if not isinstance(ev, list):
        return ["missing or non-list 'traceEvents'"]
    for i, e in enumerate(ev):
        if not isinstance(e, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in e:
                problems.append(f"event {i}: missing {key!r}")
        ph = e.get("ph")
        if ph == "X":
            for key in ("ts", "dur"):
                v = e.get(key)
                if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                    problems.append(f"event {i}: bad {key!r}: {v!r}")
        elif ph == "M":
            if not isinstance(e.get("args"), dict):
                problems.append(f"event {i}: metadata event without args")
        elif not isinstance(ph, str):
            problems.append(f"event {i}: bad 'ph': {ph!r}")
        if len(problems) > 20:
            problems.append("... (truncated)")
            break
    return problems


# ----------------------------------------------------------------------
# text summary (flame-style)
# ----------------------------------------------------------------------
def summary(spans: list[Span], *, top: int = 12, workers: float = 36.0) -> str:
    """Human-readable profile: totals, top spans, critical path."""
    if not spans:
        return "(no spans recorded)"
    W, D = totals(spans)
    p = max(float(workers), 1.0)
    tp = W / p + DEPTH_OVERHEAD * D
    t1 = W + D
    lines = [
        f"work W = {W:,.0f}   depth D = {D:,.1f}   "
        f"parallelism W/D = {W / D if D else float('inf'):,.1f}",
        f"Brent T_{int(p)} = {tp:,.0f} work-units  "
        f"(modeled speedup {t1 / tp if tp else 1.0:.1f}x)",
        "",
    ]

    # top by aggregate self-work, grouped by span name
    selfw = self_work(spans)
    agg: dict[str, list[float]] = {}
    for s in spans:
        a = agg.setdefault(s.name, [0.0, 0])
        a[0] += selfw[s.sid]
        a[1] += 1
    lines.append(f"{'top spans by self-work':<38} {'count':>7} "
                 f"{'self-work':>14} {'% of W':>8}")
    for nm, (w, n) in sorted(agg.items(), key=lambda kv: -kv[1][0])[:top]:
        lines.append(
            f"{nm:<38} {n:>7} {w:>14,.0f} {100.0 * w / W if W else 0.0:>7.1f}%"
        )
    lines.append("")

    # deepest individual spans (depth share of D)
    lines.append(f"{'deepest spans':<38} {'sid':>7} {'depth':>14} {'% of D':>8}")
    for s in sorted(spans, key=lambda s: -s.depth)[:top]:
        lines.append(
            f"{s.name:<38} {s.sid:>7} {s.depth:>14,.1f} "
            f"{100.0 * s.depth / D if D else 0.0:>7.1f}%"
        )
    lines.append("")

    # critical path
    path = critical_path(spans)
    lines.append(f"critical path ({path[0].depth:,.1f} depth, {len(path)} spans):")
    for i, s in enumerate(path):
        lines.append(f"{'  ' * i}- {s.name} (work {s.work:,.0f}, "
                     f"depth {s.depth:,.1f})")
    return "\n".join(lines)
