"""Unified metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` is the single metrics surface of a
subsystem: every component registers its counters there (the geometry
service registers its request/batch counters, its result cache, and its
coalescing queue against one registry), and the registry renders two
expositions of the same state:

* :meth:`MetricsRegistry.snapshot` — a point-in-time ``dict`` (JSON-
  ready), what dashboards and the ``--metrics-out`` CLI flag consume;
* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / samples), so the same
  counters can be scraped without a second bookkeeping path.

All metrics of one registry share the registry's lock, so a snapshot is
a consistent cut across every metric (exactly what the old hand-rolled
``ServiceStats`` lock provided).  Gauges may be backed by a callable
(:meth:`Gauge.set_function`) for values that live elsewhere — queue
lengths, cache sizes — which are polled at snapshot time instead of
being double-booked.

Metrics may be **labelled**: ``registry.counter("reqs", labels=("tenant",))``
returns a :class:`MetricFamily` whose :meth:`~MetricFamily.labels`
method vends one child metric per label-value combination (created
lazily, like prometheus_client).  Families render in the standard text
exposition form — one ``# HELP``/``# TYPE`` header, then one sample per
child with the label set inline (``reqs{tenant="acme"} 3``) — and
snapshot as a dict keyed by the rendered label string, so per-tenant
serving metrics are first-class in both expositions.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from collections import OrderedDict

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "default_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(v: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    pairs = ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


def _fmt(v: float) -> str:
    """Prometheus sample formatting: integral floats print as ints."""
    if isinstance(v, float):
        if math.isinf(v):
            return "+Inf" if v > 0 else "-Inf"
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
    return repr(float(v))


class _Metric:
    """Base: a named value guarded by the owning registry's lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock):
        self.name = name
        self.help = help
        self._lock = lock

    def value(self):  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.RLock):
        super().__init__(name, help, lock)
        self._value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """A value that can go up, down, or be read from a callable."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.RLock):
        super().__init__(name, help, lock)
        self._value = 0.0
        self._fn = None

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)

    def set_max(self, v: float) -> None:
        """Raise the gauge to ``v`` if larger (high-watermark gauges)."""
        with self._lock:
            if v > self._value:
                self._value = float(v)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    def set_function(self, fn) -> "Gauge":
        """Back the gauge by ``fn()`` — polled at read time, never stored."""
        self._fn = fn
        return self

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            return float(fn())
        with self._lock:
            return self._value


#: Default histogram buckets (seconds-flavoured, like Prometheus').
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class Histogram(_Metric):
    """Cumulative-bucket histogram with sum and count."""

    kind = "histogram"

    def __init__(self, name, help, lock, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        # bucket index -> (labels dict, observed value): the most recent
        # exemplar-carrying observation per bucket (OpenMetrics-style)
        self._exemplars: dict[int, tuple[dict, float]] = {}

    def observe(self, v: float, exemplar: dict | None = None) -> None:
        """Record ``v``; ``exemplar`` optionally attaches trace labels
        (e.g. ``{"trace_id": ...}``) to the bucket ``v`` lands in, so the
        exposition can link a latency bucket to a concrete retained
        trace."""
        v = float(v)
        i = bisect.bisect_left(self.bounds, v)
        with self._lock:
            self._counts[i] += 1
            self._sum += v
            self._count += 1
            if exemplar:
                self._exemplars[i] = (dict(exemplar), v)

    def exemplars(self) -> dict[int, tuple[dict, float]]:
        """Bucket index -> (labels, value) of the latest exemplars."""
        with self._lock:
            return dict(self._exemplars)

    @property
    def value(self) -> dict:
        """``{"count", "sum", "buckets": {le: cumulative}}`` (JSON-ready).

        An ``"exemplars"`` key (``{le: {labels, value}}``) is present
        only when exemplars were observed, so histograms without them
        snapshot exactly as before.
        """
        with self._lock:
            counts = list(self._counts)
            total, s = self._count, self._sum
            ex = dict(self._exemplars)
        out, cum = {}, 0
        bound_strs = [_fmt(b) for b in self.bounds] + ["+Inf"]
        for bs, c in zip(bound_strs[:-1], counts):
            cum += c
            out[bs] = cum
        out["+Inf"] = total
        result = {"count": total, "sum": s, "buckets": out}
        if ex:
            result["exemplars"] = {
                bound_strs[i]: {"labels": labels, "value": v}
                for i, (labels, v) in sorted(ex.items())
            }
        return result


class MetricFamily(_Metric):
    """A labelled metric: one child Counter/Gauge/Histogram per label set.

    Children are created lazily by :meth:`labels` and share the
    registry lock.  The family's ``value`` is a dict keyed by the
    rendered label string (``'{tenant="acme"}'``), which is also how it
    appears in :meth:`MetricsRegistry.snapshot`.
    """

    def __init__(self, cls, name, help, lock, label_names: tuple[str, ...], **kw):
        super().__init__(name, help, lock)
        if not label_names:
            raise ValueError("a metric family needs at least one label name")
        for ln in label_names:
            if not _LABEL_RE.match(ln):
                raise ValueError(f"invalid label name {ln!r}")
        self._cls = cls
        self._kw = kw
        self.label_names = tuple(label_names)
        self._children: OrderedDict[tuple, _Metric] = OrderedDict()

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self._cls.kind

    def _resolve(self, args: tuple, kw: dict) -> tuple[str, ...]:
        if kw:
            if args or set(kw) != set(self.label_names):
                raise ValueError(
                    f"family {self.name!r} takes labels {self.label_names}"
                )
            return tuple(str(kw[n]) for n in self.label_names)
        if len(args) != len(self.label_names):
            raise ValueError(
                f"family {self.name!r} takes {len(self.label_names)} "
                f"label value(s) {self.label_names}, got {len(args)}"
            )
        return tuple(str(a) for a in args)

    def labels(self, *args, **kw):
        """The child metric for one label-value set (created on demand)."""
        values = self._resolve(args, kw)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._cls(self.name, self.help, self._lock, **self._kw)
                child.label_values = values
                self._children[values] = child
            return child

    def remove(self, *args, **kw) -> None:
        """Drop one child (e.g. when its tenant unregisters)."""
        values = self._resolve(args, kw)
        with self._lock:
            self._children.pop(values, None)

    def children(self) -> list[tuple[tuple[str, ...], _Metric]]:
        with self._lock:
            return list(self._children.items())

    @property
    def value(self) -> dict:
        with self._lock:
            items = list(self._children.items())
        return {
            _label_str(self.label_names, values): child.value
            for values, child in items
        }


class MetricsRegistry:
    """A named collection of metrics with one consistent snapshot.

    Exposition is **crash-proof**: a callable gauge whose function
    raises never aborts a dump — the sample is skipped and counted in
    ``obs_gauge_errors_total`` (rendered/snapshotted once any error has
    occurred), so one bad gauge cannot take down the scrape endpoint.
    """

    GAUGE_ERRORS = "obs_gauge_errors_total"
    _GAUGE_ERRORS_HELP = "callable gauges that raised during exposition"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: OrderedDict[str, _Metric] = OrderedDict()
        self._gauge_errors = 0

    # -- registration ------------------------------------------------------
    def _get_or_make(self, cls, name: str, help: str, labels=(), **kw):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = tuple(labels)
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                if labels:
                    m = MetricFamily(cls, name, help, self._lock, labels, **kw)
                else:
                    m = cls(name, help, self._lock, **kw)
                self._metrics[name] = m
            elif isinstance(m, MetricFamily):
                if m._cls is not cls or m.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as a {m.kind} "
                        f"family with labels {m.label_names}"
                    )
            elif labels or not isinstance(m, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {m.kind}, "
                    f"requested {cls.kind}"
                    + (f" with labels {labels}" if labels else "")
                )
            return m

    def counter(self, name: str, help: str = "", labels=()) -> Counter:
        return self._get_or_make(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> Gauge:
        return self._get_or_make(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS,
                  labels=()) -> Histogram:
        return self._get_or_make(Histogram, name, help, labels, buckets=buckets)

    # -- introspection -----------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # -- exposition --------------------------------------------------------
    def _note_gauge_error(self, n: int = 1) -> None:
        with self._lock:
            self._gauge_errors += n

    @property
    def gauge_errors(self) -> int:
        with self._lock:
            return self._gauge_errors

    def snapshot(self) -> dict:
        """Every metric's current value as one JSON-ready dict.

        Callable gauges that raise are skipped (family children
        individually) and counted in ``obs_gauge_errors_total``.
        """
        with self._lock:
            metrics = list(self._metrics.items())
        out: dict = {}
        errs = 0
        for name, m in metrics:
            if isinstance(m, MetricFamily):
                fam: dict = {}
                for values, child in m.children():
                    try:
                        fam[_label_str(m.label_names, values)] = child.value
                    except Exception:
                        errs += 1
                out[name] = fam
            else:
                try:
                    out[name] = m.value
                except Exception:
                    errs += 1
        if errs:
            self._note_gauge_error(errs)
        if self.gauge_errors:
            out[self.GAUGE_ERRORS] = float(self._gauge_errors)
        return out

    @staticmethod
    def _render_samples(lines: list[str], m: _Metric, labelstr: str = "") -> None:
        """Samples for one (possibly labelled) concrete metric.

        Raises whatever a callable gauge raises — the caller decides how
        to degrade (``render_prometheus`` skips and counts).
        """
        if isinstance(m, Histogram):
            v = m.value
            ex = v.get("exemplars", {})
            base = labelstr[1:-1] + "," if labelstr else ""
            for le, c in v["buckets"].items():
                line = f'{m.name}_bucket{{{base}le="{le}"}} {c}'
                if le in ex:
                    pairs = ",".join(
                        f'{k}="{_escape_label_value(str(x))}"'
                        for k, x in ex[le]["labels"].items()
                    )
                    # OpenMetrics exemplar syntax: links the bucket to a
                    # concrete trace retained by the flight recorder
                    line += f" # {{{pairs}}} {_fmt(ex[le]['value'])}"
                lines.append(line)
            lines.append(f"{m.name}_sum{labelstr} {_fmt(v['sum'])}")
            lines.append(f"{m.name}_count{labelstr} {v['count']}")
        else:
            lines.append(f"{m.name}{labelstr} {_fmt(m.value)}")

    def render_prometheus(self) -> str:
        """Prometheus text exposition format of every metric.

        HELP/TYPE is emitted exactly once per (possibly labelled)
        family; a raising callable gauge skips only its own sample(s)
        and is tallied in ``obs_gauge_errors_total``, which is appended
        to the exposition once any error has ever occurred.
        """
        lines: list[str] = []
        emitted: set[str] = set()
        errs = 0
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            if m.name in emitted:
                continue
            emitted.add(m.name)
            header = []
            if m.help:
                header.append(f"# HELP {m.name} {m.help}")
            header.append(f"# TYPE {m.name} {m.kind}")
            samples: list[str] = []
            if isinstance(m, MetricFamily):
                for values, child in m.children():
                    try:
                        self._render_samples(
                            samples, child, _label_str(m.label_names, values)
                        )
                    except Exception:
                        errs += 1
            else:
                try:
                    self._render_samples(samples, m)
                except Exception:
                    errs += 1
            lines.extend(header)
            lines.extend(samples)
        if errs:
            self._note_gauge_error(errs)
        total_errs = self.gauge_errors
        if total_errs and self.GAUGE_ERRORS not in emitted:
            lines.append(f"# HELP {self.GAUGE_ERRORS} {self._GAUGE_ERRORS_HELP}")
            lines.append(f"# TYPE {self.GAUGE_ERRORS} counter")
            lines.append(f"{self.GAUGE_ERRORS} {total_errs}")
        return "\n".join(lines) + "\n"


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (components may also own private ones)."""
    return _default
