"""Per-tenant SLO objectives with multi-window burn-rate tracking.

An :class:`Objective` states what "good" means for one tenant: a
latency target (``latency_target`` seconds at ``latency_pct`` of
requests) and an availability target (``availability`` fraction of
requests answered at all — shed, timed-out, and errored requests are
unavailable).  The :class:`SLOTracker` scores every completed or
rejected request against the tenant's objective and maintains
time-bucketed good/bad counters so **burn rate** can be computed over
multiple windows (5 minutes and 1 hour by default)::

    burn = (bad / total within window) / (1 - target)

A burn rate of 1.0 means the tenant is consuming error budget exactly
at the rate that would exhaust it when sustained for the SLO period;
14.4 on the 5m window is the classic page-worthy fast burn.  Both
windows are answered from one ring of coarse buckets, and every time
read goes through the injectable ``clock`` so the whole engine is
testable without sleeping.

The tracker optionally publishes per-tenant gauges on a
:class:`~repro.obs.registry.MetricsRegistry`:
``slo_burn_rate{tenant,slo,window}`` and
``slo_budget_remaining{tenant,slo,window}``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["Objective", "SLOTracker", "DEFAULT_WINDOWS"]

#: (label, seconds) burn-rate windows: fast page + slow ticket.
DEFAULT_WINDOWS = (("5m", 300.0), ("1h", 3600.0))


@dataclass(frozen=True)
class Objective:
    """What one tenant was promised.

    ``latency_target`` seconds at percentile ``latency_pct`` (e.g.
    0.250s at 99.0 → "99% of answered requests complete within 250ms");
    ``availability`` is the fraction of offered requests that must be
    answered (0.999 → at most 1 in 1000 shed/errored/timed out).
    """

    latency_target: float = 0.250
    latency_pct: float = 99.0
    availability: float = 0.999

    def __post_init__(self):
        if self.latency_target <= 0:
            raise ValueError("latency_target must be > 0")
        if not 0.0 < self.latency_pct < 100.0:
            raise ValueError("latency_pct must be in (0, 100)")
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability must be in (0, 1)")

    @property
    def latency_budget(self) -> float:
        """Allowed fraction of slow requests (the latency error budget)."""
        return 1.0 - self.latency_pct / 100.0

    @property
    def availability_budget(self) -> float:
        return 1.0 - self.availability


class _WindowCounts:
    """Ring of coarse time buckets holding (good, bad) counts.

    Sized so the *longest* window is covered by ``n_buckets`` buckets;
    shorter windows read a suffix of the same ring.  Bucket granularity
    (longest / n_buckets, 60s for the default 1h/60) bounds the error
    of any window read to one bucket width — fine for burn rates.
    """

    __slots__ = ("width", "n", "good", "bad", "_base")

    def __init__(self, longest: float, n_buckets: int):
        self.width = longest / n_buckets
        self.n = n_buckets
        self.good = [0] * n_buckets
        self.bad = [0] * n_buckets
        self._base = None  # absolute index of the newest bucket

    def _advance(self, now: float) -> int:
        idx = int(now // self.width)
        if self._base is None:
            self._base = idx
        elif idx > self._base:
            for i in range(min(idx - self._base, self.n)):
                slot = (self._base + 1 + i) % self.n
                self.good[slot] = self.bad[slot] = 0
            self._base = idx
        return self._base % self.n

    def record(self, now: float, good: bool):
        slot = self._advance(now)
        if good:
            self.good[slot] += 1
        else:
            self.bad[slot] += 1

    def totals(self, now: float, window: float) -> tuple[int, int]:
        """(good, bad) over the trailing ``window`` seconds."""
        self._advance(now)
        k = min(self.n, max(1, int(round(window / self.width))))
        good = bad = 0
        for i in range(k):
            slot = (self._base - i) % self.n
            good += self.good[slot]
            bad += self.bad[slot]
        return good, bad


class SLOTracker:
    """Scores requests against per-tenant objectives; computes burn rates."""

    def __init__(self, *, windows=DEFAULT_WINDOWS, n_buckets: int = 60,
                 clock=time.monotonic, registry=None):
        if not windows:
            raise ValueError("need at least one burn-rate window")
        self.windows = tuple((str(lbl), float(sec)) for lbl, sec in windows)
        self._longest = max(sec for _, sec in self.windows)
        self._n_buckets = int(n_buckets)
        self._clock = clock
        self._lock = threading.Lock()
        self._objectives: dict[str, Objective] = {}
        # (tenant, slo) -> _WindowCounts;  slo in ("latency", "availability")
        self._counts: dict[tuple[str, str], _WindowCounts] = {}
        self._g_burn = self._g_budget = None
        if registry is not None:
            self._g_burn = registry.gauge(
                "slo_burn_rate",
                "error-budget burn rate (1.0 = exactly on budget)",
                labels=("tenant", "slo", "window"),
            )
            self._g_budget = registry.gauge(
                "slo_budget_remaining",
                "fraction of the window's error budget left (can go negative)",
                labels=("tenant", "slo", "window"),
            )

    # -- configuration -------------------------------------------------
    def set_objective(self, tenant: str, objective: Objective | None = None):
        """Register (or replace) a tenant's objective."""
        obj = objective if objective is not None else Objective()
        with self._lock:
            self._objectives[tenant] = obj
            for slo in ("latency", "availability"):
                self._counts.setdefault(
                    (tenant, slo),
                    _WindowCounts(self._longest, self._n_buckets),
                )
        if self._g_burn is not None:
            for slo in ("latency", "availability"):
                for lbl, _ in self.windows:
                    self._bind_gauges(tenant, slo, lbl)

    def _bind_gauges(self, tenant: str, slo: str, window_lbl: str):
        self._g_burn.labels(tenant, slo, window_lbl).set_function(
            lambda t=tenant, s=slo, w=window_lbl: self.burn_rate(t, s, w)
        )
        self._g_budget.labels(tenant, slo, window_lbl).set_function(
            lambda t=tenant, s=slo, w=window_lbl: self.budget_remaining(t, s, w)
        )

    def objective(self, tenant: str) -> Objective | None:
        with self._lock:
            return self._objectives.get(tenant)

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._objectives)

    # -- recording -----------------------------------------------------
    def record(self, tenant: str, *, latency: float | None,
               available: bool = True):
        """Score one request.  ``latency=None`` for unanswered requests
        (shed / timeout / error) — they burn the availability budget and
        are excluded from the latency SLI (which is over *answered*
        requests only)."""
        with self._lock:
            obj = self._objectives.get(tenant)
            if obj is None:
                return
            now = self._clock()
            avail = self._counts[(tenant, "availability")]
            avail.record(now, available and latency is not None)
            if available and latency is not None:
                lat = self._counts[(tenant, "latency")]
                lat.record(now, latency <= obj.latency_target)

    # -- reading -------------------------------------------------------
    def _window_seconds(self, window: str) -> float:
        for lbl, sec in self.windows:
            if lbl == window:
                return sec
        raise KeyError(f"unknown burn-rate window {window!r}")

    def _budget(self, obj: Objective, slo: str) -> float:
        if slo == "latency":
            return obj.latency_budget
        if slo == "availability":
            return obj.availability_budget
        raise KeyError(f"unknown slo {slo!r}")

    def bad_fraction(self, tenant: str, slo: str, window: str) -> float:
        sec = self._window_seconds(window)
        with self._lock:
            counts = self._counts.get((tenant, slo))
            if counts is None:
                return 0.0
            good, bad = counts.totals(self._clock(), sec)
        total = good + bad
        return bad / total if total else 0.0

    def burn_rate(self, tenant: str, slo: str, window: str) -> float:
        """Observed bad fraction over the window / allowed bad fraction."""
        with self._lock:
            obj = self._objectives.get(tenant)
        if obj is None:
            return 0.0
        return self.bad_fraction(tenant, slo, window) / self._budget(obj, slo)

    def budget_remaining(self, tenant: str, slo: str, window: str) -> float:
        """1 - burn: >0 means inside budget for the window, <0 blown."""
        return 1.0 - self.burn_rate(tenant, slo, window)

    def snapshot(self) -> dict:
        """All burn rates, for dashboards / JSON reports."""
        out: dict = {}
        for tenant in self.tenants():
            obj = self.objective(tenant)
            entry: dict = {
                "objective": {
                    "latency_target": obj.latency_target,
                    "latency_pct": obj.latency_pct,
                    "availability": obj.availability,
                },
                "burn": {},
            }
            for slo in ("latency", "availability"):
                entry["burn"][slo] = {
                    lbl: self.burn_rate(tenant, slo, lbl)
                    for lbl, _ in self.windows
                }
            out[tenant] = entry
        return out
