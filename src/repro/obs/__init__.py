"""``repro.obs`` — observability over the fork-join runtime.

Three pieces (see DESIGN.md §5):

* **Span-tree tracing** (:mod:`repro.obs.span`): scheduler tasks and
  named algorithm phases emit spans — name, parent, wall time, charged
  work/depth, backend, batch size — into a bounded, thread-safe
  :class:`SpanRecorder`.  Off by default; the disabled hot path is one
  global load per scope.
* **Exporters** (:mod:`repro.obs.export`): Chrome trace-event JSON
  (Perfetto-loadable, with the DAG greedy-list-scheduled onto simulated
  worker lanes under Brent's bound) and a flame-style text summary.
* **Metrics registry** (:mod:`repro.obs.registry`): counters / gauges /
  histograms with one consistent ``snapshot()`` dict and Prometheus
  text exposition; the serving layer's stats live on it.

Quickstart::

    from repro import KDTree, uniform
    from repro.obs import trace, summary, write_chrome_trace

    pts = uniform(50_000, 2, seed=0)
    with trace("knn") as rec:
        tree = KDTree(pts)
        tree.knn(pts, 8, exclude_self=True)
    print(summary(rec.spans()))
    write_chrome_trace("knn.trace.json", rec.spans(), workers=36)

or, from the command line, ``python -m repro profile knn pts.npy -k 8``.
"""

from .export import (
    chrome_trace,
    critical_path,
    self_work,
    simulate_schedule,
    span_children,
    span_roots,
    summary,
    totals,
    validate_chrome_trace,
    write_chrome_trace,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .span import (
    Span,
    SpanRecorder,
    active_recorder,
    disable_tracing,
    enable_tracing,
    span,
    trace,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "active_recorder",
    "chrome_trace",
    "critical_path",
    "default_registry",
    "disable_tracing",
    "enable_tracing",
    "self_work",
    "simulate_schedule",
    "span",
    "span_children",
    "span_roots",
    "summary",
    "totals",
    "trace",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
]
