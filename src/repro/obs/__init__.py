"""``repro.obs`` — observability over the fork-join runtime.

Three pieces (see DESIGN.md §5):

* **Span-tree tracing** (:mod:`repro.obs.span`): scheduler tasks and
  named algorithm phases emit spans — name, parent, wall time, charged
  work/depth, backend, batch size — into a bounded, thread-safe
  :class:`SpanRecorder`.  Off by default; the disabled hot path is one
  global load per scope.
* **Exporters** (:mod:`repro.obs.export`): Chrome trace-event JSON
  (Perfetto-loadable, with the DAG greedy-list-scheduled onto simulated
  worker lanes under Brent's bound) and a flame-style text summary.
* **Metrics registry** (:mod:`repro.obs.registry`): counters / gauges /
  histograms with one consistent ``snapshot()`` dict and Prometheus
  text exposition (crash-proof: raising callable gauges are skipped and
  counted, histogram buckets may carry exemplar trace ids); the serving
  layer's stats live on it.
* **Request tracing** (:mod:`repro.obs.rtrace`): per-request contexts
  threaded through the serving stack, exact proportional attribution of
  coalesced-batch work (:func:`partition_work`), a tail-sampling
  :class:`FlightRecorder`, and a Perfetto export of retained requests
  (:func:`flight_chrome_trace`).
* **SLOs** (:mod:`repro.obs.slo`): per-tenant latency + availability
  objectives with multi-window (5m/1h) burn rates on an injectable
  clock, published as registry gauges.

Quickstart::

    from repro import KDTree, uniform
    from repro.obs import trace, summary, write_chrome_trace

    pts = uniform(50_000, 2, seed=0)
    with trace("knn") as rec:
        tree = KDTree(pts)
        tree.knn(pts, 8, exclude_self=True)
    print(summary(rec.spans()))
    write_chrome_trace("knn.trace.json", rec.spans(), workers=36)

or, from the command line, ``python -m repro profile knn pts.npy -k 8``.
"""

from .export import (
    chrome_trace,
    critical_path,
    self_work,
    simulate_schedule,
    span_children,
    span_roots,
    summary,
    totals,
    validate_chrome_trace,
    write_chrome_trace,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .rtrace import (
    PHASES,
    FlightRecorder,
    RequestContext,
    RequestTrace,
    TailSampler,
    batch_context,
    batch_subtree,
    current_trace_ids,
    flight_chrome_trace,
    make_context,
    new_trace_id,
    partition_work,
    percentile,
    validate_request_trace,
    write_flight_trace,
)
from .slo import DEFAULT_WINDOWS, Objective, SLOTracker
from .span import (
    Span,
    SpanRecorder,
    active_recorder,
    disable_tracing,
    enable_tracing,
    span,
    trace,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_WINDOWS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Objective",
    "PHASES",
    "RequestContext",
    "RequestTrace",
    "SLOTracker",
    "Span",
    "SpanRecorder",
    "TailSampler",
    "active_recorder",
    "batch_context",
    "batch_subtree",
    "chrome_trace",
    "critical_path",
    "current_trace_ids",
    "default_registry",
    "disable_tracing",
    "enable_tracing",
    "flight_chrome_trace",
    "make_context",
    "new_trace_id",
    "partition_work",
    "percentile",
    "self_work",
    "simulate_schedule",
    "span",
    "span_children",
    "span_roots",
    "summary",
    "totals",
    "trace",
    "tracing_enabled",
    "validate_chrome_trace",
    "validate_request_trace",
    "write_chrome_trace",
    "write_flight_trace",
]
