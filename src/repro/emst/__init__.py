"""``repro.emst`` — Euclidean minimum spanning tree (WSPD-based) and the
union-find / bichromatic-closest-pair substrates it builds on."""

from .bccp import bccp_nodes, bccp_points
from .emst import emst, emst_from_tree
from .unionfind import UnionFind

__all__ = ["UnionFind", "bccp_nodes", "bccp_points", "emst", "emst_from_tree"]
