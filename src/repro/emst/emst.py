"""Euclidean minimum spanning tree via WSPD + filtered Kruskal.

The classic Callahan–Kosaraju construction: with separation s >= 2,
every EMST edge is the bichromatic closest pair of some well-separated
pair.  We process pairs lazily in a priority queue keyed first by the
pair's box-distance lower bound; a popped pair is resolved to its exact
BCCP edge and re-queued at its true length, so Kruskal only unions
globally-minimal edges and BCCPs of far-apart pairs are never computed
once the forest connects (the "GeoFilterKruskal" idea of Wang et al.,
which ParGeo uses).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.points import as_array
from ..kdtree.tree import KDTree
from ..parlay.workdepth import charge, parallel_merge, tracker
from ..wspd.wspd import wspd
from .bccp import bccp_nodes
from .unionfind import UnionFind

__all__ = ["emst", "emst_from_tree"]


def emst_from_tree(tree: KDTree, s: float = 2.0) -> tuple[np.ndarray, np.ndarray]:
    """EMST of the tree's points.  Returns (edges (m,2), weights (m,))."""
    n = tree.n_points
    if n <= 1:
        return np.empty((0, 2), dtype=np.int64), np.empty(0)
    pairs = wspd(tree, s=s)
    charge(len(pairs))

    def lb(p) -> float:
        gap = np.maximum(tree.box_lo[p.a] - tree.box_hi[p.b], 0.0) + np.maximum(
            tree.box_lo[p.b] - tree.box_hi[p.a], 0.0
        )
        return float(gap @ gap)

    # heap entries: (key, counter, resolved, payload)
    heap: list = []
    for c, p in enumerate(pairs):
        heapq.heappush(heap, (lb(p), c, False, p))
    counter = len(pairs)

    uf = UnionFind(n)
    edges = []
    weights = []
    # Pair resolutions (connectivity filter + BCCP) are independent and
    # run in parallel batches in the GFK algorithm, as do the batched
    # union-find rounds of the filtered Kruskal; we execute them lazily
    # in heap order but compose their costs as parallel phases.
    resolve_costs = []
    union_costs = []
    while heap and uf.n_components > 1:
        key, _, resolved, payload = heapq.heappop(heap)
        if resolved:
            d2, u, v = payload
            with tracker.frame() as c:
                took = uf.union(u, v)
            union_costs.append(c)
            if took:
                edges.append((u, v))
                weights.append(np.sqrt(d2))
        else:
            p = payload
            with tracker.frame() as c:
                # cheap reject: singleton pairs already connected
                sa = tree.end[p.a] - tree.start[p.a]
                sb = tree.end[p.b] - tree.start[p.b]
                skip = False
                if sa == 1 and sb == 1:
                    u = int(tree.gids[tree.perm[tree.start[p.a]]])
                    v = int(tree.gids[tree.perm[tree.start[p.b]]])
                    skip = uf.connected(u, v)
                if not skip:
                    d2, u, v = bccp_nodes(tree, p.a, tree, p.b)
            resolve_costs.append(c)
            if skip or u < 0:
                continue
            heapq.heappush(heap, (d2, counter, True, (d2, u, v)))
            counter += 1
    parallel_merge(resolve_costs)
    # batched Kruskal: ~log n rounds of concurrent unions
    if union_costs:
        rounds = max(1, int(np.log2(len(union_costs) + 1)))
        per_round = -(-len(union_costs) // rounds)
        for r in range(rounds):
            batch = union_costs[r * per_round : (r + 1) * per_round]
            if batch:
                parallel_merge(batch)
    return np.array(edges, dtype=np.int64).reshape(-1, 2), np.asarray(weights)


def emst(points, s: float = 2.0) -> tuple[np.ndarray, np.ndarray]:
    """Euclidean MST of a point set.

    Returns (edges, weights): (n-1, 2) point-index pairs and Euclidean
    lengths.  Exact for separation s >= 2.
    """
    pts = as_array(points)
    tree = KDTree(pts, leaf_size=1)
    return emst_from_tree(tree, s=s)
