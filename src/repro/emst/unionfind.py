"""Union-find (disjoint sets) with path compression and union by rank."""

from __future__ import annotations

import numpy as np

from ..parlay.workdepth import charge

__all__ = ["UnionFind"]


class UnionFind:
    """Array-based disjoint-set forest over n elements."""

    __slots__ = ("parent", "rank", "n_components")

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self.n_components = n

    def find(self, x: int) -> int:
        charge(1, 1)
        root = x
        p = self.parent
        while p[root] != root:
            root = p[root]
        # path compression
        while p[x] != root:
            p[x], x = root, p[x]
        return int(root)

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of x and y; True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self.rank[rx] < self.rank[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        if self.rank[rx] == self.rank[ry]:
            self.rank[rx] += 1
        self.n_components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)
