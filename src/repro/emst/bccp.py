"""Bichromatic closest pair between kd-tree nodes (dual-tree search).

Given two kd-tree nodes, find the closest (red, blue) point pair — the
kernel of the WSPD-based EMST and of the standalone bichromatic closest
pair problem.  The recursion prunes node pairs whose box distance
exceeds the best pair found so far and brute-forces small products.
"""

from __future__ import annotations

import numpy as np

from ..core.distance import cross_dists_sq
from ..kdtree.tree import KDTree
from ..parlay.workdepth import charge

__all__ = ["bccp_nodes", "bccp_points"]

_BRUTE_LIMIT = 2048


def _box_dist_sq(tree_a: KDTree, a: int, tree_b: KDTree, b: int) -> float:
    gap = np.maximum(tree_a.box_lo[a] - tree_b.box_hi[b], 0.0) + np.maximum(
        tree_b.box_lo[b] - tree_a.box_hi[a], 0.0
    )
    return float(gap @ gap)


def bccp_nodes(
    tree_a: KDTree,
    a: int,
    tree_b: KDTree,
    b: int,
    best: tuple[float, int, int] | None = None,
) -> tuple[float, int, int]:
    """Closest pair (d^2, id_a, id_b) between points under nodes a, b.

    Node ids index their respective trees; returned point ids are the
    trees' global ids.
    """
    if best is None:
        best = (np.inf, -1, -1)
    charge(1, 1)
    if _box_dist_sq(tree_a, a, tree_b, b) >= best[0]:
        return best
    na = int(tree_a.end[a] - tree_a.start[a])
    nb = int(tree_b.end[b] - tree_b.start[b])
    if na * nb <= _BRUTE_LIMIT or (tree_a.is_leaf[a] and tree_b.is_leaf[b]):
        ia = tree_a.node_points(a)
        ib = tree_b.node_points(b)
        if len(ia) == 0 or len(ib) == 0:
            return best
        d2 = cross_dists_sq(tree_a.points[ia], tree_b.points[ib])
        j = int(np.argmin(d2))
        r, c = divmod(j, len(ib))
        dmin = float(d2[r, c])
        if dmin < best[0]:
            best = (dmin, int(tree_a.gids[ia[r]]), int(tree_b.gids[ib[c]]))
        return best
    # recurse on the larger node first, nearer child first
    if (na >= nb and not tree_a.is_leaf[a]) or tree_b.is_leaf[b]:
        kids = [int(tree_a.left[a]), int(tree_a.right[a])]
        kids = [k for k in kids if k >= 0]
        kids.sort(key=lambda k: _box_dist_sq(tree_a, k, tree_b, b))
        for k in kids:
            best = bccp_nodes(tree_a, k, tree_b, b, best)
    else:
        kids = [int(tree_b.left[b]), int(tree_b.right[b])]
        kids = [k for k in kids if k >= 0]
        kids.sort(key=lambda k: _box_dist_sq(tree_a, a, tree_b, k))
        for k in kids:
            best = bccp_nodes(tree_a, a, tree_b, k, best)
    return best


def bccp_points(red, blue) -> tuple[float, int, int]:
    """Bichromatic closest pair between two point sets.

    Returns (distance, red_index, blue_index).
    """
    from ..core.points import as_array

    r = as_array(red)
    b = as_array(blue)
    if len(r) == 0 or len(b) == 0:
        raise ValueError("bccp of empty set")
    ta = KDTree(r, leaf_size=16)
    tb = KDTree(b, leaf_size=16)
    d2, i, j = bccp_nodes(ta, ta.root, tb, tb.root)
    return float(np.sqrt(d2)), i, j
