"""Parallel sorting: sample sort and merge sort over numpy arrays.

The parallel sample sort follows the classic structure (and ParlayLib's
implementation): pick ``p log n`` random samples, sort them, pick ``p-1``
splitters, bucket every element by binary search, stably pack buckets,
then sort each bucket independently in parallel.  Work O(n log n), depth
O(log^2 n) — charged to the cost tracker.

``argsort_parallel`` returns indices (stable), which is what the spatial
algorithms need (they sort point IDs by keys such as Morton codes).
"""

from __future__ import annotations

import math

import numpy as np

from .scheduler import get_scheduler
from .workdepth import charge

__all__ = ["sample_sort", "argsort_parallel", "merge_sorted", "is_sorted"]


def _log2(n: int) -> float:
    return math.log2(n) if n > 1 else 1.0


def sample_sort(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Return a sorted copy of ``keys`` using parallel sample sort."""
    return keys[argsort_parallel(keys, seed=seed)]


def argsort_parallel(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Stable argsort via sample sort.  W=O(n log n), D=O(log^2 n)."""
    n = len(keys)
    if n <= 1:
        charge(1, 1)
        return np.arange(n, dtype=np.int64)

    sched = get_scheduler()
    nbuckets = min(max(2, sched.workers * 2), max(2, n // 64))
    if n < 2048 or nbuckets < 2:
        charge(n * _log2(n), _log2(n) ** 2)
        return np.argsort(keys, kind="stable")

    rng = np.random.default_rng(seed)
    oversample = nbuckets * max(2, int(_log2(n)))
    sample_idx = rng.integers(0, n, size=oversample)
    samples = np.sort(keys[sample_idx])
    charge(oversample * _log2(oversample), _log2(oversample))
    splitters = samples[oversample // nbuckets :: oversample // nbuckets][: nbuckets - 1]

    # Bucket each element: W=n log p, D=log n.
    bucket_of = np.searchsorted(splitters, keys, side="right")
    charge(n * _log2(nbuckets), _log2(n))

    # Stable pack into buckets (counting sort on bucket id).
    order = np.argsort(bucket_of, kind="stable")
    charge(n, _log2(n))
    counts = np.bincount(bucket_of, minlength=nbuckets)
    offsets = np.zeros(nbuckets + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])

    out = np.empty(n, dtype=np.int64)

    def sort_bucket(b: int) -> None:
        lo, hi = offsets[b], offsets[b + 1]
        idx = order[lo:hi]
        m = hi - lo
        if m > 1:
            charge(m * _log2(m), _log2(m) ** 2)
            sub = np.argsort(keys[idx], kind="stable")
            out[lo:hi] = idx[sub]
        else:
            charge(1, 1)
            out[lo:hi] = idx

    sched.parallel_for(nbuckets, sort_bucket)
    return out


def merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays; W=n+m, D=log(n+m) (parallel merge)."""
    n, m = len(a), len(b)
    charge(max(n + m, 1), _log2(n + m))
    out = np.empty(n + m, dtype=np.result_type(a, b))
    # np's mergesort on concatenation of two sorted runs is O(n+m)-ish;
    # for clarity use searchsorted-based interleave.
    pos = np.searchsorted(a, b, side="right")
    out[pos + np.arange(m)] = b
    mask = np.ones(n + m, dtype=bool)
    mask[pos + np.arange(m)] = False
    out[mask] = a
    return out


def is_sorted(a: np.ndarray) -> bool:
    """Check sortedness; W=n, D=log n."""
    charge(max(len(a), 1), _log2(len(a)))
    return bool(np.all(a[:-1] <= a[1:])) if len(a) else True
