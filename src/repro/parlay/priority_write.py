"""Priority writes (Shun et al., SPAA 2013) — the reservation primitive.

A priority write ``write_min(A, i, v)`` atomically sets ``A[i] =
min(A[i], v)``.  ParGeo's reservation-based convex hull uses this to let
many points race to reserve a facet, with the smallest point ID winning
deterministically regardless of interleaving.

Under the ``threads`` backend CPython evaluates the compare-and-swap
loop under a per-slot lock (the GIL already serializes bytecode, but we
do not rely on that); under the ``sequential`` backend it is a plain
min.  Batched (vectorized) forms are provided for performance.
"""

from __future__ import annotations

import threading

import numpy as np

from .workdepth import charge

__all__ = [
    "ReservationArray",
    "write_min_batch",
    "write_max_batch",
    "NO_RESERVATION",
]

#: Sentinel meaning "unreserved" — larger than any point priority.
NO_RESERVATION = np.iinfo(np.int64).max


class ReservationArray:
    """A fixed-size array of int64 slots supporting priority writes.

    Used for facet reservations: slot value is the smallest priority
    (point ID) that attempted to reserve the slot this round.
    """

    _N_LOCKS = 64

    def __init__(self, n: int):
        self.values = np.full(n, NO_RESERVATION, dtype=np.int64)
        self._locks = [threading.Lock() for _ in range(self._N_LOCKS)]

    def __len__(self) -> int:
        return len(self.values)

    def reset(self, indices: np.ndarray | None = None) -> None:
        """Clear reservations (all slots, or just ``indices``)."""
        if indices is None:
            self.values.fill(NO_RESERVATION)
            charge(len(self.values), 1)
        else:
            self.values[np.asarray(indices, dtype=np.int64)] = NO_RESERVATION
            charge(max(len(indices), 1), 1)

    def write_min(self, index: int, priority: int) -> bool:
        """Attempt A[index] = min(A[index], priority); True if we won."""
        lock = self._locks[index % self._N_LOCKS]
        with lock:
            charge(1, 1)
            if priority < self.values[index]:
                self.values[index] = priority
                return True
            return False

    def write_min_many(self, indices: np.ndarray, priority: int) -> None:
        """Reserve several slots with one priority (one point, many facets)."""
        idx = np.asarray(indices, dtype=np.int64)
        charge(max(len(idx), 1), 1)
        lock = self._locks[0]
        with lock:
            np.minimum.at(self.values, idx, priority)

    def check(self, indices: np.ndarray, priority: int) -> bool:
        """True iff this priority holds *all* of the given slots."""
        idx = np.asarray(indices, dtype=np.int64)
        charge(max(len(idx), 1), 1)
        return bool(np.all(self.values[idx] == priority))


def write_min_batch(values: np.ndarray, indices: np.ndarray, priorities: np.ndarray) -> None:
    """Vectorized priority write: values[indices] = min(., priorities).

    Duplicate indices are handled correctly (``np.minimum.at`` is an
    unbuffered scatter-min — exactly the semantics of a batch of
    concurrent write_mins).  W = |indices|, D = log |indices|.
    """
    n = len(indices)
    charge(max(n, 1))
    np.minimum.at(values, indices, priorities)


def write_max_batch(values: np.ndarray, indices: np.ndarray, priorities: np.ndarray) -> None:
    """Vectorized scatter-max; see :func:`write_min_batch`."""
    n = len(indices)
    charge(max(n, 1))
    np.maximum.at(values, indices, priorities)
