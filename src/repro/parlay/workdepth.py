"""Work-depth cost accounting for the parallel runtime.

ParGeo measures scalability on a 36-core machine; this reproduction runs
on CPython where the GIL precludes shared-memory speedups.  Instead,
every parallel primitive charges its *work* (total operations) and
*depth* (critical-path length) to a scoped :class:`CostTracker`.  Costs
compose the way a fork-join DAG composes: sequential composition adds
both work and depth; parallel composition adds work but takes the
maximum depth over the children (plus a logarithmic fork-join term).

Simulated running time on ``p`` workers uses Brent's bound::

    T_p = W / p + c * D

where ``c`` models per-task scheduling overhead.  The self-relative
speedup reported by the benchmark harness is ``T_1 / T_p`` under this
model, scaled onto the measured single-thread wall-clock time.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "Cost",
    "CostTracker",
    "tracker",
    "capture",
    "charge",
    "charge_blocked",
    "frame",
    "get_tracer",
    "parallel_merge",
    "set_tracer",
    "simulated_time",
    "simulated_speedup",
    "HYPERTHREAD_FACTOR",
]

# -- tracing hook ------------------------------------------------------
# repro.obs installs a span recorder here (see repro.obs.span).  The
# default None keeps the hot path to one global load per frame: no span
# is ever allocated unless tracing is enabled.
_tracer = None


def set_tracer(tracer) -> None:
    """Install (or, with None, remove) the process-wide span tracer."""
    global _tracer
    _tracer = tracer


def get_tracer():
    """The active span tracer, or None when tracing is disabled."""
    return _tracer

# Two-way hyper-threading gives the paper's machine 72 logical cores but
# roughly 36 * 1.3 cores' worth of throughput; the harness uses this when
# it reports "36h" numbers.
HYPERTHREAD_FACTOR = 1.3

# Scheduling overhead per unit of depth, in work-units.  Calibrated so
# that fine-grained algorithms (incremental hull) show visibly lower
# scalability than coarse-grained ones (divide-and-conquer), matching
# the paper's qualitative findings.
DEPTH_OVERHEAD = 8.0


@dataclass
class Cost:
    """An accumulated (work, depth) pair, in abstract operation units."""

    work: float = 0.0
    depth: float = 0.0

    def add_serial(self, other: "Cost") -> None:
        """Sequential composition: work and depth both accumulate."""
        self.work += other.work
        self.depth += other.depth

    def copy(self) -> "Cost":
        return Cost(self.work, self.depth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cost(work={self.work:.3g}, depth={self.depth:.3g})"


class CostTracker(threading.local):
    """Thread-local stack of cost frames.

    The bottom frame accumulates the whole computation.  ``frame()``
    pushes a child frame; on exit the child's cost is *returned* to the
    caller, which decides how to merge it (serially for plain scopes,
    max-depth for parallel siblings).
    """

    def __init__(self) -> None:
        super().__init__()
        self._stack = [Cost()]

    # -- plain accounting -------------------------------------------------
    @property
    def current(self) -> Cost:
        return self._stack[-1]

    def charge(self, work: float, depth: float | None = None) -> None:
        """Charge ``work`` operations with critical path ``depth``.

        ``depth`` defaults to ``log2(work)`` which is the depth of the
        canonical balanced reduction over ``work`` elements.
        """
        if depth is None:
            depth = math.log2(work) if work > 1 else 1.0
        top = self._stack[-1]
        top.work += work
        top.depth += depth

    def reset(self) -> Cost:
        """Clear all accumulated cost; return what had accumulated."""
        old = self._stack[0].copy()
        self._stack = [Cost()]
        return old

    def total(self) -> Cost:
        return self._stack[0].copy()

    # -- scoped accounting -------------------------------------------------
    @contextmanager
    def frame(self, label: str | None = None, **attrs):
        """Collect the cost of the enclosed block into a fresh Cost.

        The cost is *not* automatically merged into the parent; the
        caller receives it and merges explicitly.  Used by the scheduler
        to implement parallel (max-depth) composition.

        With a ``label`` and an installed tracer (see :func:`set_tracer`)
        the frame also emits a span carrying the label, any extra
        ``attrs`` (cat, backend, batch, parent, ...), and the frame's
        final (work, depth).

        The pop is exception-safe: the frame is removed in ``finally``
        and any stray frames a raising (or mis-nested) block left above
        it are unwound into this frame's cost first, so a raising
        algorithm can never corrupt the thread-local frame stack.
        """
        child = Cost()
        stack = self._stack
        stack.append(child)
        tr = _tracer
        tok = (
            tr.begin(label, **attrs)
            if tr is not None and label is not None
            else None
        )
        try:
            yield child
        finally:
            while len(stack) > 1 and stack[-1] is not child:
                child.add_serial(stack.pop())
            if stack[-1] is child:
                stack.pop()
            if tok is not None:
                tr.end(tok, child.work, child.depth)

    def merge_parallel(self, children: list[Cost], fanout: int | None = None) -> None:
        """Merge sibling costs that ran in parallel.

        Work adds; depth is the max over the children plus the
        logarithmic fork-join overhead of spawning ``fanout`` tasks.
        """
        if not children:
            return
        n = fanout if fanout is not None else len(children)
        top = self._stack[-1]
        top.work += sum(c.work for c in children) + n
        top.depth += max(c.depth for c in children) + math.log2(max(n, 2))

    def merge_serial(self, child: Cost) -> None:
        self._stack[-1].add_serial(child)


#: The process-wide tracker.  Thread-local so the thread backend's
#: workers don't interleave their accounting; the scheduler merges
#: worker-side costs back explicitly.
tracker = CostTracker()


def charge(work: float, depth: float | None = None) -> None:
    """Module-level convenience wrapper around ``tracker.charge``."""
    tracker.charge(work, depth)


@contextmanager
def frame(label: str | None = None, **attrs):
    with tracker.frame(label, **attrs) as c:
        yield c


def parallel_merge(children: list[Cost], fanout: int | None = None) -> None:
    tracker.merge_parallel(children, fanout)


@contextmanager
def capture(absorb: bool = True, label: str | None = None, **attrs):
    """Capture exactly the cost charged by the enclosed block.

    Pushes a fresh frame on the *current thread's* tracker and yields
    its :class:`Cost`: on exit it holds precisely the (work, depth) the
    block charged — a snapshot-and-re-zero around one request.  Because
    the tracker is thread-local, two threads capturing concurrently can
    never bleed costs into each other's capture; worker-side costs that
    the scheduler merges back (``parallel_do`` on the ``threads``
    backend) land in the frame of the thread that *forked* them, i.e.
    the right capture.

    With ``absorb=True`` (default) the captured cost is folded serially
    into the enclosing frame on exit, so outer accounting still sees
    the work; ``absorb=False`` discards it from the enclosing totals
    (pure measurement).

    A ``label`` additionally emits a span for the captured scope when
    tracing is enabled (see :meth:`CostTracker.frame`).  The absorb
    happens in ``finally``, so work charged before an exception still
    reaches the enclosing frame.
    """
    c = None
    try:
        with tracker.frame(label, **attrs) as c:
            yield c
    finally:
        if absorb and c is not None:
            tracker.merge_serial(c)


def charge_blocked(works, depths, blocks) -> None:
    """Charge per-item (work, depth) pairs as a blocked parallel loop.

    ``works``/``depths`` are per-item cost arrays; ``blocks`` is a list
    of ``(lo, hi)`` index ranges (e.g. from ``query_blocks``).  The
    composition is exactly what ``scheduler.parallel_for`` over those
    blocks would record — each block is a serial run of its items, the
    blocks are parallel siblings — so a batched (array-at-a-time)
    execution that accumulates per-item costs can charge the same
    fork-join structure as an item-at-a-time loop.
    """
    if not blocks:
        return
    costs = [
        Cost(float(works[lo:hi].sum()), float(depths[lo:hi].sum()))
        for lo, hi in blocks
    ]
    if len(costs) == 1:
        tracker.merge_serial(costs[0])
    else:
        tracker.merge_parallel(costs, fanout=len(costs))


def fork_costs(thunks) -> list:
    """Run thunks serially but compose their costs as parallel siblings.

    This is how algorithmically-parallel recursion below a scheduler
    grain cutoff is accounted: execution is inline (cheap), the cost
    model still sees the fork-join structure.
    """
    out = []
    costs = []
    for t in thunks:
        with tracker.frame() as c:
            out.append(t())
        costs.append(c)
    tracker.merge_parallel(costs, fanout=len(costs) or 1)
    return out


def simulated_time(cost: Cost, workers: float) -> float:
    """Brent's bound for running ``cost`` on ``workers`` processors."""
    if workers <= 1:
        return cost.work + cost.depth
    return cost.work / workers + DEPTH_OVERHEAD * cost.depth


def simulated_speedup(cost: Cost, workers: float) -> float:
    """Self-relative speedup T1 / Tp predicted by the cost model."""
    t1 = simulated_time(cost, 1.0)
    tp = simulated_time(cost, workers)
    if tp <= 0:
        return 1.0
    return t1 / tp
