"""Fork-join scheduler: the execution backend of the parlay substrate.

Three backends are provided:

``sequential``
    Runs tasks inline on the calling thread.  This is the default and is
    fully deterministic.

``threads``
    Runs coarse-grained tasks on a shared ``ThreadPoolExecutor``.  Under
    CPython the GIL serializes pure-Python bytecode, but numpy kernels
    release the GIL, and — more importantly — running the *actual*
    concurrent interleavings exercises the library's conflict-resolution
    logic (reservations, priority writes) for real.

``processes``
    Runs *declarative* tasks — a module-level function plus a picklable
    payload, dispatched through :meth:`Scheduler.process_map` — on a
    persistent :class:`~repro.parlay.procpool.ProcPool` of worker
    processes, so per-shard slab work executes on real cores with
    zero-copy reads of shared-memory shard state (see
    :mod:`repro.cluster.snapshot`).  Generic fork-join thunks are
    closures and cannot cross the process boundary; they run inline
    with the same parallel cost composition (exactly the nested-fork
    fallback), which keeps the backend a drop-in swap for the others.

Every backend performs identical work-depth accounting through
:mod:`repro.parlay.workdepth`: tasks forked together contribute
``sum(work)`` and ``max(depth)``, no matter where they ran.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable, Sequence, TypeVar

from .workdepth import Cost, get_tracer, tracker

__all__ = [
    "BACKENDS",
    "Scheduler",
    "get_scheduler",
    "register_process_shutdown_hook",
    "set_backend",
    "use_backend",
    "num_workers",
    "parallel_do",
    "parallel_for",
    "parallel_map_tasks",
]

T = TypeVar("T")

#: Recognized scheduler backends.
BACKENDS = ("sequential", "threads", "processes")

#: Sanity cap on the auto-detected worker count.
_MAX_AUTO_WORKERS = 32


def _default_workers() -> int:
    """``REPRO_NUM_WORKERS`` when set, else ``os.cpu_count()`` capped."""
    env = os.environ.get("REPRO_NUM_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, min(os.cpu_count() or 1, _MAX_AUTO_WORKERS))


_DEFAULT_WORKERS = _default_workers()

# Callbacks run when a scheduler with a live process pool shuts down
# (repro.cluster.snapshot registers shared-memory cleanup here; the
# indirection keeps parlay from importing higher layers).
_process_shutdown_hooks: list[Callable[[], None]] = []


def register_process_shutdown_hook(fn: Callable[[], None]) -> None:
    """Run ``fn`` whenever a process-backed scheduler shuts down."""
    if fn not in _process_shutdown_hooks:
        _process_shutdown_hooks.append(fn)


class Scheduler:
    """A fork-join scheduler with pluggable backend."""

    def __init__(self, backend: str = "sequential", workers: int = _DEFAULT_WORKERS):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.workers = max(1, workers)
        self._pool: ThreadPoolExecutor | None = None
        self._ppool = None  # ProcPool, for the processes backend
        self._lock = threading.Lock()
        # Depth guard: nested forks fall back to inline execution once a
        # worker thread is already running a task (avoids pool deadlock).
        self._in_worker = threading.local()

    # -- pool management ---------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="parlay"
                )
            return self._pool

    def proc_pool(self):
        """The lazily-started worker-process pool (processes backend)."""
        if self.backend != "processes":
            raise RuntimeError(
                f"proc_pool() requires the 'processes' backend, not {self.backend!r}"
            )
        with self._lock:
            if self._ppool is None:
                from .procpool import ProcPool

                self._ppool = ProcPool(self.workers)
            return self._ppool

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            ppool, self._ppool = self._ppool, None
        if ppool is not None:
            for hook in _process_shutdown_hooks:
                try:
                    hook()
                except Exception:
                    pass
            ppool.shutdown()

    # -- fork-join ----------------------------------------------------------
    def parallel_do(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Run independent thunks 'in parallel'; return results in order.

        Cost accounting: each task's cost is measured in its own frame;
        the merged contribution is sum-of-work / max-of-depth.
        """
        if not tasks:
            return []
        if len(tasks) == 1:
            # A single task is sequential composition.
            with tracker.frame() as c:
                out = [tasks[0]()]
            tracker.merge_serial(c)
            return out

        # the processes backend cannot ship closures across the process
        # boundary, so generic thunks run inline with the same parallel
        # cost composition (declarative slab work goes via process_map)
        inline = (
            self.backend in ("sequential", "processes")
            or getattr(self._in_worker, "flag", False)
        )
        tr = get_tracer()
        if inline:
            results: list[T] = []
            costs: list[Cost] = []
            if tr is None:
                for t in tasks:
                    with tracker.frame() as c:
                        results.append(t())
                    costs.append(c)
            else:
                for t in tasks:
                    with tracker.frame(
                        label="parlay.task", cat="task",
                        backend=self.backend, batch=len(tasks),
                    ) as c:
                        results.append(t())
                    costs.append(c)
            tracker.merge_parallel(costs, fanout=len(tasks))
            return results

        pool = self._ensure_pool()
        costs_by_idx: list[Cost | None] = [None] * len(tasks)
        results_by_idx: list[T] = [None] * len(tasks)  # type: ignore[list-item]
        # the span parent is the forking thread's innermost open span —
        # worker threads have no span context of their own
        fork_parent = tr.current_id() if tr is not None else None

        def run(i: int, t: Callable[[], T]) -> None:
            self._in_worker.flag = True
            try:
                if tr is None:
                    with tracker.frame() as c:
                        results_by_idx[i] = t()
                else:
                    with tracker.frame(
                        label="parlay.task", cat="task", backend="threads",
                        batch=len(tasks), parent=fork_parent,
                    ) as c:
                        results_by_idx[i] = t()
                costs_by_idx[i] = c
            finally:
                self._in_worker.flag = False

        futures = [pool.submit(run, i, t) for i, t in enumerate(tasks)]
        for f in futures:
            f.result()  # re-raise worker exceptions
        tracker.merge_parallel(
            [c for c in costs_by_idx if c is not None], fanout=len(tasks)
        )
        return list(results_by_idx)

    def parallel_for(
        self,
        n: int,
        body: Callable[[int], None],
        grain: int = 1,
    ) -> None:
        """parallel_for(i in [0, n)): body(i), chunked by ``grain``."""
        if n <= 0:
            return
        if grain <= 1 and n <= self.workers * 2:
            self.parallel_do([(lambda i=i: body(i)) for i in range(n)])
            return
        grain = max(grain, 1)
        chunks = []
        for lo in range(0, n, grain):
            hi = min(lo + grain, n)

            def run_chunk(lo=lo, hi=hi):
                for i in range(lo, hi):
                    body(i)

            chunks.append(run_chunk)
        self.parallel_do(chunks)

    def map_tasks(self, fn: Callable[[T], object], items: Iterable[T]) -> list:
        """Apply ``fn`` to each item as an independent parallel task."""
        items = list(items)
        return self.parallel_do([(lambda x=x: fn(x)) for x in items])

    # -- declarative process dispatch ---------------------------------------
    def process_map(
        self, func_path: str, tasks: Sequence[tuple[int, object]]
    ) -> list:
        """Run ``fn(payload)`` per ``(affinity, payload)`` task on real cores.

        The processes-backend counterpart of :meth:`parallel_do` for
        *declarative* tasks: ``func_path`` names a module-level function
        (``"pkg.mod:fn"``) and each payload is picklable.  Equal
        affinities are pinned to the same worker process, so worker-side
        caches (attached shard snapshots) survive across calls.

        Cost accounting matches :meth:`parallel_do` exactly: each task's
        (work, depth) is captured in the worker and merged here — a
        single task composes serially, siblings compose as
        sum-work / max-depth with the log-fanout term.  Worker-side
        spans are forwarded into the parent recorder, tagged with the
        worker pid, parented to the forking span; when tracing is
        disabled nothing is recorded anywhere.

        On non-process backends (or when nested inside a worker task)
        the calls run inline on this thread — the same fallback
        ``parallel_do`` uses — so callers can dispatch unconditionally.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        tr = get_tracer()

        remote = (
            self.backend == "processes"
            and not getattr(self._in_worker, "flag", False)
        )
        if not remote:
            from .procpool import _resolve

            fn = _resolve(func_path)
            return self.parallel_do(
                [(lambda p=payload: fn(p)) for _affinity, payload in tasks]
            )

        fork_parent = tr.current_id() if tr is not None else None
        from ..obs.rtrace import current_trace_ids

        out = self.proc_pool().run_tasks(
            func_path, tasks, trace=tr is not None, workers_hint=self.workers,
            trace_ids=current_trace_ids() or None,
        )
        costs = [Cost(r.work, r.depth) for r in out]
        if len(costs) == 1:
            tracker.merge_serial(costs[0])
        else:
            tracker.merge_parallel(costs, fanout=len(tasks))
        if tr is not None:
            for r in out:
                if r.spans:
                    tr.ingest(r.spans, parent=fork_parent, pid=r.pid)
        return [r.result for r in out]


_scheduler = Scheduler(os.environ.get("REPRO_BACKEND", "sequential"))


def get_scheduler() -> Scheduler:
    return _scheduler


def set_backend(backend: str, workers: int | None = None) -> None:
    """Switch the global scheduler backend (one of :data:`BACKENDS`)."""
    global _scheduler
    _scheduler.shutdown()
    _scheduler = Scheduler(backend, workers or _scheduler.workers)


@contextmanager
def use_backend(backend: str, workers: int | None = None):
    """Temporarily switch backends (used by tests and benchmarks)."""
    global _scheduler
    old = _scheduler
    _scheduler = Scheduler(backend, workers or old.workers)
    try:
        yield _scheduler
    finally:
        _scheduler.shutdown()
        _scheduler = old


def num_workers() -> int:
    return _scheduler.workers


def parallel_do(tasks: Sequence[Callable[[], T]]) -> list[T]:
    return _scheduler.parallel_do(tasks)


def parallel_for(n: int, body: Callable[[int], None], grain: int = 1) -> None:
    _scheduler.parallel_for(n, body, grain)


def parallel_map_tasks(fn: Callable[[T], object], items: Iterable[T]) -> list:
    return _scheduler.map_tasks(fn, items)
