"""Semisort / group-by-key (ParlayLib's ``group_by`` family).

A semisort groups equal keys together without fully sorting between
groups — W=O(n), D=O(log n) with hashing.  We execute the numpy
equivalent (stable argsort by key hash) and charge the semisort costs.
"""

from __future__ import annotations

import math

import numpy as np

from .workdepth import charge

__all__ = ["semisort_indices", "group_by", "reduce_by_key"]


def semisort_indices(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group equal keys: returns (order, group_offsets, group_keys).

    ``order`` permutes indices so equal keys are adjacent (stable within
    a group); ``group_offsets`` (g+1,) delimits groups in that order;
    ``group_keys`` (g,) is each group's key.  W=O(n), D=O(log n).
    """
    n = len(keys)
    charge(max(n, 1), math.log2(max(n, 2)))
    order = np.argsort(keys, kind="stable").astype(np.int64)
    sk = keys[order]
    if n == 0:
        return order, np.zeros(1, dtype=np.int64), sk
    boundaries = np.flatnonzero(np.concatenate([[True], sk[1:] != sk[:-1]]))
    offsets = np.concatenate([boundaries, [n]]).astype(np.int64)
    return order, offsets, sk[boundaries]


def group_by(keys: np.ndarray, values: np.ndarray | None = None) -> dict:
    """Dictionary {key: array of values (or indices) with that key}."""
    order, offsets, gkeys = semisort_indices(np.asarray(keys))
    vals = order if values is None else np.asarray(values)[order]
    return {
        gkeys[g].item() if hasattr(gkeys[g], "item") else gkeys[g]: vals[
            offsets[g] : offsets[g + 1]
        ]
        for g in range(len(gkeys))
    }


def reduce_by_key(keys: np.ndarray, values: np.ndarray, op: str = "add") -> tuple[np.ndarray, np.ndarray]:
    """Per-key reduction; returns (unique_keys, reduced_values).

    ``op``: 'add', 'min', or 'max'.  W=O(n), D=O(log n).
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if len(keys) != len(values):
        raise ValueError("keys/values length mismatch")
    order, offsets, gkeys = semisort_indices(keys)
    sv = values[order]
    charge(max(len(keys), 1), math.log2(max(len(keys), 2)))
    out = np.empty(len(gkeys), dtype=values.dtype)
    reducer = {"add": np.add, "min": np.minimum, "max": np.maximum}.get(op)
    if reducer is None:
        raise ValueError(f"unknown op {op!r}")
    for g in range(len(gkeys)):
        out[g] = reducer.reduce(sv[offsets[g] : offsets[g + 1]])
    return gkeys, out
