"""``repro.parlay`` — the ParlayLib-equivalent parallel substrate.

Provides the fork-join scheduler, data-parallel sequence primitives,
parallel sorting, random permutation, priority writes, and the
work-depth cost model that simulates multicore speedups (see DESIGN.md
§1 for the substitution rationale).
"""

from .histogram import count_sort_by_bucket, histogram
from .primitives import (
    pack,
    pack_index,
    pcount,
    pfilter,
    pflatten,
    pmap,
    pmax_index,
    pmin_index,
    preduce,
    pscan,
    pscan_inclusive,
    split_blocks,
)
from .priority_write import (
    NO_RESERVATION,
    ReservationArray,
    write_max_batch,
    write_min_batch,
)
from .radix import radix_argsort, radix_sort
from .random import random_permutation, random_sample_indices
from .semisort import group_by, reduce_by_key, semisort_indices
from .scheduler import (
    BACKENDS,
    Scheduler,
    get_scheduler,
    num_workers,
    parallel_do,
    parallel_for,
    parallel_map_tasks,
    register_process_shutdown_hook,
    set_backend,
    use_backend,
)
from .sort import argsort_parallel, is_sorted, merge_sorted, sample_sort
from .workdepth import (
    Cost,
    CostTracker,
    capture,
    charge,
    frame,
    simulated_speedup,
    simulated_time,
    tracker,
)

__all__ = [
    "BACKENDS",
    "Cost",
    "CostTracker",
    "NO_RESERVATION",
    "ReservationArray",
    "Scheduler",
    "argsort_parallel",
    "capture",
    "charge",
    "count_sort_by_bucket",
    "frame",
    "get_scheduler",
    "group_by",
    "histogram",
    "is_sorted",
    "merge_sorted",
    "num_workers",
    "pack",
    "pack_index",
    "parallel_do",
    "parallel_for",
    "parallel_map_tasks",
    "pcount",
    "pfilter",
    "pflatten",
    "pmap",
    "pmax_index",
    "pmin_index",
    "preduce",
    "pscan",
    "pscan_inclusive",
    "radix_argsort",
    "radix_sort",
    "register_process_shutdown_hook",
    "random_permutation",
    "random_sample_indices",
    "reduce_by_key",
    "sample_sort",
    "semisort_indices",
    "set_backend",
    "simulated_speedup",
    "simulated_time",
    "split_blocks",
    "tracker",
    "use_backend",
    "write_max_batch",
    "write_min_batch",
]
