"""Data-parallel primitives over numpy arrays.

These mirror ParlayLib's sequence primitives (map, reduce, scan, filter,
pack, flatten).  Each primitive executes a vectorized numpy kernel and
charges its analytic work/depth to the cost tracker:

=============  ==========  ===========
primitive      work        depth
=============  ==========  ===========
map / pack     n           log n
reduce / scan  n           log n
flatten        total size  log n
=============  ==========  ===========

The numpy kernel *is* the data-parallel loop; the cost model supplies
what a fork-join machine would have paid.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from .workdepth import charge

__all__ = [
    "pmap",
    "preduce",
    "pscan",
    "pscan_inclusive",
    "pfilter",
    "pack",
    "pack_index",
    "pflatten",
    "pcount",
    "pmin_index",
    "pmax_index",
    "split_blocks",
]


def _log2(n: int) -> float:
    return math.log2(n) if n > 1 else 1.0


def pmap(fn: Callable[[np.ndarray], np.ndarray], arr: np.ndarray) -> np.ndarray:
    """Apply an elementwise (vectorized) function; W=n, D=log n."""
    n = len(arr)
    charge(max(n, 1), _log2(n))
    return fn(arr)


def preduce(arr: np.ndarray, op: str = "add") -> float:
    """Reduce with a balanced tree; W=n, D=log n.

    ``op`` is one of 'add', 'min', 'max'.
    """
    n = arr.shape[0]
    charge(max(n, 1), _log2(n))
    if n == 0:
        if op == "add":
            return 0.0
        raise ValueError("empty reduce with non-add operation")
    if op == "add":
        return float(np.sum(arr))
    if op == "min":
        return float(np.min(arr))
    if op == "max":
        return float(np.max(arr))
    raise ValueError(f"unknown op {op!r}")


def pscan(arr: np.ndarray) -> tuple[np.ndarray, float]:
    """Exclusive prefix sum; returns (prefix, total).  W=n, D=log n."""
    n = arr.shape[0]
    charge(max(n, 1), _log2(n))
    out = np.zeros_like(arr)
    if n:
        np.cumsum(arr[:-1], out=out[1:])
        total = float(out[-1] + arr[-1])
    else:
        total = 0.0
    return out, total


def pscan_inclusive(arr: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum; W=n, D=log n."""
    n = arr.shape[0]
    charge(max(n, 1), _log2(n))
    return np.cumsum(arr)


def pfilter(arr: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Keep elements where mask is true (parallel pack); W=n, D=log n."""
    n = arr.shape[0]
    charge(max(n, 1), _log2(n))
    return arr[mask]


# `pack` is the PBBS/ParGeo name for filter-by-flags.
pack = pfilter


def pack_index(mask: np.ndarray) -> np.ndarray:
    """Indices of true flags, in order; W=n, D=log n."""
    n = mask.shape[0]
    charge(max(n, 1), _log2(n))
    return np.flatnonzero(mask)


def pflatten(seqs: Sequence[np.ndarray], dtype=None) -> np.ndarray:
    """Concatenate a sequence of arrays; W=total, D=log(#seqs).

    ``dtype`` fixes the element type of the result; without it the
    type is inferred from the inputs (and only an empty *input list*
    falls back to float64, since there is nothing to infer from).
    """
    if not seqs:
        charge(1, 1)
        return np.empty(0, dtype=np.float64 if dtype is None else dtype)
    total = sum(len(s) for s in seqs)
    charge(max(total, 1), _log2(len(seqs)) + _log2(max(total, 1)))
    out = np.concatenate(list(seqs))
    if dtype is not None:
        out = out.astype(dtype, copy=False)
    return out


def pcount(mask: np.ndarray) -> int:
    """Number of true flags; W=n, D=log n."""
    n = mask.shape[0]
    charge(max(n, 1), _log2(n))
    return int(np.count_nonzero(mask))


def pmin_index(arr: np.ndarray) -> int:
    """Index of the minimum (parallel min-reduce); W=n, D=log n."""
    n = arr.shape[0]
    if n == 0:
        raise ValueError("pmin_index of empty array")
    charge(n, _log2(n))
    return int(np.argmin(arr))


def pmax_index(arr: np.ndarray) -> int:
    """Index of the maximum (parallel max-reduce); W=n, D=log n."""
    n = arr.shape[0]
    if n == 0:
        raise ValueError("pmax_index of empty array")
    charge(n, _log2(n))
    return int(np.argmax(arr))


def query_blocks(n: int, grain: int = 64) -> list[tuple[int, int]]:
    """Blocks for data-parallel query batches.

    Block count scales with n (grain-bounded), not with the local
    worker count: ``ceil(n / grain)`` blocks of ~``grain`` queries, so
    a fork-join machine sees all n/grain-way parallelism of a large
    batch while a small batch never splits finer than its grain
    warrants (a 10-query batch is one block, not ``workers * 4``
    single-query shards as the old worker-count floor produced).
    """
    by_grain = -(-n // max(grain, 1))
    return split_blocks(n, by_grain)


def split_blocks(n: int, nblocks: int) -> list[tuple[int, int]]:
    """Split range [0, n) into at most ``nblocks`` contiguous blocks."""
    nblocks = max(1, min(nblocks, n)) if n > 0 else 0
    out = []
    for b in range(nblocks):
        lo = n * b // nblocks
        hi = n * (b + 1) // nblocks
        if hi > lo:
            out.append((lo, hi))
    return out
