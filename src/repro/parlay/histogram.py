"""Parallel histogram / counting (ParlayLib `histogram` equivalent)."""

from __future__ import annotations

import math

import numpy as np

from .workdepth import charge

__all__ = ["histogram", "count_sort_by_bucket"]


def histogram(keys: np.ndarray, nbuckets: int) -> np.ndarray:
    """Counts per bucket for integer keys in [0, nbuckets).

    W=n, D=log n (parallel blocked counting + tree merge).
    """
    n = len(keys)
    charge(max(n, 1) + nbuckets, math.log2(max(n, 2)))
    return np.bincount(keys, minlength=nbuckets).astype(np.int64)


def count_sort_by_bucket(keys: np.ndarray, nbuckets: int) -> tuple[np.ndarray, np.ndarray]:
    """Stable counting sort; returns (order, bucket_offsets).

    ``order`` is a permutation grouping elements by bucket;
    ``bucket_offsets`` has length nbuckets+1 delimiting each group.
    W=O(n), D=O(log n).
    """
    n = len(keys)
    charge(max(n, 1) + nbuckets, math.log2(max(n, 2)))
    counts = np.bincount(keys, minlength=nbuckets)
    offsets = np.zeros(nbuckets + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    order = np.argsort(keys, kind="stable").astype(np.int64)
    return order, offsets
