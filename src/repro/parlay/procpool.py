"""Persistent multiprocessing worker pool behind the ``processes`` backend.

CPython's GIL caps the ``threads`` backend at interleaving; real
wall-clock speedup needs processes.  This pool keeps ``p`` long-lived
worker processes, each with its own task queue, so tasks with an
*affinity* (e.g. a shard id) land on the same worker every time — the
worker's caches (attached shared-memory snapshots of shard state, see
:mod:`repro.cluster.snapshot`) stay warm across calls and re-attach
only when the state's version bumps.

The protocol is deliberately narrow: a task is ``(func_path, payload)``
where ``func_path`` names a module-level function (``"pkg.mod:fn"``)
and ``payload`` is picklable.  Closures never cross the process
boundary — generic fork-join thunks fall back to inline execution in
the scheduler; only declarative slab work is shipped here.

Each worker runs the task inside a fresh cost frame and returns
``(result, work, depth, spans)`` so the parent scheduler can merge the
charges as parallel children — identical composition to the inline and
thread paths — and forward worker-side spans (tagged with the worker
pid) into the parent's recorder.

Workers are started with the ``fork`` method when available (cheap,
inherits the imported modules) and ``spawn`` otherwise; override with
``REPRO_PROC_START_METHOD``.
"""

from __future__ import annotations

import atexit
import importlib
import os
import traceback

import multiprocessing as mp

__all__ = ["ProcPool", "ProcResult", "default_start_method", "worker_pid"]

#: Per-get timeout while waiting for results (liveness is re-checked).
_POLL_S = 1.0


def default_start_method() -> str:
    """``fork`` where supported (cheap), else ``spawn``; env-overridable."""
    env = os.environ.get("REPRO_PROC_START_METHOD")
    if env:
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _resolve(func_path: str, _cache: dict = {}):
    """Import ``"pkg.mod:fn"`` once per worker process."""
    fn = _cache.get(func_path)
    if fn is None:
        modname, _, qual = func_path.partition(":")
        if not qual:
            raise ValueError(f"func_path must be 'module:function', got {func_path!r}")
        obj = importlib.import_module(modname)
        for part in qual.split("."):
            obj = getattr(obj, part)
        fn = _cache[func_path] = obj
    return fn


class ProcResult:
    """One task's round trip: result + the cost it charged + its spans."""

    __slots__ = ("result", "work", "depth", "spans", "pid")

    def __init__(self, result, work: float, depth: float, spans, pid: int):
        self.result = result
        self.work = work
        self.depth = depth
        self.spans = spans
        self.pid = pid


def _worker_main(widx: int, start_method: str, task_q, result_q) -> None:
    """Worker loop: run tasks until the ``None`` sentinel arrives."""
    # A forked worker inherits the parent's scheduler/tracer; reset both
    # so slab code runs inline (the nested-fork fallback) and never
    # tries to reach back into the parent's pools.
    from . import scheduler as _sched
    from . import workdepth

    workdepth.set_tracer(None)
    os.environ["REPRO_PROC_WORKER"] = "1"
    # how this worker was started — shared-memory attach consults it to
    # decide whether this process owns its own resource tracker
    os.environ["REPRO_PROC_START"] = start_method
    pid = os.getpid()

    while True:
        msg = task_q.get()
        if msg is None:
            break
        seq, func_path, payload, opts = msg
        try:
            _sched._scheduler = _sched.Scheduler(
                "sequential", int(opts.get("workers", 1))
            )
            recorder = None
            if opts.get("trace"):
                from ..obs.span import SpanRecorder

                recorder = SpanRecorder()
                workdepth.set_tracer(recorder)
            try:
                fn = _resolve(func_path)
                workdepth.tracker.reset()
                # labelled like the thread backend's task frames, so the
                # forwarded span tree looks the same across backends
                label = "parlay.task" if recorder is not None else None
                # request-trace ids of the serve batch this slab computes
                # for (propagated by scheduler.process_map) tag the task
                # span, so worker lanes name their requests
                extra = (
                    {"trace_ids": tuple(opts["trace_ids"])}
                    if opts.get("trace_ids") else {}
                )
                with workdepth.tracker.frame(
                    label=label, cat="task", backend="processes",
                    batch=opts.get("batch"), **extra,
                ) as cost:
                    result = fn(payload)
            finally:
                if recorder is not None:
                    workdepth.set_tracer(None)
            spans = None
            if recorder is not None:
                from ..obs.span import spans_to_payload

                spans = spans_to_payload(recorder.spans())
            result_q.put(
                ("ok", seq, ProcResult(result, cost.work, cost.depth, spans, pid))
            )
        except BaseException:
            result_q.put(("err", seq, traceback.format_exc()))
    # drop any worker-side caches (shared-memory attachments) cleanly
    try:
        from ..cluster import procwork

        procwork.close_attachments()
    except Exception:
        pass


class ProcPool:
    """``p`` persistent worker processes with per-worker task queues."""

    def __init__(self, workers: int, start_method: str | None = None):
        self.workers = max(1, int(workers))
        self.start_method = start_method or default_start_method()
        self._ctx = mp.get_context(self.start_method)
        self._task_qs: list = []
        self._procs: list = []
        self._result_q = None
        self._seq = 0
        atexit.register(self.shutdown)

    # -- lifecycle ---------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    def _ensure_started(self) -> None:
        if self._procs:
            return
        self._result_q = self._ctx.Queue()
        for i in range(self.workers):
            tq = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(i, self.start_method, tq, self._result_q),
                name=f"parlay-proc-{i}",
                daemon=True,
            )
            proc.start()
            self._task_qs.append(tq)
            self._procs.append(proc)

    def pids(self) -> list[int]:
        """Worker OS pids (starts the pool if needed)."""
        self._ensure_started()
        return [p.pid for p in self._procs]

    def shutdown(self) -> None:
        """Stop the workers and drop the queues.  Safe to call twice."""
        if not self._procs:
            return
        for tq in self._task_qs:
            try:
                tq.put(None)
            except (OSError, ValueError):
                pass
        for p in self._procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for q in (*self._task_qs, self._result_q):
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass
        self._task_qs = []
        self._procs = []
        self._result_q = None

    # -- dispatch ----------------------------------------------------------
    def run_tasks(
        self,
        func_path: str,
        tasks: list[tuple[int, object]],
        *,
        trace: bool = False,
        workers_hint: int | None = None,
        trace_ids: tuple[str, ...] | None = None,
    ) -> list[ProcResult]:
        """Run ``fn(payload)`` per task on its affinity worker; in order.

        ``tasks`` is ``[(affinity, payload), ...]``; task ``i`` runs on
        worker ``affinity % p``, so equal affinities always share a
        worker (pinning).  ``trace_ids`` optionally names the serving
        requests this batch computes for; workers tag their task spans
        with them.  Raises ``RuntimeError`` carrying the remote
        traceback if any task fails, after draining the rest.
        """
        if not tasks:
            return []
        self._ensure_started()
        opts = {
            "trace": bool(trace),
            "workers": int(workers_hint or self.workers),
            "batch": len(tasks),
        }
        if trace_ids:
            opts["trace_ids"] = tuple(trace_ids)
        base = self._seq
        self._seq += len(tasks)
        for i, (affinity, payload) in enumerate(tasks):
            self._task_qs[int(affinity) % self.workers].put(
                (base + i, func_path, payload, opts)
            )

        out: list[ProcResult | None] = [None] * len(tasks)
        pending = len(tasks)
        error: str | None = None
        while pending:
            try:
                kind, seq, value = self._result_q.get(timeout=_POLL_S)
            except Exception:
                if any(not p.is_alive() for p in self._procs):
                    self.shutdown()
                    raise RuntimeError(
                        "a parlay worker process died while tasks were pending"
                    ) from None
                continue
            if not (base <= seq < base + len(tasks)):
                continue  # stray result from an abandoned batch
            pending -= 1
            if kind == "err":
                error = error or value
            else:
                out[seq - base] = value
        if error is not None:
            raise RuntimeError(f"worker task failed:\n{error}")
        return out  # type: ignore[return-value]
