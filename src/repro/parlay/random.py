"""Parallel random permutation and sampling utilities.

ParGeo's randomized incremental algorithms start by randomly permuting
the input.  The classic parallel random permutation (via random keys +
sort) has W=O(n log n), D=O(log^2 n); we charge those costs and execute
the numpy equivalent.
"""

from __future__ import annotations

import math

import numpy as np

from .workdepth import charge

__all__ = ["random_permutation", "random_sample_indices"]


def random_permutation(n: int, seed: int = 0) -> np.ndarray:
    """A uniformly random permutation of [0, n).

    Implemented as sort-by-random-key (the standard parallel algorithm);
    W=O(n log n), D=O(log^2 n).
    """
    if n <= 0:
        charge(1, 1)
        return np.arange(0, dtype=np.int64)
    logn = math.log2(n) if n > 1 else 1.0
    charge(n * logn, logn * logn)
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def random_sample_indices(n: int, k: int, seed: int = 0) -> np.ndarray:
    """``k`` indices sampled without replacement from [0, n)."""
    k = min(k, n)
    charge(max(k, 1), math.log2(k) if k > 1 else 1.0)
    rng = np.random.default_rng(seed)
    return rng.choice(n, size=k, replace=False).astype(np.int64)
