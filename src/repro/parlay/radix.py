"""Parallel LSD radix sort for integer keys (Morton/Hilbert codes).

The work-efficient parallel integer sort: per-pass blocked counting
(parallel histograms), a prefix-sum over the per-block counts, and a
scatter.  W=O(n · passes), D=O(passes · log n) — charged accordingly;
execution uses vectorized numpy passes.
"""

from __future__ import annotations

import math

import numpy as np

from .workdepth import charge

__all__ = ["radix_argsort", "radix_sort"]

_RADIX_BITS = 16


def radix_argsort(keys: np.ndarray, max_key: int | None = None) -> np.ndarray:
    """Stable argsort of non-negative integer keys via LSD radix sort."""
    keys = np.asarray(keys)
    if keys.dtype.kind not in "ui":
        raise ValueError("radix sort requires unsigned/integer keys")
    n = len(keys)
    if n <= 1:
        charge(1, 1)
        return np.arange(n, dtype=np.int64)
    if max_key is None:
        max_key = int(keys.max())
    key_bits = max(1, int(max_key).bit_length())
    passes = -(-key_bits // _RADIX_BITS)
    mask = (1 << _RADIX_BITS) - 1

    order = np.arange(n, dtype=np.int64)
    work = keys.astype(np.uint64)
    charge(n * passes, passes * math.log2(max(n, 2)))
    for p in range(passes):
        digits = (work >> np.uint64(p * _RADIX_BITS)) & np.uint64(mask)
        # counting sort on this digit (stable)
        counts = np.bincount(digits, minlength=mask + 1)
        offsets = np.zeros(mask + 2, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        pos = np.argsort(digits, kind="stable")
        order = order[pos]
        work = work[pos]
    return order


def radix_sort(keys: np.ndarray, max_key: int | None = None) -> np.ndarray:
    """Sorted copy of non-negative integer keys."""
    return np.asarray(keys)[radix_argsort(keys, max_key)]
