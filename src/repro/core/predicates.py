"""Geometric predicates with floating-point filters and exact fallback.

``orient2d`` / ``orient3d`` / ``incircle`` evaluate the standard
determinant with float64 first; when the result's magnitude falls below
a forward error bound (Shewchuk-style constant-times-permanent bound)
the computation is redone with exact arithmetic via Python's arbitrary
precision :class:`fractions.Fraction`.

Vectorized (batch) forms return the *sign* array computed in float64 and
re-evaluate only the filtered-out ambiguous rows exactly, so robustness
costs nothing on generic inputs.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

__all__ = [
    "orient2d",
    "orient3d",
    "incircle",
    "orient2d_batch",
    "orient3d_batch",
    "incircle_batch",
    "EPS2D",
    "EPS3D",
]

_MACH = np.finfo(np.float64).eps
# Forward error bounds on the naive determinant expansions (coarse but
# safe constants; anything within bound * magnitude goes exact).
EPS2D = 8.0 * _MACH
EPS3D = 64.0 * _MACH
EPSINC = 128.0 * _MACH


def _exact_orient2d(a, b, c) -> int:
    """Exact sign via rational arithmetic on the *raw* coordinates —
    float subtraction may already have lost the sign."""
    ax, ay = Fraction(float(a[0])), Fraction(float(a[1]))
    bx, by = Fraction(float(b[0])), Fraction(float(b[1]))
    cx, cy = Fraction(float(c[0])), Fraction(float(c[1]))
    v = (ax - cx) * (by - cy) - (ay - cy) * (bx - cx)
    return (v > 0) - (v < 0)


def orient2d(a, b, c) -> int:
    """Sign of the area of triangle (a, b, c): +1 ccw, -1 cw, 0 collinear."""
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    cx, cy = float(c[0]), float(c[1])
    acx, acy = ax - cx, ay - cy
    bcx, bcy = bx - cx, by - cy
    det = acx * bcy - acy * bcx
    errbound = EPS2D * (abs(acx * bcy) + abs(acy * bcx) + abs(det))
    if abs(det) > errbound:
        return 1 if det > 0 else -1
    return _exact_orient2d(a, b, c)


def orient3d(a, b, c, d) -> int:
    """Sign of det([b-a; c-a; d-a]): +1 if d is on the positive side of
    plane (a,b,c) oriented by the right-hand rule, -1 if negative,
    0 if coplanar."""
    ax, ay, az = (float(x) for x in a[:3])
    m = [
        [float(b[0]) - ax, float(b[1]) - ay, float(b[2]) - az],
        [float(c[0]) - ax, float(c[1]) - ay, float(c[2]) - az],
        [float(d[0]) - ax, float(d[1]) - ay, float(d[2]) - az],
    ]
    t1 = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
    t2 = m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
    t3 = m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    det = t1 - t2 + t3
    perm = abs(t1) + abs(t2) + abs(t3)
    if abs(det) > EPS3D * perm:
        return 1 if det > 0 else -1
    # exact fallback on the raw coordinates (float subtraction may have
    # already cancelled the signal)
    fa = [Fraction(float(x)) for x in a[:3]]
    fm = [
        [Fraction(float(p[k])) - fa[k] for k in range(3)]
        for p in (b, c, d)
    ]
    v = (
        fm[0][0] * (fm[1][1] * fm[2][2] - fm[1][2] * fm[2][1])
        - fm[0][1] * (fm[1][0] * fm[2][2] - fm[1][2] * fm[2][0])
        + fm[0][2] * (fm[1][0] * fm[2][1] - fm[1][1] * fm[2][0])
    )
    return (v > 0) - (v < 0)


def incircle(a, b, c, d) -> int:
    """+1 if d lies inside the circle through ccw triangle (a, b, c),
    -1 if outside, 0 if cocircular.  Assumes orient2d(a, b, c) > 0."""
    rows = []
    dx, dy = float(d[0]), float(d[1])
    for p in (a, b, c):
        px, py = float(p[0]) - dx, float(p[1]) - dy
        rows.append((px, py, px * px + py * py))
    t1 = rows[0][0] * (rows[1][1] * rows[2][2] - rows[1][2] * rows[2][1])
    t2 = rows[0][1] * (rows[1][0] * rows[2][2] - rows[1][2] * rows[2][0])
    t3 = rows[0][2] * (rows[1][0] * rows[2][1] - rows[1][1] * rows[2][0])
    det = t1 - t2 + t3
    perm = abs(t1) + abs(t2) + abs(t3)
    if abs(det) > EPSINC * perm:
        return 1 if det > 0 else -1
    # exact fallback on the raw coordinates
    fdx, fdy = Fraction(float(d[0])), Fraction(float(d[1]))
    frows = []
    for p in (a, b, c):
        px = Fraction(float(p[0])) - fdx
        py = Fraction(float(p[1])) - fdy
        frows.append([px, py, px * px + py * py])
    v = (
        frows[0][0] * (frows[1][1] * frows[2][2] - frows[1][2] * frows[2][1])
        - frows[0][1] * (frows[1][0] * frows[2][2] - frows[1][2] * frows[2][0])
        + frows[0][2] * (frows[1][0] * frows[2][1] - frows[1][1] * frows[2][0])
    )
    return (v > 0) - (v < 0)


# ---------------------------------------------------------------------------
# Vectorized batch predicates: fast float path + exact re-check of the
# ambiguous rows only.
# ---------------------------------------------------------------------------


def orient2d_batch(a: np.ndarray, b: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Signs of orient2d(a, b, p) for every row p of ``pts``."""
    acx = a[0] - pts[:, 0]
    acy = a[1] - pts[:, 1]
    bcx = b[0] - pts[:, 0]
    bcy = b[1] - pts[:, 1]
    l = acx * bcy
    r = acy * bcx
    det = l - r
    err = EPS2D * (np.abs(l) + np.abs(r))
    sign = np.sign(det).astype(np.int8)
    ambiguous = np.abs(det) <= err
    if np.any(ambiguous):
        for i in np.flatnonzero(ambiguous):
            sign[i] = orient2d(a, b, pts[i])
    return sign


def orient3d_batch(a: np.ndarray, b: np.ndarray, c: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Signs of orient3d(a, b, c, p) for every row p of ``pts``.

    Positive means p on the positive side of plane (a, b, c).
    """
    ab = b - a
    ac = c - a
    normal = np.cross(ab, ac)
    ap = pts - a
    det = ap @ normal
    # error proxy: scale of the triple product terms
    mag = np.abs(ap) @ np.abs(normal)
    sign = np.sign(det).astype(np.int8)
    ambiguous = np.abs(det) <= EPS3D * np.maximum(mag, 1e-300)
    if np.any(ambiguous):
        for i in np.flatnonzero(ambiguous):
            # orient3d(a,b,c,p) has same sign convention: det([b-a;c-a;p-a])
            sign[i] = orient3d(a, b, c, pts[i])
    return sign


def incircle_batch(a: np.ndarray, b: np.ndarray, c: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Signs of incircle(a, b, c, p) for every row p of ``pts``."""
    out = np.empty(len(pts), dtype=np.int8)
    rel = np.empty((3, len(pts), 3))
    for k, q in enumerate((a, b, c)):
        px = q[0] - pts[:, 0]
        py = q[1] - pts[:, 1]
        rel[k, :, 0] = px
        rel[k, :, 1] = py
        rel[k, :, 2] = px * px + py * py
    r0, r1, r2 = rel[0], rel[1], rel[2]
    t1 = r0[:, 0] * (r1[:, 1] * r2[:, 2] - r1[:, 2] * r2[:, 1])
    t2 = r0[:, 1] * (r1[:, 0] * r2[:, 2] - r1[:, 2] * r2[:, 0])
    t3 = r0[:, 2] * (r1[:, 0] * r2[:, 1] - r1[:, 1] * r2[:, 0])
    det = t1 - t2 + t3
    perm = np.abs(t1) + np.abs(t2) + np.abs(t3)
    out[:] = np.sign(det)
    ambiguous = np.abs(det) <= EPSINC * np.maximum(perm, 1e-300)
    for i in np.flatnonzero(ambiguous):
        out[i] = incircle(a, b, c, pts[i])
    return out
