"""Point-set container used throughout the library.

A :class:`PointSet` is a thin, immutable-by-convention wrapper over an
``(n, d)`` float64 numpy array.  All algorithms accept either a raw
array or a PointSet; use :func:`as_points` at public API boundaries.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PointSet", "as_points", "as_array"]


class PointSet:
    """An ordered set of n points in R^d, backed by an (n, d) array."""

    __slots__ = ("coords",)

    def __init__(self, coords: np.ndarray):
        coords = np.ascontiguousarray(coords, dtype=np.float64)
        if coords.ndim != 2:
            raise ValueError(f"expected (n, d) array, got shape {coords.shape}")
        self.coords = coords

    # -- basic protocol ------------------------------------------------------
    def __len__(self) -> int:
        return self.coords.shape[0]

    def __getitem__(self, idx) -> np.ndarray:
        return self.coords[idx]

    def __iter__(self):
        return iter(self.coords)

    def __repr__(self) -> str:
        return f"PointSet(n={len(self)}, d={self.dim})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, PointSet):
            return NotImplemented
        return self.coords.shape == other.coords.shape and bool(
            np.all(self.coords == other.coords)
        )

    # -- properties ----------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimensionality d of the ambient space."""
        return self.coords.shape[1]

    @property
    def n(self) -> int:
        return self.coords.shape[0]

    # -- convenience -----------------------------------------------------------
    def subset(self, idx) -> "PointSet":
        """A new PointSet of the rows selected by ``idx``."""
        return PointSet(self.coords[idx])

    def concat(self, other: "PointSet") -> "PointSet":
        if self.dim != other.dim:
            raise ValueError("dimension mismatch")
        return PointSet(np.vstack([self.coords, other.coords]))

    def copy(self) -> "PointSet":
        return PointSet(self.coords.copy())


def as_points(data) -> PointSet:
    """Coerce an array-like or PointSet into a PointSet."""
    if isinstance(data, PointSet):
        return data
    return PointSet(np.asarray(data, dtype=np.float64))


def as_array(data) -> np.ndarray:
    """Coerce a PointSet or array-like into a contiguous (n, d) array."""
    if isinstance(data, PointSet):
        return data.coords
    arr = np.ascontiguousarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected (n, d) array, got shape {arr.shape}")
    return arr
