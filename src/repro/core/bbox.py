"""Axis-aligned bounding boxes in R^d."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BBox", "TouchedRegion", "bbox_of"]


class BBox:
    """A closed axis-aligned box [lo, hi] in R^d."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray):
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        if self.lo.shape != self.hi.shape:
            raise ValueError("lo/hi shape mismatch")

    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    def diameter(self) -> float:
        """Euclidean length of the box diagonal."""
        return float(np.linalg.norm(self.hi - self.lo))

    def max_side(self) -> float:
        return float(np.max(self.hi - self.lo))

    def longest_dim(self) -> int:
        return int(np.argmax(self.hi - self.lo))

    # -- geometric queries ----------------------------------------------------
    def contains_point(self, p: np.ndarray) -> bool:
        return bool(np.all(p >= self.lo) and np.all(p <= self.hi))

    def contains_points(self, pts: np.ndarray) -> np.ndarray:
        return np.all((pts >= self.lo) & (pts <= self.hi), axis=1)

    def intersects(self, other: "BBox") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def contains_box(self, other: "BBox") -> bool:
        return bool(np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi))

    def dist_sq_to_point(self, p: np.ndarray) -> float:
        """Squared distance from p to the box (0 if inside)."""
        d = np.maximum(self.lo - p, 0.0) + np.maximum(p - self.hi, 0.0)
        return float(d @ d)

    def max_dist_sq_to_point(self, p: np.ndarray) -> float:
        """Squared distance from p to the farthest corner of the box."""
        d = np.maximum(np.abs(p - self.lo), np.abs(p - self.hi))
        return float(d @ d)

    def dist_sq_to_box(self, other: "BBox") -> float:
        d = np.maximum(self.lo - other.hi, 0.0) + np.maximum(other.lo - self.hi, 0.0)
        return float(d @ d)

    def within_ball(self, center: np.ndarray, r: float) -> bool:
        """True iff the whole box lies inside the ball (center, r)."""
        return self.max_dist_sq_to_point(center) <= r * r

    def intersects_ball(self, center: np.ndarray, r: float) -> bool:
        return self.dist_sq_to_point(center) <= r * r

    def union(self, other: "BBox") -> "BBox":
        return BBox(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"BBox(lo={self.lo}, hi={self.hi})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, BBox):
            return NotImplemented
        return bool(np.all(self.lo == other.lo) and np.all(self.hi == other.hi))


@dataclass(frozen=True)
class TouchedRegion:
    """The key-range one batch mutation touched, for scoped invalidation.

    Batch insert/erase on :class:`~repro.bdl.bdltree.BDLTree` and
    :class:`~repro.cluster.index.ShardedIndex` publish one of these as
    ``index.last_touched``: the conservative bounding box of the batch
    (for erase, of the *requested* coordinates — a superset of what was
    actually deleted), the effective point count, the post-mutation
    ``version`` it belongs to, and — on a sharded index — the ids of
    the shards the batch routed to.  Derived-structure maintainers
    (:mod:`repro.views`) use it to repair only state intersecting the
    region instead of invalidating everything behind an opaque version
    bump.
    """

    kind: str                 #: "insert" | "erase"
    lo: np.ndarray            #: per-dimension batch minimum
    hi: np.ndarray            #: per-dimension batch maximum
    count: int                #: points inserted / points actually deleted
    version: int              #: index version this mutation produced
    shards: tuple = field(default=())  #: shard ids routed to (sharded only)

    def bbox(self) -> BBox:
        """The touched region as a closed :class:`BBox`."""
        return BBox(self.lo, self.hi)

    def intersects(self, box: BBox) -> bool:
        """True iff the touched region meets ``box`` (closed boxes)."""
        return self.bbox().intersects(box)


def _touched(kind: str, pts: np.ndarray, count: int, version: int,
             shards=()) -> TouchedRegion:
    """Build a :class:`TouchedRegion` for a nonempty batch."""
    return TouchedRegion(
        kind=kind,
        lo=pts.min(axis=0),
        hi=pts.max(axis=0),
        count=int(count),
        version=int(version),
        shards=tuple(shards),
    )


def bbox_of(pts: np.ndarray) -> BBox:
    """Bounding box of an (n, d) array of points (n >= 1)."""
    pts = np.asarray(pts, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("bbox_of requires a nonempty (n, d) array")
    return BBox(pts.min(axis=0), pts.max(axis=0))
