"""``repro.core`` — geometry kernel: points, predicates, boxes, distances."""

from .bbox import BBox, bbox_of
from .distance import (
    cross_dists_sq,
    dist,
    dist_sq,
    dists_sq_to_point,
    pairwise_dists_sq,
)
from .points import PointSet, as_array, as_points
from .predicates import (
    incircle,
    incircle_batch,
    orient2d,
    orient2d_batch,
    orient3d,
    orient3d_batch,
)

__all__ = [
    "BBox",
    "PointSet",
    "as_array",
    "as_points",
    "bbox_of",
    "cross_dists_sq",
    "dist",
    "dist_sq",
    "dists_sq_to_point",
    "incircle",
    "incircle_batch",
    "orient2d",
    "orient2d_batch",
    "orient3d",
    "orient3d_batch",
    "pairwise_dists_sq",
]
