"""Distance kernels (vectorized, cost-charged)."""

from __future__ import annotations

import numpy as np

from ..parlay.workdepth import charge

__all__ = [
    "dist_sq",
    "dist",
    "dists_sq_to_point",
    "pairwise_dists_sq",
    "cross_dists_sq",
]


def dist_sq(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two points."""
    d = a - b
    return float(d @ d)


def dist(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.sqrt(dist_sq(a, b)))


def dists_sq_to_point(pts: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Squared distances from every row of pts to q.  W=n*d, D=log n."""
    n = len(pts)
    charge(max(n, 1) * pts.shape[1] if n else 1)
    d = pts - q
    return np.einsum("ij,ij->i", d, d)


def pairwise_dists_sq(pts: np.ndarray) -> np.ndarray:
    """Full (n, n) squared distance matrix.  W=n^2 d, D=log n."""
    n = len(pts)
    charge(max(n * n, 1))
    sq = np.einsum("ij,ij->i", pts, pts)
    out = sq[:, None] + sq[None, :] - 2.0 * (pts @ pts.T)
    np.maximum(out, 0.0, out=out)
    return out


def cross_dists_sq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(|a|, |b|) matrix of squared distances.  W=|a||b|d, D=log(|a||b|)."""
    charge(max(len(a) * len(b), 1))
    sa = np.einsum("ij,ij->i", a, a)
    sb = np.einsum("ij,ij->i", b, b)
    out = sa[:, None] + sb[None, :] - 2.0 * (a @ b.T)
    np.maximum(out, 0.0, out=out)
    return out
