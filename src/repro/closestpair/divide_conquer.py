"""Closest pair of points by parallel divide-and-conquer (any dimension).

The classic scheme generalized to R^d: split on the widest dimension at
the median, solve halves (in parallel), then merge through the strip of
points within delta of the splitting plane.  The strip is processed by
sorting along another dimension and comparing each point only against
neighbors within delta in that order — O(n) expected work per level for
constant d.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge

__all__ = ["closest_pair"]

_BRUTE = 64
_PAR_CUTOFF = 8192


def _brute(pts: np.ndarray, ids: np.ndarray) -> tuple[float, int, int]:
    m = len(ids)
    charge(m * m)
    best = (np.inf, -1, -1)
    sub = pts[ids]
    for i in range(m - 1):
        diff = sub[i + 1 :] - sub[i]
        d2 = np.einsum("ij,ij->i", diff, diff)
        j = int(np.argmin(d2))
        if d2[j] < best[0]:
            best = (float(d2[j]), int(ids[i]), int(ids[i + 1 + j]))
    return best


def _strip_scan(pts: np.ndarray, ids: np.ndarray, sort_dim: int, delta2: float) -> tuple[float, int, int]:
    """Best pair within a strip: sort on sort_dim, compare neighbors."""
    best = (delta2, -1, -1)
    if len(ids) < 2:
        return (np.inf, -1, -1) if best[1] < 0 else best
    order = ids[np.argsort(pts[ids, sort_dim], kind="stable")]
    coords = pts[order]
    keys = coords[:, sort_dim]
    charge(len(ids) * 8)
    delta = np.sqrt(delta2)
    m = len(order)
    found = (np.inf, -1, -1)
    for i in range(m - 1):
        j = i + 1
        while j < m and keys[j] - keys[i] < delta:
            d = coords[j] - coords[i]
            d2 = float(d @ d)
            if d2 < best[0]:
                best = (d2, int(order[i]), int(order[j]))
                found = best
                delta = np.sqrt(d2)
            j += 1
    return found


def _rec(pts: np.ndarray, ids: np.ndarray, depth: int, parallel: bool) -> tuple[float, int, int]:
    if len(ids) <= _BRUTE:
        return _brute(pts, ids)
    sub = pts[ids]
    charge(len(ids))
    lo = sub.min(axis=0)
    hi = sub.max(axis=0)
    dim = int(np.argmax(hi - lo))
    vals = sub[:, dim]
    half = len(ids) // 2
    order = np.argpartition(vals, half)
    left_ids = ids[order[:half]]
    right_ids = ids[order[half:]]
    split = float(vals[order[half]])

    if parallel and len(ids) > _PAR_CUTOFF:
        res = get_scheduler().parallel_do(
            [
                lambda: _rec(pts, left_ids, depth + 1, parallel),
                lambda: _rec(pts, right_ids, depth + 1, parallel),
            ]
        )
        bl, br = res
    else:
        bl = _rec(pts, left_ids, depth + 1, parallel)
        br = _rec(pts, right_ids, depth + 1, parallel)
    best = bl if bl[0] <= br[0] else br

    delta = np.sqrt(best[0])
    strip_mask = np.abs(vals - split) < delta
    strip_ids = ids[strip_mask]
    if len(strip_ids) >= 2:
        sort_dim = (dim + 1) % pts.shape[1]
        bs = _strip_scan(pts, strip_ids, sort_dim, best[0])
        if bs[0] < best[0]:
            best = bs
    return best


def closest_pair(points, parallel: bool = True) -> tuple[float, int, int]:
    """Closest pair of distinct points.

    Returns (distance, i, j) with i, j indices into the input.
    """
    pts = as_array(points)
    n = len(pts)
    if n < 2:
        raise ValueError("closest_pair requires at least 2 points")
    d2, i, j = _rec(pts, np.arange(n, dtype=np.int64), 0, parallel)
    return float(np.sqrt(d2)), i, j
