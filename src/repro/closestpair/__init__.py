"""``repro.closestpair`` — closest pair (divide-and-conquer) and
bichromatic closest pair (dual-tree; re-exported from repro.emst)."""

from ..emst.bccp import bccp_points
from .divide_conquer import closest_pair

__all__ = ["bccp_points", "closest_pair"]
