"""In-process geometry query service with dynamic batching.

:class:`GeometryService` accepts *single* kNN / box-range / ball-range /
all-NN requests against registered point indexes (static
:class:`~repro.kdtree.tree.KDTree` or batch-dynamic
:class:`~repro.bdl.bdltree.BDLTree`) and turns them into the bulk
batches the array-at-a-time engine (PR 1) is 11–18x faster on:

* **Dynamic batching** — a coalescing queue groups compatible pending
  requests (same dataset, same kind / k) and dispatches them in one
  vectorized shot through ``engine="batched"``, bounded by
  ``max_batch`` (size trigger) and ``max_wait`` (latency trigger).
* **Versioned result cache** — an LRU keyed by (dataset epoch, tree
  version, kind, params, query digest).  The index's ``version``
  counter bumps on every batch insert/delete, so a stale entry's key
  can never be looked up again.
* **Admission control / backpressure** — the pending queue is bounded
  by ``max_pending``; submissions beyond it are rejected with a typed
  :class:`~repro.serve.errors.Overloaded` instead of silently degrading
  everyone.  Per-request deadlines reject late requests with
  :class:`~repro.serve.errors.RequestTimeout` before wasting execution.
* **Per-request metrics** — every ticket resolves with a
  :class:`~repro.serve.metrics.RequestMetrics` (queue wait, batch size
  joined, cache hit, work/depth charged, captured via the thread-local
  :func:`repro.parlay.workdepth.capture` so concurrent request streams
  on the ``threads`` backend never bleed costs into each other);
  :meth:`GeometryService.snapshot` aggregates service-wide.

The service runs in two modes: *manual* (no background thread — callers
drive dispatch with :meth:`flush`, and the blocking convenience methods
flush on demand; fully deterministic, what the tests and benchmarks
use) and *threaded* (:meth:`start` spawns a dispatcher thread that
batches on the size/deadline triggers while client threads block on
tickets).

Results are bitwise-identical to per-request recursive queries: the
batched engine replays the recursive walk exactly (see
:mod:`repro.kdtree.batch`), grouping only merges independent queries,
and the cache stores exactly what an execution returned.

Mutating an index while a dispatch is executing is not synchronized by
the service; the dispatcher re-reads the version counter after
executing and refuses to cache results that straddle a mutation, so a
torn result can be *returned* (to the racing caller, which is inherent
to unsynchronized mutation) but never *cached*.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..kdtree.batch import execute_requests
from ..obs.registry import MetricsRegistry
from ..obs.rtrace import batch_context, batch_subtree, partition_work
from ..obs.span import active_recorder
from ..parlay.workdepth import capture
from .cache import MISS, ResultCache, make_key, query_digest
from .coalescer import Coalescer, PendingRequest, Ticket
from .errors import Overloaded, RequestTimeout, ServiceClosed, UnknownDataset
from .metrics import RequestMetrics, ServiceStats

__all__ = ["GeometryService", "KINDS"]

#: Request kinds the service understands.
KINDS = ("knn", "box", "ball", "allnn", "view")

_UNSET = object()


class GeometryService:
    """An in-process query front-end over registered geometry indexes.

    Parameters
    ----------
    max_batch:
        Most requests dispatched together in one coalesced execution.
    max_wait:
        Seconds the threaded dispatcher lets a non-full batch age
        before dispatching anyway (latency bound).  Ignored in manual
        mode, where :meth:`flush` dispatches immediately.
    max_pending:
        Bound on the coalescing queue; submissions past it raise
        :class:`Overloaded`.
    cache_capacity:
        LRU result-cache entries (0 disables caching).
    default_timeout:
        Default per-request deadline in seconds (None = no deadline).
    registry:
        Metrics registry to publish on (one is created when omitted).
        Request counters, cache gauges, and the pending-queue gauge all
        live on it; :meth:`metrics_text` renders it for Prometheus.
    """

    def __init__(
        self,
        *,
        max_batch: int = 256,
        max_wait: float = 0.002,
        max_pending: int = 2048,
        cache_capacity: int = 4096,
        default_timeout: float | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_pending = int(max_pending)
        self.default_timeout = default_timeout

        self._cache = ResultCache(cache_capacity)
        self._coal = Coalescer()
        self._cond = threading.Condition()
        self._datasets: dict[str, object] = {}
        self._epochs: dict[str, int] = {}
        self._next_epoch = 0
        self._closed = False
        self._stopping = False
        self._thread: threading.Thread | None = None
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = ServiceStats(self.registry)
        # cache and coalescer state publish as polled gauges on the same
        # registry, so one snapshot covers the whole serving layer
        self.registry.gauge(
            "serve_cache_size", "live result-cache entries"
        ).set_function(lambda: len(self._cache))
        self.registry.gauge(
            "serve_cache_capacity", "result-cache capacity"
        ).set_function(lambda: self._cache.capacity)
        self.registry.gauge(
            "serve_cache_evictions", "result-cache LRU evictions"
        ).set_function(lambda: self._cache.evictions)
        self.registry.gauge(
            "serve_pending", "requests waiting in the coalescing queue"
        ).set_function(self.pending)

    # ------------------------------------------------------------------
    # dataset registry
    # ------------------------------------------------------------------
    def register(self, name: str, index) -> None:
        """Register (or replace) a queryable index under ``name``.

        The index must expose ``dim`` and ``knn`` (KDTree and BDLTree
        both do).  Indexes without a ``version`` attribute get one, so
        external mutation helpers can bump it.
        """
        if not hasattr(index, "knn") or not hasattr(index, "dim"):
            raise TypeError(
                f"index for {name!r} must expose .dim and .knn "
                f"(got {type(index).__name__})"
            )
        if getattr(index, "version", None) is None:
            index.version = 0
        with self._cond:
            self._datasets[name] = index
            self._epochs[name] = self._next_epoch
            self._next_epoch += 1

    def unregister(self, name: str) -> None:
        with self._cond:
            if name not in self._datasets:
                raise UnknownDataset(name)
            del self._datasets[name]
            del self._epochs[name]

    def index(self, name: str):
        """The registered index object (e.g. to apply a mutation batch)."""
        with self._cond:
            idx = self._datasets.get(name)
        if idx is None:
            raise UnknownDataset(name)
        return idx

    def datasets(self) -> list[str]:
        with self._cond:
            return sorted(self._datasets)

    # ------------------------------------------------------------------
    # request normalization
    # ------------------------------------------------------------------
    def _normalize(self, index, kind, payload, k, radius, exclude_self):
        """Canonicalize a request into (payload, params, digest)."""
        d = index.dim
        if kind == "knn":
            if k is None:
                raise ValueError("knn requests require k=")
            q = np.ascontiguousarray(payload, dtype=np.float64)
            if q.shape != (d,):
                raise ValueError(f"knn query must have shape ({d},), got {q.shape}")
            params = (("exclude_self", bool(exclude_self)), ("k", int(k)))
            return q, params, query_digest(q)
        if kind == "box":
            lo, hi = payload
            box = np.ascontiguousarray(np.stack([lo, hi]), dtype=np.float64)
            if box.shape != (2, d):
                raise ValueError(f"box query must be (lo, hi) of dim {d}")
            return box, (), query_digest(box)
        if kind == "ball":
            c = np.ascontiguousarray(payload, dtype=np.float64)
            if c.shape != (d,):
                raise ValueError(f"ball center must have shape ({d},), got {c.shape}")
            if radius is None:
                raise ValueError("ball requests require radius=")
            r = float(radius)
            return (c, r), (), query_digest(c, np.float64(r))
        if kind == "allnn":
            return None, (), b"allnn"
        if kind == "view":
            if not isinstance(payload, str) or not payload:
                raise ValueError("view requests take the view name as payload")
            if getattr(index, "views", None) is None:
                raise ValueError(
                    f"dataset has no materialized views; attach a ViewManager"
                    f" before requesting view {payload!r}"
                )
            return payload, (("name", payload),), payload.encode("utf-8")
        raise ValueError(f"unknown request kind {kind!r}; expected one of {KINDS}")

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        dataset: str,
        kind: str,
        payload=None,
        *,
        k: int | None = None,
        radius: float | None = None,
        exclude_self: bool = False,
        timeout: float | None = _UNSET,
        ctx=None,
    ) -> Ticket:
        """Enqueue one request; returns a :class:`Ticket` immediately.

        Raises :class:`Overloaded` when the pending queue is full,
        :class:`UnknownDataset` / :class:`ServiceClosed` / ``ValueError``
        on bad addressing.  A submit-time cache hit resolves the ticket
        before returning (zero queue wait).  ``ctx`` optionally carries
        the caller's :class:`~repro.obs.rtrace.RequestContext` so the
        coalesced batch span links back to the request's trace id.
        """
        if timeout is _UNSET:
            timeout = self.default_timeout
        self.stats.record_submit()
        with self._cond:
            if self._closed:
                raise ServiceClosed("service is closed")
            index = self._datasets.get(dataset)
            if index is None:
                raise UnknownDataset(dataset)
            epoch = self._epochs[dataset]
        payload, params, digest = self._normalize(
            index, kind, payload, k, radius, exclude_self
        )

        ticket = Ticket()
        key = make_key(dataset, epoch, getattr(index, "version", 0), kind, params, digest)
        hit = self._cache.get(key)
        if hit is not MISS:
            self.stats.record_hit()
            self.stats.record_accept()
            ticket.resolve(hit, RequestMetrics(0.0, 0, True, 0.0, 0.0))
            return ticket

        now = time.monotonic()
        req = PendingRequest(
            dataset=dataset,
            kind=kind,
            params=params,
            payload=payload,
            digest=digest,
            ticket=ticket,
            enqueued_at=now,
            deadline=now + timeout if timeout is not None else None,
            ctx=ctx,
        )
        with self._cond:
            if self._closed:
                raise ServiceClosed("service is closed")
            if len(self._coal) >= self.max_pending:
                self.stats.record_reject()
                raise Overloaded(len(self._coal), self.max_pending)
            self._coal.add(req)
            self.stats.record_accept()
            self._cond.notify_all()
        return ticket

    # -- blocking conveniences ---------------------------------------------
    def _request(self, dataset, kind, payload=None, *, timeout=_UNSET, **kw):
        t = self.submit(dataset, kind, payload, timeout=timeout, **kw)
        if not t.done() and self._thread is None:
            self.flush()
        return t.result(None if timeout is _UNSET else timeout)

    def knn(self, dataset: str, q, k: int, *, exclude_self: bool = False,
            timeout: float | None = _UNSET):
        """k nearest neighbors of one query point: (sq-dists, ids), each (k,)."""
        return self._request(
            dataset, "knn", q, k=k, exclude_self=exclude_self, timeout=timeout
        )

    def range_box(self, dataset: str, lo, hi, *, timeout: float | None = _UNSET):
        """Ids of points inside the closed box [lo, hi]."""
        return self._request(dataset, "box", (lo, hi), timeout=timeout)

    def range_ball(self, dataset: str, center, radius: float, *,
                   timeout: float | None = _UNSET):
        """Ids of points within ``radius`` of ``center``."""
        return self._request(dataset, "ball", center, radius=radius, timeout=timeout)

    def allnn(self, dataset: str, *, timeout: float | None = _UNSET):
        """Each alive point's nearest neighbor: (dists, ids)."""
        return self._request(dataset, "allnn", timeout=timeout)

    def view(self, dataset: str, name: str, *, timeout: float | None = _UNSET):
        """A materialized view's ``(answer, version)`` — never stale."""
        return self._request(dataset, "view", name, timeout=timeout)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def flush(self, dataset: str | None = None) -> int:
        """Dispatch pending requests now; returns #tickets resolved.

        With a ``dataset`` only that dataset's queue drains — the
        dispatch hook an external scheduler (e.g. the multi-tenant
        front-end) uses to control which tenant executes next instead
        of the coalescer's FIFO-across-datasets default.
        """
        served = 0
        while True:
            with self._cond:
                batch = self._coal.take_batch(self.max_batch, dataset)
            if not batch:
                return served
            served += self._execute(batch)

    def pending(self) -> int:
        with self._cond:
            return len(self._coal)

    def pending_for(self, dataset: str) -> int:
        """Requests currently queued for one dataset."""
        with self._cond:
            return self._coal.pending_for(dataset)

    def _execute(self, batch: list[PendingRequest]) -> int:
        """Run one coalesced slab (single dataset, possibly mixed kinds)."""
        name = batch[0].dataset
        with self._cond:
            index = self._datasets.get(name)
            epoch = self._epochs.get(name, -1)
        if index is None:
            err = UnknownDataset(name)
            for r in batch:
                r.ticket.reject(err)
            return 0

        now = time.monotonic()
        live: list[PendingRequest] = []
        n_timeout = 0
        for r in batch:
            if r.deadline is not None and now > r.deadline:
                n_timeout += 1
                r.ticket.reject(
                    RequestTimeout(now - r.enqueued_at),
                    RequestMetrics(now - r.enqueued_at, 0, False, 0.0, 0.0),
                )
            else:
                live.append(r)
        if n_timeout:
            self.stats.record_timeout(n_timeout)
        if not live:
            return 0

        version = getattr(index, "version", 0)
        hits: list[tuple[PendingRequest, object]] = []
        waiting: list[tuple[PendingRequest, tuple, tuple]] = []
        slot: dict[tuple, int] = {}
        uniq: list[PendingRequest] = []
        for r in live:
            ck = make_key(name, epoch, version, r.kind, r.params, r.digest)
            cached = self._cache.get(ck)
            if cached is not MISS:
                hits.append((r, cached))
                continue
            ek = (r.kind, r.params, r.digest)
            if ek not in slot:
                slot[ek] = len(uniq)
                uniq.append(r)
            waiting.append((r, ek, ck))

        t_exec = time.monotonic()
        for r, cached in hits:
            self.stats.record_hit()
            r.ticket.resolve(
                cached,
                RequestMetrics(t_exec - r.enqueued_at, 0, True, 0.0, 0.0),
            )

        if not waiting:
            return len(hits)

        trace_ids = tuple(
            r.ctx.trace_id for r, _, _ in waiting if r.ctx is not None
        )
        attrs = {"links": trace_ids} if trace_ids else {}
        rec = active_recorder()
        mark = rec.mark() if rec is not None else 0
        weights: list[float] = []
        t_run0 = time.monotonic()
        try:
            with batch_context(trace_ids):
                with capture(
                    label="serve.dispatch", cat="serve",
                    batch=len(uniq), dataset=name, **attrs,
                ) as cost:
                    results = execute_requests(
                        index,
                        [(r.kind, r.payload, dict(r.params)) for r in uniq],
                        costs_out=weights,
                    )
        except Exception as exc:  # typed service errors pass through tickets
            for r, _, _ in waiting:
                r.ticket.reject(exc)
            return len(hits)
        t_run1 = time.monotonic()
        exec_wall = t_run1 - t_run0

        batch_sid, bundle = (None, None)
        if rec is not None:
            batch_sid, subtree = batch_subtree(rec.spans_since(mark))
            bundle = subtree or None

        nexec = len(uniq)
        # a unique slot's charged work divides across its duplicate
        # riders, then the batch total is partitioned *exactly* across
        # every waiting member proportional to those weights
        mult = [0] * nexec
        for _, ek, _ in waiting:
            mult[slot[ek]] += 1
        member_weights = [weights[slot[ek]] / mult[slot[ek]] for _, ek, _ in waiting]
        shares = partition_work(cost.work, member_weights)

        version_after = getattr(index, "version", 0)
        cacheable = version_after == version
        total_wait = 0.0
        for (r, ek, ck), share in zip(waiting, shares):
            res = results[slot[ek]]
            if cacheable:
                self._cache.put(ck, res)
            wait = t_exec - r.enqueued_at
            total_wait += wait
            merge_wall = time.monotonic() - t_run1
            r.ticket.resolve(
                res,
                RequestMetrics(
                    wait, nexec, False, share, cost.depth,
                    exec_wall=exec_wall, merge_wall=merge_wall,
                    batch_work=cost.work, batch_sid=batch_sid, bundle=bundle,
                ),
            )
        self.stats.record_batch(len(waiting), nexec, total_wait, cost.work, cost.depth)
        return len(hits) + len(waiting)

    # ------------------------------------------------------------------
    # background dispatcher
    # ------------------------------------------------------------------
    def start(self) -> "GeometryService":
        """Spawn the background dispatcher thread (idempotent)."""
        with self._cond:
            if self._closed:
                raise ServiceClosed("service is closed")
            if self._thread is not None:
                return self
            self._stopping = False
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the dispatcher, draining pending requests first."""
        with self._cond:
            t = self._thread
            if t is None:
                return
            self._stopping = True
            self._cond.notify_all()
        t.join()
        with self._cond:
            self._thread = None
            self._stopping = False

    def close(self) -> None:
        """Stop and refuse further submissions; pending work is drained.

        Idempotent and drain-safe: the first call stops the dispatcher,
        marks the service closed (so racing submitters get a typed
        :class:`ServiceClosed`), and flushes every request that made it
        into the queue — in-flight requests complete.  Any straggler
        the final flush could not execute is rejected with
        :class:`ServiceClosed` so no ticket is left unresolved.  A
        second close is a no-op.
        """
        with self._cond:
            if self._closed:
                return
        self.stop()
        with self._cond:
            self._closed = True
        self.flush()
        # nothing can enqueue past the closed flag; reject any ticket a
        # failed execution path might have left behind
        with self._cond:
            stragglers = self._coal.drain()
        for r in stragglers:
            r.ticket.reject(ServiceClosed("service is closed"))

    def __enter__(self) -> "GeometryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and len(self._coal) == 0:
                    self._cond.wait()
                if len(self._coal) == 0:  # stopping and drained
                    return
                # batching window: wait for a full batch or the oldest
                # request's max_wait deadline, whichever first
                while not self._stopping and len(self._coal) < self.max_batch:
                    oldest = self._coal.oldest_enqueued()
                    if oldest is None:
                        break
                    remaining = self.max_wait - (time.monotonic() - oldest)
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = self._coal.take_batch(self.max_batch)
            if batch:
                self._execute(batch)

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Service-wide stats: request counters, batching, cache state."""
        out = self.stats.snapshot()
        out.update(self._cache.stats())
        out["pending"] = self.pending()
        out["datasets"] = self.datasets()
        return out

    def metrics_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return self.registry.render_prometheus()
