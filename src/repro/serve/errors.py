"""Typed errors of the geometry query service.

Every failure a client can observe is a distinct exception type, so
callers can branch on overload vs timeout vs misconfiguration instead
of parsing messages.  ``Overloaded`` in particular is the service's
backpressure signal: it is raised *synchronously* at submission time
when the bounded queue is full, which sheds excess load instead of
letting queue delay degrade every request.
"""

from __future__ import annotations

__all__ = [
    "Overloaded",
    "RequestTimeout",
    "ServeError",
    "ServiceClosed",
    "UnknownDataset",
]


class ServeError(Exception):
    """Base class for all geometry-service errors."""


class UnknownDataset(ServeError, KeyError):
    """The request names a dataset that is not registered."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return f"no dataset registered under {self.name!r}"


class Overloaded(ServeError):
    """Admission control rejected the request: the pending queue is full.

    Attributes
    ----------
    pending:
        Number of requests queued when the rejection happened.
    limit:
        The bound admission control enforced (``max_pending`` for the
        service's coalescing queue, the reject depth for the front-end).
    retry_after:
        Seconds the client should back off before retrying, when the
        rejecting layer can estimate one (None otherwise).  The
        front-end derives it from its drain rate; quota rejections use
        the token-bucket refill time.
    """

    def __init__(self, pending: int, limit: int, retry_after: float | None = None):
        msg = f"service overloaded: {pending} requests pending (limit {limit})"
        if retry_after is not None:
            msg += f"; retry after {retry_after:.4g}s"
        super().__init__(msg)
        self.pending = pending
        self.limit = limit
        self.retry_after = retry_after


class RequestTimeout(ServeError):
    """The request's deadline expired before a result was produced."""

    def __init__(self, waited: float):
        super().__init__(f"request timed out after {waited:.4g}s")
        self.waited = waited


class ServiceClosed(ServeError):
    """The service has been closed and accepts no new requests."""
