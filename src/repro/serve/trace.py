"""Request traces: generation, (de)serialization, and replay.

A trace is a list of op dicts, one request per line when stored as
JSONL:

* ``{"op": "knn",  "q": [x, ...], "k": 8}``
* ``{"op": "ball", "c": [x, ...], "r": 0.5}``
* ``{"op": "box",  "lo": [x, ...], "hi": [x, ...]}``
* ``{"op": "allnn"}``
* ``{"op": "insert", "pts": [[...], ...]}`` / ``{"op": "erase", "pts":
  [[...], ...]}`` — mutation batches, applied to the registered index
  (BDLTree) between queries; pending queries are flushed first so the
  replay is deterministic.

:func:`replay` feeds a trace through a :class:`GeometryService`
(dynamic batching + cache), while :func:`run_unbatched` is the
one-request-at-a-time recursive-engine loop the service is benchmarked
against; both produce results in the same convention (global ids), so
replays can be checked for bitwise equality.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

import numpy as np

from .errors import Overloaded
from .service import GeometryService

__all__ = [
    "ReplayReport",
    "load_trace",
    "replay",
    "run_unbatched",
    "save_trace",
    "synthetic_trace",
]


def synthetic_trace(
    points,
    n_requests: int,
    *,
    kinds: tuple[str, ...] = ("knn", "ball", "box"),
    k: int = 8,
    repeat_frac: float = 0.0,
    extent_frac: float = 0.05,
    seed: int = 0,
) -> list[dict]:
    """A mixed query trace shaped like traffic against ``points``.

    Query locations are dataset points with a little jitter; ranges
    cover ``extent_frac`` of the bounding box per side.  A
    ``repeat_frac`` fraction of requests repeats an earlier request
    verbatim (the cache-hit population of real traffic).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    rng = np.random.default_rng(seed)
    lo, hi = pts.min(axis=0), pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    trace: list[dict] = []
    for _ in range(n_requests):
        if trace and rng.random() < repeat_frac:
            trace.append(dict(trace[rng.integers(len(trace))]))
            continue
        kind = kinds[rng.integers(len(kinds))]
        base = pts[rng.integers(len(pts))] + rng.normal(0, 0.01, pts.shape[1]) * span
        if kind == "knn":
            trace.append({"op": "knn", "q": base.tolist(), "k": k})
        elif kind == "ball":
            r = float(extent_frac * rng.uniform(0.5, 1.5) * span.max())
            trace.append({"op": "ball", "c": base.tolist(), "r": r})
        elif kind == "box":
            half = extent_frac * rng.uniform(0.5, 1.5, pts.shape[1]) * span / 2
            trace.append(
                {"op": "box", "lo": (base - half).tolist(), "hi": (base + half).tolist()}
            )
        elif kind == "allnn":
            trace.append({"op": "allnn"})
        else:
            raise ValueError(f"unknown trace kind {kind!r}")
    return trace


def save_trace(path: str | os.PathLike, trace: list[dict]) -> None:
    """Write a trace as JSON lines."""
    with open(os.fspath(path), "w") as f:
        for op in trace:
            f.write(json.dumps(op) + "\n")


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Read a JSONL trace written by :func:`save_trace` (or by hand)."""
    trace = []
    with open(os.fspath(path)) as f:
        for line in f:
            line = line.strip()
            if line:
                trace.append(json.loads(line))
    return trace


@dataclass
class ReplayReport:
    """Outcome of replaying one trace through a service."""

    n_requests: int
    completed: int
    rejected: int
    errors: int
    seconds: float
    results: list = field(repr=False, default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.completed / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> str:
        s = self.stats
        return (
            f"{self.completed}/{self.n_requests} requests in "
            f"{self.seconds:.3f}s ({self.throughput:,.0f} req/s) | "
            f"hit-rate {s.get('hit_rate', 0.0):.1%} | "
            f"avg batch {s.get('avg_batch_size', 0.0):.1f} "
            f"(max {s.get('max_batch_size', 0)}) | "
            f"rejected {self.rejected}, timeouts {s.get('timeouts', 0)}, "
            f"errors {self.errors}"
        )


#: placeholder ticket for mutation ops so replay results align with the trace
_MUTATION = object()


def _submit_op(service: GeometryService, dataset: str, op: dict, timeout):
    kind = op["op"]
    if kind == "knn":
        return service.submit(dataset, "knn", op["q"], k=int(op["k"]),
                              exclude_self=bool(op.get("exclude_self", False)),
                              timeout=timeout)
    if kind == "ball":
        return service.submit(dataset, "ball", op["c"], radius=float(op["r"]),
                              timeout=timeout)
    if kind == "box":
        return service.submit(dataset, "box", (op["lo"], op["hi"]), timeout=timeout)
    if kind == "allnn":
        return service.submit(dataset, "allnn", timeout=timeout)
    raise ValueError(f"unknown trace op {kind!r}")


def replay(
    service: GeometryService,
    dataset: str,
    trace: list[dict],
    *,
    timeout: float | None = None,
) -> ReplayReport:
    """Feed a trace through the service; returns results + throughput.

    Without a background dispatcher, submission overload triggers an
    inline :meth:`~GeometryService.flush` and one retry (client-side
    backoff); with a dispatcher running, overloads simply count as
    shed.  Mutation ops flush pending queries first, then apply to the
    registered index directly.
    """
    tickets: list = []
    rejected = 0
    manual = service._thread is None
    t0 = time.perf_counter()
    for op in trace:
        if op["op"] in ("insert", "erase"):
            if manual:
                service.flush()
            index = service.index(dataset)
            pts = np.asarray(op["pts"], dtype=np.float64)
            if op["op"] == "insert":
                index.insert(pts)
            else:
                index.erase(pts)
            tickets.append(_MUTATION)
            continue
        try:
            tickets.append(_submit_op(service, dataset, op, timeout))
        except Overloaded:
            if manual:
                service.flush()
                try:
                    tickets.append(_submit_op(service, dataset, op, timeout))
                    continue
                except Overloaded:
                    pass
            rejected += 1
            tickets.append(None)
    if manual:
        service.flush()
    results = []
    errors = 0
    completed = 0
    n_queries = 0
    for t in tickets:
        if t is _MUTATION:
            results.append(None)
            continue
        n_queries += 1
        if t is None:
            results.append(None)
            continue
        try:
            results.append(t.result(timeout))
            completed += 1
        except Exception:
            errors += 1
            results.append(None)
    seconds = time.perf_counter() - t0
    return ReplayReport(
        n_requests=n_queries,
        completed=completed,
        rejected=rejected,
        errors=errors,
        seconds=seconds,
        results=results,
        stats=service.snapshot(),
    )


def run_unbatched(index, trace: list[dict]) -> list:
    """The baseline the service is measured against: one recursive-engine
    query per request, no batching, no cache.

    Results use the service's conventions (global ids; (sq-dists, ids)
    rows for kNN), so they compare bitwise against a replay's results.
    """
    from ..kdtree.batch import batched_allnn_on_tree
    from ..kdtree.tree import KDTree

    is_kd = isinstance(index, KDTree)
    out = []
    for op in trace:
        kind = op["op"]
        if kind == "knn":
            q = np.asarray(op["q"], dtype=np.float64)[None, :]
            d, g = index.knn(q, int(op["k"]),
                             exclude_self=bool(op.get("exclude_self", False)),
                             engine="recursive")
            out.append((d[0], g[0]))
        elif kind == "ball":
            c = np.asarray(op["c"], dtype=np.float64)
            ids = index.range_query_ball(c, float(op["r"]))
            out.append(index.gids[ids] if is_kd else ids)
        elif kind == "box":
            ids = index.range_query_box(np.asarray(op["lo"], dtype=np.float64),
                                        np.asarray(op["hi"], dtype=np.float64))
            out.append(index.gids[ids] if is_kd else ids)
        elif kind == "allnn":
            out.append(batched_allnn_on_tree(index))
        elif kind == "insert":
            index.insert(np.asarray(op["pts"], dtype=np.float64))
            out.append(None)
        elif kind == "erase":
            index.erase(np.asarray(op["pts"], dtype=np.float64))
            out.append(None)
        else:
            raise ValueError(f"unknown trace op {kind!r}")
    return out
