"""Request traces: generation, (de)serialization, and replay.

A trace is a list of op dicts, one request per line when stored as
JSONL:

* ``{"op": "knn",  "q": [x, ...], "k": 8}``
* ``{"op": "ball", "c": [x, ...], "r": 0.5}``
* ``{"op": "box",  "lo": [x, ...], "hi": [x, ...]}``
* ``{"op": "allnn"}``
* ``{"op": "insert", "pts": [[...], ...]}`` / ``{"op": "erase", "pts":
  [[...], ...]}`` — mutation batches, applied to the registered index
  (BDLTree) between queries; pending queries are flushed first so the
  replay is deterministic.  When the index carries a
  :class:`~repro.views.manager.ViewManager`, mutations route through it
  so materialized views repair incrementally.
* ``{"op": "view", "name": "closest_pair"}`` — read a materialized
  view; the reply is the version-keyed ``(answer, version)``.

:func:`replay` feeds a trace through a :class:`GeometryService`
(dynamic batching + cache), while :func:`run_unbatched` is the
one-request-at-a-time recursive-engine loop the service is benchmarked
against; both produce results in the same convention (global ids), so
replays can be checked for bitwise equality.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

import numpy as np

from .errors import Overloaded
from .service import GeometryService

__all__ = [
    "ReplayReport",
    "TraceMismatch",
    "load_trace",
    "open_loop_arrivals",
    "replay",
    "run_unbatched",
    "save_trace",
    "synthetic_trace",
    "validate_trace",
    "zipf_trace",
]


def synthetic_trace(
    points,
    n_requests: int,
    *,
    kinds: tuple[str, ...] = ("knn", "ball", "box"),
    k: int = 8,
    repeat_frac: float = 0.0,
    extent_frac: float = 0.05,
    mutation_frac: float = 0.0,
    mutation_batch: int = 8,
    view_names: tuple[str, ...] = (),
    seed: int = 0,
) -> list[dict]:
    """A mixed query trace shaped like traffic against ``points``.

    Query locations are dataset points with a little jitter; ranges
    cover ``extent_frac`` of the bounding box per side.  A
    ``repeat_frac`` fraction of requests repeats an earlier request
    verbatim (the cache-hit population of real traffic).

    ``mutation_frac > 0`` makes the trace *update-heavy*: that fraction
    of ops become ``insert`` / ``erase`` batches of ``mutation_batch``
    points.  Erase batches pick coordinates from the current live pool
    (seed points plus prior inserts, minus prior erases), so replaying
    against the matching dataset actually deletes points.  ``"view"``
    in ``kinds`` emits materialized-view reads over ``view_names``.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if "view" in kinds and not view_names:
        raise ValueError("'view' in kinds requires view_names=(...)")
    if not 0.0 <= mutation_frac <= 1.0:
        raise ValueError("mutation_frac must be in [0, 1]")
    rng = np.random.default_rng(seed)
    lo, hi = pts.min(axis=0), pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    pool = list(pts.tolist())  # live coordinates an erase may target
    trace: list[dict] = []
    for _ in range(n_requests):
        if mutation_frac > 0.0 and rng.random() < mutation_frac:
            m = int(mutation_batch)
            if rng.random() < 0.5 and len(pool) > m:
                take = rng.choice(len(pool), size=m, replace=False)
                batch = [pool[j] for j in take]
                for j in sorted(map(int, take), reverse=True):
                    pool.pop(j)
                trace.append({"op": "erase", "pts": batch})
            else:
                batch = (
                    pts[rng.integers(len(pts), size=m)]
                    + rng.normal(0, 0.02, (m, pts.shape[1])) * span
                )
                pool.extend(batch.tolist())
                trace.append({"op": "insert", "pts": batch.tolist()})
            continue
        if trace and rng.random() < repeat_frac:
            prev = trace[rng.integers(len(trace))]
            if prev["op"] not in ("insert", "erase"):
                trace.append(dict(prev))
                continue
        kind = kinds[rng.integers(len(kinds))]
        base = pts[rng.integers(len(pts))] + rng.normal(0, 0.01, pts.shape[1]) * span
        if kind == "knn":
            trace.append({"op": "knn", "q": base.tolist(), "k": k})
        elif kind == "ball":
            r = float(extent_frac * rng.uniform(0.5, 1.5) * span.max())
            trace.append({"op": "ball", "c": base.tolist(), "r": r})
        elif kind == "box":
            half = extent_frac * rng.uniform(0.5, 1.5, pts.shape[1]) * span / 2
            trace.append(
                {"op": "box", "lo": (base - half).tolist(), "hi": (base + half).tolist()}
            )
        elif kind == "allnn":
            trace.append({"op": "allnn"})
        elif kind == "view":
            trace.append(
                {"op": "view", "name": view_names[rng.integers(len(view_names))]}
            )
        else:
            raise ValueError(f"unknown trace kind {kind!r}")
    return trace


def zipf_trace(
    points,
    n_requests: int,
    *,
    kinds: tuple[str, ...] = ("knn", "ball", "box"),
    k: int = 8,
    s: float = 1.2,
    hot: int = 1024,
    extent_frac: float = 0.05,
    seed: int = 0,
) -> list[dict]:
    """A Zipf-skewed hot-spot trace: queries concentrate on few keys.

    Query targets are drawn from a ``hot``-point subset of the dataset
    with rank-``r`` probability proportional to ``1 / r**s`` — the
    classic web-traffic shape where a handful of keys absorb most of
    the load.  Requests against the same hot key repeat *verbatim*
    (same payload bytes), so the skew is visible to the result cache,
    unlike :func:`synthetic_trace`'s jittered repeats.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if s <= 0:
        raise ValueError("zipf exponent s must be > 0")
    rng = np.random.default_rng(seed)
    lo, hi = pts.min(axis=0), pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    m = min(int(hot), len(pts))
    keys = rng.choice(len(pts), size=m, replace=False)
    p = 1.0 / np.arange(1, m + 1, dtype=np.float64) ** s
    p /= p.sum()
    picks = rng.choice(m, size=n_requests, p=p)
    trace: list[dict] = []
    for i in range(n_requests):
        kind = kinds[picks[i] % len(kinds)] if len(kinds) > 1 else kinds[0]
        base = pts[keys[picks[i]]]
        if kind == "knn":
            trace.append({"op": "knn", "q": base.tolist(), "k": k})
        elif kind == "ball":
            r = float(extent_frac * span.max())
            trace.append({"op": "ball", "c": base.tolist(), "r": r})
        elif kind == "box":
            half = extent_frac * span / 2
            trace.append(
                {"op": "box", "lo": (base - half).tolist(), "hi": (base + half).tolist()}
            )
        elif kind == "allnn":
            trace.append({"op": "allnn"})
        else:
            raise ValueError(f"unknown trace kind {kind!r}")
    return trace


def open_loop_arrivals(
    n: int,
    rate: float,
    *,
    pattern: str = "poisson",
    burst_factor: float = 8.0,
    burst_frac: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """Open-loop arrival offsets (seconds) for ``n`` requests at ``rate``.

    Open-loop means the schedule is fixed up front: requests fire at
    these offsets whether or not earlier ones completed, which is what
    exposes queueing delay and saturation (a closed loop self-throttles
    and hides both).

    * ``"poisson"`` — exponential inter-arrivals at ``rate`` req/s.
    * ``"bursty"`` — a two-state Markov-modulated Poisson process: a
      ``burst_frac`` fraction of requests arrive in bursts running at
      ``burst_factor`` times the base rate, the rest in quiet phases
      re-scaled so the long-run average stays ``rate``.

    Returns a sorted (n,) float array of offsets starting at ~0.
    """
    if rate <= 0:
        raise ValueError("rate must be > 0 req/s")
    if n <= 0:
        return np.empty(0)
    rng = np.random.default_rng(seed)
    if pattern == "poisson":
        gaps = rng.exponential(1.0 / rate, n)
    elif pattern == "bursty":
        if not 0.0 < burst_frac < 1.0:
            raise ValueError("burst_frac must be in (0, 1)")
        if burst_factor <= 1.0:
            raise ValueError("burst_factor must be > 1")
        # quiet rate chosen so the long-run mean gap is 1/rate:
        # burst_frac of gaps at rate*burst_factor, the rest at r_q
        mean_gap = 1.0 / rate
        burst_gap = 1.0 / (rate * burst_factor)
        quiet_gap = (mean_gap - burst_frac * burst_gap) / (1.0 - burst_frac)
        in_burst = rng.random(n) < burst_frac
        gaps = np.where(
            in_burst,
            rng.exponential(burst_gap, n),
            rng.exponential(quiet_gap, n),
        )
    else:
        raise ValueError(f"unknown arrival pattern {pattern!r}")
    t = np.cumsum(gaps)
    return t - t[0]


class TraceMismatch(ValueError):
    """A trace op is inconsistent with the dataset it is replayed against."""


def validate_trace(trace: list[dict], n_points: int, dim: int, *,
                   dynamic: bool = True) -> None:
    """Check every op against the loaded dataset; raise :class:`TraceMismatch`.

    Catches the replay-against-the-wrong-file class of mistakes — a
    trace generated for a larger or higher-dimensional dataset — with
    a one-line diagnosis instead of a bare engine error mid-replay.
    ``dynamic=False`` declares the replay target immutable (a static
    KDTree dataset): any ``insert`` / ``erase`` op is then rejected up
    front instead of failing mid-replay.
    """

    def _dim_of(x) -> int:
        a = np.asarray(x, dtype=np.float64)
        if a.ndim != 1:
            raise TraceMismatch(f"op {i}: expected a flat coordinate list, got shape {a.shape}")
        return len(a)

    n_live = int(n_points)  # inserts grow the queryable population
    for i, op in enumerate(trace):
        kind = op.get("op")
        if kind == "knn":
            if "q" not in op or "k" not in op:
                raise TraceMismatch(f"op {i}: knn needs 'q' and 'k'")
            d = _dim_of(op["q"])
            if d != dim:
                raise TraceMismatch(
                    f"op {i}: knn query has dimension {d} but the loaded "
                    f"points are {dim}-dimensional"
                )
            k = int(op["k"])
            if k < 1:
                raise TraceMismatch(f"op {i}: knn k must be >= 1, got {k}")
            if k > n_live:
                raise TraceMismatch(
                    f"op {i}: knn requests k={k} neighbors but only "
                    f"{n_live} points are loaded — was this trace "
                    f"generated against a larger dataset?"
                )
        elif kind == "ball":
            if "c" not in op or "r" not in op:
                raise TraceMismatch(f"op {i}: ball needs 'c' and 'r'")
            d = _dim_of(op["c"])
            if d != dim:
                raise TraceMismatch(
                    f"op {i}: ball center has dimension {d} but the loaded "
                    f"points are {dim}-dimensional"
                )
            if float(op["r"]) < 0:
                raise TraceMismatch(f"op {i}: ball radius must be >= 0")
        elif kind == "box":
            if "lo" not in op or "hi" not in op:
                raise TraceMismatch(f"op {i}: box needs 'lo' and 'hi'")
            dlo, dhi = _dim_of(op["lo"]), _dim_of(op["hi"])
            if dlo != dim or dhi != dim:
                raise TraceMismatch(
                    f"op {i}: box corners have dimensions {dlo}/{dhi} but "
                    f"the loaded points are {dim}-dimensional"
                )
        elif kind == "allnn":
            pass
        elif kind in ("insert", "erase"):
            if not dynamic:
                raise TraceMismatch(
                    f"op {i}: trace contains a {kind!r} batch but the "
                    f"dataset is static — replay update traces against a "
                    f"dynamic index (--dynamic or --shards)"
                )
            pts = np.asarray(op.get("pts", []), dtype=np.float64)
            if pts.ndim != 2 or pts.shape[1] != dim:
                raise TraceMismatch(
                    f"op {i}: {kind} batch must be (m, {dim}) shaped, "
                    f"got {pts.shape}"
                )
            if kind == "insert":
                n_live += len(pts)
        elif kind == "view":
            name = op.get("name")
            if not isinstance(name, str) or not name:
                raise TraceMismatch(f"op {i}: view needs a 'name' string")
            if not dynamic:
                raise TraceMismatch(
                    f"op {i}: materialized view {name!r} requires a "
                    f"dynamic view-bearing dataset (--dynamic or --shards)"
                )
        else:
            raise TraceMismatch(f"op {i}: unknown trace op {kind!r}")


def save_trace(path: str | os.PathLike, trace: list[dict]) -> None:
    """Write a trace as JSON lines."""
    with open(os.fspath(path), "w") as f:
        for op in trace:
            f.write(json.dumps(op) + "\n")


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Read a JSONL trace written by :func:`save_trace` (or by hand)."""
    trace = []
    with open(os.fspath(path)) as f:
        for line in f:
            line = line.strip()
            if line:
                trace.append(json.loads(line))
    return trace


@dataclass
class ReplayReport:
    """Outcome of replaying one trace through a service."""

    n_requests: int
    completed: int
    rejected: int
    errors: int
    seconds: float
    results: list = field(repr=False, default_factory=list)
    stats: dict = field(default_factory=dict)
    #: repr of the first per-request failure, so callers (the CLI) can
    #: surface *why* a replay had errors instead of just the count
    first_error: str | None = None

    @property
    def throughput(self) -> float:
        return self.completed / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> str:
        s = self.stats
        return (
            f"{self.completed}/{self.n_requests} requests in "
            f"{self.seconds:.3f}s ({self.throughput:,.0f} req/s) | "
            f"hit-rate {s.get('hit_rate', 0.0):.1%} | "
            f"avg batch {s.get('avg_batch_size', 0.0):.1f} "
            f"(max {s.get('max_batch_size', 0)}) | "
            f"rejected {self.rejected}, timeouts {s.get('timeouts', 0)}, "
            f"errors {self.errors}"
        )


#: placeholder ticket for mutation ops so replay results align with the trace
_MUTATION = object()


def _submit_op(service: GeometryService, dataset: str, op: dict, timeout):
    kind = op["op"]
    if kind == "knn":
        return service.submit(dataset, "knn", op["q"], k=int(op["k"]),
                              exclude_self=bool(op.get("exclude_self", False)),
                              timeout=timeout)
    if kind == "ball":
        return service.submit(dataset, "ball", op["c"], radius=float(op["r"]),
                              timeout=timeout)
    if kind == "box":
        return service.submit(dataset, "box", (op["lo"], op["hi"]), timeout=timeout)
    if kind == "allnn":
        return service.submit(dataset, "allnn", timeout=timeout)
    if kind == "view":
        return service.submit(dataset, "view", op["name"], timeout=timeout)
    raise ValueError(f"unknown trace op {kind!r}")


def replay(
    service: GeometryService,
    dataset: str,
    trace: list[dict],
    *,
    timeout: float | None = None,
) -> ReplayReport:
    """Feed a trace through the service; returns results + throughput.

    Without a background dispatcher, submission overload triggers an
    inline :meth:`~GeometryService.flush` and one retry (client-side
    backoff); with a dispatcher running, overloads simply count as
    shed.  Mutation ops flush pending queries first, then apply to the
    registered index directly.
    """
    tickets: list = []
    rejected = 0
    manual = service._thread is None
    t0 = time.perf_counter()
    for op in trace:
        if op["op"] in ("insert", "erase"):
            if manual:
                service.flush()
            index = service.index(dataset)
            # mutate through the view manager when one is attached, so
            # registered views repair instead of resyncing on next read
            target = getattr(index, "views", None) or index
            pts = np.asarray(op["pts"], dtype=np.float64)
            if op["op"] == "insert":
                target.insert(pts)
            else:
                target.erase(pts)
            tickets.append(_MUTATION)
            continue
        try:
            tickets.append(_submit_op(service, dataset, op, timeout))
        except Overloaded:
            if manual:
                service.flush()
                try:
                    tickets.append(_submit_op(service, dataset, op, timeout))
                    continue
                except Overloaded:
                    pass
            rejected += 1
            tickets.append(None)
    if manual:
        service.flush()
    results = []
    errors = 0
    completed = 0
    n_queries = 0
    first_error = None
    for t in tickets:
        if t is _MUTATION:
            results.append(None)
            continue
        n_queries += 1
        if t is None:
            results.append(None)
            continue
        try:
            results.append(t.result(timeout))
            completed += 1
        except Exception as exc:
            errors += 1
            if first_error is None:
                first_error = repr(exc)
            results.append(None)
    seconds = time.perf_counter() - t0
    return ReplayReport(
        n_requests=n_queries,
        completed=completed,
        rejected=rejected,
        errors=errors,
        seconds=seconds,
        results=results,
        stats=service.snapshot(),
        first_error=first_error,
    )


def run_unbatched(index, trace: list[dict], *, views: dict | None = None) -> list:
    """The baseline the service is measured against: one recursive-engine
    query per request, no batching, no cache.

    Results use the service's conventions (global ids; (sq-dists, ids)
    rows for kNN), so they compare bitwise against a replay's results.

    ``views`` maps view name -> ``compute(pts, gids)`` callable; a
    ``view`` op then gathers the live points and recomputes the answer
    *from scratch*, yielding the same ``(answer, version)`` shape the
    service returns — the recompute-everything baseline incremental
    maintenance is gated against.
    """
    from ..kdtree.batch import batched_allnn_on_tree
    from ..kdtree.tree import KDTree

    is_kd = isinstance(index, KDTree)
    out = []
    for op in trace:
        kind = op["op"]
        if kind == "knn":
            q = np.asarray(op["q"], dtype=np.float64)[None, :]
            d, g = index.knn(q, int(op["k"]),
                             exclude_self=bool(op.get("exclude_self", False)),
                             engine="recursive")
            out.append((d[0], g[0]))
        elif kind == "ball":
            c = np.asarray(op["c"], dtype=np.float64)
            ids = index.range_query_ball(c, float(op["r"]))
            out.append(index.gids[ids] if is_kd else ids)
        elif kind == "box":
            ids = index.range_query_box(np.asarray(op["lo"], dtype=np.float64),
                                        np.asarray(op["hi"], dtype=np.float64))
            out.append(index.gids[ids] if is_kd else ids)
        elif kind == "allnn":
            out.append(batched_allnn_on_tree(index))
        elif kind == "insert":
            index.insert(np.asarray(op["pts"], dtype=np.float64))
            out.append(None)
        elif kind == "erase":
            index.erase(np.asarray(op["pts"], dtype=np.float64))
            out.append(None)
        elif kind == "view":
            if views is None or op["name"] not in views:
                raise ValueError(
                    f"view op {op['name']!r} needs a views= compute mapping"
                )
            pts, gids = index.gather_points()
            answer = views[op["name"]](pts, gids)
            out.append((answer, int(getattr(index, "version", 0))))
        else:
            raise ValueError(f"unknown trace op {kind!r}")
    return out
