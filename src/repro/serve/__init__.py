"""``repro.serve`` — in-process geometry query service.

The serving layer over the batched query engine (PR 1): single kNN /
range / allnn requests against registered ``KDTree`` / ``BDLTree``
indexes are dynamically coalesced into vectorized batches, answered
through a version-keyed LRU result cache, and protected by bounded-queue
admission control with typed overload/timeout rejection.  See
:mod:`repro.serve.service` for the full design notes.

Quickstart::

    from repro import KDTree, dataset
    from repro.serve import GeometryService

    svc = GeometryService(max_batch=256, max_pending=4096)
    svc.register("pts", KDTree(dataset("2D-U-10K").coords))
    d, ids = svc.knn("pts", [50.0, 50.0], k=8)     # single request
    hits = svc.range_ball("pts", [50.0, 50.0], 5.0)
    print(svc.snapshot()["hit_rate"])
"""

from .cache import ResultCache, make_key, query_digest
from .coalescer import Coalescer, PendingRequest, Ticket
from .errors import (
    Overloaded,
    RequestTimeout,
    ServeError,
    ServiceClosed,
    UnknownDataset,
)
from .metrics import RequestMetrics, ServiceStats
from .service import KINDS, GeometryService
from .trace import (
    ReplayReport,
    TraceMismatch,
    load_trace,
    open_loop_arrivals,
    replay,
    run_unbatched,
    save_trace,
    synthetic_trace,
    validate_trace,
    zipf_trace,
)

__all__ = [
    "Coalescer",
    "GeometryService",
    "KINDS",
    "Overloaded",
    "PendingRequest",
    "ReplayReport",
    "RequestMetrics",
    "RequestTimeout",
    "ResultCache",
    "ServeError",
    "ServiceClosed",
    "ServiceStats",
    "Ticket",
    "UnknownDataset",
    "load_trace",
    "make_key",
    "query_digest",
    "TraceMismatch",
    "open_loop_arrivals",
    "replay",
    "run_unbatched",
    "save_trace",
    "synthetic_trace",
    "validate_trace",
    "zipf_trace",
]
