"""The coalescing queue: where single requests become profitable batches.

Pending requests are grouped by *compatibility key* ``(dataset, kind,
params)`` — requests in one group can be answered by a single
vectorized shot through the batched query engine (same tree, same k /
query kind).  :meth:`Coalescer.take_batch` drains requests for one
dataset, whole groups at a time in oldest-first order, up to the
service's ``max_batch``; the slab it returns may therefore mix kinds
for one dataset, which the heterogeneous entry point
(:func:`repro.kdtree.batch.execute_requests`) splits back into one
vectorized dispatch per group.

:class:`Ticket` is the client-side handle: a future-like object the
dispatcher resolves with a result (plus per-request metrics) or a
typed error.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from .errors import RequestTimeout
from .metrics import RequestMetrics

__all__ = ["Coalescer", "PendingRequest", "Ticket"]


class Ticket:
    """A one-shot future for a submitted request.

    ``result()`` blocks until the service resolves the ticket, then
    returns the query result or raises the typed error the service
    rejected it with.  ``metrics`` is populated at resolution time.
    """

    __slots__ = ("_event", "_value", "_error", "metrics")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None
        self.metrics: RequestMetrics | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, value, metrics: RequestMetrics | None = None) -> None:
        self._value = value
        self.metrics = metrics
        self._event.set()

    def reject(self, error: BaseException, metrics: RequestMetrics | None = None) -> None:
        self._error = error
        self.metrics = metrics
        self._event.set()

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise RequestTimeout(timeout if timeout is not None else 0.0)
        if self._error is not None:
            raise self._error
        return self._value


@dataclass(eq=False)
class PendingRequest:
    """One queued request, normalized and ready to batch.

    ``ctx`` is the optional :class:`~repro.obs.rtrace.RequestContext`
    minted upstream (e.g. by the multi-tenant front-end); the dispatcher
    links the coalesced batch span to every member context's trace id.
    """

    dataset: str
    kind: str
    params: tuple
    payload: object
    digest: bytes
    ticket: Ticket
    enqueued_at: float
    deadline: float | None = None
    ctx: object | None = None

    @property
    def group_key(self) -> tuple:
        return (self.dataset, self.kind, self.params)


@dataclass
class _Group:
    requests: deque = field(default_factory=deque)

    @property
    def oldest(self) -> float:
        return self.requests[0].enqueued_at


class Coalescer:
    """FIFO-fair grouping queue of pending requests.

    Not internally locked: the owning service serializes access under
    its own condition variable (the dispatcher needs queue state and
    wakeups to be coherent, which a second internal lock would not
    give).
    """

    def __init__(self) -> None:
        self._groups: OrderedDict[tuple, _Group] = OrderedDict()
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def add(self, req: PendingRequest) -> None:
        g = self._groups.get(req.group_key)
        if g is None:
            g = self._groups[req.group_key] = _Group()
        g.requests.append(req)
        self._n += 1

    def oldest_enqueued(self) -> float | None:
        """Enqueue time of the oldest pending request (None if empty)."""
        if not self._groups:
            return None
        return min(g.oldest for g in self._groups.values())

    def group_sizes(self) -> dict[tuple, int]:
        return {k: len(g.requests) for k, g in self._groups.items()}

    def pending_for(self, dataset: str) -> int:
        """Requests currently queued for one dataset."""
        return sum(
            len(g.requests) for k, g in self._groups.items() if k[0] == dataset
        )

    def take_batch(self, max_batch: int, dataset: str | None = None) -> list[PendingRequest]:
        """Drain up to ``max_batch`` requests for one dataset.

        With ``dataset=None`` the dataset owning the globally oldest
        request is selected (FIFO across datasets); passing a dataset
        is the dispatch hook an external scheduler (the multi-tenant
        front-end's weighted-fair dispatcher) uses to decide *which*
        tenant's queue drains next.  Either way groups drain
        whole-group, oldest-head first, so no group starves and
        compatible requests stay contiguous.
        """
        if not self._groups:
            return []
        if dataset is None:
            oldest_key = min(self._groups, key=lambda k: self._groups[k].oldest)
            dataset = oldest_key[0]
        keys = sorted(
            (k for k in self._groups if k[0] == dataset),
            key=lambda k: self._groups[k].oldest,
        )
        out: list[PendingRequest] = []
        for k in keys:
            q = self._groups[k].requests
            while q and len(out) < max_batch:
                out.append(q.popleft())
            if not q:
                del self._groups[k]
            if len(out) >= max_batch:
                break
        self._n -= len(out)
        return out

    def drain(self) -> list[PendingRequest]:
        """Remove and return every pending request (service shutdown)."""
        out = [r for g in self._groups.values() for r in g.requests]
        self._groups.clear()
        self._n = 0
        return out
