"""Per-request metrics and the service-wide stats snapshot.

Each resolved :class:`~repro.serve.coalescer.Ticket` carries a
:class:`RequestMetrics` describing what happened to that one request:
how long it waited in the coalescing queue, how large a batch it was
dispatched with, whether it was served from the cache, and the
work/depth cost the batch execution charged on its behalf (captured
with :func:`repro.parlay.workdepth.capture`, so costs on the ``threads``
backend attribute to the right request stream).

:class:`ServiceStats` aggregates the same quantities service-wide.
Since PR 3 its counters live on a
:class:`~repro.obs.registry.MetricsRegistry` — the unified metrics
surface — so the service's request counters, its cache gauges, and its
coalescing-queue gauge share one registry that renders both a JSON
snapshot and Prometheus text exposition.  ``snapshot()`` remains the
stable monitoring API with unchanged keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.registry import MetricsRegistry

__all__ = ["RequestMetrics", "ServiceStats"]

#: Batch-size histogram buckets (requests per coalesced dispatch).
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class RequestMetrics:
    """What happened to one request.

    ``queue_wait`` is seconds spent between submission and dispatch (0
    for submit-time cache hits); ``batch_size`` is the number of unique
    queries executed in the dispatch this request joined (0 when no
    execution was needed); ``work`` is the request's *exact* share of
    the batch's charged work — proportional to the work its request
    group charged, partitioned with
    :func:`repro.obs.rtrace.partition_work` so member shares sum to the
    batch total exactly — and ``depth`` is the batch's critical path
    (shared, not divided).

    The trailing fields (defaulted, so positional construction is
    unchanged) carry request-tracing detail: ``exec_wall`` is the wall
    time of the batch's vectorized execution and ``merge_wall`` the
    seconds between execution end and this request's resolution (cache
    fills + result distribution); ``batch_work`` is the whole batch's
    charged work (``work`` divided by it gives this request's compute
    fraction); ``batch_sid``/``bundle`` link to the batch's
    ``serve.dispatch`` span and its completed subtree when tracing was
    enabled (the bundle list is *shared* by every member request).
    """

    queue_wait: float
    batch_size: int
    cache_hit: bool
    work: float
    depth: float
    exec_wall: float = 0.0
    merge_wall: float = 0.0
    batch_work: float = 0.0
    batch_sid: int | None = None
    bundle: list | None = None


class ServiceStats:
    """Service-wide aggregate counters on a shared metrics registry.

    The mutator API (``record_*``) and the ``snapshot()`` keys are
    unchanged from the pre-registry implementation; the counters are
    now :class:`~repro.obs.registry.Counter`/``Gauge``/``Histogram``
    instances, so the same state is also available through
    ``registry.snapshot()`` and ``registry.render_prometheus()``.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._submitted = r.counter(
            "serve_submitted_total", "requests submitted to the service")
        self._accepted = r.counter(
            "serve_accepted_total", "requests admitted past backpressure")
        self._rejected = r.counter(
            "serve_rejected_total", "requests shed by admission control")
        self._completed = r.counter(
            "serve_completed_total", "requests resolved with a result")
        self._timeouts = r.counter(
            "serve_timeouts_total", "requests rejected past their deadline")
        self._cache_hits = r.counter(
            "serve_cache_hits_total", "requests served without execution")
        self._cache_misses = r.counter(
            "serve_cache_misses_total", "unique queries actually executed")
        self._batches = r.counter(
            "serve_batches_total", "coalesced dispatches executed")
        self._batched_requests = r.counter(
            "serve_batched_requests_total", "requests resolved by dispatches")
        self._max_batch = r.gauge(
            "serve_batch_max_size", "largest coalesced dispatch so far")
        self._batch_sizes = r.histogram(
            "serve_batch_size", "requests per coalesced dispatch",
            buckets=BATCH_BUCKETS)
        self._queue_wait = r.counter(
            "serve_queue_wait_seconds_total", "total seconds spent queued")
        self._work = r.counter(
            "serve_work_charged_total", "work-model units charged by dispatches")
        self._depth = r.counter(
            "serve_depth_charged_total", "depth-model units charged by dispatches")

    # -- back-compat attribute reads (the old ints) ------------------------
    @property
    def submitted(self) -> int:
        return int(self._submitted.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._cache_misses.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    # -- mutators ----------------------------------------------------------
    def record_submit(self) -> None:
        self._submitted.inc()

    def record_accept(self) -> None:
        self._accepted.inc()

    def record_reject(self) -> None:
        self._rejected.inc()

    def record_hit(self, n: int = 1, completed: int | None = None) -> None:
        self._cache_hits.inc(n)
        self._completed.inc(completed if completed is not None else n)

    def record_timeout(self, n: int = 1) -> None:
        self._timeouts.inc(n)

    def record_batch(
        self,
        resolved: int,
        executed: int,
        queue_wait: float,
        work: float,
        depth: float,
    ) -> None:
        """Account one dispatch: ``resolved`` tickets were completed, of
        which ``executed`` unique queries actually ran."""
        self._batches.inc()
        self._batched_requests.inc(resolved)
        self._batch_sizes.observe(resolved)
        self._max_batch.set_max(resolved)
        self._completed.inc(resolved)
        self._cache_misses.inc(executed)
        # duplicate / already-cached riders count as hits: they were
        # served without their own execution
        self._cache_hits.inc(max(resolved - executed, 0))
        self._queue_wait.inc(queue_wait)
        self._work.inc(work)
        self._depth.inc(depth)

    # -- snapshot ----------------------------------------------------------
    def snapshot(self) -> dict:
        """A point-in-time dict of every counter plus derived rates."""
        v = self.registry.snapshot()
        hits = v["serve_cache_hits_total"]
        misses = v["serve_cache_misses_total"]
        batches = v["serve_batches_total"]
        batched = v["serve_batched_requests_total"]
        looked_up = hits + misses
        return {
            "submitted": int(v["serve_submitted_total"]),
            "accepted": int(v["serve_accepted_total"]),
            "rejected": int(v["serve_rejected_total"]),
            "completed": int(v["serve_completed_total"]),
            "timeouts": int(v["serve_timeouts_total"]),
            "cache_hits": int(hits),
            "cache_misses": int(misses),
            "hit_rate": hits / looked_up if looked_up else 0.0,
            "batches": int(batches),
            "batched_requests": int(batched),
            "avg_batch_size": batched / batches if batches else 0.0,
            "max_batch_size": int(v["serve_batch_max_size"]),
            "avg_queue_wait_s": (
                v["serve_queue_wait_seconds_total"] / batched if batched else 0.0
            ),
            "work_charged": v["serve_work_charged_total"],
            "depth_charged": v["serve_depth_charged_total"],
        }
