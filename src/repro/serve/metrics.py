"""Per-request metrics and the service-wide stats snapshot.

Each resolved :class:`~repro.serve.coalescer.Ticket` carries a
:class:`RequestMetrics` describing what happened to that one request:
how long it waited in the coalescing queue, how large a batch it was
dispatched with, whether it was served from the cache, and the
work/depth cost the batch execution charged on its behalf (captured
with :func:`repro.parlay.workdepth.capture`, so costs on the ``threads``
backend attribute to the right request stream).

:class:`ServiceStats` aggregates the same quantities service-wide; its
``snapshot()`` is the stable monitoring API.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["RequestMetrics", "ServiceStats"]


@dataclass(frozen=True)
class RequestMetrics:
    """What happened to one request.

    ``queue_wait`` is seconds spent between submission and dispatch (0
    for submit-time cache hits); ``batch_size`` is the number of unique
    queries executed in the dispatch this request joined (0 when no
    execution was needed); ``work``/``depth`` are the request's share of
    the batch's charged cost — work divides evenly across the batch,
    depth is the batch's critical path (shared, not divided).
    """

    queue_wait: float
    batch_size: int
    cache_hit: bool
    work: float
    depth: float


class ServiceStats:
    """Thread-safe aggregate counters with a dict snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.timeouts = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch = 0
        self.queue_wait_total = 0.0
        self.work = 0.0
        self.depth = 0.0

    def record_submit(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_accept(self) -> None:
        with self._lock:
            self.accepted += 1

    def record_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_hit(self, n: int = 1, completed: int | None = None) -> None:
        with self._lock:
            self.cache_hits += n
            self.completed += completed if completed is not None else n

    def record_timeout(self, n: int = 1) -> None:
        with self._lock:
            self.timeouts += n

    def record_batch(
        self,
        resolved: int,
        executed: int,
        queue_wait: float,
        work: float,
        depth: float,
    ) -> None:
        """Account one dispatch: ``resolved`` tickets were completed, of
        which ``executed`` unique queries actually ran."""
        with self._lock:
            self.batches += 1
            self.batched_requests += resolved
            self.max_batch = max(self.max_batch, resolved)
            self.completed += resolved
            self.cache_misses += executed
            # duplicate / already-cached riders count as hits: they were
            # served without their own execution
            self.cache_hits += max(resolved - executed, 0)
            self.queue_wait_total += queue_wait
            self.work += work
            self.depth += depth

    def snapshot(self) -> dict:
        """A point-in-time dict of every counter plus derived rates."""
        with self._lock:
            looked_up = self.cache_hits + self.cache_misses
            out = {
                "submitted": self.submitted,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "timeouts": self.timeouts,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "hit_rate": self.cache_hits / looked_up if looked_up else 0.0,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "avg_batch_size": (
                    self.batched_requests / self.batches if self.batches else 0.0
                ),
                "max_batch_size": self.max_batch,
                "avg_queue_wait_s": (
                    self.queue_wait_total / self.batched_requests
                    if self.batched_requests
                    else 0.0
                ),
                "work_charged": self.work,
                "depth_charged": self.depth,
            }
        return out
