"""Versioned LRU result cache.

Entries are keyed by ``(dataset, epoch, tree version, kind, params,
query digest)``:

* the **epoch** increments every time a dataset name is (re)registered,
  so a fresh index re-using a name can never collide with the old one;
* the **version** is the index's monotonic mutation counter
  (:attr:`KDTree.version` / :attr:`BDLTree.version`), bumped on every
  batch insert/delete — a mutated tree changes every key, so a stale
  result is structurally unreachable rather than merely expired;
* the **digest** is a BLAKE2b hash of the canonicalized query payload
  bytes, so lookups never compare coordinate arrays.

Eviction is plain LRU over a bounded :class:`~collections.OrderedDict`;
all operations take an internal lock (the service's dispatcher and
client threads probe it concurrently).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

__all__ = ["MISS", "ResultCache", "make_key", "query_digest"]

#: Sentinel returned by :meth:`ResultCache.get` on a miss (results may
#: legitimately be ``None``-like, e.g. empty arrays).
MISS = object()


def query_digest(*parts) -> bytes:
    """BLAKE2b digest of the canonical bytes of the query payload.

    Arrays are canonicalized to contiguous float64 so that logically
    equal queries (lists, float32 arrays, non-contiguous views) share a
    digest; each part's shape is folded in so e.g. (2, d) and (d, 2)
    payloads cannot alias.
    """
    h = hashlib.blake2b(digest_size=16)
    for p in parts:
        a = np.ascontiguousarray(p, dtype=np.float64)
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.digest()


def make_key(
    dataset: str,
    epoch: int,
    version: int,
    kind: str,
    params: tuple,
    digest: bytes,
) -> tuple:
    """The full cache key for one request against one index state."""
    return (dataset, epoch, version, kind, params, digest)


class ResultCache:
    """A thread-safe LRU mapping of cache keys to query results."""

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: tuple):
        """The cached result for ``key``, or :data:`MISS`."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return MISS

    def put(self, key: tuple, value) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "cache_size": len(self._data),
                "cache_capacity": self.capacity,
                "cache_evictions": self.evictions,
            }
