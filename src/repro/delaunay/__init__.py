"""``repro.delaunay`` — 2D Delaunay triangulation (Bowyer–Watson)."""

from .triangulation import DelaunayTriangulation, delaunay

__all__ = ["DelaunayTriangulation", "delaunay"]
