"""2D Delaunay triangulation — incremental Bowyer–Watson.

Points are inserted in Morton order so that the walk-based point
location from the previously touched triangle is O(1) amortized (the
standard spatial-sort acceleration; ParGeo's spatial-sorting module
plays the same role).  Robustness comes from the filtered-exact
``orient2d`` / ``incircle`` predicates of :mod:`repro.core.predicates`.

The triangulation is bootstrapped from a large bounding triangle whose
vertices are removed at the end.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..core.predicates import incircle, orient2d
from ..parlay.workdepth import charge, parallel_merge, tracker
from ..spatialsort.morton import morton_argsort

__all__ = ["DelaunayTriangulation", "delaunay"]


class DelaunayTriangulation:
    """Triangle-soup Delaunay structure with neighbor links.

    ``triangles`` rows are ccw vertex-id triples; ``neighbors[t][e]`` is
    the triangle across edge e = (v[e], v[(e+1)%3]) of t, or -1.
    Vertex ids ``n..n+2`` are the bounding super-triangle (excluded from
    results).
    """

    def __init__(self, points):
        pts = as_array(points)
        if pts.shape[1] != 2:
            raise ValueError("requires 2-dimensional points")
        self.n = len(pts)
        if self.n < 3:
            raise ValueError("need at least 3 points")
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        c = 0.5 * (lo + hi)
        # the super-triangle must sit far enough out that no finite
        # triangle's circumcircle can reach it (near-collinear hull
        # points produce huge circumcircles); 1e9x the span approximates
        # the symbolic point-at-infinity, and the exact predicate
        # fallback keeps the arithmetic sound at this scale
        r = max(float(np.max(hi - lo)), 1.0) * 1e9
        super_pts = np.array(
            [
                [c[0] - 2.0 * r, c[1] - r],
                [c[0] + 2.0 * r, c[1] - r],
                [c[0], c[1] + 2.0 * r],
            ]
        )
        self.pts = np.vstack([pts, super_pts])
        self.tri_v: list[list[int]] = [[self.n, self.n + 1, self.n + 2]]
        self.tri_n: list[list[int]] = [[-1, -1, -1]]
        self.alive: list[bool] = [True]
        self._last = 0
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        """Insert all points; cost composes in prefix-doubling rounds.

        The parallel incremental Delaunay algorithm (which ParGeo's
        Delaunay generator uses) processes exponentially growing rounds
        of independent insertions.  We execute sequentially but account
        round r's insertions as a parallel batch — work sums, depth is
        the round's maximum (see DESIGN.md §1).
        """
        order = morton_argsort(self.pts[: self.n])
        i = 0
        round_size = 16
        while i < len(order):
            batch = order[i : i + round_size]
            costs = []
            for pid in batch:
                with tracker.frame() as c:
                    self.insert_point(int(pid))
                costs.append(c)
            parallel_merge(costs)
            i += len(batch)
            round_size *= 2

    # -- point location -------------------------------------------------------
    def _locate(self, p: np.ndarray) -> int:
        """Visibility walk from the last touched triangle."""
        t = self._last
        if not self.alive[t]:
            t = next(i for i in range(len(self.tri_v)) if self.alive[i])
        for _ in range(4 * len(self.tri_v) + 16):
            charge(1, 1)
            vs = self.tri_v[t]
            moved = False
            for e in range(3):
                a, b = vs[e], vs[(e + 1) % 3]
                if orient2d(self.pts[a], self.pts[b], p) < 0:
                    nxt = self.tri_n[t][e]
                    if nxt >= 0:
                        t = nxt
                        moved = True
                        break
            if not moved:
                self._last = t
                return t
        raise RuntimeError("point location walk did not terminate")

    # -- insertion --------------------------------------------------------------
    def insert_point(self, pid: int) -> None:
        p = self.pts[pid]
        t0 = self._locate(p)

        # grow the cavity: BFS over triangles whose circumcircle holds p
        cavity = {t0}
        stack = [t0]
        while stack:
            t = stack.pop()
            for nb in self.tri_n[t]:
                if nb >= 0 and nb not in cavity:
                    a, b, c = self.tri_v[nb]
                    charge(1, 1)
                    if incircle(self.pts[a], self.pts[b], self.pts[c], p) > 0:
                        cavity.add(nb)
                        stack.append(nb)

        # boundary edges of the cavity, with the outside triangle
        boundary: list[tuple[int, int, int]] = []
        for t in cavity:
            vs = self.tri_v[t]
            for e in range(3):
                nb = self.tri_n[t][e]
                if nb < 0 or nb not in cavity:
                    boundary.append((vs[e], vs[(e + 1) % 3], nb))

        # retriangulate: fan from p over each boundary edge
        for t in cavity:
            self.alive[t] = False
        new_ids: dict[tuple[int, int], int] = {}
        created = []
        for (a, b, outside) in boundary:
            tid = len(self.tri_v)
            self.tri_v.append([a, b, pid])
            self.tri_n.append([outside, -1, -1])
            self.alive.append(True)
            created.append(tid)
            if outside >= 0:
                # rewire the outside triangle's link to the new one
                ons = self.tri_n[outside]
                ovs = self.tri_v[outside]
                for e in range(3):
                    if {ovs[e], ovs[(e + 1) % 3]} == {a, b}:
                        ons[e] = tid
                        break
            new_ids[(a, b)] = tid
        # wire fan siblings: the cavity boundary is a closed cycle, so
        # each vertex starts exactly one boundary edge and ends exactly
        # one.  Edge 1 of (a, b, p) is (b, p) -> the fan triangle whose
        # boundary edge starts at b; edge 2 is (p, a) -> the one ending
        # at a.
        starts = {a: tid for (a, _b), tid in new_ids.items()}
        ends = {b: tid for (_a, b), tid in new_ids.items()}
        for (a, b), tid in new_ids.items():
            self.tri_n[tid][1] = starts[b]
            self.tri_n[tid][2] = ends[a]
        self._last = created[0] if created else self._last

    # -- output --------------------------------------------------------------
    def triangles(self) -> np.ndarray:
        """(m, 3) ccw triangles over the input points (super excluded)."""
        out = []
        for t in range(len(self.tri_v)):
            if not self.alive[t]:
                continue
            vs = self.tri_v[t]
            if all(v < self.n for v in vs):
                out.append(vs)
        return np.array(out, dtype=np.int64).reshape(-1, 3)

    def edges(self) -> np.ndarray:
        """(m, 2) unique Delaunay edges (super-triangle excluded)."""
        tris = self.triangles()
        if len(tris) == 0:
            return np.empty((0, 2), dtype=np.int64)
        e = np.vstack(
            [tris[:, [0, 1]], tris[:, [1, 2]], tris[:, [2, 0]]]
        )
        e.sort(axis=1)
        return np.unique(e, axis=0)

    def check_delaunay(self, sample: int = 200, seed: int = 0) -> bool:
        """Empty-circumcircle property on a sample of triangles (tests)."""
        tris = self.triangles()
        rng = np.random.default_rng(seed)
        take = tris if len(tris) <= sample else tris[rng.choice(len(tris), sample, replace=False)]
        for (a, b, c) in take:
            pa, pb, pc = self.pts[a], self.pts[b], self.pts[c]
            from ..core.predicates import incircle_batch

            signs = incircle_batch(pa, pb, pc, self.pts[: self.n])
            inside = np.flatnonzero(signs > 0)
            inside = [i for i in inside if i not in (a, b, c)]
            if inside:
                return False
        return True


def delaunay(points) -> DelaunayTriangulation:
    """Build the Delaunay triangulation of 2D points."""
    return DelaunayTriangulation(points)
