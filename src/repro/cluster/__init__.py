"""``repro.cluster`` — sharded spatial index with scatter-gather routing.

Partitions a dataset into shards along the Hilbert curve
(:class:`HilbertPartitioner`), keeps each shard batch-dynamic
(:class:`Shard` wraps a BDL-tree + bounding box), and answers the full
query API by scatter-gather with geometric pruning
(:class:`ShardedIndex`): range queries visit only shards whose boxes
intersect the query region, kNN runs two-phase (home-shard probe, then
a fan-out bounded by the candidate k-th distance).  Per-shard slabs are
charged as parallel children in the work–depth model, so simulated
``T_p`` shows scatter-gather scaling; :func:`compare_cluster` measures
it against a monolithic tree.
"""

from .bench import compare_cluster, compare_procs
from .index import ShardedIndex
from .partitioner import HilbertPartitioner
from .router import bbox_mindist2, merge_knn, plan_ball, plan_box
from .shard import Shard
from .snapshot import SnapshotManager, attach_snapshot, release_all_snapshots

__all__ = [
    "HilbertPartitioner",
    "Shard",
    "ShardedIndex",
    "SnapshotManager",
    "attach_snapshot",
    "bbox_mindist2",
    "compare_cluster",
    "compare_procs",
    "merge_knn",
    "plan_ball",
    "plan_box",
    "release_all_snapshots",
]
