"""Scatter-gather planning and execution over a set of shards.

The router's job is twofold:

* **Plan** — decide, per query, which shards can possibly contribute.
  Box/ball queries visit only shards whose bounding boxes intersect the
  query region; kNN fans out to shards whose box mindist is within the
  candidate k-th distance established by a home-shard probe (see
  :mod:`repro.cluster.index`).  Plans are (m, n_shards) boolean masks
  computed by one vectorized box-arithmetic pass.
* **Execute** — run one slab per planned shard and charge the slabs as
  *parallel children* in the work–depth model
  (:meth:`repro.parlay.scheduler.Scheduler.parallel_do` composes the
  per-shard frames as sum-work / max-depth + log-fanout), so simulated
  ``T_p`` reflects scatter-gather scaling: the critical path is the
  slowest shard plus the merge, not the sum of shards.

Gather ordering is canonical: kNN candidates merge by
``lexsort((gid, d2, qidx))`` — ascending distance, ties broken by
ascending global id — and range hits return sorted ascending by global
id.  On tie-free inputs the kNN rows are identical to a monolithic
tree's (the squared distances are computed by the same kernels either
way, and the top-k distance multiset is partition-invariant).
"""

from __future__ import annotations

import numpy as np

from ..obs.rtrace import current_trace_ids
from ..obs.span import span
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge

__all__ = [
    "bbox_mindist2",
    "merge_knn",
    "plan_ball",
    "plan_box",
    "scatter",
]


def bbox_mindist2(lo: np.ndarray, hi: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """(m, S) squared distance from each query to each shard's box.

    Empty shards carry the ``(+inf, -inf)`` sentinel box and come out
    at infinite distance, so they are never fanned out to.
    """
    gap = np.maximum(lo[None, :, :] - queries[:, None, :], 0.0) + np.maximum(
        queries[:, None, :] - hi[None, :, :], 0.0
    )
    return np.einsum("qsd,qsd->qs", gap, gap)


def plan_box(lo: np.ndarray, hi: np.ndarray, qlo: np.ndarray, qhi: np.ndarray) -> np.ndarray:
    """(m, S) mask: does shard s's box intersect query box i?"""
    miss = np.any(lo[None, :, :] > qhi[:, None, :], axis=2) | np.any(
        hi[None, :, :] < qlo[:, None, :], axis=2
    )
    return ~miss


def plan_ball(lo: np.ndarray, hi: np.ndarray, centers: np.ndarray, r2: np.ndarray) -> np.ndarray:
    """(m, S) mask: does shard s's box intersect ball i (radius² r2)?"""
    return bbox_mindist2(lo, hi, centers) <= r2[:, None]


def scatter(
    mask: np.ndarray, run_slab, label: str, remote=None
) -> list[tuple[int, np.ndarray, object]]:
    """Execute one slab per planned shard; shards are parallel children.

    ``mask`` is the (m, S) plan; ``run_slab(shard_idx, qidx)`` executes
    shard ``shard_idx``'s slab over query rows ``qidx`` and returns its
    result.  Returns ``[(shard_idx, qidx, result), ...]`` for the
    shards with non-empty slabs.  The scheduler composes the slab costs
    as sum-work / max-depth, which is exactly the scatter-gather DAG.

    ``remote`` is the declarative form of the same slabs for the
    ``processes`` backend: a callable ``remote(shard_idx, qidx)``
    returning a picklable payload for
    :func:`repro.cluster.procwork.run_slab`.  When the active backend
    is ``processes`` (and ``remote`` is given) slabs are dispatched to
    the worker pool with the shard index as affinity — shard-pinned
    workers read the shard's state from shared memory — with identical
    cost composition, results and gather order; on the other backends
    ``remote`` is ignored and the closures run as usual.
    """
    active = np.flatnonzero(mask.any(axis=0))
    slabs = [np.flatnonzero(mask[:, s]) for s in active]
    sched = get_scheduler()
    # the serve-layer batch executing on this thread, if any: shard and
    # worker spans are tagged with its member trace ids so one exported
    # timeline names the requests each lane computed for
    trace_ids = current_trace_ids()

    if remote is not None and sched.backend == "processes":
        tasks = [(int(s), remote(int(s), q)) for s, q in zip(active, slabs)]
        results = sched.process_map("repro.cluster.procwork:run_slab", tasks)
        return [(int(s), q, r) for s, q, r in zip(active, slabs, results)]

    def make(s: int, qidx: np.ndarray):
        def thunk():
            kw = {"trace_ids": trace_ids} if trace_ids else {}
            with span(f"cluster.{label}.shard", cat="cluster",
                      shard=int(s), batch=len(qidx), **kw):
                return run_slab(int(s), qidx)

        return thunk

    results = sched.parallel_do(
        [make(int(s), q) for s, q in zip(active, slabs)]
    )
    return [(int(s), q, r) for s, q, r in zip(active, slabs, results)]


def merge_knn(
    m: int, kk: int, parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical top-``kk`` merge of per-shard kNN slabs.

    ``parts`` holds ``(qidx, d2, gid)`` triples: slab rows ``d2``/``gid``
    of shape (len(qidx), kk) padded with inf/-1.  Returns (m, kk)
    arrays, each row the kk globally-nearest candidates sorted by
    (distance, gid) — deterministic under any sharding.
    """
    out_d = np.full((m, kk), np.inf)
    out_g = np.full((m, kk), -1, dtype=np.int64)
    if not parts:
        return out_d, out_g
    q = np.concatenate([np.repeat(qidx, d2.shape[1]) for qidx, d2, _ in parts])
    d = np.concatenate([d2.ravel() for _, d2, _ in parts])
    g = np.concatenate([gid.ravel() for _, _, gid in parts])
    valid = g >= 0
    q, d, g = q[valid], d[valid], g[valid]
    if not len(q):
        return out_d, out_g
    charge(len(q))
    order = np.lexsort((g, d, q))
    q, d, g = q[order], d[order], g[order]
    counts = np.bincount(q, minlength=m)
    starts = np.cumsum(counts) - counts
    rank = np.arange(len(q), dtype=np.int64) - starts[q]
    take = rank < kk
    out_d[q[take], rank[take]] = d[take]
    out_g[q[take], rank[take]] = g[take]
    return out_d, out_g
