"""Shared-memory snapshots of per-shard query state.

The bridge between the sharded index and the ``processes`` scheduler
backend.  A shard's query state — its :class:`~repro.bdl.bdltree.BDLTree`
buffer arrays plus the flat vEB arrays of every live static tree — is
packed **once per tree version** into one
:class:`multiprocessing.shared_memory.SharedMemory` segment
(:func:`repro.kdtree.flat.pack_tree` does the per-tree layout).  Worker
processes attach by name and reconstruct a read-only, fully queryable
``BDLTree`` over zero-copy views (:func:`attach_snapshot`): no Python
node objects ever cross the process boundary, and a shard's snapshot is
re-packed only when its mutation ``version`` bumps.

Lifecycle
---------
* The parent's :class:`SnapshotManager` caches one live segment per
  shard slot, keyed by (shard identity, tree version).  A version bump
  or a rebalance (new ``Shard`` object in the slot) unlinks the old
  segment and packs a fresh one — on Linux, unlink-while-mapped is
  safe, so workers holding the old attachment finish their in-flight
  slabs untouched and re-attach on the next dispatch.
* Workers unregister attached segments from their own
  ``resource_tracker`` (spawn only — under fork the tracker is shared
  with the parent and the parent's registration must survive), so
  worker exit never unlinks a segment the parent still owns.
* Every manager registers in a process-wide weak set; scheduler
  shutdown (:func:`repro.parlay.scheduler.register_process_shutdown_hook`)
  and interpreter exit both trigger :func:`release_all_snapshots`, so
  no segment outlives the run — ``/dev/shm`` comes back empty.
"""

from __future__ import annotations

import atexit
import os
import weakref
from multiprocessing import shared_memory

import numpy as np

from ..bdl import BDLTree
from ..kdtree.flat import _aligned, attach_tree, pack_tree, tree_nbytes
from ..parlay.scheduler import register_process_shutdown_hook

__all__ = [
    "SnapshotManager",
    "attach_snapshot",
    "pack_shard_tree",
    "release_all_snapshots",
]

_BUF_FIELDS = ("buf_pts", "buf_gids")


# ----------------------------------------------------------------------
# pack / attach
# ----------------------------------------------------------------------
def pack_shard_tree(tree: BDLTree) -> tuple[shared_memory.SharedMemory, dict]:
    """Pack a BDL-tree's query state into a fresh shared-memory segment.

    Returns ``(shm, spec)``: the parent-owned segment and a picklable
    spec sufficient for :func:`attach_snapshot` in any process.  Empty
    static-tree slots pack as ``None`` (queries skip them either way),
    so the segment holds exactly the bytes queries can touch.
    """
    live = [
        t if (t is not None and t.size() > 0) else None for t in tree.trees
    ]

    # pass 1: layout
    size = 0
    buf_rows: dict[str, tuple[str, tuple, int]] = {}
    for name in _BUF_FIELDS:
        arr = getattr(tree, name)
        size = _aligned(size)
        buf_rows[name] = (arr.dtype.str, tuple(arr.shape), size)
        size += arr.nbytes
    for t in live:
        if t is not None:
            size = tree_nbytes(t, size)

    shm = shared_memory.SharedMemory(create=True, size=max(int(size), 1))
    buf = shm.buf

    # pass 2: copy
    offset = 0
    for name in _BUF_FIELDS:
        dtype, shape, off = buf_rows[name]
        src = getattr(tree, name)
        np.ndarray(shape, dtype=dtype, buffer=buf, offset=off)[...] = src
        offset = off + src.nbytes
    tree_specs: list[dict | None] = []
    for t in live:
        if t is None:
            tree_specs.append(None)
        else:
            tspec, offset = pack_tree(t, buf, offset)
            tree_specs.append(tspec)

    spec = {
        "shm": shm.name,
        "bdl": {
            "dim": tree.dim,
            "buffer_size": tree.X,
            "split": tree.split,
            "leaf_size": tree.leaf_size,
            "next_gid": tree.next_gid,
            "version": tree.version,
        },
        "buf": buf_rows,
        "trees": tree_specs,
    }
    return shm, spec


def attach_snapshot(spec: dict) -> tuple[shared_memory.SharedMemory, BDLTree]:
    """Attach a packed snapshot; returns ``(shm, read-only BDLTree)``.

    The caller owns the ``shm`` handle: close it (after dropping the
    tree) when done.  In a spawn-started worker the attachment is
    unregistered from this process's resource tracker so worker exit
    cannot unlink a segment the parent still owns; under fork the
    tracker is the parent's own and the (idempotent) registration is
    left alone.
    """
    shm = shared_memory.SharedMemory(name=spec["shm"])
    start = os.environ.get("REPRO_PROC_START")
    if start is not None and start != "fork":
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass

    def view(row):
        dtype, shape, off = row
        a = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        a.flags.writeable = False
        return a

    b = spec["bdl"]
    tree = BDLTree._from_parts(
        dim=b["dim"],
        buffer_size=b["buffer_size"],
        split=b["split"],
        leaf_size=b["leaf_size"],
        next_gid=b["next_gid"],
        version=b["version"],
        buf_pts=view(spec["buf"]["buf_pts"]),
        buf_gids=view(spec["buf"]["buf_gids"]),
        trees=[
            None if t is None else attach_tree(t, shm.buf)
            for t in spec["trees"]
        ],
    )
    return shm, tree


# ----------------------------------------------------------------------
# parent-side cache
# ----------------------------------------------------------------------
class _Entry:
    __slots__ = ("shard", "version", "shm", "spec")


def _unlink(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SnapshotManager:
    """One live snapshot per shard slot, re-packed on version bump.

    ``spec_for(slot, shard)`` is the only hot entry point: it returns
    the cached picklable spec when the slot still holds the same shard
    at the same tree version, and otherwise unlinks the stale segment
    and packs a fresh one.  Identity is checked on the ``Shard`` object
    itself so rebalances (which replace shard objects in-place) force a
    re-snapshot even though slot numbers shift.
    """

    def __init__(self):
        self._entries: dict[int, _Entry] = {}
        _managers.add(self)

    def spec_for(self, slot: int, shard) -> dict:
        tree = shard.tree
        ent = self._entries.get(slot)
        if (
            ent is not None
            and ent.shard is shard
            and ent.version == tree.version
        ):
            return ent.spec
        if ent is not None:
            del self._entries[slot]
            _unlink(ent.shm)
        shm, spec = pack_shard_tree(tree)
        ent = _Entry()
        ent.shard = shard
        ent.version = tree.version
        ent.shm = shm
        ent.spec = spec
        self._entries[slot] = ent
        return spec

    def release_all(self) -> None:
        """Unlink every owned segment.  Safe to call repeatedly."""
        while self._entries:
            _, ent = self._entries.popitem()
            _unlink(ent.shm)

    def __len__(self) -> int:
        return len(self._entries)

    def segment_names(self) -> list[str]:
        """Names of the live segments (tests check /dev/shm against these)."""
        return [ent.spec["shm"] for ent in self._entries.values()]


#: Every live manager; release runs at scheduler shutdown and at exit.
_managers: "weakref.WeakSet[SnapshotManager]" = weakref.WeakSet()


def release_all_snapshots() -> None:
    """Unlink every segment owned by any live :class:`SnapshotManager`."""
    for m in list(_managers):
        m.release_all()


register_process_shutdown_hook(release_all_snapshots)
atexit.register(release_all_snapshots)
