"""Worker-process side of cluster scatter-gather.

:func:`run_slab` is the single declarative entry point the ``processes``
backend dispatches to (``"repro.cluster.procwork:run_slab"``): one
planned shard's slab of a knn / box / ball batch.  The payload carries
the shard's shared-memory snapshot spec plus the slab arguments; this
module keeps a per-process attachment cache keyed by shard slot, so a
worker pinned to a shard attaches its snapshot once and re-attaches
only when the segment name changes (i.e. the shard's version bumped or
a rebalance replaced it).

Everything here also runs correctly in the parent process — the
scheduler's inline fallback resolves the same function — because
attaching a snapshot is just opening the segment by name.
"""

from __future__ import annotations

from ..obs.span import span
from .snapshot import attach_snapshot

__all__ = ["close_attachments", "run_slab"]


class _Attachment:
    __slots__ = ("name", "shm", "tree")


#: shard slot -> live attachment (one per slot; stale ones evicted).
_cache: dict[int, _Attachment] = {}


def _release(ent: _Attachment) -> None:
    # the tree's arrays view the segment; drop them before closing, and
    # tolerate a still-exported buffer (the mapping dies with the process)
    ent.tree = None
    try:
        ent.shm.close()
    except BufferError:
        pass


def close_attachments() -> None:
    """Drop every cached attachment (worker shutdown path)."""
    while _cache:
        _, ent = _cache.popitem()
        _release(ent)


def _attached_tree(slot: int, spec: dict):
    ent = _cache.get(slot)
    if ent is not None and ent.name == spec["shm"]:
        return ent.tree
    if ent is not None:
        del _cache[slot]
        _release(ent)
    shm, tree = attach_snapshot(spec)
    ent = _Attachment()
    ent.name = spec["shm"]
    ent.shm = shm
    ent.tree = tree
    _cache[slot] = ent
    return tree


def run_slab(payload):
    """Execute one shard slab: ``(spec, slot, kind, label, args)``.

    ``kind`` selects the query; ``args`` are the slab-local arrays the
    parent cut out of the batch (picklable, small — the shard state
    itself travels through shared memory, not the queue):

    * ``"knn"``  — ``(queries, kk, engine, bound_or_None)``
    * ``"box"``  — ``(los, his)``
    * ``"ball"`` — ``(centers, radii)``

    Charges and results are identical to the in-process slab: the
    attached tree runs the same engines over the same bytes, wrapped in
    the same ``cluster.<label>.shard`` span the inline path emits.
    """
    spec, slot, kind, label, args = payload
    tree = _attached_tree(int(slot), spec)
    with span(f"cluster.{label}.shard", cat="cluster",
              shard=int(slot), batch=len(args[0])):
        if kind == "knn":
            qs, kk, engine, bound = args
            return tree.knn(
                qs, kk, exclude_self=False, engine=engine, bound=bound
            )
        if kind == "box":
            los, his = args
            return tree.range_query_box_batch(los, his)
        if kind == "ball":
            cs, rr = args
            return tree.range_query_ball_batch(cs, rr)
        raise ValueError(f"unknown slab kind {kind!r}")
