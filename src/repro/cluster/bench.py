"""Monolithic-vs-sharded comparison harness.

Runs the same mixed kNN + ball-range workload against a monolithic
:class:`~repro.kdtree.tree.KDTree` and a
:class:`~repro.cluster.index.ShardedIndex`, recording wall-clock, the
charged work/depth, simulated ``T_p`` under Brent's bound, and the
sharded index's pruning statistics.  Shared by the ``cluster-bench``
CLI subcommand and the ``BENCH_cluster.json`` perf gate.

Geometric pruning keeps the scatter-gather work overhead small (a
query pays for the shards its candidate ball actually intersects, and
seeded fan-out searches prune near the root), while the per-shard
slabs are parallel children over much smaller trees, so the critical
path is *shorter* than the monolithic tree's.  The result is a higher
simulated speedup ``T1/Tp`` at ``p`` workers — which is what the gate
asserts.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..kdtree.batch import batched_range_query_ball_batch
from ..kdtree.tree import KDTree
from ..parlay.scheduler import use_backend
from ..parlay.workdepth import simulated_speedup, simulated_time, tracker
from .index import ShardedIndex

__all__ = ["compare_cluster", "compare_procs", "summary", "summary_procs"]


def _workload(points: np.ndarray, n_queries: int, seed: int, radius_frac: float):
    """Query mix shaped like traffic: jittered dataset points."""
    rng = np.random.default_rng(seed)
    lo, hi = points.min(axis=0), points.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    base = points[rng.integers(len(points), size=n_queries)]
    qs = base + rng.normal(0, 0.01, base.shape) * span
    n_ball = max(1, n_queries // 2)
    centers = points[rng.integers(len(points), size=n_ball)]
    radius = float(radius_frac * span.max())
    return qs, centers, radius


def compare_cluster(
    points,
    *,
    n_shards: int = 16,
    k: int = 10,
    n_queries: int = 2000,
    workers: float = 36.0,
    seed: int = 0,
    radius_frac: float = 0.05,
) -> dict:
    """Run the comparison; returns a JSON-ready record."""
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    qs, centers, radius = _workload(pts, n_queries, seed, radius_frac)
    radii = np.full(len(centers), radius)

    # -- monolithic --------------------------------------------------------
    tree = KDTree(pts)
    tracker.reset()
    t0 = time.perf_counter()
    d2_mono, _ids_mono = tree.knn(qs, k, exclude_self=False, engine="batched")
    balls_mono = [
        np.sort(tree.gids[i])
        for i in batched_range_query_ball_batch(tree, centers, radii)
    ]
    wall_mono = time.perf_counter() - t0
    cost_mono = tracker.reset()

    # -- sharded -----------------------------------------------------------
    idx = ShardedIndex(pts, n_shards)
    tracker.reset()
    t0 = time.perf_counter()
    d2_shard, _ids_shard = idx.knn(qs, k, exclude_self=False, engine="batched")
    balls_shard = idx.range_query_ball_batch(centers, radii)
    wall_shard = time.perf_counter() - t0
    cost_shard = tracker.reset()

    def side(wall, cost):
        return {
            "wall_s": wall,
            "work": cost.work,
            "depth": cost.depth,
            "t1": simulated_time(cost, 1.0),
            "tp": simulated_time(cost, workers),
            "speedup": simulated_speedup(cost, workers),
        }

    rec = {
        "n": n,
        "dims": d,
        "k": k,
        "knn_queries": len(qs),
        "ball_queries": len(centers),
        "radius": radius,
        "workers": workers,
        "shards_initial": n_shards,
        "shards_final": idx.n_shards,
        "mono": side(wall_mono, cost_mono),
        "sharded": side(wall_shard, cost_shard),
        "pruning": idx.pruning_stats(),
        "knn_distances_equal": bool(np.array_equal(d2_mono, d2_shard)),
        "ball_results_equal": all(
            np.array_equal(a, b) for a, b in zip(balls_mono, balls_shard)
        ),
    }
    rec["tp_ratio"] = (
        rec["mono"]["tp"] / rec["sharded"]["tp"]
        if rec["sharded"]["tp"] > 0
        else float("inf")
    )
    return rec


def compare_procs(
    points,
    *,
    n_shards: int = 8,
    k: int = 10,
    n_queries: int = 2000,
    procs: tuple[int, ...] = (1, 2, 4),
    seed: int = 0,
    radius_frac: float = 0.05,
) -> dict:
    """Measured-vs-simulated scaling of the ``processes`` backend.

    Runs the cluster scatter-gather workload (kNN + ball ranges) on one
    :class:`ShardedIndex` under ``use_backend("processes", p)`` for each
    ``p``, timing the steady state: a warm-up pass first packs the
    shared-memory snapshots, starts the pool and attaches the workers,
    so the timed pass measures slab execution, not setup.  Reports, per
    ``p``: measured wall clock, measured speedup vs the 1-process run,
    the charged (work, depth), and the simulated ``T_p`` at the same
    ``p`` — the gate asserts the two tell the same qualitative story.
    Results are checked bitwise against a monolithic tree throughout.
    """
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    qs, centers, radius = _workload(pts, n_queries, seed, radius_frac)
    radii = np.full(len(centers), radius)

    tree = KDTree(pts)
    d2_mono, _ = tree.knn(qs, k, exclude_self=False, engine="batched")
    balls_mono = [
        np.sort(tree.gids[i])
        for i in batched_range_query_ball_batch(tree, centers, radii)
    ]

    idx = ShardedIndex(pts, n_shards)
    runs: dict[str, dict] = {}
    knn_equal = True
    ball_equal = True
    for p in procs:
        with use_backend("processes", int(p)):
            # warm-up: snapshot pack + pool start + worker attach
            idx.knn(qs[: min(32, len(qs))], k, engine="batched")
            tracker.reset()
            t0 = time.perf_counter()
            d2, _ = idx.knn(qs, k, exclude_self=False, engine="batched")
            balls = idx.range_query_ball_batch(centers, radii)
            wall = time.perf_counter() - t0
            cost = tracker.reset()
        knn_equal &= bool(np.array_equal(d2_mono, d2))
        ball_equal &= all(
            np.array_equal(a, b) for a, b in zip(balls_mono, balls)
        )
        runs[str(int(p))] = {
            "wall_s": wall,
            "work": cost.work,
            "depth": cost.depth,
            "tp_sim": simulated_time(cost, float(p)),
            "sim_speedup": simulated_speedup(cost, float(p)),
        }

    base = runs[str(int(procs[0]))]["wall_s"]
    for r in runs.values():
        r["measured_speedup"] = base / r["wall_s"] if r["wall_s"] > 0 else 0.0

    return {
        "n": n,
        "dims": d,
        "k": k,
        "knn_queries": len(qs),
        "ball_queries": len(centers),
        "radius": radius,
        "shards": idx.n_shards,
        "procs": [int(p) for p in procs],
        "cpu_count": os.cpu_count() or 1,
        "runs": runs,
        "knn_distances_equal": knn_equal,
        "ball_results_equal": ball_equal,
    }


def summary(rec: dict) -> str:
    """Human-readable table of a :func:`compare_cluster` record."""
    m, s, p = rec["mono"], rec["sharded"], rec["pruning"]
    lines = [
        f"cluster-bench: n={rec['n']} d={rec['dims']} k={rec['k']} "
        f"({rec['knn_queries']} kNN + {rec['ball_queries']} ball queries), "
        f"{rec['shards_final']} shards, p={rec['workers']:g}",
        f"  {'':10s} {'wall':>9s} {'work':>12s} {'depth':>10s} "
        f"{'T_p':>12s} {'speedup':>8s}",
        f"  {'monolith':10s} {m['wall_s']:>8.3f}s {m['work']:>12.3g} "
        f"{m['depth']:>10.3g} {m['tp']:>12.3g} {m['speedup']:>7.2f}x",
        f"  {'sharded':10s} {s['wall_s']:>8.3f}s {s['work']:>12.3g} "
        f"{s['depth']:>10.3g} {s['tp']:>12.3g} {s['speedup']:>7.2f}x",
        f"  scatter-gather speedup {s['speedup']:.2f}x vs monolithic "
        f"{m['speedup']:.2f}x; mean shards touched "
        f"{p['mean_touched_frac']:.1%} "
        f"({p['shard_visits']} visits / {p['queries']} queries)",
    ]
    return "\n".join(lines)


def summary_procs(rec: dict) -> str:
    """Human-readable table of a :func:`compare_procs` record."""
    lines = [
        f"procs-bench: n={rec['n']} d={rec['dims']} k={rec['k']} "
        f"({rec['knn_queries']} kNN + {rec['ball_queries']} ball queries), "
        f"{rec['shards']} shards, {rec['cpu_count']} cpus",
        f"  {'p':>3s} {'wall':>9s} {'measured':>9s} {'T_p sim':>12s} "
        f"{'simulated':>10s}",
    ]
    for p in rec["procs"]:
        r = rec["runs"][str(p)]
        lines.append(
            f"  {p:>3d} {r['wall_s']:>8.3f}s {r['measured_speedup']:>8.2f}x "
            f"{r['tp_sim']:>12.3g} {r['sim_speedup']:>9.2f}x"
        )
    lines.append(
        "  results bitwise-equal to monolithic: "
        f"knn={rec['knn_distances_equal']} ball={rec['ball_results_equal']}"
    )
    return "\n".join(lines)
