"""Balanced Hilbert-range partitioning of a point set into shards.

The partitioner assigns every point a Hilbert code (reusing
:mod:`repro.spatialsort.hilbert` with quantization bounds *frozen* at
build time, so a point's code — and therefore its shard — never depends
on which other points happen to be present) and cuts the sorted code
sequence into contiguous ranges of near-equal size.  Shard membership
is purely a function of the code value: shard ``i`` owns the codes in
``(thresholds[i-1], thresholds[i]]``, so routing a batch is one
``searchsorted`` over the threshold array.

Two invariants matter for exact query equivalence with a monolithic
tree:

* **Equal coordinates never straddle a boundary.**  Split positions
  advance past runs of equal codes, and the threshold *is* a code
  value, so duplicate points always land in the same shard (per-shard
  ``erase(coords)`` then deletes exactly what a monolithic erase
  would).
* **Routing is stable under mutation.**  The quantization box is frozen
  at construction; points inserted later — even outside the original
  bounding box — clamp onto its surface and route to the nearest edge
  shard, whose bounding box grows to cover them.

Rebalancing inserts new thresholds (see :meth:`split_value`): a
threshold drawn from a shard's own codes keeps the array sorted and
splits exactly that shard in two.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..spatialsort.hilbert import hilbert_codes

__all__ = ["HilbertPartitioner"]


class HilbertPartitioner:
    """Hilbert-range partitioner with frozen quantization bounds.

    Parameters
    ----------
    points:
        (n, d) build set; defines the frozen quantization box and the
        initial balanced split thresholds.
    n_shards:
        Number of ranges to cut the curve into (>= 1).  Degenerate
        inputs (huge duplicate runs) may leave some ranges empty; they
        are retained so shard indices stay dense.
    bits:
        Per-dimension Hilbert resolution (default ``62 // d``).
    """

    def __init__(self, points, n_shards: int, bits: int | None = None):
        pts = as_array(points)
        if len(pts) == 0:
            raise ValueError("partitioner needs a non-empty build set")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        n, d = pts.shape
        self.dim = d
        self.bits = bits if bits is not None else max(1, 62 // d)
        self.lo = pts.min(axis=0).astype(np.float64)
        self.hi = pts.max(axis=0).astype(np.float64)

        sc = np.sort(self.codes(pts))
        cuts: list[int] = []
        prev = np.uint64(0)
        for j in range(1, n_shards):
            pos = (j * n) // n_shards
            # advance past the equal-code run so duplicates stay together
            while 0 < pos < n and sc[pos] == sc[pos - 1]:
                pos += 1
            if pos <= 0 or pos >= n:
                # degenerate cut: duplicate the last threshold (empty range)
                cuts.append(int(prev))
                continue
            prev = max(prev, sc[pos - 1])
            cuts.append(int(prev))
        self.thresholds = np.array(cuts, dtype=np.uint64)

    @property
    def n_shards(self) -> int:
        return len(self.thresholds) + 1

    def codes(self, points) -> np.ndarray:
        """Hilbert codes under the frozen bounds/bits (mutation-stable)."""
        return hilbert_codes(points, bits=self.bits, bounds=(self.lo, self.hi))

    def route(self, points) -> np.ndarray:
        """Owning shard index of each point (int64, in [0, n_shards))."""
        c = self.codes(points)
        # shard i owns (thresholds[i-1], thresholds[i]]: the shard index
        # is the number of thresholds strictly below the code
        return np.searchsorted(self.thresholds, c, side="left").astype(np.int64)

    def split_value(self, member_points) -> np.uint64 | None:
        """A threshold value splitting one shard's members near-evenly.

        Returns the code of the last point that stays on the left, or
        None when the members share a single code (unsplittable).
        """
        sc = np.sort(self.codes(member_points))
        n = len(sc)
        pos = n // 2
        while 0 < pos < n and sc[pos] == sc[pos - 1]:
            pos += 1
        if pos <= 0 or pos >= n:
            return None
        return sc[pos - 1]

    def insert_threshold(self, value: np.uint64, shard: int) -> None:
        """Split ``shard`` at code ``value`` (must come from its members)."""
        value = np.uint64(value)
        if shard < 0 or shard >= self.n_shards:
            raise ValueError(f"no shard {shard}")
        self.thresholds = np.insert(self.thresholds, shard, value)
        if not np.all(self.thresholds[:-1] <= self.thresholds[1:]):
            raise ValueError("threshold insertion broke the split ordering")
