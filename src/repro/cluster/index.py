"""`ShardedIndex` — the sharded spatial index facade.

Partitions a dataset into Hilbert-range shards
(:class:`~repro.cluster.partitioner.HilbertPartitioner`), each a
batch-dynamic :class:`~repro.cluster.shard.Shard`, and answers the full
existing query API by scatter-gather with geometric pruning
(:mod:`repro.cluster.router`):

* **box / ball** — only shards whose bounding boxes intersect the query
  region are visited;
* **kNN** — two-phase: probe each query's *home shard* (the one its
  Hilbert code routes to) for a candidate k-th distance, then fan out
  only to shards whose box mindist is within that candidate ball, and
  merge canonically.  The pruning invariant: a skipped shard has
  ``mindist² > r²`` for the home shard's k-th candidate distance ``r``,
  and every true top-k point lies within ``r`` of the query, so skipped
  shards cannot contribute.

The index is **batch-dynamic**: inserts and erases route per shard
(routing is stable — the partitioner's quantization bounds are frozen
at build), every mutation bumps the monotonic ``version`` counter (so
:class:`~repro.serve.service.GeometryService`'s versioned result cache
can never serve a stale answer), and shards whose size exceeds a skew
threshold are split at their median Hilbert code.

The query surface matches what :func:`repro.kdtree.batch.execute_requests`
dispatches on (``dim`` / ``version`` / ``knn`` /
``range_query_box[_batch]`` / ``range_query_ball[_batch]``), so a
``ShardedIndex`` registers directly into ``GeometryService`` and the
service's coalesced slabs scatter across shards transparently.  Global
ids are returned everywhere; range results come back sorted ascending
by id (the canonical gather order).
"""

from __future__ import annotations

import numpy as np

from ..core.bbox import TouchedRegion, _touched
from ..core.points import as_array
from ..kdtree.batch import resolve_engine
from ..obs.registry import MetricsRegistry
from ..obs.span import span
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge
from .partitioner import HilbertPartitioner
from .router import bbox_mindist2, merge_knn, plan_ball, plan_box, scatter
from .shard import Shard
from .snapshot import SnapshotManager

__all__ = ["ShardedIndex"]

#: Histogram buckets for the shards-touched-per-query fraction.
_TOUCH_BUCKETS = tuple(i / 16 for i in range(1, 17))


class ShardedIndex:
    """A Hilbert-sharded, batch-dynamic spatial index.

    Parameters
    ----------
    points:
        (n, d) build set (also fixes the routing bounds).
    n_shards:
        Initial shard count (rebalancing may grow it).
    bits:
        Per-dimension Hilbert resolution (default ``62 // d``).
    buffer_size, leaf_size:
        Tuning constants of the per-shard BDL-trees.  ``buffer_size``
        defaults to ``None`` — each shard auto-sizes its flush
        threshold to its build batch so a fresh build leaves (almost)
        nothing in the brute-force buffer.
    skew_threshold:
        A shard is split when its size exceeds
        ``max(skew_threshold * mean_size, rebalance_min)``.
    rebalance_min:
        Absolute size floor below which shards are never split.
    build_engine:
        Construction engine for the per-shard trees
        ('batched'/'recursive'); None uses the process default.
    registry:
        Metrics registry to publish shard gauges / pruning histograms
        on (a private one is created when omitted).
    """

    def __init__(
        self,
        points,
        n_shards: int = 8,
        *,
        bits: int | None = None,
        buffer_size: int | None = None,
        leaf_size: int = 16,
        skew_threshold: float = 4.0,
        rebalance_min: int = 1024,
        build_engine: str | None = None,
        registry: MetricsRegistry | None = None,
    ):
        pts = as_array(points)
        n, d = pts.shape
        if n == 0:
            raise ValueError("ShardedIndex needs a non-empty build set")
        if skew_threshold <= 1.0:
            raise ValueError("skew_threshold must be > 1")
        self.dim = d
        self.buffer_size = buffer_size
        self.leaf_size = leaf_size
        self.build_engine = build_engine
        self.skew_threshold = float(skew_threshold)
        self.rebalance_min = int(rebalance_min)
        self.part = HilbertPartitioner(pts, n_shards, bits=bits)
        self.next_gid = n
        # monotonic mutation counter (versioned result caches key on it)
        self.version = 0
        # key-range + shard ids of the last effective mutation
        self.last_touched: TouchedRegion | None = None
        # shared-memory snapshots of per-shard query state, packed
        # lazily (processes backend only) and re-packed on version bump
        self._snaps = SnapshotManager()

        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        reg.gauge("cluster_shards", "live shard count").set_function(
            lambda: len(self.shards)
        )
        reg.gauge("cluster_points", "live points across all shards").set_function(
            self.size
        )
        reg.gauge("cluster_shard_size_max", "largest shard").set_function(
            lambda: max((s.size() for s in self.shards), default=0)
        )
        reg.gauge("cluster_shard_size_min", "smallest shard").set_function(
            lambda: min((s.size() for s in self.shards), default=0)
        )
        self._m_queries = reg.counter("cluster_queries", "queries routed")
        self._m_visits = reg.counter(
            "cluster_shard_visits", "shard visits summed over queries"
        )
        self._m_rebalances = reg.counter("cluster_rebalances", "shard splits")
        self._m_touched = reg.histogram(
            "cluster_touched_frac",
            "fraction of shards touched per query",
            buckets=_TOUCH_BUCKETS,
        )

        gids = np.arange(n, dtype=np.int64)
        owner = self.part.route(pts)
        S = self.part.n_shards
        with span("cluster.build", cat="cluster", batch=n, shards=S):
            self.shards: list[Shard] = get_scheduler().parallel_do(
                [
                    (
                        lambda s=s: Shard(
                            d,
                            pts[owner == s],
                            gids[owner == s],
                            buffer_size=buffer_size,
                            leaf_size=leaf_size,
                            build_engine=build_engine,
                        )
                    )
                    for s in range(S)
                ]
            )
        self._maybe_rebalance()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def size(self) -> int:
        return sum(s.size() for s in self.shards)

    def __len__(self) -> int:
        return self.size()

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_sizes(self) -> list[int]:
        return [s.size() for s in self.shards]

    def gather_points(self) -> tuple[np.ndarray, np.ndarray]:
        """All live (coords, gids) across every shard."""
        parts = [s.gather() for s in self.shards if s.size() > 0]
        if not parts:
            return (np.empty((0, self.dim)), np.empty(0, dtype=np.int64))
        return (
            np.vstack([p for p, _ in parts]),
            np.concatenate([g for _, g in parts]),
        )

    def pruning_stats(self) -> dict:
        """Aggregate pruning effectiveness since construction."""
        q = self._m_queries.value
        v = self._m_visits.value
        return {
            "queries": int(q),
            "shard_visits": int(v),
            "shards": len(self.shards),
            "mean_touched_frac": (v / (q * len(self.shards))) if q else 0.0,
        }

    def _boxes(self) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.stack([s.lo for s in self.shards]),
            np.stack([s.hi for s in self.shards]),
        )

    def _occupied(self) -> np.ndarray:
        return np.array([s.size() > 0 for s in self.shards])

    def _observe(self, touched: np.ndarray) -> None:
        S = len(self.shards)
        self._m_queries.inc(len(touched))
        self._m_visits.inc(float(touched.sum()))
        for f in touched / S:
            self._m_touched.observe(float(f))

    def _remote(self, kind: str, label: str, args_fn):
        """Declarative slab descriptor for the ``processes`` backend.

        Returns a ``remote(shard_idx, qidx)`` payload builder for
        :func:`~repro.cluster.router.scatter` — or None on the other
        backends, so no snapshot is ever packed unless process dispatch
        is actually in play.  ``args_fn(s, qidx)`` cuts the slab-local
        query arrays out of the batch.
        """
        if get_scheduler().backend != "processes":
            return None
        snaps, shards = self._snaps, self.shards

        def make(s: int, qidx: np.ndarray):
            return (snaps.spec_for(s, shards[s]), s, kind, label,
                    args_fn(s, qidx))

        return make

    def close(self) -> None:
        """Unlink this index's shared-memory snapshots (idempotent)."""
        self._snaps.release_all()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # two-phase kNN
    # ------------------------------------------------------------------
    def knn(
        self,
        queries,
        k: int,
        exclude_self: bool = False,
        engine: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k nearest neighbors of each query: (sq-dists, global ids), (m, k).

        Rows are sorted by distance with ties broken by ascending global
        id — the canonical merge order, independent of the sharding.
        """
        engine = resolve_engine(engine)
        qs = as_array(queries)
        m = len(qs)
        kk = k + 1 if exclude_self else k
        if m == 0:
            return np.empty((0, k)), np.empty((0, k), dtype=np.int64)

        with span("cluster.knn", cat="cluster", batch=m, shards=len(self.shards)):
            home = self.part.route(qs)
            probe = np.zeros((m, len(self.shards)), dtype=bool)
            probe[np.arange(m), home] = True

            def run_knn(s: int, qidx: np.ndarray):
                return self.shards[s].tree.knn(
                    qs[qidx], kk, exclude_self=False, engine=engine
                )

            # phase 1: probe each query's home shard for a candidate
            # kk-th distance (inf when the home shard is underfull)
            probe_out = scatter(
                probe, run_knn, "knn.probe",
                remote=self._remote(
                    "knn", "knn.probe",
                    lambda s, qidx: (qs[qidx], kk, engine, None),
                ),
            )
            r2 = np.full(m, np.inf)
            parts = []
            for _, qidx, (d2, gid) in probe_out:
                r2[qidx] = d2[:, kk - 1]
                parts.append((qidx, d2, gid))

            # phase 2: fan out only to shards whose box intersects the
            # candidate ball (<= keeps boundary ties safe).  The search
            # is seeded with the candidate radius — nextafter keeps
            # d2 == r2 ties — so non-contributing shards prune near
            # their root instead of running a full search.
            lo, hi = self._boxes()
            fan = bbox_mindist2(lo, hi, qs) <= r2[:, None]
            fan &= self._occupied()[None, :]
            fan[np.arange(m), home] = False
            cutoff = np.nextafter(r2, np.inf)

            def run_fanout(s: int, qidx: np.ndarray):
                return self.shards[s].tree.knn(
                    qs[qidx], kk, exclude_self=False, engine=engine,
                    bound=cutoff[qidx],
                )

            for _, qidx, res in scatter(
                fan, run_fanout, "knn.fanout",
                remote=self._remote(
                    "knn", "knn.fanout",
                    lambda s, qidx: (qs[qidx], kk, engine, cutoff[qidx]),
                ),
            ):
                parts.append((qidx, res[0], res[1]))

            d2, gid = merge_knn(m, kk, parts)
            self._observe(1 + fan.sum(axis=1))

        if not exclude_self:
            return d2, gid
        # same drop rule as the monolithic extract: shift out the
        # closest hit when it is the query point itself
        hit = (gid[:, 0] >= 0) & (d2[:, 0] <= 1e-18)
        cols = np.where(hit, 1, 0)[:, None] + np.arange(k)[None, :]
        return np.take_along_axis(d2, cols, axis=1), np.take_along_axis(
            gid, cols, axis=1
        )

    # ------------------------------------------------------------------
    # degraded home-shard-only kNN (overload escape hatch)
    # ------------------------------------------------------------------
    def knn_home(
        self,
        queries,
        k: int,
        exclude_self: bool = False,
        engine: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """*Approximate* kNN answered from each query's home shard only.

        This is phase 1 of :meth:`knn` without the fan-out: each query
        visits exactly the shard its Hilbert code routes to, so the
        cost is bounded by one shard search regardless of how wide the
        exact fan-out would have been — the degraded path the serving
        front-end switches to under overload.

        The answer is exact kNN *restricted to the home shard's live
        points*: every returned (distance, id) pair is a real point at
        its true squared distance, and rank-for-rank the distances are
        >= the exact answer's (the candidate set is a subset).  Rows
        are padded with ``inf``/``-1`` when the home shard holds fewer
        than ``k`` points.  Callers must label results as approximate —
        the serving layer never returns them unlabelled.
        """
        engine = resolve_engine(engine)
        qs = as_array(queries)
        m = len(qs)
        kk = k + 1 if exclude_self else k
        if m == 0:
            return np.empty((0, k)), np.empty((0, k), dtype=np.int64)

        with span("cluster.knn_home", cat="cluster", batch=m,
                  shards=len(self.shards)):
            home = self.part.route(qs)
            probe = np.zeros((m, len(self.shards)), dtype=bool)
            probe[np.arange(m), home] = True
            probe &= self._occupied()[None, :]

            def run_knn(s: int, qidx: np.ndarray):
                return self.shards[s].tree.knn(
                    qs[qidx], kk, exclude_self=False, engine=engine
                )

            parts = [
                (qidx, d2, gid)
                for _, qidx, (d2, gid) in scatter(
                    probe, run_knn, "knn.home",
                    remote=self._remote(
                        "knn", "knn.home",
                        lambda s, qidx: (qs[qidx], kk, engine, None),
                    ),
                )
            ]
            d2, gid = merge_knn(m, kk, parts)
            self._observe(probe.sum(axis=1))

        if not exclude_self:
            return d2, gid
        hit = (gid[:, 0] >= 0) & (d2[:, 0] <= 1e-18)
        cols = np.where(hit, 1, 0)[:, None] + np.arange(k)[None, :]
        return np.take_along_axis(d2, cols, axis=1), np.take_along_axis(
            gid, cols, axis=1
        )

    # ------------------------------------------------------------------
    # pruned range search
    # ------------------------------------------------------------------
    def range_query_box_batch(self, los, his) -> list[np.ndarray]:
        """Per-query global ids inside closed boxes, sorted ascending."""
        los = np.atleast_2d(np.asarray(los, dtype=np.float64))
        his = np.atleast_2d(np.asarray(his, dtype=np.float64))
        m = len(los)
        if m == 0:
            return []
        with span("cluster.box", cat="cluster", batch=m, shards=len(self.shards)):
            lo, hi = self._boxes()
            mask = plan_box(lo, hi, los, his) & self._occupied()[None, :]

            def run(s: int, qidx: np.ndarray):
                return self.shards[s].tree.range_query_box_batch(
                    los[qidx], his[qidx]
                )

            out = self._gather_range(m, scatter(
                mask, run, "box",
                remote=self._remote(
                    "box", "box", lambda s, qidx: (los[qidx], his[qidx])
                ),
            ))
            self._observe(mask.sum(axis=1))
        return out

    def range_query_ball_batch(self, centers, radii) -> list[np.ndarray]:
        """Per-query global ids within the radii, sorted ascending."""
        cs = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        m = len(cs)
        if m == 0:
            return []
        rr = np.broadcast_to(np.asarray(radii, dtype=np.float64), (m,))
        with span("cluster.ball", cat="cluster", batch=m, shards=len(self.shards)):
            lo, hi = self._boxes()
            mask = plan_ball(lo, hi, cs, np.square(rr)) & self._occupied()[None, :]

            def run(s: int, qidx: np.ndarray):
                return self.shards[s].tree.range_query_ball_batch(cs[qidx], rr[qidx])

            out = self._gather_range(m, scatter(
                mask, run, "ball",
                remote=self._remote(
                    "ball", "ball", lambda s, qidx: (cs[qidx], rr[qidx])
                ),
            ))
            self._observe(mask.sum(axis=1))
        return out

    def range_query_box(self, lo, hi) -> np.ndarray:
        return self.range_query_box_batch([lo], [hi])[0]

    def range_query_ball(self, center, radius: float) -> np.ndarray:
        return self.range_query_ball_batch([center], [radius])[0]

    @staticmethod
    def _gather_range(m: int, parts) -> list[np.ndarray]:
        hits: list[list[np.ndarray]] = [[] for _ in range(m)]
        total = 0
        for _, qidx, res in parts:
            for i, g in zip(qidx, res):
                if len(g):
                    hits[i].append(g)
                    total += len(g)
        charge(total + m)  # canonical ascending-gid merge
        return [
            np.sort(np.concatenate(p)) if p else np.empty(0, dtype=np.int64)
            for p in hits
        ]

    # ------------------------------------------------------------------
    # batch-dynamic mutation
    # ------------------------------------------------------------------
    def insert(self, points, gids=None) -> np.ndarray:
        """Insert a batch, routed per shard; returns the global ids."""
        pts = as_array(points)
        if pts.shape[1] != self.dim:
            raise ValueError("dimension mismatch")
        me = len(pts)
        if gids is None:
            gids = np.arange(self.next_gid, self.next_gid + me, dtype=np.int64)
            self.next_gid += me
        else:
            gids = np.asarray(gids, dtype=np.int64)
            if gids.shape != (me,):
                raise ValueError("gids must have one id per inserted point")
            if me:
                self.next_gid = max(self.next_gid, int(gids.max()) + 1)
        if me == 0:
            return gids
        with span("cluster.insert", cat="cluster", batch=me):
            owner = self.part.route(pts)
            targets = np.unique(owner)
            get_scheduler().parallel_do(
                [
                    (
                        lambda s=s: self.shards[s].insert(
                            pts[owner == s], gids[owner == s]
                        )
                    )
                    for s in targets
                ]
            )
            self.version += 1
            self._maybe_rebalance()
            self.last_touched = _touched(
                "insert", pts, me, self.version, shards=targets.tolist()
            )
        return gids

    def erase(self, points) -> int:
        """Erase a batch by coordinates; returns #deleted.

        Equal coordinates share a Hilbert code and therefore a shard,
        so the per-shard erase deletes exactly the points a monolithic
        erase would.
        """
        pts = as_array(points)
        if pts.shape[1] != self.dim:
            raise ValueError("dimension mismatch")
        if len(pts) == 0:
            return 0
        with span("cluster.erase", cat="cluster", batch=len(pts)):
            owner = self.part.route(pts)
            targets = np.unique(owner)
            counts = get_scheduler().parallel_do(
                [
                    (lambda s=s: self.shards[s].erase(pts[owner == s]))
                    for s in targets
                ]
            )
            deleted = int(sum(counts))
            if deleted:
                self.version += 1
                self.last_touched = _touched(
                    "erase", pts, deleted, self.version, shards=targets.tolist()
                )
        return deleted

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def _maybe_rebalance(self) -> None:
        """Split overfull shards at their median Hilbert code."""
        changed = True
        while changed:
            changed = False
            sizes = np.array([s.size() for s in self.shards], dtype=np.int64)
            total = int(sizes.sum())
            if total == 0:
                return
            limit = max(
                self.skew_threshold * total / len(self.shards),
                float(self.rebalance_min),
            )
            for s in np.argsort(sizes)[::-1]:
                if sizes[s] <= limit:
                    break
                if self._split_shard(int(s)):
                    changed = True
                    break  # shard indices shifted; re-plan

    def _split_shard(self, s: int) -> bool:
        pts, gids = self.shards[s].gather()
        if len(pts) < 2:
            return False
        v = self.part.split_value(pts)
        if v is None:
            return False  # single-code shard: unsplittable
        self.part.insert_threshold(v, s)
        owner = self.part.route(pts)  # yields s (left) or s + 1 (right)
        left = owner == s
        mk = lambda sel: Shard(
            self.dim,
            pts[sel],
            gids[sel],
            buffer_size=self.buffer_size,
            leaf_size=self.leaf_size,
            build_engine=self.build_engine,
        )
        self.shards[s : s + 1] = [mk(left), mk(~left)]
        self._m_rebalances.inc()
        self.version += 1
        return True
