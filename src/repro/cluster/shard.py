"""One shard of a sharded spatial index: a batch-dynamic tree + bbox.

Each shard owns the points of one Hilbert range, stored in a
:class:`~repro.bdl.bdltree.BDLTree` (batch-dynamic, per the
closest-pair paper's motivation: shards absorb insert/erase batches
without rebuilding) under the *global* id space of the owning
:class:`~repro.cluster.index.ShardedIndex`.

The shard tracks a conservative bounding box of its live points: grown
on insert, left unchanged on erase (a superset box only costs pruning
opportunities, never correctness).  An empty shard's box is the
``(+inf, -inf)`` sentinel, which fails every intersection test and has
infinite mindist, so routers skip it for free.
"""

from __future__ import annotations

import numpy as np

from ..bdl import BDLTree

__all__ = ["Shard"]


class Shard:
    """A Hilbert-range shard: BDL-tree, bounding box, size."""

    def __init__(self, dim: int, points=None, gids=None, *,
                 buffer_size: int | None = None, leaf_size: int = 16,
                 build_engine: str | None = None):
        self.dim = dim
        if buffer_size is None:
            # Auto-size the flush threshold to the build batch: with
            # X = n // 4 the bulk insert lands in a single static tree
            # of capacity 4X and at most 3 points stay in the
            # brute-force buffer, instead of the n % X (up to X - 1)
            # stragglers a fixed threshold leaves behind.  Later
            # mutation batches then amortize at n/4 as usual.
            n = 0 if points is None else len(points)
            buffer_size = max(32, n // 4)
        self.tree = BDLTree(dim, buffer_size=buffer_size, leaf_size=leaf_size,
                            build_engine=build_engine)
        self.lo = np.full(dim, np.inf)
        self.hi = np.full(dim, -np.inf)
        if points is not None and len(points):
            self.insert(points, gids)

    def size(self) -> int:
        return self.tree.size()

    def __len__(self) -> int:
        return self.tree.size()

    def insert(self, points: np.ndarray, gids: np.ndarray) -> None:
        """Insert a batch under fixed global ids; grows the bbox."""
        if len(points) == 0:
            return
        self.tree.insert(points, gids=gids)
        self.lo = np.minimum(self.lo, points.min(axis=0))
        self.hi = np.maximum(self.hi, points.max(axis=0))

    def erase(self, points: np.ndarray) -> int:
        """Erase a batch by coordinates; the bbox stays conservative."""
        if len(points) == 0:
            return 0
        return self.tree.erase(points)

    def gather(self) -> tuple[np.ndarray, np.ndarray]:
        """All live (coords, gids) of the shard."""
        return self.tree.gather_points()

    def refit_box(self) -> None:
        """Shrink the bbox to the live points (used after a split)."""
        pts, _ = self.gather()
        if len(pts):
            self.lo = pts.min(axis=0)
            self.hi = pts.max(axis=0)
        else:
            self.lo = np.full(self.dim, np.inf)
            self.hi = np.full(self.dim, -np.inf)
