"""Synthetic point-data generators from the paper's evaluation (§6).

The paper names datasets ``{d}D-{Name}-{Size}``:

* **Uniform (U)** — uniform in a hypercube of side sqrt(n).
* **InSphere (IS)** — uniform inside a hypersphere.
* **OnSphere (OS)** — uniform on a hypersphere surface with thickness
  0.1 × diameter.
* **OnCube (OC)** — uniform on a hypercube surface with thickness
  0.1 × side length.
* **VisualVar (V)** — clustered dataset with varying density, in the
  style of Gan & Tao's SIGMOD'15 generator: random-walk cluster seeds
  with noise, producing clusters of varying density.

All generators take an explicit ``seed`` and are deterministic.
"""

from __future__ import annotations

import math
import re

import numpy as np

from ..core.points import PointSet

__all__ = [
    "uniform",
    "in_sphere",
    "on_sphere",
    "on_cube",
    "visual_var",
    "dataset",
    "DATASET_KINDS",
]


def _side(n: int) -> float:
    return math.sqrt(max(n, 1))


def uniform(n: int, d: int, seed: int = 0) -> PointSet:
    """Uniform in the hypercube [0, sqrt(n)]^d (paper's U)."""
    rng = np.random.default_rng(seed)
    return PointSet(rng.uniform(0.0, _side(n), size=(n, d)))


def in_sphere(n: int, d: int, seed: int = 0) -> PointSet:
    """Uniform in a hypersphere of radius sqrt(n)/2 (paper's IS)."""
    rng = np.random.default_rng(seed)
    radius = _side(n) / 2.0
    # direction uniform on sphere, radius ~ U^(1/d) for volume uniformity
    g = rng.standard_normal(size=(n, d))
    g /= np.maximum(np.linalg.norm(g, axis=1, keepdims=True), 1e-300)
    r = radius * rng.uniform(0.0, 1.0, size=(n, 1)) ** (1.0 / d)
    return PointSet(g * r + radius)


def on_sphere(n: int, d: int, seed: int = 0) -> PointSet:
    """Uniform on a hypersphere surface with 0.1-diameter thickness (OS)."""
    rng = np.random.default_rng(seed)
    radius = _side(n) / 2.0
    thickness = 0.1 * (2.0 * radius)
    g = rng.standard_normal(size=(n, d))
    g /= np.maximum(np.linalg.norm(g, axis=1, keepdims=True), 1e-300)
    r = rng.uniform(radius - thickness / 2.0, radius + thickness / 2.0, size=(n, 1))
    return PointSet(g * r + radius)


def on_cube(n: int, d: int, seed: int = 0) -> PointSet:
    """Uniform on a hypercube surface with 0.1-side thickness (OC)."""
    rng = np.random.default_rng(seed)
    side = _side(n)
    thickness = 0.1 * side
    pts = rng.uniform(0.0, side, size=(n, d))
    # pick a face per point: a dimension and a side (low/high), then pull
    # that coordinate into the surface shell
    face_dim = rng.integers(0, d, size=n)
    face_hi = rng.integers(0, 2, size=n).astype(bool)
    depth = rng.uniform(0.0, thickness, size=n)
    rows = np.arange(n)
    pts[rows, face_dim] = np.where(face_hi, side - depth, depth)
    return PointSet(pts)


def visual_var(n: int, d: int, seed: int = 0, n_clusters: int = 10, noise: float = 0.05) -> PointSet:
    """Clustered dataset of varying density (paper's VisualVar / V).

    Cluster centers follow a random walk; each cluster's spread varies
    by an order of magnitude, and ``noise`` fraction of the points are
    uniform background noise — matching the visually-varying-density
    character of the Gan–Tao generator the paper uses.
    """
    rng = np.random.default_rng(seed)
    side = _side(n)
    n_noise = int(n * noise)
    n_clustered = n - n_noise

    centers = np.empty((n_clusters, d))
    centers[0] = rng.uniform(0.25 * side, 0.75 * side, size=d)
    for i in range(1, n_clusters):
        step = rng.standard_normal(d) * side * 0.15
        centers[i] = np.clip(centers[i - 1] + step, 0.0, side)

    sizes = rng.multinomial(n_clustered, np.full(n_clusters, 1.0 / n_clusters))
    spreads = side * 0.01 * (10.0 ** rng.uniform(0.0, 1.0, size=n_clusters))
    chunks = []
    for c in range(n_clusters):
        if sizes[c] == 0:
            continue
        chunks.append(centers[c] + rng.standard_normal((sizes[c], d)) * spreads[c])
    if n_noise:
        chunks.append(rng.uniform(0.0, side, size=(n_noise, d)))
    pts = np.vstack(chunks) if chunks else np.empty((0, d))
    rng.shuffle(pts, axis=0)
    return PointSet(np.clip(pts, 0.0, side))


DATASET_KINDS = {
    "U": uniform,
    "IS": in_sphere,
    "OS": on_sphere,
    "OC": on_cube,
    "V": visual_var,
}

_NAME_RE = re.compile(r"^(\d+)D-([A-Za-z]+)-(\d+)([KkMm]?)$")


def dataset(name: str, seed: int = 0) -> PointSet:
    """Create a dataset from a paper-style name like ``'3D-U-10K'``.

    Suffix K = thousand, M = million; no suffix = exact count.
    """
    m = _NAME_RE.match(name)
    if not m:
        raise ValueError(
            f"bad dataset name {name!r}; expected e.g. '2D-U-10K' with "
            f"kind in {sorted(DATASET_KINDS)}"
        )
    d = int(m.group(1))
    kind = m.group(2).upper()
    n = int(m.group(3))
    suffix = m.group(4).upper()
    if suffix == "K":
        n *= 1_000
    elif suffix == "M":
        n *= 1_000_000
    if kind not in DATASET_KINDS:
        raise ValueError(f"unknown dataset kind {kind!r}")
    return DATASET_KINDS[kind](n, d, seed=seed)
