"""Point-set file I/O.

Supports the two formats spatial tooling actually uses offline:

* ``.npy`` — numpy binary (fast path),
* ``.csv`` / ``.txt`` / ``.pbbs`` — whitespace- or comma-separated text
  with an optional PBBS-style ``pbbs_sequencePoint{d}d`` header line
  (ParGeo reads/writes the PBBS geometry format).
"""

from __future__ import annotations

import os

import numpy as np

from ..core.points import PointSet, as_array

__all__ = ["SUPPORTED_EXTENSIONS", "save_points", "load_points"]

_PBBS_PREFIX = "pbbs_sequencePoint"

#: Extensions load_points understands ("" = extension-less text files).
SUPPORTED_EXTENSIONS = (".npy", ".csv", ".txt", ".pbbs", "")


def _format_error(path: str, ext: str) -> ValueError:
    names = ", ".join(e for e in SUPPORTED_EXTENSIONS if e)
    return ValueError(
        f"unrecognized point-file extension {ext!r} for {path!r}; "
        f"supported formats: {names} (or extension-less text)"
    )


def save_points(path: str | os.PathLike, points, fmt: str | None = None) -> None:
    """Write a point set to ``path``; format inferred from the suffix.

    ``fmt`` overrides: 'npy', 'csv', or 'pbbs'.
    """
    pts = as_array(points)
    path = os.fspath(path)
    if fmt is None:
        ext = os.path.splitext(path)[1].lower().lstrip(".")
        fmt = {"npy": "npy", "csv": "csv", "txt": "csv", "pbbs": "pbbs"}.get(ext)
    if fmt == "npy":
        np.save(path, pts)
    elif fmt == "csv":
        np.savetxt(path, pts, delimiter=",")
    elif fmt == "pbbs":
        with open(path, "w") as f:
            f.write(f"{_PBBS_PREFIX}{pts.shape[1]}d\n")
            np.savetxt(f, pts, delimiter=" ")
    else:
        names = ", ".join(e for e in SUPPORTED_EXTENSIONS if e)
        raise ValueError(
            f"cannot infer format for {path!r} (supported: {names}); pass fmt="
        )


def load_points(path: str | os.PathLike) -> PointSet:
    """Read a point set written by :func:`save_points` (or compatible)."""
    path = os.fspath(path)
    ext = os.path.splitext(path)[1].lower()
    if ext not in SUPPORTED_EXTENSIONS:
        raise _format_error(path, ext)
    if ext == ".npy":
        return PointSet(np.load(path))
    with open(path) as f:
        first = f.readline().strip()
        if first.startswith(_PBBS_PREFIX):
            data = np.loadtxt(f)
        else:
            f.seek(0)
            delim = "," if ("," in first and ext in (".csv", ".txt", "")) else None
            data = np.loadtxt(f, delimiter=delim)
    if data.ndim == 1:
        data = data[None, :]
    return PointSet(data)
