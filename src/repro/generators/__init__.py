"""``repro.generators`` — synthetic datasets used for benchmarking.

Module (4) of ParGeo: the point data generator.
"""

from .io import load_points, save_points
from .scans import dragon, scan_surface, thai_statue
from .synthetic import (
    DATASET_KINDS,
    dataset,
    in_sphere,
    on_cube,
    on_sphere,
    uniform,
    visual_var,
)

__all__ = [
    "DATASET_KINDS",
    "dataset",
    "dragon",
    "in_sphere",
    "load_points",
    "save_points",
    "on_cube",
    "on_sphere",
    "scan_surface",
    "thai_statue",
    "uniform",
    "visual_var",
]
