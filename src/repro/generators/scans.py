"""Synthetic stand-ins for the Stanford 3D scan datasets.

The paper evaluates on 3D-Thai-5M and 3D-Dragon-3.6M — laser scans of
statues.  Those files are not available offline, so we generate point
clouds with the same *geometric character* (see DESIGN.md §1):

1. points lie on a closed 2-manifold (a radially-deformed sphere built
   from a few random spherical harmonics-like lobes),
2. the convex hull output is tiny relative to n (the surface is highly
   non-convex), and
3. sampling density is non-uniform (scanner-like banding).

``thai_statue`` uses many deep lobes (high concavity, like the statue's
ornaments); ``dragon`` uses an elongated, curled body shape.
"""

from __future__ import annotations

import numpy as np

from ..core.points import PointSet

__all__ = ["scan_surface", "thai_statue", "dragon"]


def scan_surface(
    n: int,
    seed: int = 0,
    lobes: int = 8,
    lobe_depth: float = 0.35,
    stretch: tuple[float, float, float] = (1.0, 1.0, 1.0),
    banding: float = 0.5,
) -> PointSet:
    """Points on a radially-deformed sphere with scanner-like banding.

    The radius at direction u is ``1 + lobe_depth * sum_k a_k *
    cos(f_k . u + phi_k)`` which yields a smooth but highly non-convex
    closed surface.  ``banding`` in [0, 1) biases sampling toward
    latitude bands to mimic scan-line density variation.
    """
    rng = np.random.default_rng(seed)
    # oversample directions, then thin by banding weight
    m = int(n * 1.6) + 16
    g = rng.standard_normal((m, 3))
    g /= np.maximum(np.linalg.norm(g, axis=1, keepdims=True), 1e-300)

    if banding > 0:
        lat = np.arcsin(np.clip(g[:, 2], -1, 1))
        w = 1.0 - banding * (0.5 + 0.5 * np.cos(12.0 * lat))
        keep = rng.uniform(0, 1, size=m) < w
        g = g[keep]
    if len(g) < n:  # top up with unbiased directions
        extra = rng.standard_normal((n - len(g), 3))
        extra /= np.maximum(np.linalg.norm(extra, axis=1, keepdims=True), 1e-300)
        g = np.vstack([g, extra])
    g = g[:n]

    freqs = rng.uniform(1.5, 6.0, size=(lobes, 3))
    phases = rng.uniform(0, 2 * np.pi, size=lobes)
    amps = rng.uniform(0.3, 1.0, size=lobes)
    amps /= amps.sum()
    bump = np.zeros(len(g))
    for k in range(lobes):
        bump += amps[k] * np.cos(g @ freqs[k] + phases[k])
    r = 1.0 + lobe_depth * bump
    # small measurement noise, like scan jitter
    r *= 1.0 + rng.normal(0.0, 0.002, size=len(g))
    pts = g * r[:, None] * np.asarray(stretch)
    # scale into the paper's sqrt(n)-sized world
    pts *= np.sqrt(max(n, 1)) / 2.0
    pts -= pts.min(axis=0)
    return PointSet(pts)


def thai_statue(n: int = 50_000, seed: int = 7) -> PointSet:
    """Stand-in for 3D-Thai-5M: deep ornamentation, near-isotropic."""
    return scan_surface(n, seed=seed, lobes=8, lobe_depth=0.85, banding=0.5)


def dragon(n: int = 36_000, seed: int = 11) -> PointSet:
    """Stand-in for 3D-Dragon-3.6M: elongated curled body."""
    return scan_surface(
        n, seed=seed, lobes=6, lobe_depth=0.7, stretch=(2.2, 1.0, 0.8), banding=0.6
    )
