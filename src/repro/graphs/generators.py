"""Geometric graph generators (ParGeo Module (3)).

* k-NN graph — from the kd-tree's data-parallel k-NN.
* Delaunay graph — edges of the 2D Delaunay triangulation.
* Gabriel graph — Delaunay edges whose diametral disk is empty
  (tested with kd-tree ball range search).
* β-skeleton — lune-based, for β >= 1 a subgraph of the Delaunay graph;
  emptiness tested by range search, per the paper.
* EMST graph — the Euclidean minimum spanning tree.
* WSPD spanner — one edge between representatives of every
  well-separated pair; a t-spanner with t = (s+4)/(s-4) for s > 4.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..delaunay.triangulation import delaunay
from ..emst.emst import emst
from ..kdtree.tree import KDTree
from ..kdtree.range_search import range_query_ball, range_query_ball_batch
from ..parlay.scheduler import get_scheduler
from ..parlay.primitives import query_blocks
from ..parlay.workdepth import charge
from ..wspd.wspd import wspd
from .graph import Graph

__all__ = [
    "knn_graph",
    "relative_neighborhood_graph",
    "delaunay_graph",
    "gabriel_graph",
    "beta_skeleton",
    "emst_graph",
    "wspd_spanner",
]


def knn_graph(points, k: int) -> Graph:
    """Undirected k-nearest-neighbor graph."""
    pts = as_array(points)
    n = len(pts)
    tree = KDTree(pts)
    d, ids = tree.knn(pts, k, exclude_self=True)
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = ids.ravel()
    w = np.sqrt(d.ravel())
    valid = dst >= 0
    return Graph(n, np.column_stack([src[valid], dst[valid]]), w[valid])


def delaunay_graph(points) -> Graph:
    """Edges of the 2D Delaunay triangulation."""
    pts = as_array(points)
    dt = delaunay(pts)
    e = dt.edges()
    w = np.linalg.norm(pts[e[:, 0]] - pts[e[:, 1]], axis=1)
    return Graph(len(pts), e, w)


def gabriel_graph(points, engine: str | None = None) -> Graph:
    """Gabriel graph: edges (u,v) whose disk with diameter uv is empty.

    Computed by filtering the Delaunay edges (Gabriel ⊆ Delaunay) with a
    kd-tree ball query around each edge midpoint — all edges queried as
    one data-parallel batch with per-edge radii.
    """
    pts = as_array(points)
    n = len(pts)
    dt = delaunay(pts)
    e = dt.edges()
    tree = KDTree(pts)
    mids = 0.5 * (pts[e[:, 0]] + pts[e[:, 1]])
    radii = 0.5 * np.linalg.norm(pts[e[:, 0]] - pts[e[:, 1]], axis=1)
    balls = range_query_ball_batch(
        tree, mids, radii * (1 - 1e-12), grain=64, engine=engine
    )
    keep = np.zeros(len(e), dtype=bool)
    for i, inside in enumerate(balls):
        u, v = e[i]
        inside = inside[(inside != u) & (inside != v)]
        keep[i] = len(inside) == 0
    e = e[keep]
    w = np.linalg.norm(pts[e[:, 0]] - pts[e[:, 1]], axis=1)
    return Graph(n, e, w)


def beta_skeleton(points, beta: float = 1.5) -> Graph:
    """Lune-based β-skeleton for β >= 1 (subgraph of Delaunay).

    For β >= 1 the lune of edge (u, v) is the intersection of two disks
    of radius β·|uv|/2 centered at the points c_{1,2} = (1-β/2)·p +
    (β/2)·q for (p,q) = (u,v),(v,u); the edge survives iff the open lune
    holds no other point (tested via kd-tree range search, per §2).
    """
    if beta < 1:
        raise ValueError("lune-based beta-skeleton requires beta >= 1")
    pts = as_array(points)
    n = len(pts)
    dt = delaunay(pts)
    e = dt.edges()
    tree = KDTree(pts)
    keep = np.zeros(len(e), dtype=bool)
    sched = get_scheduler()
    blocks = query_blocks(len(e), grain=64)
    half_b = beta / 2.0

    def run_block(b: int) -> None:
        lo, hi = blocks[b]
        for i in range(lo, hi):
            u, v = e[i]
            pu, pv = pts[u], pts[v]
            d = np.linalg.norm(pu - pv)
            r = half_b * d
            c1 = (1 - half_b) * pu + half_b * pv
            c2 = (1 - half_b) * pv + half_b * pu
            cand = range_query_ball(tree, c1, r * (1 - 1e-12))
            cand = cand[(cand != u) & (cand != v)]
            if len(cand):
                charge(len(cand))
                d2 = np.linalg.norm(pts[cand] - c2, axis=1)
                if np.any(d2 < r * (1 - 1e-12)):
                    keep[i] = False
                    continue
            keep[i] = True

    sched.parallel_for(len(blocks), run_block)
    e = e[keep]
    w = np.linalg.norm(pts[e[:, 0]] - pts[e[:, 1]], axis=1)
    return Graph(n, e, w)


def emst_graph(points) -> Graph:
    """The Euclidean minimum spanning tree as a graph."""
    pts = as_array(points)
    e, w = emst(pts)
    return Graph(len(pts), e, w)


def wspd_spanner(points, s: float = 8.0) -> Graph:
    """WSPD-based t-spanner: connect a representative pair per WSP.

    With separation s > 4 the result is a t-spanner for
    t = (s + 4) / (s - 4).
    """
    if s <= 4:
        raise ValueError("spanner guarantee needs separation s > 4")
    pts = as_array(points)
    n = len(pts)
    tree = KDTree(pts, leaf_size=1)
    pairs = wspd(tree, s=s)
    charge(max(len(pairs), 1))
    edges = np.empty((len(pairs), 2), dtype=np.int64)
    for i, p in enumerate(pairs):
        # representative: first point in each node
        edges[i, 0] = tree.perm[tree.start[p.a]]
        edges[i, 1] = tree.perm[tree.start[p.b]]
    w = np.linalg.norm(pts[edges[:, 0]] - pts[edges[:, 1]], axis=1)
    return Graph(n, edges, w)


def relative_neighborhood_graph(points) -> Graph:
    """Relative neighborhood graph: the lune-based beta-skeleton at
    beta = 2 (edges whose lune of two |uv|-radius disks is empty)."""
    return beta_skeleton(points, beta=2.0)
