"""``repro.graphs`` — spatial graph generators (ParGeo Module (3))."""

from .generators import (
    beta_skeleton,
    delaunay_graph,
    emst_graph,
    gabriel_graph,
    knn_graph,
    relative_neighborhood_graph,
    wspd_spanner,
)
from .graph import Graph

__all__ = [
    "Graph",
    "beta_skeleton",
    "delaunay_graph",
    "emst_graph",
    "gabriel_graph",
    "knn_graph",
    "relative_neighborhood_graph",
    "wspd_spanner",
]
