"""Lightweight weighted undirected graph used by the generators."""

from __future__ import annotations

import numpy as np

__all__ = ["Graph"]


class Graph:
    """An edge-list graph over point ids, convertible to networkx/CSR."""

    __slots__ = ("n", "edges", "weights")

    def __init__(self, n: int, edges: np.ndarray, weights: np.ndarray | None = None):
        self.n = n
        e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        # canonicalize: undirected, u < v, deduplicated
        e = np.sort(e, axis=1)
        if weights is None:
            e = np.unique(e, axis=0)
            w = np.ones(len(e))
        else:
            w = np.asarray(weights, dtype=np.float64)
            e, idx = np.unique(e, axis=0, return_index=True)
            w = w[idx]
        self.edges = e
        self.weights = w

    @property
    def m(self) -> int:
        return len(self.edges)

    def degree(self) -> np.ndarray:
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.edges[:, 0], 1)
        np.add.at(deg, self.edges[:, 1], 1)
        return deg

    def adjacency_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(indptr, indices, data) symmetric CSR adjacency."""
        src = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
        dst = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
        w = np.concatenate([self.weights, self.weights])
        order = np.argsort(src, kind="stable")
        src, dst, w = src[order], dst[order], w[order]
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return indptr, dst, w

    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_weighted_edges_from(
            (int(u), int(v), float(w))
            for (u, v), w in zip(self.edges, self.weights)
        )
        return g

    def total_weight(self) -> float:
        return float(self.weights.sum())

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"
