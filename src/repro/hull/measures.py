"""Hull post-processing utilities: measures and membership tests."""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..core.predicates import orient2d_batch
from .hull2d import quickhull2d_seq
from .hull3d import hull3d_facets

__all__ = [
    "polygon_area",
    "hull_area_2d",
    "hull_volume_3d",
    "hull_surface_area_3d",
    "points_in_hull_2d",
    "points_in_hull_3d",
]


def polygon_area(poly: np.ndarray) -> float:
    """Signed area of a polygon given as ordered (m, 2) vertices
    (positive for counter-clockwise orientation)."""
    poly = as_array(poly)
    x, y = poly[:, 0], poly[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def hull_area_2d(points) -> float:
    """Area of the convex hull of 2D points."""
    pts = as_array(points)
    h = quickhull2d_seq(pts)
    if len(h) < 3:
        return 0.0
    return polygon_area(pts[h])


def hull_volume_3d(points) -> float:
    """Volume of the convex hull of 3D points (signed tetrahedra sum)."""
    pts = as_array(points)
    tris = hull3d_facets(pts)
    if len(tris) == 0:
        return 0.0
    ref = pts[tris[0][0]]
    a = pts[tris[:, 0]] - ref
    b = pts[tris[:, 1]] - ref
    c = pts[tris[:, 2]] - ref
    vols = np.einsum("ij,ij->i", a, np.cross(b, c)) / 6.0
    return float(abs(vols.sum()))


def hull_surface_area_3d(points) -> float:
    """Surface area of the convex hull of 3D points."""
    pts = as_array(points)
    tris = hull3d_facets(pts)
    if len(tris) == 0:
        return 0.0
    a = pts[tris[:, 1]] - pts[tris[:, 0]]
    b = pts[tris[:, 2]] - pts[tris[:, 0]]
    return float(0.5 * np.linalg.norm(np.cross(a, b), axis=1).sum())


def points_in_hull_2d(hull_poly: np.ndarray, queries) -> np.ndarray:
    """Mask of query points inside (or on) a convex ccw polygon."""
    poly = as_array(hull_poly)
    qs = as_array(queries)
    inside = np.ones(len(qs), dtype=bool)
    for i in range(len(poly)):
        a, b = poly[i], poly[(i + 1) % len(poly)]
        inside &= orient2d_batch(a, b, qs) >= 0
    return inside


def points_in_hull_3d(points, queries, tol: float = 1e-9) -> np.ndarray:
    """Mask of query points inside (or on) the hull of ``points``."""
    pts = as_array(points)
    qs = as_array(queries)
    tris = hull3d_facets(pts)
    centroid = pts.mean(axis=0)
    inside = np.ones(len(qs), dtype=bool)
    scale = float(np.max(pts.max(axis=0) - pts.min(axis=0))) or 1.0
    for (a, b, c) in tris:
        n = np.cross(pts[b] - pts[a], pts[c] - pts[a])
        off = float(n @ pts[a])
        if n @ centroid > off:  # orient outward
            n, off = -n, -off
        inside &= (qs @ n - off) <= tol * scale * np.linalg.norm(n)
    return inside
