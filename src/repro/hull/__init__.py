"""``repro.hull`` — convex hull algorithms (paper §3, Appendix A/B).

2D: sequential/parallel quickhull, reservation-based randomized
incremental, reservation-based quickhull, divide-and-conquer.
3D: sequential quickhull, reservation-based randomized incremental and
quickhull, pseudohull culling (Tang et al. variant), divide-and-conquer.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from .facets3d import FacetHull3D, build_initial_tetrahedron
from .filter import (
    at_extremes,
    at_filter,
    default_hull_prefilter,
    set_default_hull_prefilter,
)
from .hull2d import divide_conquer_2d, quickhull2d_parallel, quickhull2d_seq
from .hull3d import (
    divide_conquer_3d,
    hull3d_facets,
    pseudo_hull3d,
    pseudohull_prune,
    quickhull3d_seq,
    randinc_hull3d,
    reservation_quickhull3d,
)
from .incremental2d import HullStats, randinc_hull2d, reservation_quickhull2d
from .measures import (
    hull_area_2d,
    hull_surface_area_3d,
    hull_volume_3d,
    points_in_hull_2d,
    points_in_hull_3d,
    polygon_area,
)

__all__ = [
    "FacetHull3D",
    "HullStats",
    "at_extremes",
    "at_filter",
    "build_initial_tetrahedron",
    "convex_hull",
    "default_hull_prefilter",
    "set_default_hull_prefilter",
    "divide_conquer_2d",
    "divide_conquer_3d",
    "hull3d_facets",
    "hull_area_2d",
    "hull_surface_area_3d",
    "hull_volume_3d",
    "points_in_hull_2d",
    "points_in_hull_3d",
    "polygon_area",
    "pseudo_hull3d",
    "pseudohull_prune",
    "quickhull2d_parallel",
    "quickhull2d_seq",
    "quickhull3d_seq",
    "randinc_hull2d",
    "randinc_hull3d",
    "reservation_quickhull2d",
    "reservation_quickhull3d",
]


def convex_hull(points, method: str = "divide_conquer") -> np.ndarray:
    """Convex hull of 2D or 3D points; returns hull vertex indices.

    ``method`` is one of 'divide_conquer' (default — the paper's fastest
    variant), 'quickhull', 'randinc', or 'pseudo' (3D only).
    For 2D the result is in counter-clockwise order.
    """
    pts = as_array(points)
    d = pts.shape[1]
    if d == 2:
        if method == "divide_conquer":
            return divide_conquer_2d(pts)
        if method == "quickhull":
            h, _ = reservation_quickhull2d(pts)
            return h
        if method == "randinc":
            h, _ = randinc_hull2d(pts)
            return h
        raise ValueError(f"unknown 2d method {method!r}")
    if d == 3:
        if method == "divide_conquer":
            return divide_conquer_3d(pts)[0]
        if method == "quickhull":
            return reservation_quickhull3d(pts)[0]
        if method == "randinc":
            return randinc_hull3d(pts)[0]
        if method == "pseudo":
            return pseudo_hull3d(pts)[0]
        raise ValueError(f"unknown 3d method {method!r}")
    raise ValueError("convex_hull supports 2- and 3-dimensional points")
