"""Facet-based 3D hull machinery shared by all R^3 hull algorithms.

A hull is a simplicial complex of triangular facets with:

* outward plane equations (normal, offset) oriented against an interior
  reference point,
* neighbor links across each of the three ridges,
* a conflict list of candidate points per facet (each candidate stores a
  reference to *one* visible facet — the paper's lightweight visibility
  bookkeeping),
* a cached furthest conflict point (for quickhull point selection), and
* a reservation slot (for the parallel reservation algorithm).

Inserting a visible point ``p``:

1. the visible region is found by breadth-first search across neighbor
   links starting from p's stored facet (visibility = signed plane
   distance > eps);
2. the **horizon** is the set of ridges between visible and non-visible
   facets; new facets fan from p over each horizon ridge;
3. conflict points of the deleted region redistribute onto the new
   facets (points visible to none are interior — discarded).
"""

from __future__ import annotations

import numpy as np

from ..parlay.priority_write import NO_RESERVATION
from ..parlay.workdepth import charge
from .incremental2d import HullStats

__all__ = ["FacetHull3D", "build_initial_tetrahedron"]


class FacetHull3D:
    """Mutable triangulated convex hull in R^3 with conflict lists."""

    def __init__(self, pts: np.ndarray, interior: np.ndarray, eps: float):
        self.pts = pts
        self.interior = interior
        self.eps = eps
        self.va: list[int] = []
        self.vb: list[int] = []
        self.vc: list[int] = []
        self.normal: list[np.ndarray] = []
        self.offset: list[float] = []
        self.nbr: list[list[int]] = []  # across edges (a,b), (b,c), (c,a)
        self.alive: list[bool] = []
        self.fpts: list[np.ndarray] = []  # conflict point ids
        self.far: list[tuple[float, int]] = []
        self.reservation: list[int] = []
        self.facet_of = np.full(len(pts), -1, dtype=np.int64)
        self.stats = HullStats()

    # ------------------------------------------------------------------
    # facet pool
    # ------------------------------------------------------------------
    def new_facet(self, a: int, b: int, c: int) -> int:
        """Create facet (a, b, c), oriented outward w.r.t. the interior.

        The plane equation is normalized (unit normal) so the visibility
        epsilon is a true distance — otherwise sliver facets (tiny cross
        products) would misclassify far-away points as coplanar.
        """
        pa, pb, pc = self.pts[a], self.pts[b], self.pts[c]
        n = np.cross(pb - pa, pc - pa)
        norm = float(np.linalg.norm(n))
        if norm > 0:
            n = n / norm
        off = float(n @ pa)
        if n @ self.interior > off:
            b, c = c, b
            n = -n
            off = float(n @ self.pts[a])
        fid = len(self.va)
        self.va.append(a)
        self.vb.append(b)
        self.vc.append(c)
        self.normal.append(n)
        self.offset.append(off)
        self.nbr.append([-1, -1, -1])
        self.alive.append(True)
        self.fpts.append(np.empty(0, dtype=np.int64))
        self.far.append((0.0, -1))
        self.reservation.append(NO_RESERVATION)
        self.stats.facets_created += 1
        charge(1, 1)
        return fid

    def facet_edges(self, f: int) -> list[tuple[int, int]]:
        a, b, c = self.va[f], self.vb[f], self.vc[f]
        return [(a, b), (b, c), (c, a)]

    def set_neighbor(self, f: int, u: int, v: int, g: int) -> None:
        """Set f's neighbor across the (undirected) edge {u, v} to g."""
        for slot, (x, y) in enumerate(self.facet_edges(f)):
            if {x, y} == {u, v}:
                self.nbr[f][slot] = g
                return
        raise ValueError(f"facet {f} has no edge {{{u}, {v}}}")

    def replace_neighbor(self, f: int, old: int, new: int) -> None:
        for slot in range(3):
            if self.nbr[f][slot] == old:
                self.nbr[f][slot] = new
                return
        raise ValueError(f"facet {f} is not a neighbor of {old}")

    # ------------------------------------------------------------------
    # visibility
    # ------------------------------------------------------------------
    def dists(self, f: int, cand: np.ndarray) -> np.ndarray:
        """Signed plane distances of candidates above facet f."""
        charge(max(len(cand), 1))
        return self.pts[cand] @ self.normal[f] - self.offset[f]

    def visible_one(self, f: int, pid: int) -> bool:
        charge(1, 1)
        return float(self.pts[pid] @ self.normal[f] - self.offset[f]) > self.eps

    def visible_set(self, pid: int) -> list[int]:
        """BFS over neighbor links: the connected visible region of pid."""
        f0 = int(self.facet_of[pid])
        seen = {f0}
        out = [f0]
        stack = [f0]
        while stack:
            f = stack.pop()
            for g in self.nbr[f]:
                if g >= 0 and g not in seen:
                    seen.add(g)
                    if self.visible_one(g, pid):
                        out.append(g)
                        stack.append(g)
        self.stats.facets_touched += len(out)
        return out

    def horizon(self, visible: list[int]) -> list[tuple[int, int, int]]:
        """Ridges (u, v, outside_facet) bounding the visible region.

        (u, v) is ordered as it appears in the *visible* facet, so the
        ridge cycle is consistently oriented.
        """
        vset = set(visible)
        ridges = []
        for f in visible:
            for (u, v), g in zip(self.facet_edges(f), self.nbr[f]):
                if g >= 0 and g not in vset:
                    ridges.append((u, v, g))
        return ridges

    def outside_neighbors(self, visible: list[int]) -> list[int]:
        """Live facets across the horizon (reserved alongside the
        visible set — see DESIGN.md §4)."""
        vset = set(visible)
        out = []
        for f in visible:
            for g in self.nbr[f]:
                if g >= 0 and g not in vset:
                    out.append(g)
        return out

    # ------------------------------------------------------------------
    # structural update
    # ------------------------------------------------------------------
    def assign_points(self, fids: list[int], cand: np.ndarray) -> None:
        """Distribute candidates to their most-visible facet among fids."""
        if len(cand) == 0:
            return
        charge(len(cand) * max(len(fids), 1))
        best_d = np.full(len(cand), self.eps)
        best_f = np.full(len(cand), -1, dtype=np.int64)
        for f in fids:
            d = self.pts[cand] @ self.normal[f] - self.offset[f]
            better = d > best_d
            best_d[better] = d[better]
            best_f[better] = f
        for f in fids:
            mask = best_f == f
            mine = cand[mask]
            old = self.fpts[f]
            self.fpts[f] = np.concatenate([old, mine]) if len(old) else mine
            if len(mine):
                self.facet_of[mine] = f
                j = int(np.argmax(best_d[mask]))
                if best_d[mask][j] > self.far[f][0]:
                    self.far[f] = (float(best_d[mask][j]), int(mine[j]))
        dropped = cand[best_f < 0]
        if len(dropped):
            self.facet_of[dropped] = -1

    def insert_point(self, pid: int, visible: list[int]) -> list[int]:
        """Replace the visible region with a fan of new facets over pid.

        Returns the new facet ids.
        """
        ridges = self.horizon(visible)
        # create the fan
        new_ids = []
        edge_owner: dict[tuple[int, int], int] = {}
        for (u, v, g) in ridges:
            nf = self.new_facet(u, v, pid)
            new_ids.append(nf)
            self.set_neighbor(nf, u, v, g)
            self.set_neighbor(g, u, v, nf)  # overwrite g's link to the dead facet
            # link sibling fan facets across the edges incident to pid
            for w in (u, v):
                key = (min(w, pid), max(w, pid))
                if key in edge_owner:
                    other = edge_owner.pop(key)
                    self.set_neighbor(nf, w, pid, other)
                    self.set_neighbor(other, w, pid, nf)
                else:
                    edge_owner[key] = nf
        if edge_owner:
            raise RuntimeError("horizon did not close; degenerate geometry")

        # kill the old region and gather its conflict points
        parts = []
        for f in visible:
            self.alive[f] = False
            if len(self.fpts[f]):
                parts.append(self.fpts[f])
            self.fpts[f] = np.empty(0, dtype=np.int64)
        if parts:
            cand = np.concatenate(parts)
            cand = cand[cand != pid]
        else:
            cand = np.empty(0, dtype=np.int64)
        self.stats.points_touched += len(cand) + 1
        self.facet_of[pid] = -1
        self.assign_points(new_ids, cand)
        return new_ids

    # ------------------------------------------------------------------
    # output & checks
    # ------------------------------------------------------------------
    def hull_facets(self) -> np.ndarray:
        """(m, 3) vertex-id triangles of the live hull facets."""
        out = [
            (self.va[f], self.vb[f], self.vc[f])
            for f in range(len(self.va))
            if self.alive[f]
        ]
        return np.array(out, dtype=np.int64)

    def hull_vertices(self) -> np.ndarray:
        """Sorted unique vertex ids on the hull."""
        tris = self.hull_facets()
        return np.unique(tris)

    def n_alive_facets(self) -> int:
        return sum(self.alive)

    def check_convex(self, sample: np.ndarray | None = None) -> float:
        """Max signed distance of any point above any live facet
        (<= eps for a correct hull).  Expensive; for tests."""
        cand = sample if sample is not None else np.arange(len(self.pts))
        worst = -np.inf
        for f in range(len(self.va)):
            if not self.alive[f]:
                continue
            d = self.pts[cand] @ self.normal[f] - self.offset[f]
            worst = max(worst, float(d.max()))
        return worst


def build_initial_tetrahedron(pts: np.ndarray) -> FacetHull3D:
    """Initial simplex: extreme pair on x, then line-furthest, then
    plane-furthest; facets oriented against the centroid."""
    n = len(pts)
    if n < 4:
        raise ValueError("need at least 4 points for a 3d hull")
    i0 = int(np.argmin(pts[:, 0]))
    i1 = int(np.argmax(pts[:, 0]))
    if i0 == i1:
        raise ValueError("degenerate input: all x equal")
    a, b = pts[i0], pts[i1]
    ab = b - a
    rel = pts - a
    crossn = np.cross(rel, ab)
    line_d = np.einsum("ij,ij->i", crossn, crossn)
    i2 = int(np.argmax(line_d))
    if line_d[i2] <= 0:
        raise ValueError("degenerate input: all points collinear")
    c = pts[i2]
    nrm = np.cross(ab, c - a)
    plane_d = np.abs(rel @ nrm)
    i3 = int(np.argmax(plane_d))
    if plane_d[i3] <= 0:
        raise ValueError("degenerate input: all points coplanar")

    scale = float(np.max(pts.max(axis=0) - pts.min(axis=0)))
    eps = 1e-12 * max(scale, 1.0)  # absolute distance (unit normals)
    interior = (pts[i0] + pts[i1] + pts[i2] + pts[i3]) / 4.0
    h = FacetHull3D(pts, interior, eps)

    corners = [i0, i1, i2, i3]
    fids = []
    for skip in range(4):
        tri = [corners[j] for j in range(4) if j != skip]
        fids.append(h.new_facet(*tri))
    # wire neighbors by shared edges
    owner: dict[tuple[int, int], list[int]] = {}
    for f in fids:
        for (u, v) in h.facet_edges(f):
            owner.setdefault((min(u, v), max(u, v)), []).append(f)
    for (u, v), fs in owner.items():
        assert len(fs) == 2
        h.set_neighbor(fs[0], u, v, fs[1])
        h.set_neighbor(fs[1], u, v, fs[0])

    cand = np.setdiff1d(np.arange(n, dtype=np.int64), np.array(corners))
    h.assign_points(fids, cand)
    return h
