"""Reservation-based parallel incremental convex hull in R^2 (paper §3).

The hull is a circular doubly-linked list of directed edges (the
"facets" of R^2).  Each candidate point stores a reference to one
visible edge; each edge stores the set of candidate points assigned to
it (the conflict list) and a cached furthest point.  Every round:

1. select a batch Q of visible points — a prefix of the random
   permutation (**randomized incremental** mode) or the per-facet
   furthest points (**quickhull** mode);
2. each q finds its full visible chain by walking left/right from its
   stored edge (the paper's "local BFS");
3. q reserves its visible edges *plus the two horizon-neighbor edges*
   with a priority write (see DESIGN.md §4 — reserving the horizon
   neighbors serializes points whose structural updates would touch a
   common edge, which the visible-only reservation does not);
4. points holding all their reservations win and splice the hull:
   delete the chain, insert edges (u, q), (q, w), and redistribute the
   chain's conflict points onto the two new edges (points visible to
   neither are inside the new hull — Barber et al.'s partitioning
   lemma — and are discarded);
5. pack: drop processed and no-longer-visible points.

``HullStats`` records the Figure 12 instrumentation (points and facets
touched, reservation success counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.points import as_array
from ..parlay.priority_write import NO_RESERVATION
from ..parlay.random import random_permutation
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge

__all__ = ["randinc_hull2d", "reservation_quickhull2d", "HullStats"]


@dataclass
class HullStats:
    """Instrumentation counters (paper Figure 12 / Appendix B)."""

    rounds: int = 0
    points_touched: int = 0
    facets_touched: int = 0
    reservations_attempted: int = 0
    reservations_succeeded: int = 0
    facets_created: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _EdgeHull2D:
    """Mutable 2D hull: edge pool + conflict lists."""

    def __init__(self, pts: np.ndarray):
        self.pts = pts
        self.eu: list[int] = []
        self.ev: list[int] = []
        self.enext: list[int] = []
        self.eprev: list[int] = []
        self.alive: list[bool] = []
        self.epts: list[np.ndarray] = []  # conflict point ids per edge
        self.far: list[tuple[float, int]] = []  # cached (dist, pid)
        self.reservation: list[int] = []
        self.facet_of = np.full(len(pts), -1, dtype=np.int64)
        self.stats = HullStats()

    # -- edge pool ---------------------------------------------------------
    def new_edge(self, u: int, v: int) -> int:
        eid = len(self.eu)
        self.eu.append(u)
        self.ev.append(v)
        self.enext.append(-1)
        self.eprev.append(-1)
        self.alive.append(True)
        self.epts.append(np.empty(0, dtype=np.int64))
        self.far.append((0.0, -1))
        self.reservation.append(NO_RESERVATION)
        self.stats.facets_created += 1
        return eid

    def vis_dist(self, eid: int, cand: np.ndarray) -> np.ndarray:
        """Visibility distance of candidates from edge ``eid``.

        The hull is ccw, so a point is outside (sees the edge) iff it is
        strictly *right* of the directed edge; we return the negated
        cross product, positive iff visible, and proportional to the
        distance from the edge's line.
        """
        charge(max(len(cand), 1))
        a = self.pts[self.eu[eid]]
        b = self.pts[self.ev[eid]]
        p = self.pts[cand]
        return (b[1] - a[1]) * (p[:, 0] - a[0]) - (b[0] - a[0]) * (p[:, 1] - a[1])

    def visible_one(self, eid: int, pid: int) -> bool:
        a = self.pts[self.eu[eid]]
        b = self.pts[self.ev[eid]]
        p = self.pts[pid]
        charge(1, 1)
        return (b[1] - a[1]) * (p[0] - a[0]) - (b[0] - a[0]) * (p[1] - a[1]) > 0

    def assign_points(self, eids: list[int], cand: np.ndarray) -> None:
        """Distribute candidate points to their first visible edge."""
        if len(cand) == 0:
            for e in eids:
                self.epts[e] = np.empty(0, dtype=np.int64)
            return
        remaining = cand
        for e in eids:
            if len(remaining) == 0:
                self.epts[e] = np.empty(0, dtype=np.int64)
                self.far[e] = (0.0, -1)
                continue
            dv = self.vis_dist(e, remaining)
            vis = dv > 0
            mine = remaining[vis]
            self.epts[e] = mine
            if len(mine):
                j = int(np.argmax(dv[vis]))
                self.far[e] = (float(dv[vis][j]), int(mine[j]))
                self.facet_of[mine] = e
            else:
                self.far[e] = (0.0, -1)
            remaining = remaining[~vis]
        # whatever is left is inside the hull w.r.t. these edges
        if len(remaining):
            self.facet_of[remaining] = -1

    # -- visible chain ---------------------------------------------------------
    def visible_chain(self, pid: int) -> list[int]:
        """All edges visible from pid, walking from its stored edge."""
        e0 = int(self.facet_of[pid])
        chain = [e0]
        # walk backward
        e = self.eprev[e0]
        while e != e0 and self.visible_one(e, pid):
            chain.append(e)
            e = self.eprev[e]
        chain.reverse()
        # walk forward
        e = self.enext[e0]
        while e != chain[0] and self.visible_one(e, pid):
            chain.append(e)
            e = self.enext[e]
        self.stats.facets_touched += len(chain)
        return chain

    # -- structural update ---------------------------------------------------------
    def insert_point(self, pid: int, chain: list[int]) -> None:
        """Splice pid into the hull, replacing its visible chain."""
        left = self.eprev[chain[0]]
        right = self.enext[chain[-1]]
        u = self.eu[chain[0]]
        w = self.ev[chain[-1]]
        ea = self.new_edge(u, pid)
        eb = self.new_edge(pid, w)
        self.enext[left] = ea
        self.eprev[ea] = left
        self.enext[ea] = eb
        self.eprev[eb] = ea
        self.enext[eb] = right
        self.eprev[right] = eb

        cand_parts = []
        for e in chain:
            self.alive[e] = False
            if len(self.epts[e]):
                cand_parts.append(self.epts[e])
            self.epts[e] = np.empty(0, dtype=np.int64)
        if cand_parts:
            cand = np.concatenate(cand_parts)
            cand = cand[cand != pid]
        else:
            cand = np.empty(0, dtype=np.int64)
        self.stats.points_touched += len(cand) + 1
        self.assign_points([ea, eb], cand)
        self.facet_of[pid] = -1

    def hull_indices(self) -> np.ndarray:
        """Hull vertex ids in ccw order."""
        start = next(e for e in range(len(self.eu)) if self.alive[e])
        out = [self.eu[start]]
        e = self.enext[start]
        while e != start:
            out.append(self.eu[e])
            e = self.enext[e]
        return np.array(out, dtype=np.int64)


def _init_hull(pts: np.ndarray) -> tuple[_EdgeHull2D, np.ndarray]:
    """Build the initial triangle and assign conflict points."""
    n = len(pts)
    lex = np.lexsort((pts[:, 1], pts[:, 0]))
    ia, ib = int(lex[0]), int(lex[-1])
    a, b = pts[ia], pts[ib]
    cr = (b[0] - a[0]) * (pts[:, 1] - a[1]) - (b[1] - a[1]) * (pts[:, 0] - a[0])
    ic = int(np.argmax(np.abs(cr)))
    if cr[ic] == 0:
        raise ValueError("all points are collinear; 2d hull is degenerate")
    if cr[ic] < 0:
        ia, ib = ib, ia  # make (ia, ib, ic) ccw
    h = _EdgeHull2D(pts)
    e0 = h.new_edge(ia, ib)
    e1 = h.new_edge(ib, ic)
    e2 = h.new_edge(ic, ia)
    for x, y in ((e0, e1), (e1, e2), (e2, e0)):
        h.enext[x] = y
        h.eprev[y] = x
    cand = np.setdiff1d(np.arange(n, dtype=np.int64), np.array([ia, ib, ic]))
    h.assign_points([e0, e1, e2], cand)
    live = cand[h.facet_of[cand] >= 0]
    return h, live


def _run_rounds(
    h: _EdgeHull2D,
    select: "callable",
    batch: int,
) -> None:
    """Shared round loop: select, reserve, check, process, pack."""
    sched = get_scheduler()
    while True:
        q_ids, prios = select(batch)
        if len(q_ids) == 0:
            break
        h.stats.rounds += 1
        # 1. gather visible chains (parallel read-only phase)
        chains = sched.map_tasks(lambda q: h.visible_chain(int(q)), q_ids)

        # 2. reservation: write_min priority into visible + horizon edges
        reserve_sets = []
        touched: list[int] = []
        for chain in chains:
            rs = [h.eprev[chain[0]], *chain, h.enext[chain[-1]]]
            reserve_sets.append(rs)
            touched.extend(rs)
        for rs, prio in zip(reserve_sets, prios):
            h.stats.reservations_attempted += 1
            charge(len(rs), 1)
            for e in rs:
                if prio < h.reservation[e]:
                    h.reservation[e] = int(prio)

        # 3. check reservations
        winners = []
        for qi, (rs, prio) in enumerate(zip(reserve_sets, prios)):
            charge(len(rs), 1)
            if all(h.reservation[e] == prio for e in rs):
                winners.append(qi)
                h.stats.reservations_succeeded += 1

        # 4. process winners (disjoint chains -> safe in parallel)
        for qi in winners:
            h.insert_point(int(q_ids[qi]), chains[qi])

        # 5. clear reservations on touched edges
        for e in touched:
            h.reservation[e] = NO_RESERVATION


def randinc_hull2d(points, batch: int | None = None, seed: int = 0):
    """Parallel randomized incremental 2D hull (reservation-based).

    Returns (hull_indices_ccw, HullStats).
    """
    pts = as_array(points)
    if pts.shape[1] != 2:
        raise ValueError("requires 2-dimensional points")
    sched = get_scheduler()
    if batch is None:
        batch = max(4, 4 * sched.workers)

    perm = random_permutation(len(pts), seed=seed)
    rank = np.empty(len(pts), dtype=np.int64)
    rank[perm] = np.arange(len(pts))

    h, live = _init_hull(pts)
    # pending points ordered by permutation rank
    pending = live[np.argsort(rank[live], kind="stable")]
    state = {"pending": pending}

    def select(r: int):
        # pack: drop points no longer visible
        p = state["pending"]
        p = p[h.facet_of[p] >= 0]
        charge(max(len(p), 1))
        state["pending"] = p  # losers stay pending; winners drop via facet_of
        q = p[:r]
        return q, rank[q]

    _run_rounds(h, select, batch)
    return h.hull_indices(), h.stats


def reservation_quickhull2d(points, batch: int | None = None):
    """Parallel quickhull via reservations: each round processes the
    points furthest from their facets (paper §3 / Appendix A).

    Returns (hull_indices_ccw, HullStats).
    """
    pts = as_array(points)
    if pts.shape[1] != 2:
        raise ValueError("requires 2-dimensional points")
    sched = get_scheduler()
    if batch is None:
        batch = max(4, 4 * sched.workers)

    h, _live = _init_hull(pts)

    def select(r: int):
        # furthest point of each live facet with conflicts, best-first
        cands: dict[int, float] = {}
        charge(max(len(h.eu), 1))
        for e in range(len(h.eu)):
            if h.alive[e] and h.far[e][1] >= 0:
                d, pid = h.far[e]
                if pid not in cands or d > cands[pid]:
                    cands[pid] = d
        if not cands:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        items = sorted(cands.items(), key=lambda kv: (-kv[1], kv[0]))[:r]
        q = np.array([pid for pid, _ in items], dtype=np.int64)
        # priority = round-local rank (furthest first), globally unique
        # via the point id tiebreak baked into the ordering
        prios = np.arange(len(q), dtype=np.int64)
        return q, prios

    _run_rounds(h, select, batch)
    return h.hull_indices(), h.stats
