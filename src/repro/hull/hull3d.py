"""3D convex hull algorithms (paper §3).

* ``quickhull3d_seq`` — optimized sequential quickhull (the baseline of
  Figure 12's overhead comparison).
* ``randinc_hull3d`` — parallel reservation-based randomized incremental
  algorithm (paper Fig. 5 + Appendix A).
* ``reservation_quickhull3d`` — parallel reservation-based quickhull
  (furthest-point batch selection).
* ``pseudohull_prune`` / ``pseudo_hull3d`` — Tang et al.-style point
  culling followed by reservation quickhull (the "Pseudo" series of
  Figure 9).
* ``divide_conquer_3d`` — block decomposition, sequential quickhull per
  block in parallel, reservation quickhull on the collected vertices.

All return ``(hull_vertex_ids, HullStats)`` unless noted; facet output
is available via ``*_facets`` variants.
"""

from __future__ import annotations

import numpy as np

from ..core.points import as_array
from ..parlay.priority_write import NO_RESERVATION
from ..parlay.random import random_permutation
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge, frame, parallel_merge
from .facets3d import FacetHull3D, build_initial_tetrahedron
from .incremental2d import HullStats

__all__ = [
    "quickhull3d_seq",
    "randinc_hull3d",
    "reservation_quickhull3d",
    "pseudohull_prune",
    "pseudo_hull3d",
    "divide_conquer_3d",
    "hull3d_facets",
]

#: Below this many live facets we fall back to one point per round
#: (Appendix B: little parallelism to exploit, avoid contention).
_LOW_FACET_THRESHOLD = 8


def _check_input(points) -> np.ndarray:
    pts = as_array(points)
    if pts.shape[1] != 3:
        raise ValueError("requires 3-dimensional points")
    return pts


# ---------------------------------------------------------------------------
# sequential quickhull
# ---------------------------------------------------------------------------


def quickhull3d_seq(points) -> tuple[np.ndarray, HullStats]:
    """Sequential quickhull: repeatedly insert the furthest conflict
    point of some facet (no reservations)."""
    pts = _check_input(points)
    h = build_initial_tetrahedron(pts)
    active = [f for f in range(len(h.va)) if h.far[f][1] >= 0]
    while active:
        f = active.pop()
        if not h.alive[f] or h.far[f][1] < 0:
            continue
        pid = h.far[f][1]
        if h.facet_of[pid] < 0:  # stale cache: point was consumed
            d, j = _refresh_far(h, f)
            if j < 0:
                continue
            pid = j
        h.stats.rounds += 1
        vis = h.visible_set(pid)
        new_ids = h.insert_point(pid, vis)
        active.extend(nf for nf in new_ids if h.far[nf][1] >= 0)
    return h.hull_vertices(), h.stats


def _refresh_far(h: FacetHull3D, f: int):
    ids = h.fpts[f]
    ids = ids[h.facet_of[ids] == f]
    h.fpts[f] = ids
    if len(ids) == 0:
        h.far[f] = (0.0, -1)
        return 0.0, -1
    d = h.dists(f, ids)
    j = int(np.argmax(d))
    h.far[f] = (float(d[j]), int(ids[j]))
    return h.far[f]


# ---------------------------------------------------------------------------
# reservation-based round loop (Fig. 5)
# ---------------------------------------------------------------------------


def _run_rounds_3d(h: FacetHull3D, select, batch: int) -> None:
    sched = get_scheduler()
    while True:
        # Appendix B: low facet count -> single point per round, chosen
        # from the facet with the most conflict points
        r = batch if h.n_alive_facets() >= _LOW_FACET_THRESHOLD else 1
        q_ids, prios = select(r)
        if len(q_ids) == 0:
            break
        h.stats.rounds += 1

        # phase 1: find visible regions (parallel, read-only)
        vis_sets = sched.map_tasks(lambda q: h.visible_set(int(q)), q_ids)

        # phase 2: reserve visible facets + horizon neighbors (WriteMin)
        reserve_sets = []
        touched: list[int] = []
        for vis in vis_sets:
            rs = vis + h.outside_neighbors(vis)
            reserve_sets.append(rs)
            touched.extend(rs)
        for rs, prio in zip(reserve_sets, prios):
            h.stats.reservations_attempted += 1
            charge(len(rs), 1)
            for f in rs:
                if prio < h.reservation[f]:
                    h.reservation[f] = int(prio)

        # phase 3: check reservations
        winners = []
        for qi, (rs, prio) in enumerate(zip(reserve_sets, prios)):
            charge(len(rs), 1)
            if all(h.reservation[f] == prio for f in rs):
                winners.append(qi)
                h.stats.reservations_succeeded += 1

        # phase 4: process winners — their facet sets are disjoint, so
        # this is a parallel step; costs merge as sum-work/max-depth
        costs = []
        for qi in winners:
            with frame() as c:
                h.insert_point(int(q_ids[qi]), vis_sets[qi])
            costs.append(c)
        parallel_merge(costs, fanout=max(len(winners), 1))

        # phase 5: clear reservations
        for f in touched:
            h.reservation[f] = NO_RESERVATION


def randinc_hull3d(points, batch: int | None = None, seed: int = 0) -> tuple[np.ndarray, HullStats]:
    """Parallel randomized incremental 3D hull (reservation-based)."""
    pts = _check_input(points)
    sched = get_scheduler()
    if batch is None:
        batch = max(4, 4 * sched.workers)
    h = build_initial_tetrahedron(pts)

    perm = random_permutation(len(pts), seed=seed)
    rank = np.empty(len(pts), dtype=np.int64)
    rank[perm] = np.arange(len(pts))
    live = np.flatnonzero(h.facet_of >= 0).astype(np.int64)
    pending = live[np.argsort(rank[live], kind="stable")]
    state = {"pending": pending}

    def select(r: int):
        p = state["pending"]
        p = p[h.facet_of[p] >= 0]
        charge(max(len(p), 1))
        state["pending"] = p
        q = p[:r]
        return q, rank[q]

    _run_rounds_3d(h, select, batch)
    return h.hull_vertices(), h.stats


def reservation_quickhull3d(points, batch: int | None = None) -> tuple[np.ndarray, HullStats]:
    """Parallel reservation-based quickhull for R^3."""
    pts = _check_input(points)
    sched = get_scheduler()
    if batch is None:
        batch = max(4, 4 * sched.workers)
    h = build_initial_tetrahedron(pts)

    def select(r: int):
        cands: dict[int, float] = {}
        counts: dict[int, int] = {}
        charge(max(len(h.va), 1))
        for f in range(len(h.va)):
            if h.alive[f] and h.far[f][1] >= 0:
                d, pid = h.far[f]
                if h.facet_of[pid] < 0:
                    d, pid = _refresh_far(h, f)
                    if pid < 0:
                        continue
                if pid not in cands or d > cands[pid]:
                    cands[pid] = d
                counts[pid] = counts.get(pid, 0) + len(h.fpts[f])
        if not cands:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        if r == 1:
            # low-facet fallback: the point whose facet sees the most
            # conflict points (maximizes hull volume growth, App. B)
            best = max(counts.items(), key=lambda kv: (kv[1], cands[kv[0]]))[0]
            return np.array([best], dtype=np.int64), np.zeros(1, dtype=np.int64)
        items = sorted(cands.items(), key=lambda kv: (-kv[1], kv[0]))[:r]
        q = np.array([pid for pid, _ in items], dtype=np.int64)
        prios = np.arange(len(q), dtype=np.int64)
        return q, prios

    _run_rounds_3d(h, select, batch)
    return h.hull_vertices(), h.stats


# ---------------------------------------------------------------------------
# pseudohull culling (Tang et al. variant)
# ---------------------------------------------------------------------------


def pseudohull_prune(points, threshold: int = 64) -> np.ndarray:
    """Cull interior points with a recursively grown pseudohull.

    Starting from the initial tetrahedron, each facet grows toward its
    furthest visible point, splitting into three; points interior to the
    growing polyhedron are dropped.  Growth stops when a facet has at
    most ``threshold`` points (prevents deep recursion on skewed data —
    the paper's modification of Tang et al.).  Recursive calls on
    different facets run asynchronously in parallel.

    Returns the ids of surviving candidate points (superset of the hull
    vertices).
    """
    pts = _check_input(points)
    n = len(pts)
    if n <= 4:
        return np.arange(n, dtype=np.int64)
    i0 = int(np.argmin(pts[:, 0]))
    i1 = int(np.argmax(pts[:, 0]))
    rel = pts - pts[i0]
    ab = pts[i1] - pts[i0]
    cr = np.cross(rel, ab)
    i2 = int(np.argmax(np.einsum("ij,ij->i", cr, cr)))
    nrm = np.cross(ab, pts[i2] - pts[i0])
    i3 = int(np.argmax(np.abs(rel @ nrm)))
    corners = {i0, i1, i2, i3}
    interior = (pts[i0] + pts[i1] + pts[i2] + pts[i3]) / 4.0

    survivors: list[np.ndarray] = [np.fromiter(corners, dtype=np.int64)]
    sched = get_scheduler()
    scale = float(np.max(pts.max(axis=0) - pts.min(axis=0)))
    eps = 1e-12 * max(scale, 1.0)

    def facet_points(a: int, b: int, c: int, cand: np.ndarray) -> np.ndarray:
        pa = pts[a]
        nn = np.cross(pts[b] - pa, pts[c] - pa)
        nrm = float(np.linalg.norm(nn))
        if nrm > 0:
            nn = nn / nrm
        off = float(nn @ pa)
        if nn @ interior > off:
            nn = -nn
            off = float(nn @ pa)
        charge(max(len(cand), 1))
        d = pts[cand] @ nn - off
        return cand[d > eps], d[d > eps]

    def grow(a: int, b: int, c: int, cand: np.ndarray, dvals: np.ndarray) -> None:
        """Grow facet (a,b,c) toward its furthest visible point."""
        if len(cand) == 0:
            return
        if len(cand) <= threshold:
            survivors.append(cand)
            return
        j = int(np.argmax(dvals))  # parallel max-finding in the paper
        p = int(cand[j])
        survivors.append(np.array([p], dtype=np.int64))
        rest = np.delete(cand, j)
        tasks = []
        for (x, y) in ((a, b), (b, c), (c, a)):
            sub, d = facet_points(x, y, p, rest)
            if len(sub):
                tasks.append((x, y, p, sub, d))
        if len(tasks) > 1 and len(cand) > 4096:
            sched.parallel_do([(lambda t=t: grow(*t)) for t in tasks])
        else:
            for t in tasks:
                grow(*t)

    corner_list = [i0, i1, i2, i3]
    cand0 = np.setdiff1d(np.arange(n, dtype=np.int64), np.array(corner_list))
    top_tasks = []
    for skip in range(4):
        tri = [corner_list[j] for j in range(4) if j != skip]
        sub, d = facet_points(tri[0], tri[1], tri[2], cand0)
        if len(sub):
            top_tasks.append((tri[0], tri[1], tri[2], sub, d))
    sched.parallel_do([(lambda t=t: grow(*t)) for t in top_tasks])
    return np.unique(np.concatenate(survivors))


def pseudo_hull3d(points, threshold: int = 64, batch: int | None = None) -> tuple[np.ndarray, HullStats]:
    """Pseudohull culling + reservation quickhull on the survivors."""
    pts = _check_input(points)
    keep = pseudohull_prune(pts, threshold=threshold)
    sub, stats = reservation_quickhull3d(pts[keep], batch=batch)
    return keep[sub], stats


# ---------------------------------------------------------------------------
# divide and conquer
# ---------------------------------------------------------------------------


def divide_conquer_3d(
    points, c: int = 2, batch: int | None = None, nblocks: int | None = None
) -> tuple[np.ndarray, HullStats]:
    """Split into ``c * numProc`` blocks; sequential quickhull per block
    (in parallel); reservation quickhull over collected vertices.

    ``numProc`` defaults to the simulated target machine (36h cores).
    """
    from ..bench.harness import PAPER_CORES

    pts = _check_input(points)
    n = len(pts)
    sched = get_scheduler()
    if nblocks is None:
        nblocks = c * max(sched.workers, int(PAPER_CORES))
    nblocks = max(1, min(nblocks, n // 64 or 1))
    if nblocks <= 1 or n < 4096:
        return reservation_quickhull3d(pts, batch=batch)

    bounds = [(n * b // nblocks, n * (b + 1) // nblocks) for b in range(nblocks)]

    def solve_block(b: int):
        lo, hi = bounds[b]
        sub, _ = quickhull3d_seq(pts[lo:hi])
        return sub + lo

    subs = sched.parallel_do([(lambda b=b: solve_block(b)) for b in range(nblocks)])
    cand = np.concatenate(subs)
    final_local, stats = reservation_quickhull3d(pts[cand], batch=batch)
    return cand[final_local], stats


def hull3d_facets(points) -> np.ndarray:
    """Convenience: (m, 3) triangle facets of the hull (via quickhull)."""
    pts = _check_input(points)
    h = build_initial_tetrahedron(pts)
    active = [f for f in range(len(h.va)) if h.far[f][1] >= 0]
    while active:
        f = active.pop()
        if not h.alive[f] or h.far[f][1] < 0:
            continue
        pid = h.far[f][1]
        if h.facet_of[pid] < 0:
            d, j = _refresh_far(h, f)
            if j < 0:
                continue
            pid = j
        vis = h.visible_set(pid)
        new_ids = h.insert_point(pid, vis)
        active.extend(nf for nf in new_ids if h.far[nf][1] >= 0)
    return h.hull_facets()
