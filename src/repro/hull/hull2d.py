"""2D convex hull: sequential and parallel quickhull, divide-and-conquer.

``quickhull2d_seq`` is the optimized sequential baseline (vectorized
orientation filtering, recursion on the surviving candidates only).
``quickhull2d_parallel`` is the PBBS-style recursive parallel quickhull
the paper uses for R^2 (fork-join on the two subproblems, data-parallel
filtering).  ``divide_conquer_2d`` implements the paper's §3 strategy:
split into ``c * numProc`` equal subsets, sequential quickhull on each
in parallel, then a final hull over the collected subproblem vertices.

All functions return the hull as **indices into the input array, in
counter-clockwise order** starting from the lexicographically smallest
point.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.points import as_array
from ..obs.span import span
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge

__all__ = ["quickhull2d_seq", "quickhull2d_parallel", "divide_conquer_2d"]

_PAR_CUTOFF = 4096


def _cross_batch(pts: np.ndarray, a: np.ndarray, b: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Signed area of (a, b, pts[idx]) — positive = left of a->b."""
    charge(max(len(idx), 1))
    p = pts[idx]
    return (b[0] - a[0]) * (p[:, 1] - a[1]) - (b[1] - a[1]) * (p[:, 0] - a[0])


def _qh_rec(
    pts: np.ndarray,
    ia: int,
    ib: int,
    idx: np.ndarray,
    out: list,
    parallel: bool,
) -> None:
    """Hull points strictly left of a->b among ``idx``, appended between
    a and b (a exclusive, b exclusive), in ccw order, into ``out``."""
    if len(idx) == 0:
        return
    a, b = pts[ia], pts[ib]
    cr = _cross_batch(pts, a, b, idx)
    # furthest point from the line a-b (max cross = max distance)
    fi = int(np.argmax(cr))
    charge(max(len(idx), 1))
    if cr[fi] <= 0:
        return
    ic = int(idx[fi])
    c = pts[ic]
    # candidates for (a, c): strictly left of a->c; similarly (c, b)
    left_ac = idx[_cross_batch(pts, a, c, idx) > 0]
    left_cb = idx[_cross_batch(pts, c, b, idx) > 0]

    if parallel and len(idx) > _PAR_CUTOFF:
        sched = get_scheduler()
        out1: list = []
        out2: list = []
        sched.parallel_do(
            [
                lambda: _qh_rec(pts, ia, ic, left_ac, out1, parallel),
                lambda: _qh_rec(pts, ic, ib, left_cb, out2, parallel),
            ]
        )
        out.extend(out1)
        out.append(ic)
        out.extend(out2)
    else:
        _qh_rec(pts, ia, ic, left_ac, out, parallel)
        out.append(ic)
        _qh_rec(pts, ic, ib, left_cb, out, parallel)


def _quickhull2d(points, parallel: bool) -> np.ndarray:
    pts = as_array(points)
    if pts.shape[1] != 2:
        raise ValueError("quickhull2d requires 2-dimensional points")
    n = len(pts)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    with span("hull2d.partition", batch=n):
        # extreme points by lexicographic order (breaks ties deterministically)
        charge(n, math.log2(max(n, 2)))
        lex = np.lexsort((pts[:, 1], pts[:, 0]))
        il, ir = int(lex[0]), int(lex[-1])
        if il == ir or np.all(pts[il] == pts[ir]):
            return np.array([il], dtype=np.int64)

        idx = np.arange(n, dtype=np.int64)
        a, b = pts[il], pts[ir]
        cr = _cross_batch(pts, a, b, idx)
        upper = idx[cr > 0]
        lower = idx[cr < 0]

    out_up: list = []
    out_lo: list = []
    with span("hull2d.recurse", batch=len(upper) + len(lower)):
        if parallel and n > _PAR_CUTOFF:
            get_scheduler().parallel_do(
                [
                    lambda: _qh_rec(pts, il, ir, upper, out_up, True),
                    lambda: _qh_rec(pts, ir, il, lower, out_lo, True),
                ]
            )
        else:
            _qh_rec(pts, il, ir, upper, out_up, parallel)
            _qh_rec(pts, ir, il, lower, out_lo, parallel)
    # _qh_rec(a, b, ...) emits the chain of points left of a->b in a->b
    # order; out_up runs il->ir above the line, out_lo runs ir->il below.
    # CCW traversal = il, lower chain left-to-right, ir, upper chain
    # right-to-left.
    hull = [il] + out_lo[::-1] + [ir] + out_up[::-1]
    return np.array(hull, dtype=np.int64)


def quickhull2d_seq(points) -> np.ndarray:
    """Optimized sequential quickhull (the CGAL/Qhull-role baseline)."""
    return _quickhull2d(points, parallel=False)


def quickhull2d_parallel(points) -> np.ndarray:
    """PBBS-style recursive parallel quickhull for R^2."""
    return _quickhull2d(points, parallel=True)


def divide_conquer_2d(points, c: int = 2, nblocks: int | None = None) -> np.ndarray:
    """Divide-and-conquer hull (paper §3): ``c * numProc`` blocks, each
    solved sequentially in parallel; final hull over collected vertices.

    ``numProc`` defaults to the simulated target machine (36h cores) so
    the block decomposition matches the paper's; execution interleaves
    the blocks on however many real workers exist.
    """
    from ..bench.harness import PAPER_CORES

    pts = as_array(points)
    n = len(pts)
    sched = get_scheduler()
    if nblocks is None:
        nblocks = c * max(sched.workers, int(PAPER_CORES))
    nblocks = max(1, min(nblocks, n // 32 or 1))
    if nblocks <= 1 or n < 2 * _PAR_CUTOFF:
        return quickhull2d_parallel(pts)

    bounds = [(n * b // nblocks, n * (b + 1) // nblocks) for b in range(nblocks)]

    def solve_block(b: int):
        lo, hi = bounds[b]
        sub = quickhull2d_seq(pts[lo:hi])
        return sub + lo

    with span("hull2d.blocks", batch=nblocks):
        subs = sched.parallel_do(
            [(lambda b=b: solve_block(b)) for b in range(nblocks)]
        )
        cand = np.concatenate(subs)
    with span("hull2d.final", batch=len(cand)):
        final_local = quickhull2d_parallel(pts[cand])
    return cand[final_local]
