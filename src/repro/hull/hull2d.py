"""2D convex hull: sequential and parallel quickhull, divide-and-conquer.

``quickhull2d_seq`` is the optimized sequential baseline (vectorized
orientation filtering, recursion on the surviving candidates only).
``quickhull2d_parallel`` is the PBBS-style recursive parallel quickhull
the paper uses for R^2 (fork-join on the two subproblems, data-parallel
filtering).  ``divide_conquer_2d`` implements the paper's §3 strategy:
split into ``c * numProc`` equal subsets, sequential quickhull on each
in parallel, then a final hull over the collected subproblem vertices.

All functions return the hull as **indices into the input array, in
counter-clockwise order** starting from the lexicographically smallest
point.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.points import as_array
from ..obs.span import span
from ..parlay.scheduler import get_scheduler
from ..parlay.workdepth import charge
from .filter import at_filter, resolve_prefilter

__all__ = ["quickhull2d_seq", "quickhull2d_parallel", "divide_conquer_2d"]

_PAR_CUTOFF = 4096


def _cross_batch(pts: np.ndarray, a: np.ndarray, b: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Signed area of (a, b, pts[idx]) — positive = left of a->b."""
    charge(max(len(idx), 1))
    p = pts[idx]
    return (b[0] - a[0]) * (p[:, 1] - a[1]) - (b[1] - a[1]) * (p[:, 0] - a[0])


def _qh_rec(
    pts: np.ndarray,
    ia: int,
    ib: int,
    idx: np.ndarray,
    out: list,
    parallel: bool,
    cr: np.ndarray | None = None,
) -> None:
    """Hull points strictly left of a->b among ``idx``, appended between
    a and b (a exclusive, b exclusive), in ccw order, into ``out``.

    ``cr`` optionally carries the cross products of ``pts[idx]`` against
    a->b, already computed by the caller's partition pass — the values
    are bitwise-identical to recomputing them, so passing them down
    saves one O(|idx|) pass per recursion level.
    """
    if len(idx) == 0:
        return
    a, b = pts[ia], pts[ib]
    if cr is None:
        cr = _cross_batch(pts, a, b, idx)
    # furthest point from the line a-b (max cross = max distance)
    fi = int(np.argmax(cr))
    charge(max(len(idx), 1))
    if cr[fi] <= 0:
        return
    ic = int(idx[fi])
    c = pts[ic]
    # fused partition kernel: one gather of pts[idx], both child edges'
    # cross products in the same pass (same expressions as _cross_batch,
    # so the children receive bitwise-identical values)
    charge(max(len(idx), 1))
    p = pts[idx]
    px = p[:, 0]
    py = p[:, 1]
    cr_ac = (c[0] - a[0]) * (py - a[1]) - (c[1] - a[1]) * (px - a[0])
    cr_cb = (b[0] - c[0]) * (py - c[1]) - (b[1] - c[1]) * (px - c[0])
    mask_ac = cr_ac > 0
    mask_cb = cr_cb > 0
    left_ac = idx[mask_ac]
    left_cb = idx[mask_cb]
    cr_ac = cr_ac[mask_ac]
    cr_cb = cr_cb[mask_cb]

    if parallel and len(idx) > _PAR_CUTOFF:
        sched = get_scheduler()
        out1: list = []
        out2: list = []
        sched.parallel_do(
            [
                lambda: _qh_rec(pts, ia, ic, left_ac, out1, parallel, cr_ac),
                lambda: _qh_rec(pts, ic, ib, left_cb, out2, parallel, cr_cb),
            ]
        )
        out.extend(out1)
        out.append(ic)
        out.extend(out2)
    else:
        _qh_rec(pts, ia, ic, left_ac, out, parallel, cr_ac)
        out.append(ic)
        _qh_rec(pts, ic, ib, left_cb, out, parallel, cr_cb)


def _quickhull2d(points, parallel: bool, prefilter: bool | None = None) -> np.ndarray:
    pts = as_array(points)
    if pts.shape[1] != 2:
        raise ValueError("quickhull2d requires 2-dimensional points")
    n = len(pts)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    # Akl–Toussaint filter-first: eliminate certainly-interior points
    # before quickhull sees them.  Kept points preserve their relative
    # order and every possible hull point survives, so the result is
    # bitwise-identical to the unfiltered run (only cheaper).
    if resolve_prefilter(prefilter) and n >= 3:
        keep = at_filter(pts)
        if not keep.all():
            sub = np.flatnonzero(keep)
            local = _quickhull2d(pts[sub], parallel, prefilter=False)
            return sub[local]

    with span("hull2d.partition", batch=n):
        # extreme points by lexicographic order (breaks ties deterministically)
        charge(n, math.log2(max(n, 2)))
        lex = np.lexsort((pts[:, 1], pts[:, 0]))
        il, ir = int(lex[0]), int(lex[-1])
        if il == ir or np.all(pts[il] == pts[ir]):
            return np.array([il], dtype=np.int64)

        idx = np.arange(n, dtype=np.int64)
        a, b = pts[il], pts[ir]
        cr = _cross_batch(pts, a, b, idx)
        upper = idx[cr > 0]
        cr_up = cr[cr > 0]  # reused by the upper chain's root call
        lower = idx[cr < 0]

    out_up: list = []
    out_lo: list = []
    with span("hull2d.recurse", batch=len(upper) + len(lower)):
        if parallel and n > _PAR_CUTOFF:
            get_scheduler().parallel_do(
                [
                    lambda: _qh_rec(pts, il, ir, upper, out_up, True, cr_up),
                    lambda: _qh_rec(pts, ir, il, lower, out_lo, True),
                ]
            )
        else:
            _qh_rec(pts, il, ir, upper, out_up, parallel, cr_up)
            _qh_rec(pts, ir, il, lower, out_lo, parallel)
    # _qh_rec(a, b, ...) emits the chain of points left of a->b in a->b
    # order; out_up runs il->ir above the line, out_lo runs ir->il below.
    # CCW traversal = il, lower chain left-to-right, ir, upper chain
    # right-to-left.
    hull = [il] + out_lo[::-1] + [ir] + out_up[::-1]
    return np.array(hull, dtype=np.int64)


def quickhull2d_seq(points, prefilter: bool | None = None) -> np.ndarray:
    """Optimized sequential quickhull (the CGAL/Qhull-role baseline).

    ``prefilter`` toggles the Akl–Toussaint interior-elimination pass
    (default ``REPRO_HULL_FILTER``, on); the result is identical either
    way.
    """
    return _quickhull2d(points, parallel=False, prefilter=prefilter)


def quickhull2d_parallel(points, prefilter: bool | None = None) -> np.ndarray:
    """PBBS-style recursive parallel quickhull for R^2."""
    return _quickhull2d(points, parallel=True, prefilter=prefilter)


def divide_conquer_2d(points, c: int = 2, nblocks: int | None = None) -> np.ndarray:
    """Divide-and-conquer hull (paper §3): ``c * numProc`` blocks, each
    solved sequentially in parallel; final hull over collected vertices.

    ``numProc`` defaults to the simulated target machine (36h cores) so
    the block decomposition matches the paper's; execution interleaves
    the blocks on however many real workers exist.
    """
    from ..bench.harness import PAPER_CORES

    pts = as_array(points)
    n = len(pts)
    sched = get_scheduler()
    if nblocks is None:
        nblocks = c * max(sched.workers, int(PAPER_CORES))
    nblocks = max(1, min(nblocks, n // 32 or 1))
    if nblocks <= 1 or n < 2 * _PAR_CUTOFF:
        return quickhull2d_parallel(pts)

    bounds = [(n * b // nblocks, n * (b + 1) // nblocks) for b in range(nblocks)]

    # The block decomposition IS this algorithm's interior filter (each
    # block's hull discards its interior before the final merge), so the
    # Akl–Toussaint prefilter stays off here: running it per block would
    # shrink the per-block work the paper's §3 cost analysis is about
    # without touching the answer.
    def solve_block(b: int):
        lo, hi = bounds[b]
        sub = quickhull2d_seq(pts[lo:hi], prefilter=False)
        return sub + lo

    with span("hull2d.blocks", batch=nblocks):
        subs = sched.parallel_do(
            [(lambda b=b: solve_block(b)) for b in range(nblocks)]
        )
        cand = np.concatenate(subs)
    with span("hull2d.final", batch=len(cand)):
        final_local = quickhull2d_parallel(pts[cand], prefilter=False)
    return cand[final_local]
