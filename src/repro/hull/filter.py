"""Akl–Toussaint interior-point elimination for 2D hulls.

The classic filter-first heuristic: the extreme points in eight
directions (±x, ±y, ±(x+y), ±(x−y)) are hull vertices, and any point
strictly inside the polygon they span is strictly inside the hull —
eliminating it can never change the answer.  On typical inputs the
polygon swallows the vast majority of points, so quickhull only sees a
thin annulus (the GPU-filtering and VQhull studies both find this step
dominates 2D hull cost).

**Exactness.**  Hull algorithms here break ties by index order, so the
filter must never discard a point the unfiltered run could output.  A
point is eliminated only when it is *certainly* strictly inside every
edge: the cross product must exceed a conservative per-point rounding
bound (``_ETA_C`` ulp-scaled), so boundary points — duplicates of hull
vertices, collinear edge points, near-degenerate cases — always
survive.  Surviving points keep their relative order, which keeps every
lexsort/argmax tie-break downstream identical; filtered and unfiltered
hulls are bitwise-equal index sequences.

The filter charges one labelled ``hull2d.filter`` span: two vectorized
O(n) passes (extreme-finding reductions, then the point-in-polygon
rejection test).
"""

from __future__ import annotations

import os

import numpy as np

from ..obs.span import span
from ..parlay.workdepth import charge

__all__ = [
    "at_extremes",
    "at_filter",
    "default_hull_prefilter",
    "resolve_prefilter",
    "set_default_hull_prefilter",
]

_default_prefilter = os.environ.get("REPRO_HULL_FILTER", "1").lower() not in (
    "0",
    "off",
    "false",
    "no",
)


def default_hull_prefilter() -> bool:
    """Whether hulls computed without ``prefilter=`` run the AT filter."""
    return _default_prefilter


def set_default_hull_prefilter(on: bool) -> None:
    """Set the process-wide default for the Akl–Toussaint pre-filter."""
    global _default_prefilter
    _default_prefilter = bool(on)


def resolve_prefilter(prefilter: bool | None) -> bool:
    """Apply the process default for ``prefilter=None``."""
    return _default_prefilter if prefilter is None else bool(prefilter)

#: Safety factor on the eliminate-side rounding bound.  The cross
#: product of doubles incurs at most a few ulps of error; 8 covers the
#: 4 multiplies/subtracts with margin.
_ETA_C = 8.0 * np.finfo(np.float64).eps


def at_extremes(pts: np.ndarray) -> np.ndarray:
    """Indices of the 8-directional extreme points, in ccw order.

    Duplicate consecutive coordinates are dropped; the result may have
    fewer than 3 distinct vertices on degenerate inputs.
    """
    x = pts[:, 0]
    y = pts[:, 1]
    s = x + y
    d = x - y
    # ccw starting at +x: E, NE, N, NW, W, SW, S, SE
    ext = np.array(
        [
            np.argmax(x),
            np.argmax(s),
            np.argmax(y),
            np.argmin(d),
            np.argmin(x),
            np.argmin(s),
            np.argmin(y),
            np.argmax(d),
        ],
        dtype=np.int64,
    )
    # drop consecutive (and wrap-around) coordinate repeats
    keep = np.ones(8, dtype=bool)
    for i in range(8):
        j = (i + 1) % 8
        if keep[j] and j != i and np.array_equal(pts[ext[i]], pts[ext[j]]):
            keep[j] = False
    return ext[keep]


def at_filter(pts: np.ndarray) -> np.ndarray:
    """Boolean keep-mask: False only for certainly-interior points.

    Every hull vertex (and every point on the hull boundary, including
    duplicates and collinear boundary points) maps to True; points
    eliminated are strictly inside the convex hull in exact arithmetic.
    """
    n = len(pts)
    with span("hull2d.filter", batch=n):
        keep = np.ones(n, dtype=bool)
        if n < 3:
            charge(max(n, 1))
            return keep
        charge(n)  # extreme-finding reductions
        ext = at_extremes(pts)
        if len(ext) < 3:
            # degenerate polygon (all collinear / all equal): keep all
            charge(n)
            return keep
        poly = pts[ext]
        charge(n)  # point-in-polygon rejection pass
        inside = np.ones(n, dtype=bool)
        ax, ay = np.abs(pts[:, 0]), np.abs(pts[:, 1])
        for i in range(len(poly)):
            a = poly[i]
            b = poly[(i + 1) % len(poly)]
            ex = b[0] - a[0]
            ey = b[1] - a[1]
            cross = ex * (pts[:, 1] - a[1]) - ey * (pts[:, 0] - a[0])
            # conservative per-point rounding bound: only eliminate when
            # the point is strictly left of the edge beyond any error
            eta = _ETA_C * (
                abs(ex) * (ay + abs(a[1])) + abs(ey) * (ax + abs(a[0]))
            )
            inside &= cross > eta
            if not inside.any():
                break
        keep[inside] = False
        # the polygon vertices themselves are hull points; `inside` is
        # exact-strict so they can never be flagged, but make it explicit
        keep[ext] = True
    return keep
