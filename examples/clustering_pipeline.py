#!/usr/bin/env python
"""Density-based clustering pipeline (paper Fig. 1: kd-tree → WSPD →
EMST → hierarchical clustering).

Works through the dependency chain the ParGeo architecture diagram
shows: a kd-tree accelerates k-NN (core distances) and the WSPD drives
the EMST; single-linkage over mutual reachability yields the HDBSCAN*
hierarchy; plain DBSCAN runs off kd-tree range queries.

Run:  python examples/clustering_pipeline.py
"""

import numpy as np

import repro
from repro.clustering import core_distances


def main() -> None:
    # clustered data with background noise (VisualVar-style)
    pts = repro.visual_var(4_000, 2, seed=5, n_clusters=6, noise=0.08)
    coords = pts.coords
    print(f"clustering {pts}")

    # step 1: kd-tree core distances (the k-NN module)
    min_pts = 8
    cd = core_distances(coords, min_pts)
    print(f"core distances (min_pts={min_pts}): "
          f"median={np.median(cd):.3f}, 90th pct={np.quantile(cd, 0.9):.3f}")

    # step 2: HDBSCAN* hierarchy (mutual-reachability EMST)
    dend = repro.hdbscan(coords, min_pts=min_pts)
    # pick the cut with the most 20+ point clusters (simple model selection)
    best = None
    for h in np.quantile(dend.heights, [0.5, 0.7, 0.8, 0.9, 0.95, 0.99]):
        labels = dend.cut(h)
        sizes = np.bincount(labels)
        big = int((sizes >= 20).sum())
        if best is None or big > best[0]:
            best = (big, h, labels)
    big, h, labels = best
    print(f"HDBSCAN* cut at h={h:.3f}: {big} clusters with >= 20 points")

    # step 3: DBSCAN with eps from the core-distance distribution
    eps = float(np.quantile(cd, 0.85))
    db = repro.dbscan(coords, eps=eps, min_pts=min_pts)
    n_clusters = len(set(db.tolist()) - {-1})
    noise_frac = float((db == -1).mean())
    print(f"DBSCAN(eps={eps:.3f}): {n_clusters} clusters, "
          f"{noise_frac:.1%} noise")

    # step 4: summarize each DBSCAN cluster with its enclosing ball
    print("cluster summaries (smallest enclosing balls):")
    for c in sorted(set(db.tolist()) - {-1})[:8]:
        members = coords[db == c]
        if len(members) < 10:
            continue
        ball = repro.smallest_enclosing_ball(members, method="sampling")
        print(f"  cluster {c}: {len(members):>5} pts, "
              f"center={np.round(ball.center, 1)}, r={ball.radius:.2f}")


if __name__ == "__main__":
    main()
