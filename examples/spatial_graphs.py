#!/usr/bin/env python
"""Spatial network construction (paper Module (3)).

Builds the full proximity-graph hierarchy over one point set — k-NN
graph, Delaunay, Gabriel, β-skeleton, EMST, WSPD spanner — and verifies
the classical inclusion chain EMST ⊆ Gabriel ⊆ Delaunay, then measures
spanner stretch.  This is the workload a GIS / mesh-generation user
would run.

Run:  python examples/spatial_graphs.py
"""

import numpy as np

import repro


def edge_set(g: "repro.Graph") -> set:
    return set(map(tuple, g.edges.tolist()))


def main() -> None:
    pts = repro.dataset("2D-V-2K", seed=3)  # clustered, varying density
    coords = pts.coords
    print(f"building proximity graphs over {pts}")

    graphs = {
        "kNN (k=6)": repro.knn_graph(coords, 6),
        "Delaunay": repro.delaunay_graph(coords),
        "Gabriel": repro.gabriel_graph(coords),
        "beta-skeleton (1.5)": repro.beta_skeleton(coords, 1.5),
        "EMST": repro.emst_graph(coords),
        "WSPD spanner (s=8)": repro.wspd_spanner(coords, s=8),
    }
    for name, g in graphs.items():
        print(f"  {name:<22} {g.m:>7} edges, total length {g.total_weight():.1f}")

    # the classic inclusion chain
    emst_e = edge_set(graphs["EMST"])
    gabriel_e = edge_set(graphs["Gabriel"])
    delaunay_e = edge_set(graphs["Delaunay"])
    beta_e = edge_set(graphs["beta-skeleton (1.5)"])
    assert emst_e <= gabriel_e <= delaunay_e
    assert beta_e <= gabriel_e
    print("inclusions verified: EMST ⊆ Gabriel ⊆ Delaunay, "
          "β-skeleton(1.5) ⊆ Gabriel")

    # spanner stretch on sampled pairs
    nx_g = graphs["WSPD spanner (s=8)"].to_networkx()
    import networkx as nx

    rng = np.random.default_rng(0)
    worst = 0.0
    for _ in range(200):
        i, j = rng.integers(0, len(coords), size=2)
        if i == j:
            continue
        direct = float(np.linalg.norm(coords[i] - coords[j]))
        sp = nx.dijkstra_path_length(nx_g, int(i), int(j))
        worst = max(worst, sp / direct)
    print(f"spanner stretch over 200 sampled pairs: {worst:.3f} "
          f"(guarantee: {(8 + 4) / (8 - 4):.1f})")


if __name__ == "__main__":
    main()
