#!/usr/bin/env python
"""Streaming spatial index with the BDL-tree (paper §5).

Simulates a moving-object workload: objects arrive in batches, expire
in batches, and the application continuously asks k-NN queries — the
setting batch-dynamic kd-trees are built for.  Compares the BDL-tree
against the B1 (rebuild) and B2 (in-place) baselines on the same
stream and reports update/query timings and result agreement.

Run:  python examples/dynamic_points.py
"""

import time

import numpy as np

import repro


def run_stream(tree, batches, queries, k=4):
    t_upd = 0.0
    t_qry = 0.0
    answers = []
    for arrive, expire in batches:
        t0 = time.perf_counter()
        tree.insert(arrive)
        if len(expire):
            tree.erase(expire)
        t_upd += time.perf_counter() - t0
        t0 = time.perf_counter()
        d, i = tree.knn(queries, k)
        t_qry += time.perf_counter() - t0
        answers.append(np.sqrt(d))
    return t_upd, t_qry, answers


def main() -> None:
    rng = np.random.default_rng(1)
    dim = 3
    n_batches = 8
    batch_size = 2_000

    # build the arrival/expiry schedule: each batch expires two rounds later
    arrivals = [rng.uniform(0, 100, size=(batch_size, dim)) for _ in range(n_batches)]
    batches = []
    for r in range(n_batches):
        expire = arrivals[r - 2] if r >= 2 else np.empty((0, dim))
        batches.append((arrivals[r], expire))
    queries = rng.uniform(0, 100, size=(200, dim))

    results = {}
    for name, make in [
        ("BDL-tree", lambda: repro.BDLTree(dim, buffer_size=512)),
        ("B1 rebuild", lambda: repro.RebuildTree(dim)),
        ("B2 in-place", lambda: repro.InPlaceTree(dim)),
    ]:
        tree = make()
        t_upd, t_qry, answers = run_stream(tree, batches, queries)
        results[name] = answers
        print(f"{name:<12} live={tree.size():>6}  updates={t_upd:.2f}s  "
              f"queries={t_qry:.2f}s")

    # all three structures must answer identically at every round
    for r in range(n_batches):
        assert np.allclose(results["BDL-tree"][r], results["B1 rebuild"][r])
        assert np.allclose(results["BDL-tree"][r], results["B2 in-place"][r])
    print("all structures agreed on every k-NN answer at every round")


if __name__ == "__main__":
    main()
