#!/usr/bin/env python
"""Quickstart: the core ParGeo-reproduction API in one tour.

Generates a point set, then runs the library's headline algorithms:
convex hull, smallest enclosing ball, kd-tree queries, batch-dynamic
updates, EMST, and clustering.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # Module (4): dataset generators, named like the paper ("2D-U-20K")
    pts = repro.dataset("2D-U-20K", seed=42)
    print(f"dataset: {pts}")

    # -- convex hull (paper §3) -------------------------------------------
    hull = repro.convex_hull(pts, method="divide_conquer")
    print(f"convex hull: {len(hull)} vertices (divide-and-conquer)")
    hull2 = repro.convex_hull(pts, method="randinc")
    assert set(hull.tolist()) == set(hull2.tolist())
    print("             randomized-incremental agrees")

    # -- smallest enclosing ball (paper §4) --------------------------------
    ball = repro.smallest_enclosing_ball(pts, method="sampling")
    print(f"smallest enclosing ball: center={np.round(ball.center, 2)} "
          f"radius={ball.radius:.3f}")
    assert ball.contains_all(pts.coords, tol=1e-8)

    # -- kd-tree spatial search (paper §5 / Module 1) ----------------------
    tree = repro.KDTree(pts)
    dists, ids = tree.knn(pts.coords[:5], k=3, exclude_self=True)
    print(f"3-NN of first point: ids={ids[0].tolist()} "
          f"dists={np.round(np.sqrt(dists[0]), 3).tolist()}")
    in_box = tree.range_query_box([0, 0], [20, 20])
    print(f"range query [0,20]^2: {len(in_box)} points")

    # -- batch-dynamic kd-tree (BDL-tree) -----------------------------------
    bdl = repro.BDLTree(dim=2, buffer_size=512)
    bdl.insert(pts.coords[:10_000])
    bdl.insert(pts.coords[10_000:])
    bdl.erase(pts.coords[:5_000])
    d, i = bdl.knn(pts.coords[:3], k=2)
    print(f"BDL-tree after insert+delete: {bdl.size()} points, "
          f"bitmask={bin(bdl.bitmask)}")

    # -- EMST and clustering -------------------------------------------------
    small = pts.coords[:3_000]
    edges, weights = repro.emst(small)
    print(f"EMST over 3k points: {len(edges)} edges, "
          f"total length {weights.sum():.1f}")

    clustered = repro.visual_var(2_000, 2, seed=7)
    dend = repro.hdbscan(clustered.coords, min_pts=5)
    labels = dend.cut(np.median(dend.heights) * 3)
    print(f"HDBSCAN*: {len(np.unique(labels))} clusters at the chosen cut")


if __name__ == "__main__":
    main()
