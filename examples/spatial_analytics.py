#!/usr/bin/env python
"""Spatial analytics over a scanned surface (GIS/graphics-style workload).

Uses the pieces a downstream consumer of the library would combine:
synthetic scan data, Hilbert-order batching, a batch-dynamic index with
range analytics, dual-tree all-nearest-neighbors, and hull measures.

Run:  python examples/spatial_analytics.py
"""

import numpy as np

import repro
from repro.generators import thai_statue
from repro.hull import hull_surface_area_3d, hull_volume_3d
from repro.kdtree import all_nearest_neighbors
from repro.spatialsort import hilbert_argsort, morton_argsort


def main() -> None:
    cloud = thai_statue(6_000, seed=7)
    pts = cloud.coords
    print(f"scan stand-in: {cloud}")

    # -- space-filling-curve batching ---------------------------------------
    # streaming pipelines ingest scan points in curve order so nearby
    # points land in the same batch
    h_order = hilbert_argsort(pts)
    m_order = morton_argsort(pts)
    gap = lambda order: float(
        np.linalg.norm(np.diff(pts[order], axis=0), axis=1).mean()
    )
    print(f"batching locality (mean step): hilbert={gap(h_order):.3f} "
          f"morton={gap(m_order):.3f} raw={gap(np.arange(len(pts))):.3f}")

    # -- batch-dynamic index + range analytics -------------------------------
    index = repro.BDLTree(dim=3, buffer_size=512)
    batch = 1_000
    ordered = pts[h_order]
    for i in range(0, len(ordered), batch):
        index.insert(ordered[i : i + batch])
    print(f"index built from {len(ordered) // batch} hilbert-ordered batches, "
          f"bitmask={bin(index.bitmask)}")

    # density probes: how many scan points fall within r of probe sites?
    rng = np.random.default_rng(0)
    lo, hi = pts.min(axis=0), pts.max(axis=0)
    # probe near the surface (a uniform probe in the bounding box would
    # usually miss a shell-distributed cloud entirely)
    probes = pts[rng.integers(0, len(pts), size=5)] + rng.normal(scale=0.5, size=(5, 3))
    r = 0.08 * float(np.max(hi - lo))
    for i, c in enumerate(probes):
        found = index.range_query_ball(c, r)
        print(f"  probe {i}: {len(found):>5} points within r={r:.1f}")

    # -- surface statistics via all-NN ----------------------------------------
    nn_d, nn_i = all_nearest_neighbors(pts)
    print(f"scan resolution: median nearest-neighbor spacing "
          f"{np.median(nn_d):.4f} (p95 {np.quantile(nn_d, 0.95):.4f})")

    # -- shape measures ----------------------------------------------------------
    vol = hull_volume_3d(pts)
    area = hull_surface_area_3d(pts)
    ball = repro.smallest_enclosing_ball(pts, method="sampling")
    sphere_vol = 4.0 / 3.0 * np.pi * ball.radius**3
    print(f"convex hull: volume={vol:.0f}, surface={area:.0f}")
    print(f"bounding ball: r={ball.radius:.2f}; hull fills "
          f"{vol / sphere_vol:.1%} of it (non-convex surface => low fill)")

    # -- retire the oldest scan pass -----------------------------------------
    index.erase(ordered[:2_000])
    print(f"after retiring the first 2 batches: {index.size()} live points")


if __name__ == "__main__":
    main()
