"""Ablation benches for the design choices DESIGN.md calls out.

1. Reservation batch size: round batch r trades rounds against
   contention — success rate falls and wasted work grows as r grows,
   especially on small-output datasets (App. B's motivation for the
   low-facet fallback).
2. Pseudohull culling threshold: smaller thresholds prune harder but
   recurse more; larger thresholds leave more points for the final
   quickhull (the paper's stack-overflow-avoidance knob).
3. BDL buffer size X: the log-structure's rebuild cadence.
4. kd-tree leaf size: query work vs tree depth.
"""

import numpy as np

from repro.bdl import BDLTree
from repro.bench import Table, bench_scale, measure
from repro.generators import uniform
from repro.hull import pseudohull_prune, randinc_hull3d, reservation_quickhull3d
from repro.kdtree import KDTree

from conftest import data, run_once

N = bench_scale(15_000)


def test_reservation_batch_size(benchmark):
    pts = data(f"3D-U-{N}")
    tab = Table("Ablation: reservation batch size (3D randinc hull)",
                columns=("T1", "rounds", "success rate"))
    rates = {}
    for r in (1, 4, 16, 64, 256):
        m = measure(f"batch={r}", randinc_hull3d, pts, r)
        _, st = m.result
        rate = st.reservations_succeeded / max(st.reservations_attempted, 1)
        rates[r] = rate
        tab.add_raw(f"batch={r}", m.t1, float(st.rounds), rate)
    tab.show()
    # contention rises with batch size on this small-output dataset
    assert rates[256] <= rates[4] + 0.05
    run_once(benchmark, lambda: None)


def test_pseudohull_threshold(benchmark):
    pts = data(f"3D-IS-{N}")
    tab = Table("Ablation: pseudohull culling threshold",
                columns=("T1", "survivors",))
    counts = {}
    for thr in (16, 64, 256, 1024):
        m = measure(f"threshold={thr}", pseudohull_prune, pts, thr)
        counts[thr] = len(m.result)
        tab.add_raw(f"threshold={thr}", m.t1, float(len(m.result)))
    tab.show()
    assert counts[16] <= counts[1024]
    run_once(benchmark, lambda: None)


def test_bdl_buffer_size(benchmark):
    pts = data(f"5D-U-{N}")
    batch = N // 10
    tab = Table("Ablation: BDL buffer size X (10 batch inserts)",
                columns=("T1", "trees",))
    for X in (64, 256, 1024, 4096):
        def run(X=X):
            t = BDLTree(5, buffer_size=X)
            for b in range(10):
                t.insert(pts[b * batch : (b + 1) * batch])
            return t

        m = measure(f"X={X}", run)
        tab.add_raw(f"X={X}", m.t1, float(bin(m.result.bitmask).count("1")))
    tab.show()
    run_once(benchmark, lambda: None)


def test_kdtree_leaf_size(benchmark):
    pts = data(f"2D-U-{N}")
    q = pts[: N // 10]
    tab = Table("Ablation: kd-tree leaf size (build + k-NN)",
                columns=("build T1", "knn T1"))
    for leaf in (4, 16, 64, 256):
        mb = measure(f"leaf={leaf} build", KDTree, pts, "object", leaf)
        tree = mb.result
        mq = measure(f"leaf={leaf} knn", tree.knn, q, 5)
        tab.add_raw(f"leaf={leaf}", mb.t1, mq.t1)
    tab.show()
    run_once(benchmark, lambda: None)


def test_split_rule_scalability(benchmark):
    """Object vs spatial median: spatial is cheaper serially, scales
    worse (paper §6.3's observation), visible in the cost model."""
    pts = data(f"7D-U-{N}")
    tab = Table("Ablation: split rule (7d build)", columns=("T1", "T36h", "speedup"))
    ms = {}
    for split in ("object", "spatial"):
        m = measure(f"split={split}", KDTree, pts, split)
        ms[split] = m
        tab.add(m)
    tab.show()
    assert ms["object"].speedup(36) >= ms["spatial"].speedup(36) * 0.8
    run_once(benchmark, lambda: None)
