"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark prints the paper-style table at module teardown, and
registers with pytest-benchmark so ``pytest benchmarks/
--benchmark-only`` gives machine-readable timings as well.

Dataset sizes default to Python-scale (10k–50k, vs the paper's 10M) and
multiply by ``REPRO_BENCH_SCALE``.
"""

import numpy as np
import pytest

from repro.generators import dataset as make_dataset
from repro.parlay import tracker

_cache: dict = {}


@pytest.fixture(autouse=True)
def _reset_tracker():
    tracker.reset()
    yield
    tracker.reset()


def data(name: str, seed: int = 0) -> np.ndarray:
    """Memoized paper-style dataset (coordinates array)."""
    key = (name, seed)
    if key not in _cache:
        _cache[key] = make_dataset(name, seed=seed).coords
    return _cache[key]


def run_once(benchmark, fn, *args, **kwargs):
    """Register a single-shot measurement with pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
