"""Construction regression gate: filter-first / array-at-a-time builds.

Build gate: constructs the headline kd-tree workloads (100k uniform
points in 2D and 7D) and a BDL-tree of the same size under both
construction engines.  The batched (level-at-a-time) engine must
produce **bitwise-identical** node arrays and **identical** work/depth
charges — that contract is asserted unconditionally, at every scale —
and at full scale (``REPRO_BENCH_SCALE >= 1``) must be at least 3x
faster than the per-node recursion, which is the point of having it.

Hull gate: runs 2D quickhull on 200k uniform (interior-heavy) points
with and without the Akl–Toussaint prefilter.  The filtered hull must
be a **bitwise-identical index sequence** unconditionally; unlike the
build engines the filter genuinely removes work (that is its job), so
instead of charge equality the gate requires the charged work to go
*down* and the wall-clock to improve by at least 2x at full scale.

Results land in ``BENCH_build.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bdl import BDLTree
from repro.bench import bench_scale
from repro.hull import quickhull2d_seq
from repro.kdtree import KDTree
from repro.parlay import tracker

from conftest import data, run_once

BUILD_N = bench_scale(100_000)
HULL_N = bench_scale(200_000)
FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0
MIN_BUILD_RATIO = 3.0
MIN_HULL_RATIO = 2.0
REPEATS = 3

_records: dict[str, dict] = {}

_TREE_FIELDS = (
    "used", "is_leaf", "split_dim", "split_val", "left", "right",
    "start", "end", "live", "perm", "box_lo", "box_hi", "gids",
)


def _timed(fn):
    """Best-of-REPEATS wall clock plus the charges of the best run."""
    out, best, cost = None, float("inf"), None
    for _ in range(REPEATS):
        tracker.reset()
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        c = tracker.reset()
        if dt < best:
            best, cost = dt, c
    return out, best, cost


def _assert_same_tree(tr, tb, label):
    for f in _TREE_FIELDS:
        assert np.array_equal(getattr(tr, f), getattr(tb, f)), (
            f"{label}: engines disagree on node field {f!r}"
        )


def _build_gate(benchmark, ds_name: str):
    pts = data(f"{ds_name}-{BUILD_N}")
    tr, t_rec, c_rec = _timed(lambda: KDTree(pts, engine="recursive"))
    tb, t_bat, c_bat = _timed(lambda: KDTree(pts, engine="batched"))

    # exactness and charge identity are unconditional: the batched
    # engine is a wall-clock optimization only
    _assert_same_tree(tr, tb, ds_name)
    assert c_rec.work == c_bat.work, (
        f"{ds_name}: work diverged {c_rec.work} != {c_bat.work}"
    )
    assert np.isclose(c_rec.depth, c_bat.depth, rtol=1e-9), (
        f"{ds_name}: depth diverged {c_rec.depth} != {c_bat.depth}"
    )

    ratio = t_rec / t_bat if t_bat > 0 else float("inf")
    _records[f"kdtree_{ds_name}"] = {
        "n": BUILD_N, "dims": pts.shape[1],
        "recursive_s": t_rec, "batched_s": t_bat, "speedup": ratio,
        "work": c_bat.work, "depth": c_bat.depth,
    }
    print(f"\nkd build {ds_name} n={BUILD_N}: recursive {t_rec:.3f}s, "
          f"batched {t_bat:.3f}s -> {ratio:.2f}x")
    if FULL_SCALE:
        assert ratio >= MIN_BUILD_RATIO, (
            f"batched build only {ratio:.2f}x faster on {ds_name} "
            f"(gate requires >= {MIN_BUILD_RATIO}x at full scale)"
        )
    run_once(benchmark, lambda: None)


def test_kdtree_build_2d_ratio(benchmark):
    _build_gate(benchmark, "2D-U")


def test_kdtree_build_7d_ratio(benchmark):
    _build_gate(benchmark, "7D-U")


def test_bdl_build_ratio(benchmark):
    """The log-structure's unit-conversion rebuilds ride the engine."""
    pts = data(f"2D-U-{BUILD_N}")

    def build(engine):
        b = BDLTree(pts.shape[1], build_engine=engine)
        b.insert(pts)
        return b

    br, t_rec, c_rec = _timed(lambda: build("recursive"))
    bb, t_bat, c_bat = _timed(lambda: build("batched"))

    assert br.bitmask == bb.bitmask
    for ta, tbt in zip(br.trees, bb.trees):
        assert (ta is None) == (tbt is None)
        if ta is not None:
            _assert_same_tree(ta, tbt, "bdl")
    assert c_rec.work == c_bat.work
    assert np.isclose(c_rec.depth, c_bat.depth, rtol=1e-9)

    ratio = t_rec / t_bat if t_bat > 0 else float("inf")
    _records["bdl_2D-U"] = {
        "n": BUILD_N, "dims": pts.shape[1],
        "recursive_s": t_rec, "batched_s": t_bat, "speedup": ratio,
        "work": c_bat.work, "depth": c_bat.depth,
    }
    print(f"\nbdl build n={BUILD_N}: recursive {t_rec:.3f}s, "
          f"batched {t_bat:.3f}s -> {ratio:.2f}x")
    if FULL_SCALE:
        assert ratio >= MIN_BUILD_RATIO, (
            f"batched BDL build only {ratio:.2f}x faster "
            f"(gate requires >= {MIN_BUILD_RATIO}x at full scale)"
        )
    run_once(benchmark, lambda: None)


def test_hull_filter_ratio(benchmark):
    """Akl–Toussaint filter-first quickhull on interior-heavy input."""
    pts = data(f"2D-U-{HULL_N}")
    hu, t_unf, c_unf = _timed(lambda: quickhull2d_seq(pts, prefilter=False))
    hf, t_fil, c_fil = _timed(lambda: quickhull2d_seq(pts, prefilter=True))

    # the filter must be invisible in the answer, at every scale
    assert np.array_equal(hu, hf), "filtered hull diverged from unfiltered"

    ratio = t_unf / t_fil if t_fil > 0 else float("inf")
    _records["hull2d_2D-U"] = {
        "n": HULL_N, "hull_vertices": int(len(hf)),
        "unfiltered_s": t_unf, "filtered_s": t_fil, "speedup": ratio,
        "work_unfiltered": c_unf.work, "work_filtered": c_fil.work,
    }
    print(f"\nhull2d n={HULL_N}: unfiltered {t_unf:.3f}s "
          f"(W={c_unf.work:.0f}), filtered {t_fil:.3f}s "
          f"(W={c_fil.work:.0f}) -> {ratio:.2f}x")
    if FULL_SCALE:
        # on uniform input the octagon rejects the vast majority of
        # points, so the charged work must drop, not just wall-clock
        assert c_fil.work < c_unf.work, (
            f"filter did not reduce work: {c_fil.work} >= {c_unf.work}"
        )
        assert ratio >= MIN_HULL_RATIO, (
            f"filtered hull only {ratio:.2f}x faster "
            f"(gate requires >= {MIN_HULL_RATIO}x at full scale)"
        )
    run_once(benchmark, lambda: None)


def teardown_module(module):
    if not _records:
        return
    root = Path(__file__).resolve().parent.parent
    out = root / "BENCH_build.json"
    payload = {
        "benchmark": "construction engines: batched vs recursive build, "
                     "Akl-Toussaint filter-first hull",
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        "gates": {
            "min_build_speedup": MIN_BUILD_RATIO,
            "min_hull_speedup": MIN_HULL_RATIO,
            "identical_outputs": "unconditional",
            "identical_build_charges": "unconditional",
        },
        "runs": _records,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
