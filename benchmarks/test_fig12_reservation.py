"""Figure 12 / Appendix B: the overhead of reservations.

Single-thread comparison between the reservation-based quickhull and
the optimized sequential quickhull (3D): (a) visible points touched,
(b) facets touched, (c) single-thread running time.  Expected shape:
touched counts are similar (most reservations succeed; on some datasets
the reservation variant touches *fewer*), and the time overhead is a
modest constant factor.
"""

import numpy as np

from repro.bench import Table, bench_scale, measure
from repro.hull import quickhull3d_seq, reservation_quickhull3d

from conftest import data, run_once

N = bench_scale(20_000)
DATASETS = [f"3D-U-{N}", f"3D-IS-{N}", f"3D-OS-{N}", f"3D-OC-{N}"]

_table = Table(
    "Figure 12: reservation overhead vs sequential quickhull (1 thread)",
    columns=("pts seq", "pts resv", "facets seq", "facets resv", "T1 seq", "T1 resv"),
)
_ratios = []


def _bench(benchmark, ds):
    pts = data(ds)
    m_seq = measure("seq", lambda: quickhull3d_seq(pts))
    m_res = measure("resv", lambda: reservation_quickhull3d(pts))
    st_seq = m_seq.result[1]
    st_res = m_res.result[1]
    _table.add_raw(
        ds,
        float(st_seq.points_touched),
        float(st_res.points_touched),
        float(st_seq.facets_touched),
        float(st_res.facets_touched),
        m_seq.t1,
        m_res.t1,
    )
    _ratios.append(
        (
            ds,
            st_res.points_touched / max(st_seq.points_touched, 1),
            st_res.facets_touched / max(st_seq.facets_touched, 1),
            m_res.t1 / max(m_seq.t1, 1e-12),
        )
    )
    run_once(benchmark, lambda: None)


def test_u(benchmark):
    _bench(benchmark, DATASETS[0])


def test_is(benchmark):
    _bench(benchmark, DATASETS[1])


def test_os(benchmark):
    _bench(benchmark, DATASETS[2])


def test_oc(benchmark):
    _bench(benchmark, DATASETS[3])


def teardown_module(module):
    _table.show()
    print("\nreservation/sequential ratios (points, facets, time):")
    for ds, rp, rf, rt in _ratios:
        print(f"  {ds}: points x{rp:.2f}  facets x{rf:.2f}  time x{rt:.2f}")
    print("(paper: touched counts similar, modest time overhead)")
