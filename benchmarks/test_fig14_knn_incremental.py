"""Figure 14: k-NN throughput vs k on incrementally constructed trees.

Paper: trees built by a sequence of 5% batch insertions; k-NN over the
full set for k = 2..11, on 2D-V (VisualVar) and 7D-U.  Expected shape:
B1 best (always rebalanced), BDL close behind, B2 significantly worse
(tree skewed by incremental construction).
"""

import numpy as np

from repro.bdl import BDLTree, InPlaceTree, RebuildTree
from repro.bench import PAPER_CORES, Table, bench_scale, measure

from conftest import data, run_once

N = bench_scale(8_000)
KS = [2, 5, 8, 11]
_tables: dict[str, Table] = {}
_tput: dict = {}


def _built_incrementally(kind, pts):
    dim = pts.shape[1]
    t = {"BDL": lambda: BDLTree(dim, buffer_size=256),
         "B1": lambda: RebuildTree(dim),
         "B2": lambda: InPlaceTree(dim)}[kind]()
    batch = max(1, len(pts) // 20)  # 5% batches
    for i in range(0, len(pts), batch):
        t.insert(pts[i : i + batch])
    return t


def _bench(benchmark, ds_name, pts, kind):
    tree = _built_incrementally(kind, pts)
    tab = _tables.setdefault(ds_name, Table(
        f"Figure 14 ({ds_name}): k-NN throughput (queries/s, 36h) vs k",
        columns=tuple(f"k={k}" for k in KS),
    ))
    row = []
    for k in KS:
        m = measure(f"{kind} k={k}", tree.knn, pts, k)
        row.append(len(pts) / m.tp(PAPER_CORES))
    tab.add_raw(kind, *row)
    _tput[(ds_name, kind)] = row
    run_once(benchmark, lambda: None)


def test_2dv_bdl(benchmark):
    _bench(benchmark, "2D-V", data(f"2D-V-{N}"), "BDL")


def test_2dv_b1(benchmark):
    _bench(benchmark, "2D-V", data(f"2D-V-{N}"), "B1")


def test_2dv_b2(benchmark):
    _bench(benchmark, "2D-V", data(f"2D-V-{N}"), "B2")


def test_7du_bdl(benchmark):
    _bench(benchmark, "7D-U", data(f"7D-U-{N}"), "BDL")


def test_7du_b1(benchmark):
    _bench(benchmark, "7D-U", data(f"7D-U-{N}"), "B1")


def test_7du_b2(benchmark):
    _bench(benchmark, "7D-U", data(f"7D-U-{N}"), "B2")


def teardown_module(module):
    for t in _tables.values():
        t.show()
    print("\nshape checks (mean throughput over k):")
    for ds in ("2D-V", "7D-U"):
        if (ds, "B1") not in _tput:
            continue
        b1 = np.mean(_tput[(ds, "B1")])
        bdl = np.mean(_tput[(ds, "BDL")])
        b2 = np.mean(_tput[(ds, "B2")])
        print(f"  {ds}: B1={b1:.0f} BDL={bdl:.0f} B2={b2:.0f} queries/s "
              f"(paper: B1 > BDL >> B2 after incremental construction)")
