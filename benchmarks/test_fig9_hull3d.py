"""Figure 9: 3D convex hull — runtimes across implementations/datasets.

Paper datasets: 3D-{U, IS, OS, OC}-10M plus the Thai/Dragon scans; here
the scans are synthetic stand-ins (DESIGN.md §1).  Expected shape:
DivideConquer and Pseudo are the fastest; Pseudo is *relatively* slower
on large-output datasets (IS/OS — more points survive pruning);
RandInc/QuickHull fall behind on small-output datasets (U — reservation
contention on few facets).
"""

import numpy as np
from scipy.spatial import ConvexHull

from repro.bench import PAPER_CORES, Table, bench_scale, measure
from repro.generators import dragon, thai_statue
from repro.hull import (
    divide_conquer_3d,
    pseudo_hull3d,
    quickhull3d_seq,
    randinc_hull3d,
    reservation_quickhull3d,
)

from conftest import data, run_once

N = bench_scale(20_000)
_table = Table("Figure 9: 3d convex hull (T36h per implementation x dataset)")
_t36 = {}


def _points(ds):
    if ds == "3D-Thai":
        return thai_statue(N, seed=7).coords
    if ds == "3D-Dragon":
        return dragon(N, seed=11).coords
    return data(ds)


DATASETS = [f"3D-U-{N}", f"3D-IS-{N}", f"3D-OS-{N}", f"3D-OC-{N}", "3D-Thai", "3D-Dragon"]

IMPLS = [
    ("Qhull", lambda p: ConvexHull(p).vertices),
    ("SeqQuickHull(CGAL-role)", lambda p: quickhull3d_seq(p)[0]),
    ("RandInc", lambda p: randinc_hull3d(p)[0]),
    ("QuickHull", lambda p: reservation_quickhull3d(p)[0]),
    ("Pseudo", lambda p: pseudo_hull3d(p)[0]),
    ("DivideConquer", lambda p: divide_conquer_3d(p)[0]),
]


SEQUENTIAL = {"Qhull", "SeqQuickHull(CGAL-role)"}


def _bench(benchmark, ds, impl_name, fn):
    pts = _points(ds)
    m = measure(f"{ds} {impl_name}", fn, pts)
    t36 = m.t1 if impl_name in SEQUENTIAL else m.tp(PAPER_CORES)
    _table.add_raw(m.name, m.t1, t36, m.t1 / t36)
    _t36[(ds, impl_name)] = t36
    run_once(benchmark, lambda: None)


def make_tests():
    for ds in DATASETS:
        for name, fn in IMPLS:
            safe = ds.replace("-", "_")
            sname = name.replace("(", "_").replace(")", "").replace("-", "_")

            def t(benchmark, ds=ds, name=name, fn=fn):
                _bench(benchmark, ds, name, fn)

            globals()[f"test_{safe}_{sname}"] = t


make_tests()


def teardown_module(module):
    _table.show()
    # shape checks from the paper's discussion of Fig. 9
    u, shell = f"3D-U-{N}", f"3D-IS-{N}"
    rel_pseudo_u = _t36[(u, "Pseudo")] / _t36[(u, "DivideConquer")]
    rel_pseudo_is = _t36[(shell, "Pseudo")] / _t36[(shell, "DivideConquer")]
    print(
        f"\nPseudo/DC ratio: U={rel_pseudo_u:.2f} IS={rel_pseudo_is:.2f} "
        f"(paper: Pseudo relatively slower on larger-output IS)"
    )
    best_parallel_u = min(
        _t36[(u, k)] for k in ("RandInc", "QuickHull", "Pseudo", "DivideConquer")
    )
    print(
        f"fastest parallel on U: {best_parallel_u:.3f}s vs Qhull "
        f"{_t36[(u, 'Qhull')]:.3f}s"
    )
