"""Figure 8: 2D convex hull — runtimes across implementations/datasets.

Paper setup: CGAL & Qhull (sequential baselines), RandInc, QuickHull,
DivideConquer on 2D-{U, IS, OS, OC}-10M, 36h cores.  Here the Qhull
baseline is literally Qhull (scipy.spatial.ConvexHull) and our
optimized sequential quickhull plays the CGAL role.  Expected shape:
DivideConquer fastest everywhere among parallel methods; parallel
methods well ahead of the sequential baselines.
"""

import time

import numpy as np
from scipy.spatial import ConvexHull

from repro.bench import PAPER_CORES, Table, bench_scale, measure
from repro.hull import (
    divide_conquer_2d,
    quickhull2d_parallel,
    quickhull2d_seq,
    randinc_hull2d,
    reservation_quickhull2d,
)

from conftest import data, run_once

N = bench_scale(50_000)
DATASETS = [f"2D-U-{N}", f"2D-IS-{N}", f"2D-OS-{N}", f"2D-OC-{N}"]

_table = Table("Figure 8: 2d convex hull (T36h per implementation x dataset)")
_t36 = {}


SEQUENTIAL = {"Qhull", "SeqQuickHull(CGAL-role)"}


def _bench(benchmark, ds, impl_name, fn):
    pts = data(ds)
    m = measure(f"{ds} {impl_name}", fn, pts)
    # sequential baselines run on one thread in the paper: T36h == T1
    t36 = m.t1 if impl_name in SEQUENTIAL else m.tp(PAPER_CORES)
    _table.add_raw(m.name, m.t1, t36, m.t1 / t36)
    _t36[(ds, impl_name)] = t36
    run_once(benchmark, lambda: None)
    benchmark.extra_info["t36h"] = t36


def _qhull_seq(pts):
    return ConvexHull(pts).vertices


def make_tests():
    impls = [
        ("Qhull", _qhull_seq),
        ("SeqQuickHull(CGAL-role)", quickhull2d_seq),
        ("RandInc", lambda p: randinc_hull2d(p)[0]),
        ("QuickHull", quickhull2d_parallel),
        ("ReservationQuickHull", lambda p: reservation_quickhull2d(p)[0]),
        ("DivideConquer", divide_conquer_2d),
    ]
    for ds in DATASETS:
        for name, fn in impls:
            test_name = f"test_{ds.replace('-', '_')}_{name.replace('(', '_').replace(')', '').replace('-', '_')}"

            def t(benchmark, ds=ds, name=name, fn=fn):
                _bench(benchmark, ds, name, fn)

            globals()[test_name] = t


make_tests()


def teardown_module(module):
    _table.show()
    # shape check: DivideConquer is the fastest parallel method and
    # beats the sequential baselines on every dataset (paper Fig. 8)
    ok = True
    for ds in DATASETS:
        dc = _t36[(ds, "DivideConquer")]
        seq = min(_t36[(ds, "Qhull")], _t36[(ds, "SeqQuickHull(CGAL-role)")])
        if dc > seq:
            ok = False
            print(f"!! shape deviation on {ds}: DC {dc:.4f}s vs seq {seq:.4f}s")
    print(f"\nshape: DivideConquer beats sequential baselines on all datasets: {ok}")
