"""Figure 11: BDL-tree vs B1/B2 — throughput vs thread count.

Paper: 7D-U-10M; four operations (construction, batch insert, batch
delete, full k-NN), object- and spatial-median splits, thread counts 1
to 36h.  We measure T1 and derive the throughput curve from the cost
model at each simulated thread count.

Expected shape: construction — BDL >= B1, B2 slowest (per-leaf buffer
allocation); insertion — B2 fastest, BDL second, B1 worst; deletion —
B2 (tombstones) >> BDL > B1; k-NN after bulk build — B1/B2 faster than
BDL (multi-tree overhead).  Spatial median is faster serially but
scales worse than object median.
"""

import numpy as np

from repro.bdl import BDLTree, InPlaceTree, RebuildTree
from repro.bench import Table, bench_scale, measure
from repro.parlay.workdepth import HYPERTHREAD_FACTOR, simulated_time

from conftest import data, run_once

N = bench_scale(10_000)
THREADS = [1, 2, 4, 8, 18, 36, 36 * HYPERTHREAD_FACTOR]
_tables: dict[str, Table] = {}
_series: dict = {}


def _make(kind, split):
    if kind == "BDL":
        return BDLTree(7, buffer_size=512, split=split)
    if kind == "B1":
        return RebuildTree(7, split=split)
    return InPlaceTree(7, split=split)


def _record(op, kind, split, m, n_ops):
    tab = _tables.setdefault(op, Table(
        f"Figure 11 ({op}): throughput (ops/s) vs simulated threads",
        columns=tuple(f"p={p:g}" for p in THREADS),
    ))
    row = []
    for p in THREADS:
        tp = m.t1 * simulated_time(m.cost, p) / max(simulated_time(m.cost, 1.0), 1e-12)
        row.append(n_ops / tp)
    tab.add_raw(f"{split}-{kind}", *row)
    _series[(op, kind, split)] = row


def _bench_all(benchmark, kind, split):
    pts = data(f"7D-U-{N}")
    batch = N // 10

    # construction (single bulk insert)
    def construct():
        t = _make(kind, split)
        t.insert(pts)
        return t

    m = measure(f"{kind}-{split} construct", construct)
    _record("construction", kind, split, m, N)

    # batch insertion: 10 batches of 10% into an empty tree
    def insert10():
        t = _make(kind, split)
        for b in range(10):
            t.insert(pts[b * batch : (b + 1) * batch])
        return t

    m = measure(f"{kind}-{split} insert", insert10)
    _record("insert", kind, split, m, N)

    # batch deletion: 10 batches of 10% from a full tree
    tree = _make(kind, split)
    tree.insert(pts)

    def delete10():
        for b in range(10):
            tree.erase(pts[b * batch : (b + 1) * batch])

    m = measure(f"{kind}-{split} delete", delete10)
    _record("delete", kind, split, m, N)

    # full k-NN over the whole set, tree built in one batch
    tree2 = _make(kind, split)
    tree2.insert(pts)
    m = measure(f"{kind}-{split} knn", tree2.knn, pts, 3)
    _record("knn", kind, split, m, N)
    run_once(benchmark, lambda: None)


def test_bdl_object(benchmark):
    _bench_all(benchmark, "BDL", "object")


def test_b1_object(benchmark):
    _bench_all(benchmark, "B1", "object")


def test_b2_object(benchmark):
    _bench_all(benchmark, "B2", "object")


def test_bdl_spatial(benchmark):
    _bench_all(benchmark, "BDL", "spatial")


def test_b1_spatial(benchmark):
    _bench_all(benchmark, "B1", "spatial")


def test_b2_spatial(benchmark):
    _bench_all(benchmark, "B2", "spatial")


def teardown_module(module):
    for op in ("construction", "insert", "delete", "knn"):
        if op in _tables:
            _tables[op].show()
    top = THREADS[-1]

    def tput(op, kind, split="object"):
        return _series[(op, kind, split)][-1]

    print("\nmeasured at 36h, object median (paper expectation in parens):")
    print(f"  insert:  B2={tput('insert', 'B2'):.0f} BDL={tput('insert', 'BDL'):.0f} B1={tput('insert', 'B1'):.0f} ops/s (B2 > BDL > B1)")
    print(f"  delete:  B2={tput('delete', 'B2'):.0f} BDL={tput('delete', 'BDL'):.0f} B1={tput('delete', 'B1'):.0f} ops/s (B2 >> BDL > B1)")
    print(f"  knn:     B1={tput('knn', 'B1'):.0f} B2={tput('knn', 'B2'):.0f} BDL={tput('knn', 'BDL'):.0f} ops/s (B1/B2 > BDL after bulk build)")
    print(f"  build:   BDL={tput('construction', 'BDL'):.0f} B1={tput('construction', 'B1'):.0f} B2={tput('construction', 'B2'):.0f} ops/s (BDL best, B2 worst)")
