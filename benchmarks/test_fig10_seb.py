"""Figure 10: smallest enclosing ball across implementations/datasets.

Paper: CGAL (sequential Welzl), Orthant-scan, Sampling, Welzl, WelzlMtf,
WelzlMtfPivot on twelve datasets spanning 2/3/5 dimensions.  Expected
shape: Sampling fastest on most datasets, Orthant-scan on some; both
far ahead of the Welzl family.
"""

import numpy as np

from repro.bench import PAPER_CORES, Table, bench_scale, measure
from repro.seb import (
    orthant_scan_seb,
    parallel_welzl,
    sampling_seb,
    welzl_mtf,
    welzl_mtf_pivot,
    welzl_seq,
)

from conftest import data, run_once

# sizes: the Welzl-family baselines are O((d+1)! n)-ish in Python, so
# the 5d datasets are kept small; the fast methods use the larger size
N2 = bench_scale(30_000)
N5 = bench_scale(5_000)

DATASETS = [
    f"2D-U-{N2}", f"2D-IS-{N2}", f"2D-OS-{N2}", f"2D-OC-{N2}",
    f"3D-U-{N2}", f"3D-IS-{N2}", f"3D-OS-{N2}", f"3D-OC-{N2}",
    f"5D-U-{N5}", f"5D-IS-{N5}", f"5D-OS-{N5}", f"5D-OC-{N5}",
]

IMPLS = [
    ("SeqWelzl(CGAL-role)", welzl_seq),
    ("Orthant-scan", orthant_scan_seb),
    ("Sampling", lambda p: sampling_seb(p)[0]),
    ("Welzl", parallel_welzl),
    ("WelzlMtf", welzl_mtf),
    ("WelzlMtfPivot", welzl_mtf_pivot),
]

_table = Table("Figure 10: smallest enclosing ball (T36h per impl x dataset)")
_t36 = {}


SEQUENTIAL = {"SeqWelzl(CGAL-role)", "WelzlMtf", "WelzlMtfPivot"}


def _bench(benchmark, ds, impl_name, fn):
    pts = data(ds)
    m = measure(f"{ds} {impl_name}", fn, pts)
    t36 = m.t1 if impl_name in SEQUENTIAL else m.tp(PAPER_CORES)
    _table.add_raw(m.name, m.t1, t36, m.t1 / t36)
    _t36[(ds, impl_name)] = t36
    run_once(benchmark, lambda: None)


def make_tests():
    for ds in DATASETS:
        for name, fn in IMPLS:
            safe = ds.replace("-", "_")
            sname = name.replace("(", "_").replace(")", "").replace("-", "_")

            def t(benchmark, ds=ds, name=name, fn=fn):
                _bench(benchmark, ds, name, fn)

            globals()[f"test_{safe}_{sname}"] = t


make_tests()


def teardown_module(module):
    _table.show()
    # shape: Sampling or Orthant-scan is the fastest on every dataset
    wins = {"Sampling": 0, "Orthant-scan": 0, "other": 0}
    for ds in DATASETS:
        best = min(IMPLS, key=lambda kv: _t36[(ds, kv[0])])[0]
        wins[best if best in wins else "other"] = wins.get(best if best in wins else "other", 0) + 1
    print(f"\nfastest-method wins: {wins} "
          f"(paper: Sampling 8/12, Orthant-scan 4/12)")
