"""Stream gate: incremental view maintenance vs recompute-from-scratch.

Replays one update-heavy synthetic trace (>= 30% insert/erase batches
interleaved with materialized-view reads) two ways and records both
into ``BENCH_stream.json``:

* **incremental** — a :class:`repro.views.ViewManager` over a BDLTree
  repairs the closest-pair, DBSCAN, and 2D-hull views in place after
  every mutation batch; view reads return the maintained answer;
* **recompute** — the same trace against a fresh BDLTree where every
  view read recomputes its answer from scratch over the gathered live
  points (:func:`repro.serve.run_unbatched` with a ``views=`` mapping).

Unconditional assertions (every scale):

* the trace is genuinely update-heavy: >= 30% of ops are mutations;
* **bitwise equality** — every view read's ``(answer, version)`` from
  the incremental side equals the recompute baseline exactly, at every
  version the trace observes;
* the incremental side actually repaired (each view's repair counter
  moved, and repairs dominate recompute fallbacks).

Wall-clock gate (full scale only, like the other perf gates):
incremental maintenance is at least ``MIN_SPEEDUP`` (5x) faster than
the recompute loop over the identical trace.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bdl import BDLTree
from repro.bench import bench_scale
from repro.serve import run_unbatched, synthetic_trace
from repro.views import ClosestPairView, DBSCANView, HullView, ViewManager

from conftest import run_once

FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0

STREAM_N = bench_scale(6000)      # seed points in the dynamic index
STREAM_OPS = bench_scale(600)     # trace length (mutations + view reads)
MUTATION_FRAC = 0.4               # drawn rate; realized is asserted >= 0.3
MUTATION_BATCH = 8
N_BLOBS = 30                      # Gaussian blobs: bounded DBSCAN components
EPS, MIN_PTS = 1.0, 6             # = one blob sigma; dense cores inside blobs
MIN_SPEEDUP = 5.0
MIN_MUTATION_FRAC = 0.3           # "update-heavy" per the gate definition

_stream_records: dict = {}


def _points():
    # clustered data, the DBSCAN workload: uniform points at these
    # densities percolate into one giant eps-component, which makes any
    # core deletion a global re-cluster (the worst case for *every*
    # incremental DBSCAN, not a property of this one)
    rng = np.random.default_rng(11)
    centers = rng.uniform(10.0, 90.0, (N_BLOBS, 2))
    return (centers[rng.integers(N_BLOBS, size=STREAM_N)]
            + rng.normal(0.0, 1.0, (STREAM_N, 2)))


def _index(coords):
    tree = BDLTree(dim=coords.shape[1])
    tree.insert(coords)
    return tree


def _views(mgr):
    mgr.closest_pair()
    mgr.dbscan(eps=EPS, min_pts=MIN_PTS)
    mgr.hull2d()


_COMPUTES = {
    "closest_pair": ClosestPairView.compute,
    "dbscan": lambda pts, gids: DBSCANView.compute(
        pts, gids, eps=EPS, min_pts=MIN_PTS),
    "hull2d": HullView.compute,
}


def _run_incremental(coords, trace):
    mgr = ViewManager(_index(coords))
    _views(mgr)
    out = []
    t0 = time.perf_counter()
    for op in trace:
        if op["op"] == "insert":
            mgr.insert(np.asarray(op["pts"], dtype=np.float64))
            out.append(None)
        elif op["op"] == "erase":
            mgr.erase(np.asarray(op["pts"], dtype=np.float64))
            out.append(None)
        else:
            out.append(mgr.get(op["name"]))
    return time.perf_counter() - t0, out, mgr


def test_stream_incremental_vs_recompute(benchmark):
    coords = _points()
    trace = synthetic_trace(
        coords, STREAM_OPS,
        kinds=("view",),
        mutation_frac=MUTATION_FRAC,
        mutation_batch=MUTATION_BATCH,
        view_names=tuple(_COMPUTES),
        seed=3,
    )
    n_mut = sum(1 for op in trace if op["op"] in ("insert", "erase"))
    n_view = len(trace) - n_mut
    assert n_mut / len(trace) >= MIN_MUTATION_FRAC, (
        f"trace is not update-heavy: {n_mut}/{len(trace)} mutations"
    )
    assert n_view > 0

    t_inc, inc, mgr = _run_incremental(coords, trace)

    t0 = time.perf_counter()
    base = run_unbatched(_index(coords), trace, views=_COMPUTES)
    t_base = time.perf_counter() - t0

    # -- bitwise equality at every observed version, unconditionally
    mismatches = [
        i for i, (a, b) in enumerate(zip(inc, base))
        if trace[i]["op"] == "view" and a != b
    ]
    assert not mismatches, (
        f"{len(mismatches)} view answers diverged from recompute "
        f"(first at op {mismatches[0]}: {trace[mismatches[0]]['name']})"
    )

    # -- the incremental side really maintained, not silently rebuilt
    stats = mgr.stats()
    for name, st in stats.items():
        assert st["repairs"] > 0, f"{name}: no incremental repairs ran"
        assert st["repairs"] > st["recomputes"], (
            f"{name}: recompute fallbacks ({st['recomputes']}) dominate "
            f"repairs ({st['repairs']})"
        )

    speedup = t_base / t_inc if t_inc > 0 else float("inf")
    _stream_records.update({
        "n_ops": len(trace),
        "n_mutations": n_mut,
        "n_view_reads": n_view,
        "realized_mutation_frac": n_mut / len(trace),
        "incremental_s": t_inc,
        "recompute_s": t_base,
        "speedup": speedup,
        "answers_equal": True,
        "view_stats": stats,
        "speedup_gate_applied": FULL_SCALE,
    })

    if FULL_SCALE:
        assert speedup >= MIN_SPEEDUP, (
            f"incremental maintenance only {speedup:.2f}x faster than "
            f"recompute-from-scratch (gate {MIN_SPEEDUP}x)"
        )
    run_once(benchmark, lambda: None)


def teardown_module(module):
    if not _stream_records:
        return
    root = Path(__file__).resolve().parent.parent
    out = root / "BENCH_stream.json"
    payload = {
        "benchmark": "materialized views: incremental maintenance vs "
                     "recompute on an update-heavy mixed trace",
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        "gates": {
            "min_speedup": MIN_SPEEDUP,
            "min_mutation_frac": MIN_MUTATION_FRAC,
            "bitwise_equality": "unconditional",
            "repairs_dominate_fallbacks": "unconditional",
        },
        "config": {
            "points": STREAM_N,
            "ops": STREAM_OPS,
            "mutation_frac": MUTATION_FRAC,
            "mutation_batch": MUTATION_BATCH,
            "views": list(_COMPUTES),
            "eps": EPS,
            "min_pts": MIN_PTS,
        },
        "results": _stream_records,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
