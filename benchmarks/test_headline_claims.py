"""The abstract's headline numbers: self-relative speedups.

Paper claims (36 cores, 2-way hyper-threading, 10M points):
* fastest convex hull: up to 44.7x self-relative speedup;
* sampling-based SEB: up to 27.1x;
* BDL-tree: construction up to 35.4x, insert up to 35.0x, delete up to
  33.1x, full k-NN up to 46.1x;
* across all implementations: 8.1–46.6x.

This bench prints the modeled self-relative speedup curve (p = 1..36h)
for each headline algorithm, so the scalability claims can be compared
directly.
"""

import numpy as np

from repro.bdl import BDLTree
from repro.bench import Table, bench_scale, measure
from repro.hull import divide_conquer_2d, quickhull2d_parallel
from repro.parlay.workdepth import HYPERTHREAD_FACTOR, simulated_speedup
from repro.seb import sampling_seb

from conftest import data, run_once

THREADS = [1, 2, 4, 8, 18, 36, 36 * HYPERTHREAD_FACTOR]
N = bench_scale(50_000)

_table = Table(
    "Headline self-relative speedups vs simulated threads",
    columns=tuple(f"p={p:g}" for p in THREADS),
)
_peak = {}


def _curve(name, fn, *args):
    m = measure(name, fn, *args)
    row = [max(1.0, simulated_speedup(m.cost, p)) for p in THREADS]
    _table.add_raw(name, *row)
    _peak[name] = row[-1]


def test_hull_speedup(benchmark):
    pts = data(f"2D-U-{N}")
    _curve("convex hull 2d (quickhull)", quickhull2d_parallel, pts)
    _curve("convex hull 2d (divide&conquer)", divide_conquer_2d, pts)
    run_once(benchmark, lambda: None)


def test_seb_speedup(benchmark):
    pts = data(f"2D-U-{N}")
    _curve("SEB (sampling)", sampling_seb, pts)
    run_once(benchmark, lambda: None)


def test_bdl_speedup(benchmark):
    pts = data(f"5D-U-{bench_scale(10_000)}")
    batch = len(pts) // 10

    def build():
        t = BDLTree(5, buffer_size=512)
        t.insert(pts)
        return t

    _curve("BDL construction", build)
    tree = build()
    _curve("BDL full k-NN (k=5)", tree.knn, pts, 5)

    def deletes():
        for b in range(10):
            tree.erase(pts[b * batch : (b + 1) * batch])

    _curve("BDL batch delete", deletes)
    run_once(benchmark, lambda: None)


def teardown_module(module):
    _table.show()
    print("\npeak modeled self-relative speedups (paper claims in parens):")
    claims = {
        "convex hull 2d (divide&conquer)": "44.7x",
        "SEB (sampling)": "27.1x",
        "BDL construction": "35.4x",
        "BDL batch delete": "33.1x",
        "BDL full k-NN (k=5)": "46.1x",
    }
    for name, claim in claims.items():
        if name in _peak:
            print(f"  {name}: {_peak[name]:.1f}x (paper: up to {claim})")
