"""Load gate: multi-tenant front-end under open-loop saturation.

Drives ``repro.frontend.Frontend`` with the open-loop harness in two
configurations and records both into ``BENCH_load.json``:

* **solo** — the light tenant alone at its modest arrival rate; its p99
  is the baseline for the fairness gate;
* **combined** — the same light load plus a saturating heavy tenant
  (Zipf-skewed kNN at an arrival rate far past the service rate,
  bursty arrivals).

Unconditional assertions (every scale):

* overload shedding is **typed** — each offered request ends as exactly
  one of completed / Overloaded / QuotaExceeded / RequestTimeout, never
  an untyped error, and rejected requests carry a positive retry-after
  (observed via the harness error counter staying zero);
* the queue is **bounded** — the observed depth high-watermark never
  exceeds the configured reject threshold, no matter how much load the
  open loop offers;
* every degraded answer is **labelled** ``approximate=True`` and a
  recorded sample of them verifies against exact recompute (true
  distances, rank-wise dominated by the exact kNN).

Fairness assertion (full scale only, like the other wall-clock gates):
under heavy-tenant saturation the light tenant's p99 stays within
``MAX_FAIRNESS_RATIO`` (3x) of its solo p99 — the weighted-fair
dispatcher's whole point; a FIFO queue fails this by orders of
magnitude because light requests would wait behind the heavy backlog.
"""

import asyncio
import json
import os
from pathlib import Path

import numpy as np

from repro.bench import bench_scale
from repro.cluster import ShardedIndex
from repro.frontend import Frontend
from repro.frontend.load import TenantLoad, run_open_loop, verify_degraded
from repro.kdtree import KDTree
from repro.serve import zipf_trace

from conftest import run_once

FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0

LOAD_N = bench_scale(20_000)           # points per tenant index
LIGHT_RATE = 200.0                     # req/s, well under capacity
LIGHT_N = bench_scale(1200)            # light requests per phase
HEAVY_RATE = 500.0                     # req/s, past the exact-path capacity
# heavy arrivals span the light tenant's whole window, so saturation is
# sustained rather than a front-loaded burst
HEAVY_N = int(HEAVY_RATE * (bench_scale(1200) / LIGHT_RATE))
SHARDS = 2
K = 8
MAX_BATCH = 1                          # dispatch quantum (bounds light delay)
QUEUE_DEPTH = 256                      # per-tenant bound == reject threshold
DEGRADE_AT = 32                        # shallow: saturated heavy kNN degrades
LIGHT_WEIGHT = 4.0
MAX_FAIRNESS_RATIO = 3.0               # light p99 combined vs solo

_load_records: dict = {}


def _points():
    return np.random.default_rng(42).uniform(0.0, 100.0, (LOAD_N, 2))


def _light_load(coords, seed=100):
    return TenantLoad(
        "light",
        zipf_trace(coords, LIGHT_N, kinds=("knn", "ball"), k=K, seed=seed),
        rate=LIGHT_RATE, pattern="poisson", seed=seed + 1,
    )


def _frontend():
    return Frontend(max_batch=MAX_BATCH, queue_depth=QUEUE_DEPTH,
                    degrade_at=DEGRADE_AT)


async def _solo():
    coords = _points()
    fe = _frontend()
    fe.register_tenant("light", KDTree(coords), weight=LIGHT_WEIGHT)
    try:
        return await run_open_loop(fe, [_light_load(coords)])
    finally:
        await fe.close()


async def _combined():
    coords = _points()
    fe = _frontend()
    heavy_idx = ShardedIndex(coords, SHARDS)
    fe.register_tenant("heavy", heavy_idx, weight=1.0)
    fe.register_tenant("light", KDTree(coords), weight=LIGHT_WEIGHT)
    # poisson, not bursty: the generator shares the event loop with the
    # front-end, and burst-mode arrival storms measurably delay *client
    # task wakeups* — noise from the co-located load generator, not
    # from dispatch.  Burstiness is exercised by tests and the CLI.
    heavy = TenantLoad(
        "heavy",
        zipf_trace(coords, HEAVY_N, kinds=("knn",), k=K, seed=7),
        rate=HEAVY_RATE, pattern="poisson", seed=8,
    )
    try:
        report = await run_open_loop(fe, [heavy, _light_load(coords)])
    finally:
        await fe.close()
    return report, heavy_idx


def test_load_saturation_fairness_and_degradation(benchmark):
    solo = asyncio.run(_solo())
    combined, heavy_idx = asyncio.run(_combined())

    s_light = solo.per_tenant["light"]
    c_light = combined.per_tenant["light"]
    c_heavy = combined.per_tenant["heavy"]

    # -- typed shedding: no request ever dies with an untyped error
    assert c_heavy.errors == 0 and c_light.errors == 0 and s_light.errors == 0
    for rep in (c_heavy, c_light):
        assert rep.offered == (rep.completed + rep.rejected
                               + rep.quota_rejected + rep.timeouts)

    # -- the open loop actually saturated: the heavy tenant was shed
    assert c_heavy.rejected > 0, "heavy tenant at 20k req/s must overflow"

    # -- bounded queues: high-watermark never exceeds the configured
    #    bound (+1 for the arrival observed before its own admission)
    assert combined.queue_high_watermark <= 2 * QUEUE_DEPTH + 1, (
        f"queue grew unboundedly: {combined.queue_high_watermark}"
    )

    # -- the light tenant kept getting real service under saturation
    assert c_light.completed > 0.5 * c_light.offered

    # -- degradation: heavy kNN under load degrades, is labelled, and a
    #    recorded sample verifies against exact recompute
    assert c_heavy.degraded > 0, "saturation must trigger degraded answers"
    assert c_light.degraded == 0, "KDTree tenant has no degraded path"
    assert combined.degraded_samples, "harness must record degraded samples"
    n_verified = verify_degraded(heavy_idx, combined.degraded_samples)
    assert n_verified == len(combined.degraded_samples)

    ratio = (c_light.p99 / s_light.p99) if s_light.p99 > 0 else float("inf")
    _load_records["solo"] = solo.to_json()
    _load_records["combined"] = combined.to_json()
    _load_records["light_p99_ratio"] = ratio
    _load_records["degraded_verified"] = n_verified
    _load_records["fairness_gate_applied"] = FULL_SCALE

    if FULL_SCALE:
        # -- weighted-fair dispatch bounds the light tenant's tail
        assert ratio <= MAX_FAIRNESS_RATIO, (
            f"light tenant p99 {c_light.p99 * 1e3:.2f}ms is {ratio:.2f}x its "
            f"solo p99 {s_light.p99 * 1e3:.2f}ms (limit {MAX_FAIRNESS_RATIO}x)"
        )
    run_once(benchmark, lambda: None)


def teardown_module(module):
    if not _load_records:
        return
    root = Path(__file__).resolve().parent.parent
    out = root / "BENCH_load.json"
    payload = {
        "benchmark": "async front-end: open-loop saturation, weighted-fair "
                     "dispatch, admission control, graceful degradation",
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        "gates": {
            "max_light_p99_ratio": MAX_FAIRNESS_RATIO,
            "queue_depth": QUEUE_DEPTH,
            "typed_rejections": "unconditional",
            "degraded_labelled_and_verified": "unconditional",
        },
        "config": {
            "points": LOAD_N,
            "shards": SHARDS,
            "k": K,
            "max_batch": MAX_BATCH,
            "light_rate": LIGHT_RATE,
            "heavy_rate": HEAVY_RATE,
            "light_weight": LIGHT_WEIGHT,
        },
        "runs": _load_records,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
