"""Table 1: T1 / T36h / self-relative speedup for every ParGeo module.

The paper runs each implementation on uniform data (10M points; 2d or
5d as listed) and reports single-thread time, 36-core hyper-threaded
time, and the speedup.  We measure T1 (wall-clock) and obtain T36h from
the work-depth cost model (DESIGN.md §1).  Expected shape: speedups
largest for the data-parallel query benchmarks (k-NN, range search,
β-skeleton), moderate for build-style benchmarks, smallest for the
update-heavy batch-dynamic operations — matching the paper's 8.1–46.6x
spread.
"""

import numpy as np
import pytest

from repro.bdl import BDLTree
from repro.bench import PAPER_CORES, Table, bench_scale, measure
from repro.closestpair import closest_pair
from repro.delaunay import delaunay
from repro.emst import emst
from repro.graphs import beta_skeleton, gabriel_graph, knn_graph, wspd_spanner
from repro.hull import divide_conquer_2d, divide_conquer_3d
from repro.kdtree import KDTree
from repro.seb import sampling_seb
from repro.wspd import wspd

from conftest import data, run_once

_table = Table("Table 1: runtimes and speedups (uniform data)")

N2 = bench_scale(20_000)
N5 = bench_scale(10_000)
NG = bench_scale(8_000)  # graph benchmarks (delaunay-bound)


def _row(benchmark, name, fn, *args, **kwargs):
    m = measure(name, fn, *args, **kwargs)
    _table.add(m)
    benchmark.extra_info["t1"] = m.t1
    benchmark.extra_info["speedup_36h"] = m.speedup(PAPER_CORES)
    run_once(benchmark, lambda: None)
    assert m.speedup(PAPER_CORES) >= 1.0


def test_kdtree_build_2d(benchmark):
    pts = data(f"2D-U-{N2}")
    _row(benchmark, "kd-tree Build (2d)", KDTree, pts)


def test_kdtree_build_5d(benchmark):
    pts = data(f"5D-U-{N5}")
    _row(benchmark, "kd-tree Build (5d)", KDTree, pts)


def test_kdtree_knn_2d(benchmark):
    pts = data(f"2D-U-{N2}")
    t = KDTree(pts)
    _row(benchmark, "kd-tree k-NN (2d, k=5)", t.knn, pts, 5)


def test_kdtree_range_2d(benchmark):
    from repro.kdtree import range_query_batch

    pts = data(f"2D-U-{N2}")
    t = KDTree(pts)
    side = np.sqrt(N2)
    rng = np.random.default_rng(0)
    centers = rng.uniform(0, side, size=(500, 2))
    los = centers - side * 0.02
    his = centers + side * 0.02
    _row(benchmark, "kd-tree Range Search (2d)", range_query_batch, t, los, his)


def test_bdl_construction_5d(benchmark):
    pts = data(f"5D-U-{N5}")

    def build():
        t = BDLTree(5, buffer_size=512)
        t.insert(pts)
        return t

    _row(benchmark, "Batch-dynamic kd-tree Construction (5d)", build)


def test_bdl_insert_5d(benchmark):
    pts = data(f"5D-U-{N5}")
    batch = len(pts) // 10

    def run():
        t = BDLTree(5, buffer_size=512)
        for b in range(10):
            t.insert(pts[b * batch : (b + 1) * batch])
        return t

    _row(benchmark, "Batch-dynamic kd-tree Insert (5d)", run)


def test_bdl_delete_5d(benchmark):
    pts = data(f"5D-U-{N5}")
    batch = len(pts) // 10
    t = BDLTree(5, buffer_size=512)
    t.insert(pts)

    def run():
        for b in range(10):
            t.erase(pts[b * batch : (b + 1) * batch])

    _row(benchmark, "Batch-dynamic kd-tree Delete (5d)", run)


def test_wspd_2d(benchmark):
    pts = data(f"2D-U-{N5}")
    t = KDTree(pts, leaf_size=1)
    _row(benchmark, "WSPD (2d)", wspd, t, 2.0)


def test_emst_2d(benchmark):
    pts = data(f"2D-U-{N5}")
    _row(benchmark, "EMST (2d)", emst, pts)


def test_convex_hull_2d(benchmark):
    pts = data(f"2D-U-{N2}")
    _row(benchmark, "Convex Hull (2d)", divide_conquer_2d, pts)


def test_convex_hull_3d(benchmark):
    pts = data(f"3D-U-{N2}")
    _row(benchmark, "Convex Hull (3d)", divide_conquer_3d, pts)


def test_seb_2d(benchmark):
    pts = data(f"2D-U-{N2}")
    _row(benchmark, "Smallest Enclosing Ball (2d)", sampling_seb, pts)


def test_seb_5d(benchmark):
    pts = data(f"5D-U-{N5}")
    _row(benchmark, "Smallest Enclosing Ball (5d)", sampling_seb, pts)


def test_closest_pair_2d(benchmark):
    pts = data(f"2D-U-{N2}")
    _row(benchmark, "Closest Pair (2d)", closest_pair, pts)


def test_closest_pair_3d(benchmark):
    pts = data(f"3D-U-{N2}")
    _row(benchmark, "Closest Pair (3d)", closest_pair, pts)


def test_knn_graph_2d(benchmark):
    pts = data(f"2D-U-{N2}")
    _row(benchmark, "k-NN Graph (2d, k=5)", knn_graph, pts, 5)


def test_delaunay_graph_2d(benchmark):
    pts = data(f"2D-U-{NG}")
    _row(benchmark, "Delaunay Graph (2d)", delaunay, pts)


def test_gabriel_graph_2d(benchmark):
    pts = data(f"2D-U-{NG}")
    _row(benchmark, "Gabriel Graph (2d)", gabriel_graph, pts)


def test_beta_skeleton_2d(benchmark):
    pts = data(f"2D-U-{NG}")
    _row(benchmark, "Beta-skeleton Graph (2d, b=1.5)", beta_skeleton, pts, 1.5)


def test_spanner_2d(benchmark):
    pts = data(f"2D-U-{N5}")
    _row(benchmark, "Spanner (2d, s=8)", wspd_spanner, pts, 8.0)


def teardown_module(module):
    _table.show()
    speedups = [r[3] for r in _table.rows]
    lo, hi = min(speedups), max(speedups)
    print(f"\nspeedup range {lo:.1f}x - {hi:.1f}x "
          f"(paper: 8.1x - 46.6x at 10M points on 36h cores)")
