"""§6.3: BDL-tree vs the Morton-ordered Zd-tree on 3D-U.

The paper reports the Zd-tree (Blelloch & Dobson) is much faster for
construction/insert/delete in low dimensions (highly-optimized Morton
sort) while k-NN is comparable.  Our Zd-tree stand-in is the
sorted-Morton-array structure; expected shape: Zd-tree wins updates,
k-NN within a small factor.
"""

import numpy as np

from repro.bdl import BDLTree
from repro.bench import Table, bench_scale, measure
from repro.spatialsort import ZdTree

from conftest import data, run_once

N = bench_scale(20_000)
_table = Table("Zd-tree vs BDL-tree (3D uniform)", columns=("T1", "T36h", "speedup"))
_t1 = {}


def _bench(benchmark, kind):
    pts = data(f"3D-U-{N}")
    batch = N // 10
    make = (lambda: ZdTree(3)) if kind == "Zd" else (lambda: BDLTree(3, buffer_size=512))

    def construct():
        t = make()
        t.insert(pts)
        return t

    m = measure(f"{kind} construct", construct)
    _table.add(m)
    _t1[(kind, "construct")] = m.t1

    tree = make()
    tree.insert(pts)

    m = measure(f"{kind} insert 10%", tree.insert, pts[:batch])
    _table.add(m)
    _t1[(kind, "insert")] = m.t1

    m = measure(f"{kind} delete 10%", tree.erase, pts[:batch])
    _table.add(m)
    _t1[(kind, "delete")] = m.t1

    m = measure(f"{kind} knn k=3", tree.knn, pts[: N // 4], 3)
    _table.add(m)
    _t1[(kind, "knn")] = m.t1
    run_once(benchmark, lambda: None)


def test_zdtree(benchmark):
    _bench(benchmark, "Zd")


def test_bdltree(benchmark):
    _bench(benchmark, "BDL")


def teardown_module(module):
    _table.show()
    print("\nBDL/Zd time ratios (paper: 3.3x construct, 23.1x insert, "
          "45.8x delete slower; ~1x knn):")
    for op in ("construct", "insert", "delete", "knn"):
        r = _t1[("BDL", op)] / max(_t1[("Zd", op)], 1e-12)
        print(f"  {op}: {r:.2f}x")
