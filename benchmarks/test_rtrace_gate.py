"""Request-tracing gate: overhead bound + trace integrity.

Runs the same single-tenant open-loop load through the front-end twice
— request tracing **off** (the zero-overhead baseline) and **on** (the
flight recorder, SLO tracker, phase decomposition, and span recorder
all active) — and records both into ``BENCH_rtrace.json``.

Unconditional assertions (every scale):

* every retained trace **validates**: phases are known and
  non-negative, an ``ok`` trace's phases sum to its measured latency
  within attribution tolerance, and the attached span subtree is
  closed (every span finished, one root, the root is the batch span
  the trace names, and the batch span links back to the trace id);
* retained ok-traces actually **carry span subtrees** when the span
  recorder is on — a p999 can be explained, not just measured;
* every exemplar trace id in the Prometheus exposition **resolves** to
  a trace the flight recorder retained.

Overhead gate (full scale only, like the other wall-clock gates): the
traced run's p50 stays within ``MAX_P50_OVERHEAD`` (5%) of the
untraced run's p50, or within ``ABS_FLOOR_S`` absolute, whichever is
larger.  The load runs deliberately *under* capacity so the p50 is a
repeatable ~0.3ms cache-hit round trip rather than a queueing random
walk — at that operating point 5% is ~15µs, below scheduler jitter,
so the floor is what actually binds: it caps the amplified
per-request cost of tracing (context mint + phase decomposition +
flight/SLO/histogram observation, measured ~70µs at p50) at 0.2ms.
Saturated regimes hide any per-request cost inside queueing noise;
this one is where a regression would show.  Both runs use the median
of ``REPEATS`` interleaved trials.
"""

import asyncio
import json
import os
from pathlib import Path

import numpy as np

from repro.bench import bench_scale
from repro.frontend import Frontend
from repro.frontend.load import TenantLoad, run_open_loop
from repro.kdtree import KDTree
from repro.obs.rtrace import percentile, validate_request_trace
from repro.obs.span import SpanRecorder, disable_tracing, enable_tracing
from repro.serve import zipf_trace

from conftest import run_once

FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0

N_POINTS = bench_scale(20_000)
N_REQUESTS = bench_scale(1500)
RATE = 400.0                   # req/s, comfortably under capacity
K = 8
REPEATS = 3                    # interleaved trials per configuration
MAX_P50_OVERHEAD = 0.05        # traced p50 <= 1.05x untraced p50 ...
ABS_FLOOR_S = 0.0002           # ... or within 0.2ms, whichever is larger

_records: dict = {}


def _points():
    return np.random.default_rng(21).uniform(0.0, 100.0, (N_POINTS, 2))


async def _run(coords, *, rtrace: bool):
    fe = Frontend(max_batch=64, queue_depth=512, rtrace=rtrace)
    fe.register_tenant("acme", KDTree(coords), weight=1.0)
    load = TenantLoad(
        "acme",
        zipf_trace(coords, N_REQUESTS, kinds=("knn", "ball"), k=K, seed=3),
        rate=RATE, pattern="poisson", seed=4,
    )
    try:
        report = await run_open_loop(fe, [load])
    finally:
        await fe.close()
    return report, fe


def _p50(report) -> float:
    return report.per_tenant["acme"].p50


def test_rtrace_overhead_and_integrity(benchmark):
    coords = _points()

    # interleave the configurations so drift hits both equally
    off_p50s, on_p50s = [], []
    last_fe = None
    for _ in range(REPEATS):
        report_off, _ = asyncio.run(_run(coords, rtrace=False))
        off_p50s.append(_p50(report_off))
        rec = SpanRecorder()
        enable_tracing(rec)
        try:
            report_on, last_fe = asyncio.run(_run(coords, rtrace=True))
        finally:
            disable_tracing()
        on_p50s.append(_p50(report_on))

    fe = last_fe
    retained = fe.flight.retained()
    assert retained, "the flight recorder retained nothing"

    # -- integrity: every retained trace validates, closed span trees
    #    and phase sums included
    for trt in retained:
        problems = validate_request_trace(trt)
        assert problems == [], f"trace {trt.trace_id}: {problems}"
    ok_with_spans = [t for t in retained if t.outcome == "ok" and t.spans]
    assert ok_with_spans, "no retained ok-trace carries a span subtree"

    # -- exemplars resolve to retained traces
    text = fe.metrics_text()
    ex_ids = {
        line.split('trace_id="')[1].split('"')[0]
        for line in text.splitlines() if "# {trace_id=" in line
    }
    assert ex_ids, "no exemplars in the Prometheus exposition"
    for tid in ex_ids:
        assert fe.flight.lookup(tid) is not None, (
            f"exemplar {tid} does not resolve to a retained trace"
        )

    p50_off = percentile(off_p50s, 50.0)
    p50_on = percentile(on_p50s, 50.0)
    overhead = (p50_on / p50_off - 1.0) if p50_off > 0 else 0.0

    _records["p50_untraced"] = p50_off
    _records["p50_traced"] = p50_on
    _records["p50_trials_untraced"] = off_p50s
    _records["p50_trials_traced"] = on_p50s
    _records["p50_overhead"] = overhead
    _records["p50_delta_seconds"] = p50_on - p50_off
    _records["retained"] = len(retained)
    _records["retained_with_spans"] = len(ok_with_spans)
    _records["exemplars"] = len(ex_ids)
    _records["tail_threshold"] = fe.flight.tail_threshold
    _records["overhead_gate_applied"] = FULL_SCALE

    if FULL_SCALE:
        limit = max(p50_off * (1.0 + MAX_P50_OVERHEAD), p50_off + ABS_FLOOR_S)
        assert p50_on <= limit, (
            f"tracing overhead too high: p50 {p50_on * 1e3:.3f}ms traced vs "
            f"{p50_off * 1e3:.3f}ms untraced "
            f"({overhead * 100:.1f}% > {MAX_P50_OVERHEAD * 100:.0f}%)"
        )
    run_once(benchmark, lambda: None)


def teardown_module(module):
    if not _records:
        return
    root = Path(__file__).resolve().parent.parent
    out = root / "BENCH_rtrace.json"
    payload = {
        "benchmark": "request tracing: flight recorder + SLOs + phase "
                     "decomposition overhead vs the untraced front-end",
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        "gates": {
            "max_p50_overhead": MAX_P50_OVERHEAD,
            "abs_floor_seconds": ABS_FLOOR_S,
            "trace_validation": "unconditional",
            "exemplars_resolve": "unconditional",
        },
        "config": {
            "points": N_POINTS,
            "requests": N_REQUESTS,
            "rate": RATE,
            "k": K,
            "repeats": REPEATS,
        },
        "results": _records,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
