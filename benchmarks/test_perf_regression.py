"""Performance regression gates: query engine + geometry query service.

Engine gate: measures the batched (vectorized frontier) k-NN engine
against the recursive per-query walk on the headline workload — 50k-point
self-kNN with k=10 in 2D and 7D — and records the runs into
``BENCH_knn.json`` at the repo root (self-describing records via
``EngineComparison.to_json``).  The two engines must return
bitwise-identical neighbors and charge identical work/depth; at full
scale (``REPRO_BENCH_SCALE >= 1``) the batched engine must also be at
least 5x faster, which is the point of having it.

Service gate: replays a 10k-request mixed kNN/range trace through
``repro.serve.GeometryService`` and requires (at full scale) coalesced
throughput >= 5x the one-request-at-a-time recursive loop, plus a cache
hit-rate >= 50% on a repeated trace.  Results land in
``BENCH_serve.json``.

Observability gate: on the 50k self-kNN workload, span tracing must
cost <= 5% when disabled (estimated from the per-scope disabled-path
overhead times the number of instrumented scopes the traced run
recorded) and <= 2x wall-clock when enabled; the exported Chrome trace
must pass the trace-event schema check and its per-span work/depth
totals must reconcile with the ``CostTracker``'s.  Results land in
``BENCH_obs.json``.

Cluster gate: runs the mixed kNN + ball workload of
``repro.cluster.bench.compare_cluster`` on clustered (2D-V) input and
requires (at full scale) a mean shards-touched fraction < 60% and a
simulated scatter-gather speedup at p = 36 at least the monolithic
tree's, with bitwise-equal results.  Results land in
``BENCH_cluster.json``.

Process gate: runs the same scatter-gather workload under the real
``processes`` backend at p = 1, 2, 4 via
``repro.cluster.bench.compare_procs`` and records measured wall-clock
speedup next to the simulated ``T_p`` number in ``BENCH_procs.json``.
Bitwise equality against the monolithic tree is unconditional; the
wall-clock assertions (measured speedup > 1.5x at >= 4 workers,
monotone-ish in p) only fire when the gate machine actually has >= 4
cores — the JSON records whether the gate was applied and why.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench import bench_scale, measure_engines
from repro.kdtree import KDTree, knn
from repro.serve import GeometryService, replay, run_unbatched, synthetic_trace

from conftest import data, run_once

N = bench_scale(50_000)
K = 10
FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0
MIN_RATIO = 5.0

SERVE_N = bench_scale(20_000)          # points served
SERVE_REQUESTS = bench_scale(10_000)   # trace length
MIN_SERVE_RATIO = 5.0
MIN_HIT_RATE = 0.5

MAX_TRACING_DISABLED_OVERHEAD = 0.05   # estimated, vs untraced wall-clock
MAX_TRACING_ENABLED_RATIO = 2.0        # traced vs untraced wall-clock

CLUSTER_N = bench_scale(20_000)        # points in the sharded-index gate
CLUSTER_QUERIES = bench_scale(2_000)
CLUSTER_SHARDS = 16
CLUSTER_WORKERS = 36.0
MAX_TOUCHED_FRAC = 0.6                 # mean shards touched per query

PROCS_N = bench_scale(20_000)          # points in the processes gate
PROCS_QUERIES = bench_scale(2_000)
PROCS_SHARDS = 8
PROCS_LADDER = (1, 2, 4)
MIN_PROCS_SPEEDUP = 1.5                # measured, at >= 4 workers
MIN_PROCS_CORES = 4                    # wall-clock gate needs real cores

_records: dict[str, dict] = {}
_serve_records: dict[str, dict] = {}
_obs_records: dict[str, dict] = {}
_cluster_records: dict[str, dict] = {}
_procs_records: dict[str, dict] = {}


def _bench(benchmark, ds_name: str):
    pts = data(f"{ds_name}-{N}")
    tree = KDTree(pts)
    cmp = measure_engines(
        f"knn {ds_name} n={N} k={K}", knn, tree, pts, K,
        exclude_self=True, meta={"n": N, "dims": pts.shape[1], "k": K},
    )
    db, ib = cmp.batched.result
    dr, ir = cmp.recursive.result
    assert np.array_equal(ib, ir), "engines returned different neighbors"
    assert np.array_equal(db, dr), "engines returned different distances"
    assert cmp.charges_match(), (
        f"work/depth charges diverge: batched {cmp.batched.cost} "
        f"vs recursive {cmp.recursive.cost}"
    )
    _records[ds_name] = cmp.to_json()
    print("\n" + cmp.summary())
    if FULL_SCALE:
        assert cmp.ratio >= MIN_RATIO, (
            f"batched engine only {cmp.ratio:.2f}x faster on {ds_name} "
            f"(regression gate requires >= {MIN_RATIO}x at full scale)"
        )
    run_once(benchmark, lambda: None)


def test_knn_2d_engine_ratio(benchmark):
    _bench(benchmark, "2D-U")


def test_knn_7d_engine_ratio(benchmark):
    _bench(benchmark, "7D-U")


def _assert_results_equal(served, baseline):
    assert len(served) == len(baseline)
    for a, b in zip(served, baseline):
        if isinstance(a, tuple):
            assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        else:
            assert np.array_equal(a, b)


def test_serve_coalesced_throughput(benchmark):
    """Coalesced service >= 5x the one-at-a-time recursive loop."""
    pts = data(f"2D-U-{SERVE_N}")
    trace = synthetic_trace(pts, SERVE_REQUESTS, kinds=("knn", "ball", "box"),
                            k=K, repeat_frac=0.0, seed=7)

    service = GeometryService(max_batch=1024, max_wait=0.002,
                              max_pending=4 * SERVE_REQUESTS,
                              cache_capacity=4 * SERVE_REQUESTS)
    service.register("bench", KDTree(pts))
    report = replay(service, "bench", trace)

    t0 = time.perf_counter()
    baseline = run_unbatched(KDTree(pts), trace)
    t_unbatched = time.perf_counter() - t0

    _assert_results_equal(report.results, baseline)
    ratio = t_unbatched / report.seconds if report.seconds > 0 else float("inf")
    snap = report.stats
    _serve_records["throughput"] = {
        "n": SERVE_N,
        "requests": SERVE_REQUESTS,
        "k": K,
        "mix": ["knn", "ball", "box"],
        "t_service": report.seconds,
        "t_unbatched": t_unbatched,
        "ratio": ratio,
        "req_per_s": report.throughput,
        "avg_batch_size": snap["avg_batch_size"],
        "max_batch_size": snap["max_batch_size"],
        "work_charged": snap["work_charged"],
        "depth_charged": snap["depth_charged"],
    }
    print(f"\nserve: {report.summary()}")
    print(f"unbatched: {t_unbatched:.3f}s -> service {ratio:.2f}x faster")
    if FULL_SCALE:
        assert ratio >= MIN_SERVE_RATIO, (
            f"coalesced service only {ratio:.2f}x faster than the "
            f"unbatched loop (gate requires >= {MIN_SERVE_RATIO}x at full scale)"
        )
    run_once(benchmark, lambda: None)


def test_serve_cache_hit_rate(benchmark):
    """Repeated trace must be served >= 50% from the result cache."""
    pts = data(f"2D-U-{SERVE_N}")
    trace = synthetic_trace(pts, SERVE_REQUESTS, kinds=("knn", "ball", "box"),
                            k=K, repeat_frac=0.6, seed=11)

    service = GeometryService(max_batch=1024, max_wait=0.002,
                              max_pending=4 * SERVE_REQUESTS,
                              cache_capacity=4 * SERVE_REQUESTS)
    service.register("bench", KDTree(pts))
    report = replay(service, "bench", trace)
    _assert_results_equal(report.results, run_unbatched(KDTree(pts), trace))

    snap = report.stats
    _serve_records["cache"] = {
        "n": SERVE_N,
        "requests": SERVE_REQUESTS,
        "repeat_frac": 0.6,
        "hit_rate": snap["hit_rate"],
        "cache_hits": snap["cache_hits"],
        "cache_misses": snap["cache_misses"],
        "req_per_s": report.throughput,
    }
    print(f"\nserve (repeated trace): {report.summary()}")
    assert snap["hit_rate"] >= MIN_HIT_RATE, (
        f"cache hit-rate {snap['hit_rate']:.1%} below the "
        f"{MIN_HIT_RATE:.0%} gate on a repeat_frac=0.6 trace"
    )
    run_once(benchmark, lambda: None)


def test_obs_tracing_overhead(benchmark, tmp_path):
    """Tracing must be ~free when off and cheap (< 2x) when on."""
    from repro.obs import totals, trace, validate_chrome_trace, write_chrome_trace
    from repro.obs.span import span
    from repro.parlay.workdepth import tracker

    pts = data(f"2D-U-{N}")
    tree = KDTree(pts)
    repeats = 3

    def run():
        return knn(tree, pts, K, exclude_self=True, engine="batched")

    # untraced wall-clock (the tracer hook is a global load + None check)
    t_off = float("inf")
    for _ in range(repeats):
        tracker.reset()
        t0 = time.perf_counter()
        run()
        t_off = min(t_off, time.perf_counter() - t0)
    cost_off = tracker.total()

    # traced wall-clock + the recorded span tree
    t_on = float("inf")
    spans = []
    for _ in range(repeats):
        tracker.reset()
        t0 = time.perf_counter()
        with trace("bench.knn") as rec:
            run()
        dt = time.perf_counter() - t0
        if dt < t_on:
            t_on, spans = dt, rec.spans()
    cost_on = tracker.total()

    # tracing must not change the charges at all
    assert cost_on.work == cost_off.work and cost_on.depth == cost_off.depth

    # the exported trace is schema-valid and reconciles with the tracker
    trace_path = tmp_path / "bench.trace.json"
    obj = write_chrome_trace(trace_path, spans, workers=36)
    assert validate_chrome_trace(obj) == []
    W, D = totals(spans)
    assert W == cost_on.work and D == cost_on.depth

    # disabled overhead: measured per-scope no-op cost x scopes this
    # workload instruments (the traced run's span count, minus the
    # bench-only root), as a fraction of the untraced wall-clock
    probes = 100_000
    t0 = time.perf_counter()
    for _ in range(probes):
        with span("probe"):
            pass
    per_scope = (time.perf_counter() - t0) / probes
    est_disabled = per_scope * max(len(spans) - 1, 0)
    disabled_frac = est_disabled / t_off if t_off > 0 else 0.0

    enabled_ratio = t_on / t_off if t_off > 0 else 1.0
    _obs_records["knn_50k"] = {
        "n": N, "k": K, "engine": "batched",
        "t_untraced": t_off,
        "t_traced": t_on,
        "enabled_ratio": enabled_ratio,
        "spans": len(spans),
        "per_scope_disabled_s": per_scope,
        "estimated_disabled_overhead_frac": disabled_frac,
        "work": cost_on.work,
        "depth": cost_on.depth,
    }
    print(f"\nobs: untraced {t_off:.3f}s, traced {t_on:.3f}s "
          f"({enabled_ratio:.2f}x), {len(spans)} spans, "
          f"disabled overhead ~{disabled_frac:.2%}")
    if FULL_SCALE:
        assert disabled_frac <= MAX_TRACING_DISABLED_OVERHEAD, (
            f"disabled tracing costs ~{disabled_frac:.1%} of the untraced "
            f"run (gate: <= {MAX_TRACING_DISABLED_OVERHEAD:.0%})"
        )
        assert enabled_ratio <= MAX_TRACING_ENABLED_RATIO, (
            f"enabled tracing is {enabled_ratio:.2f}x the untraced run "
            f"(gate: <= {MAX_TRACING_ENABLED_RATIO}x)"
        )
    run_once(benchmark, lambda: None)


def test_cluster_scatter_gather(benchmark):
    """Sharded-index gate: on clustered input the router must prune
    (mean shards-touched fraction well below 1.0) while staying exactly
    equivalent to the monolithic tree, and the scatter-gather DAG must
    simulate a better speedup at p workers under the work–depth model."""
    from repro.cluster.bench import compare_cluster, summary

    pts = data(f"2D-V-{CLUSTER_N}")
    rec = compare_cluster(
        pts,
        n_shards=CLUSTER_SHARDS,
        k=K,
        n_queries=CLUSTER_QUERIES,
        workers=CLUSTER_WORKERS,
    )
    _cluster_records["v_clustered"] = rec
    print("\n" + summary(rec))

    # self-describing record: every consumer-facing field is present
    # and numeric (schema check, like the obs trace validation)
    for key in ("n", "dims", "k", "knn_queries", "ball_queries",
                "workers", "shards_initial", "shards_final", "tp_ratio"):
        assert isinstance(rec[key], (int, float)), key
    for side in ("mono", "sharded"):
        for key in ("wall_s", "work", "depth", "t1", "tp", "speedup"):
            assert isinstance(rec[side][key], (int, float)), (side, key)
    for key in ("queries", "shard_visits", "shards", "mean_touched_frac"):
        assert isinstance(rec["pruning"][key], (int, float)), key

    # exactness is unconditional — sharding must never change answers
    assert rec["knn_distances_equal"], "sharded kNN diverged from monolithic"
    assert rec["ball_results_equal"], "sharded ball diverged from monolithic"

    if FULL_SCALE:
        frac = rec["pruning"]["mean_touched_frac"]
        assert frac < MAX_TOUCHED_FRAC, (
            f"pruning too weak: {frac:.1%} of shards touched per query "
            f"(gate: < {MAX_TOUCHED_FRAC:.0%})"
        )
        assert rec["sharded"]["speedup"] >= rec["mono"]["speedup"], (
            f"scatter-gather speedup {rec['sharded']['speedup']:.2f}x "
            f"below monolithic {rec['mono']['speedup']:.2f}x at "
            f"p={CLUSTER_WORKERS:g}"
        )
    run_once(benchmark, lambda: None)


def test_procs_measured_speedup(benchmark):
    """Processes-backend gate: real wall-clock speedup must tell the
    same qualitative story as the simulated ``T_p`` number.  Exactness
    (bitwise vs the monolithic tree) and work/depth invariance across
    ``p`` are unconditional; the measured-speedup assertions only apply
    on machines with enough cores to show one."""
    from repro.cluster.bench import compare_procs, summary_procs

    pts = data(f"2D-V-{PROCS_N}")
    rec = compare_procs(
        pts,
        n_shards=PROCS_SHARDS,
        k=K,
        n_queries=PROCS_QUERIES,
        procs=PROCS_LADDER,
    )
    cores = rec["cpu_count"]
    gated = FULL_SCALE and cores >= MIN_PROCS_CORES
    rec["gate"] = {
        "applied": gated,
        "reason": (
            "full scale, enough cores" if gated
            else f"cpu_count={cores} < {MIN_PROCS_CORES}" if FULL_SCALE
            else "reduced scale"
        ),
        "min_measured_speedup": MIN_PROCS_SPEEDUP,
        "min_cores": MIN_PROCS_CORES,
    }
    _procs_records["v_clustered"] = rec
    print("\n" + summary_procs(rec))

    # exactness is unconditional — real parallelism must never change
    # answers, no matter how many processes served the slabs
    assert rec["knn_distances_equal"], "processes backend diverged on kNN"
    assert rec["ball_results_equal"], "processes backend diverged on ball"

    # the cost model is machine-independent: every p charges the same
    # work/depth, so T_p simulation is a pure function of p
    runs = rec["runs"]
    charges = {(r["work"], r["depth"]) for r in runs.values()}
    assert len(charges) == 1, f"work/depth drifted across p: {charges}"
    sims = [runs[str(p)]["sim_speedup"] for p in PROCS_LADDER]
    assert all(b >= a for a, b in zip(sims, sims[1:])), (
        f"simulated speedup not monotone in p: {sims}"
    )

    if gated:
        top = runs[str(max(PROCS_LADDER))]
        assert top["measured_speedup"] > MIN_PROCS_SPEEDUP, (
            f"measured speedup only {top['measured_speedup']:.2f}x at "
            f"p={max(PROCS_LADDER)} (gate requires > {MIN_PROCS_SPEEDUP}x "
            f"on a {cores}-core machine)"
        )
        # monotone-ish: each step up in p must not lose more than 20%
        meas = [runs[str(p)]["measured_speedup"] for p in PROCS_LADDER]
        assert all(b >= 0.8 * a for a, b in zip(meas, meas[1:])), (
            f"measured speedup regressed with more workers: {meas}"
        )
    run_once(benchmark, lambda: None)


def teardown_module(module):
    root = Path(__file__).resolve().parent.parent
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    if _records:
        out = root / "BENCH_knn.json"
        payload = {
            "benchmark": "self-kNN, batched vs recursive query engine",
            "scale": scale,
            "datasets": _records,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    if _obs_records:
        out = root / "BENCH_obs.json"
        payload = {
            "benchmark": "span tracing overhead: disabled estimate + enabled ratio",
            "scale": scale,
            "gates": {
                "max_disabled_overhead_frac": MAX_TRACING_DISABLED_OVERHEAD,
                "max_enabled_ratio": MAX_TRACING_ENABLED_RATIO,
            },
            "runs": _obs_records,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    if _cluster_records:
        out = root / "BENCH_cluster.json"
        payload = {
            "benchmark": "sharded index: scatter-gather + geometric pruning "
                         "vs monolithic kd-tree",
            "scale": scale,
            "gates": {
                "max_mean_touched_frac": MAX_TOUCHED_FRAC,
                "min_speedup": "monolithic speedup at same p",
                "workers": CLUSTER_WORKERS,
            },
            "runs": _cluster_records,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    if _procs_records:
        out = root / "BENCH_procs.json"
        payload = {
            "benchmark": "processes backend: measured vs simulated "
                         "scatter-gather speedup",
            "scale": scale,
            "gates": {
                "min_measured_speedup": MIN_PROCS_SPEEDUP,
                "at_workers": max(PROCS_LADDER),
                "min_cores": MIN_PROCS_CORES,
            },
            "runs": _procs_records,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    if _serve_records:
        out = root / "BENCH_serve.json"
        payload = {
            "benchmark": "geometry query service: coalesced vs unbatched, cache",
            "scale": scale,
            "gates": {"min_throughput_ratio": MIN_SERVE_RATIO,
                      "min_hit_rate": MIN_HIT_RATE},
            "runs": _serve_records,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
