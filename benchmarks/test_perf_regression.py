"""Query-engine performance regression gate.

Measures the batched (vectorized frontier) k-NN engine against the
recursive per-query walk on the headline workload — 50k-point self-kNN
with k=10 in 2D and 7D — and records the wall-clock ratio into
``BENCH_knn.json`` at the repo root.  The two engines must return
bitwise-identical neighbors and charge identical work/depth; at full
scale (``REPRO_BENCH_SCALE >= 1``) the batched engine must also be at
least 5x faster, which is the point of having it.
"""

import json
import os
from pathlib import Path

import numpy as np

from repro.bench import bench_scale, measure_engines
from repro.kdtree import KDTree, knn

from conftest import data, run_once

N = bench_scale(50_000)
K = 10
FULL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0")) >= 1.0
MIN_RATIO = 5.0

_records: dict[str, dict] = {}


def _bench(benchmark, ds_name: str):
    pts = data(f"{ds_name}-{N}")
    tree = KDTree(pts)
    cmp = measure_engines(f"knn {ds_name} n={N} k={K}", knn, tree, pts, K,
                          exclude_self=True)
    db, ib = cmp.batched.result
    dr, ir = cmp.recursive.result
    assert np.array_equal(ib, ir), "engines returned different neighbors"
    assert np.array_equal(db, dr), "engines returned different distances"
    assert cmp.charges_match(), (
        f"work/depth charges diverge: batched {cmp.batched.cost} "
        f"vs recursive {cmp.recursive.cost}"
    )
    _records[ds_name] = {
        "n": N,
        "k": K,
        "t1_batched": cmp.batched.t1,
        "t1_recursive": cmp.recursive.t1,
        "ratio": cmp.ratio,
        "work": cmp.batched.cost.work,
        "depth": cmp.batched.cost.depth,
    }
    print("\n" + cmp.summary())
    if FULL_SCALE:
        assert cmp.ratio >= MIN_RATIO, (
            f"batched engine only {cmp.ratio:.2f}x faster on {ds_name} "
            f"(regression gate requires >= {MIN_RATIO}x at full scale)"
        )
    run_once(benchmark, lambda: None)


def test_knn_2d_engine_ratio(benchmark):
    _bench(benchmark, "2D-U")


def test_knn_7d_engine_ratio(benchmark):
    _bench(benchmark, "7D-U")


def teardown_module(module):
    if not _records:
        return
    out = Path(__file__).resolve().parent.parent / "BENCH_knn.json"
    payload = {
        "benchmark": "self-kNN, batched vs recursive query engine",
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        "datasets": _records,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
