"""Smoke tests that the examples and documented API actually run.

These keep the deliverables honest: every example script must execute
end-to-end (scaled down via monkeypatched generators where needed), and
the README quickstart snippet must be valid code.
"""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def _run_example(name, monkeypatch):
    """Execute an example as __main__ with shrunken datasets."""
    import repro
    import repro.generators.synthetic as synth

    # shrink every generator so examples run in seconds
    originals = {
        "uniform": synth.uniform,
        "visual_var": synth.visual_var,
    }

    def small(fn, cap):
        def wrapper(n, d, seed=0, **kw):
            return fn(min(n, cap), d, seed=seed, **kw)

        return wrapper

    monkeypatch.setattr(repro, "uniform", small(originals["uniform"], 2000))
    monkeypatch.setattr(repro, "visual_var", small(originals["visual_var"], 1500))

    def tiny_dataset(name, seed=0):
        # rewrite the size suffix down
        parts = name.split("-")
        return synth.DATASET_KINDS[parts[1].upper()](1500, int(parts[0][0]), seed=seed)

    monkeypatch.setattr(repro, "dataset", tiny_dataset)
    import repro.generators as gen
    from repro.generators.scans import thai_statue as real_thai

    monkeypatch.setattr(
        gen, "thai_statue", lambda n=1000, seed=7: real_thai(min(n, 1500), seed=seed)
    )
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "spatial_graphs.py",
        "dynamic_points.py",
        "clustering_pipeline.py",
        "spatial_analytics.py",
    ],
)
def test_example_runs(script, monkeypatch, capsys):
    _run_example(script, monkeypatch)
    out = capsys.readouterr().out
    assert len(out) > 0


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        import repro

        pts = repro.dataset("2D-U-2K", seed=0)
        hull = repro.convex_hull(pts)
        ball = repro.smallest_enclosing_ball(pts)
        tree = repro.KDTree(pts)
        dists, ids = tree.knn(pts.coords[:10], k=5)
        inside = tree.range_query_box([0, 0], [50, 50])
        bdl = repro.BDLTree(dim=2)
        bdl.insert(pts.coords)
        bdl.erase(pts.coords[:100])
        edges, w = repro.emst(pts.coords[:500])
        labels = repro.dbscan(pts.coords, eps=2.0, min_pts=8)
        g = repro.gabriel_graph(pts.coords[:300]).to_networkx()
        assert len(hull) >= 3
        assert ball.radius > 0
        assert dists.shape == (10, 5)
        assert bdl.size() == len(pts) - 100
        assert len(edges) == 499
        assert len(labels) == len(pts)
        assert g.number_of_nodes() == 300

    def test_all_documented_exports_exist(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_submodule_all_exports_exist(self):
        import importlib

        for mod in (
            "repro.parlay",
            "repro.core",
            "repro.kdtree",
            "repro.bdl",
            "repro.hull",
            "repro.seb",
            "repro.wspd",
            "repro.emst",
            "repro.closestpair",
            "repro.delaunay",
            "repro.graphs",
            "repro.spatialsort",
            "repro.clustering",
            "repro.generators",
            "repro.bench",
            "repro.obs",
            "repro.serve",
            "repro.cluster",
        ):
            m = importlib.import_module(mod)
            for name in getattr(m, "__all__", []):
                assert hasattr(m, name), f"{mod}.{name} missing"

    def test_public_functions_have_docstrings(self):
        import repro

        undocumented = [
            name
            for name in repro.__all__
            if callable(getattr(repro, name)) and not getattr(repro, name).__doc__
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestCLIHelp:
    """The documented subcommands and flags exist in the parser."""

    def test_top_level_subcommands(self):
        from repro.cli import build_parser

        text = build_parser().format_help()
        for cmd in ("generate", "hull", "knn", "serve-replay",
                    "cluster-bench", "profile"):
            assert cmd in text, f"subcommand {cmd} missing from help"

    def test_shards_flag_on_knn_and_serve_replay(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        for cmd in ("knn", "serve-replay"):
            assert "--shards" in sub.choices[cmd].format_help(), cmd
        bench_help = sub.choices["cluster-bench"].format_help()
        for flag in ("--shards", "--workers", "--json-out"):
            assert flag in bench_help, flag
