"""Tests for semisort/group-by and histogram primitives."""

import numpy as np
import pytest

from repro.parlay import (
    count_sort_by_bucket,
    group_by,
    histogram,
    reduce_by_key,
    semisort_indices,
)


class TestSemisort:
    def test_groups_are_contiguous_and_complete(self, rng):
        keys = rng.integers(0, 20, size=1000)
        order, offsets, gkeys = semisort_indices(keys)
        assert np.array_equal(np.sort(order), np.arange(1000))
        for g in range(len(gkeys)):
            seg = keys[order[offsets[g] : offsets[g + 1]]]
            assert np.all(seg == gkeys[g])
        assert offsets[-1] == 1000

    def test_stable_within_group(self):
        keys = np.array([1, 0, 1, 0, 1])
        order, offsets, gkeys = semisort_indices(keys)
        zeros = order[offsets[0] : offsets[1]]
        assert np.array_equal(zeros, [1, 3])

    def test_empty(self):
        order, offsets, gkeys = semisort_indices(np.empty(0, dtype=int))
        assert len(order) == 0 and len(gkeys) == 0

    def test_single_group(self):
        order, offsets, gkeys = semisort_indices(np.full(10, 7))
        assert len(gkeys) == 1 and offsets.tolist() == [0, 10]

    def test_float_keys(self, rng):
        keys = rng.choice([0.5, 1.5, 2.5], size=100)
        _, _, gkeys = semisort_indices(keys)
        assert set(gkeys.tolist()) <= {0.5, 1.5, 2.5}


class TestGroupBy:
    def test_values_grouping(self):
        keys = np.array([2, 1, 2, 1])
        vals = np.array([10.0, 20.0, 30.0, 40.0])
        g = group_by(keys, vals)
        assert np.array_equal(g[1], [20.0, 40.0])
        assert np.array_equal(g[2], [10.0, 30.0])

    def test_indices_default(self):
        g = group_by(np.array([5, 5, 6]))
        assert np.array_equal(g[5], [0, 1])
        assert np.array_equal(g[6], [2])


class TestReduceByKey:
    def test_add(self):
        k, v = reduce_by_key(np.array([0, 1, 0, 1, 2]), np.array([1.0, 2, 3, 4, 5]))
        assert np.array_equal(k, [0, 1, 2])
        assert np.array_equal(v, [4.0, 6.0, 5.0])

    def test_min_max(self):
        keys = np.array([0, 0, 1, 1])
        vals = np.array([3.0, 1.0, 7.0, 9.0])
        _, vmin = reduce_by_key(keys, vals, "min")
        _, vmax = reduce_by_key(keys, vals, "max")
        assert vmin.tolist() == [1.0, 7.0]
        assert vmax.tolist() == [3.0, 9.0]

    def test_matches_bincount(self, rng):
        keys = rng.integers(0, 50, size=2000)
        vals = rng.normal(size=2000)
        k, v = reduce_by_key(keys, vals)
        ref = np.bincount(keys, weights=vals, minlength=50)
        for kk, vv in zip(k, v):
            assert vv == pytest.approx(ref[kk], rel=1e-9, abs=1e-12)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            reduce_by_key(np.arange(3), np.arange(4))

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            reduce_by_key(np.arange(3), np.arange(3), "mul")


class TestHistogram:
    def test_counts(self, rng):
        keys = rng.integers(0, 10, size=5000)
        h = histogram(keys, 10)
        assert np.array_equal(h, np.bincount(keys, minlength=10))
        assert h.sum() == 5000

    def test_empty_buckets(self):
        h = histogram(np.array([0, 0, 5]), 8)
        assert h[0] == 2 and h[5] == 1 and h[1:5].sum() == 0

    def test_count_sort(self, rng):
        keys = rng.integers(0, 6, size=300)
        order, offsets = count_sort_by_bucket(keys, 6)
        sk = keys[order]
        assert np.all(np.diff(sk) >= 0)
        for b in range(6):
            assert offsets[b + 1] - offsets[b] == (keys == b).sum()
