"""Tests for repro.serve: coalescing, caching, versioning, backpressure."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdl import BDLTree
from repro.kdtree import KDTree, all_nearest_neighbors, knn
from repro.serve import (
    Coalescer,
    GeometryService,
    Overloaded,
    PendingRequest,
    RequestTimeout,
    ResultCache,
    ServiceClosed,
    Ticket,
    TraceMismatch,
    UnknownDataset,
    load_trace,
    make_key,
    open_loop_arrivals,
    query_digest,
    replay,
    run_unbatched,
    save_trace,
    synthetic_trace,
    validate_trace,
    zipf_trace,
)
from repro.serve.cache import MISS


def _pts(n=200, d=2, seed=0):
    return np.random.default_rng(seed).uniform(0, 100, (n, d))


def _service(index, name="data", **kw):
    kw.setdefault("max_batch", 64)
    svc = GeometryService(**kw)
    svc.register(name, index)
    return svc


def _results_equal(a, b):
    if isinstance(a, tuple):
        return np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
    return np.array_equal(a, b)


# ----------------------------------------------------------------------
# bitwise identity vs per-request recursive queries
# ----------------------------------------------------------------------
class TestIdentity:
    def test_knn_matches_recursive_kdtree(self):
        pts = _pts(300)
        tree = KDTree(pts)
        svc = _service(tree)
        qs = pts[:25] + 0.001
        tickets = [svc.submit("data", "knn", q, k=5) for q in qs]
        svc.flush()
        dr, ir = knn(tree, qs, 5, engine="recursive")
        for j, t in enumerate(tickets):
            d, i = t.result(0)
            assert np.array_equal(d, dr[j])
            assert np.array_equal(i, ir[j])

    def test_knn_matches_recursive_bdl(self):
        pts = _pts(300)
        bdl = BDLTree(dim=2, buffer_size=32)
        bdl.insert(pts)
        svc = _service(bdl)
        qs = pts[:20]
        tickets = [svc.submit("data", "knn", q, k=4) for q in qs]
        svc.flush()
        dr, ir = bdl.knn(qs, 4, engine="recursive")
        for j, t in enumerate(tickets):
            d, i = t.result(0)
            assert np.array_equal(d, dr[j]) and np.array_equal(i, ir[j])

    @pytest.mark.parametrize("dynamic", [False, True])
    def test_range_queries_match_single(self, dynamic):
        pts = _pts(400, d=3, seed=1)
        if dynamic:
            index = BDLTree(dim=3, buffer_size=64)
            index.insert(pts)
        else:
            index = KDTree(pts)
        svc = _service(index)
        centers = pts[:15]
        box_t = [svc.submit("data", "box", (c - 5, c + 5)) for c in centers]
        ball_t = [svc.submit("data", "ball", c, radius=7.5) for c in centers]
        svc.flush()
        for j, c in enumerate(centers):
            got_box = box_t[j].result(0)
            got_ball = ball_t[j].result(0)
            want_box = index.range_query_box(c - 5, c + 5)
            want_ball = index.range_query_ball(c, 7.5)
            if not dynamic:
                want_box = index.gids[want_box]
                want_ball = index.gids[want_ball]
            assert np.array_equal(got_box, want_box)
            assert np.array_equal(got_ball, want_ball)

    def test_allnn_matches_recursive(self):
        pts = _pts(150, seed=2)
        svc = _service(KDTree(pts))
        d, i = svc.allnn("data")
        dr, ir = all_nearest_neighbors(pts, engine="recursive")
        assert np.allclose(d, dr) and np.array_equal(i, ir)

    def test_exclude_self_param_distinguished(self):
        pts = _pts(100, seed=3)
        tree = KDTree(pts)
        svc = _service(tree)
        d_in, i_in = svc.knn("data", pts[0], 3, exclude_self=False)
        d_ex, i_ex = svc.knn("data", pts[0], 3, exclude_self=True)
        assert i_in[0] == 0 and i_ex[0] != 0
        # both cached under distinct keys: repeat hits don't cross over
        d2, i2 = svc.knn("data", pts[0], 3, exclude_self=False)
        assert np.array_equal(i2, i_in) and np.array_equal(d2, d_in)


# ----------------------------------------------------------------------
# coalescing behaviour + metrics
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_compatible_requests_join_one_batch(self):
        pts = _pts(200)
        svc = _service(KDTree(pts), max_batch=64)
        tickets = [svc.submit("data", "knn", pts[j], k=3) for j in range(10)]
        svc.flush()
        for t in tickets:
            t.result(0)
            assert t.metrics.batch_size == 10
            assert not t.metrics.cache_hit
            assert t.metrics.work > 0
        snap = svc.snapshot()
        assert snap["batches"] == 1
        assert snap["max_batch_size"] == 10

    def test_mixed_kinds_single_flush(self):
        pts = _pts(200)
        svc = _service(KDTree(pts), max_batch=64)
        svc.submit("data", "knn", pts[0], k=3)
        svc.submit("data", "knn", pts[1], k=5)          # different k: own group
        svc.submit("data", "ball", pts[2], radius=4.0)
        svc.submit("data", "box", (pts[3] - 1, pts[3] + 1))
        assert svc.pending() == 4
        served = svc.flush()
        assert served == 4 and svc.pending() == 0
        assert svc.snapshot()["batches"] == 1  # one coalesced dispatch

    def test_max_batch_splits_dispatches(self):
        pts = _pts(100)
        svc = _service(KDTree(pts), max_batch=8)
        for j in range(20):
            svc.submit("data", "knn", pts[j], k=2)
        svc.flush()
        snap = svc.snapshot()
        assert snap["batches"] == 3  # 8 + 8 + 4
        assert snap["max_batch_size"] <= 8

    def test_duplicate_requests_share_execution(self):
        pts = _pts(100)
        svc = _service(KDTree(pts), cache_capacity=0)  # no cache: dedup only
        t1 = svc.submit("data", "knn", pts[0], k=3)
        t2 = svc.submit("data", "knn", pts[0], k=3)
        svc.flush()
        r1, r2 = t1.result(0), t2.result(0)
        assert _results_equal(r1, r2)
        # both resolved by a single execution of one unique request
        assert t1.metrics.batch_size == 1 and t2.metrics.batch_size == 1

    def test_coalescer_takes_oldest_dataset_first(self):
        c = Coalescer()

        def req(ds, j):
            return PendingRequest(
                dataset=ds, kind="knn", params=(("k", 1),), payload=None,
                digest=bytes([j]), ticket=Ticket(), enqueued_at=float(j),
                deadline=None,
            )

        c.add(req("b", 0))
        c.add(req("a", 1))
        c.add(req("b", 2))
        batch = c.take_batch(10)
        assert [r.dataset for r in batch] == ["b", "b"]
        assert len(c) == 1
        assert [r.dataset for r in c.take_batch(10)] == ["a"]


# ----------------------------------------------------------------------
# cache: hits, versioning, epochs
# ----------------------------------------------------------------------
class TestCache:
    def test_repeat_hits_cache(self):
        pts = _pts(200)
        svc = _service(KDTree(pts))
        first = svc.knn("data", pts[5], 4)
        t = svc.submit("data", "knn", pts[5], k=4)
        assert t.done() and t.metrics.cache_hit  # resolved at submit
        assert t.metrics.queue_wait == 0.0
        assert _results_equal(t.result(0), first)
        assert svc.snapshot()["cache_hits"] == 1

    def test_mutation_invalidates_via_version(self):
        pts = _pts(300, seed=4)
        bdl = BDLTree(dim=2, buffer_size=32)
        bdl.insert(pts[:150])
        svc = _service(bdl)
        q = pts[0]
        svc.knn("data", q, 3)
        v0 = bdl.version
        bdl.insert(pts[150:])  # service-external mutation
        assert bdl.version == v0 + 1
        t = svc.submit("data", "knn", q, k=3)
        assert not t.done()  # old cache entry unreachable under new version
        svc.flush()
        d, i = t.result(0)
        dr, ir = bdl.knn(q[None, :], 3, engine="recursive")
        assert np.array_equal(d, dr[0]) and np.array_equal(i, ir[0])

    def test_erase_bumps_kdtree_version(self):
        pts = _pts(200, seed=5)
        tree = KDTree(pts)
        svc = _service(tree)
        v0 = tree.version
        ids1 = svc.range_ball("data", pts[0], 10.0)
        tree.erase(pts[:20])
        assert tree.version == v0 + 1
        ids2 = svc.range_ball("data", pts[0], 10.0)
        want = tree.gids[tree.range_query_ball(pts[0], 10.0)]
        assert np.array_equal(ids2, want)
        assert not np.array_equal(ids1, ids2) or len(ids1) == len(ids2)

    def test_reregistration_epoch_prevents_collisions(self):
        pts_a = _pts(100, seed=6)
        pts_b = _pts(100, seed=7)
        svc = GeometryService(max_batch=32)
        svc.register("data", KDTree(pts_a))
        da, ia = svc.knn("data", pts_a[0], 3)
        svc.register("data", KDTree(pts_b))  # same name, same version=0
        db, ib = svc.knn("data", pts_a[0], 3)
        want_d, want_i = knn(KDTree(pts_b), pts_a[0][None, :], 3, engine="recursive")
        assert np.array_equal(db, want_d[0]) and np.array_equal(ib, want_i[0])

    def test_lru_eviction_bounded(self):
        pts = _pts(200, seed=8)
        svc = _service(KDTree(pts), cache_capacity=4)
        for j in range(12):
            svc.knn("data", pts[j], 2)
        snap = svc.snapshot()
        assert snap["cache_size"] <= 4
        assert snap["cache_evictions"] >= 8

    def test_result_cache_unit(self):
        c = ResultCache(2)
        k1 = make_key("d", 0, 0, "knn", (("k", 1),), b"a")
        k2 = make_key("d", 0, 0, "knn", (("k", 1),), b"b")
        k3 = make_key("d", 0, 1, "knn", (("k", 1),), b"a")  # new version
        assert k1 != k3
        c.put(k1, "r1")
        c.put(k2, "r2")
        assert c.get(k1) == "r1"
        c.put(k3, "r3")  # evicts k2 (k1 was just touched)
        assert c.get(k2) is MISS
        assert c.get(k1) == "r1" and c.get(k3) == "r3"

    def test_query_digest_distinguishes_shape_and_value(self):
        a = np.array([1.0, 2.0])
        assert query_digest(a) != query_digest(np.array([1.0, 2.5]))
        assert query_digest(np.array([[1.0, 2.0]])) != query_digest(a)


# ----------------------------------------------------------------------
# backpressure, timeouts, errors
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_overload_typed_rejection_10x(self):
        pts = _pts(100, seed=9)
        svc = _service(KDTree(pts), max_pending=20, cache_capacity=0)
        accepted, rejected = 0, 0
        for j in range(200):  # 10x oversubscription
            try:
                svc.submit("data", "knn", pts[j % 100] + j * 1e-6, k=2)
                accepted += 1
            except Overloaded as e:
                rejected += 1
                assert e.pending == 20 and e.limit == 20
        assert accepted == 20 and rejected == 180
        assert svc.pending() == 20  # queue stays bounded
        snap = svc.snapshot()
        assert snap["rejected"] == 180
        svc.flush()
        assert svc.pending() == 0

    def test_expired_deadline_rejected_at_dispatch(self):
        pts = _pts(100, seed=10)
        svc = _service(KDTree(pts))
        t = svc.submit("data", "knn", pts[0], k=2, timeout=0.005)
        time.sleep(0.02)
        svc.flush()
        with pytest.raises(RequestTimeout):
            t.result(0)
        assert svc.snapshot()["timeouts"] == 1

    def test_result_wait_timeout(self):
        pts = _pts(100, seed=11)
        svc = _service(KDTree(pts))
        t = svc.submit("data", "knn", pts[0], k=2)  # never flushed
        with pytest.raises(RequestTimeout):
            t.result(0.01)

    def test_unknown_dataset_and_bad_requests(self):
        pts = _pts(50, seed=12)
        svc = _service(KDTree(pts))
        with pytest.raises(UnknownDataset):
            svc.submit("nope", "knn", pts[0], k=2)
        with pytest.raises(ValueError):
            svc.submit("data", "knn", pts[0])  # missing k
        with pytest.raises(ValueError):
            svc.submit("data", "ball", pts[0])  # missing radius
        with pytest.raises(ValueError):
            svc.submit("data", "warp", pts[0])
        with pytest.raises(ValueError):
            svc.submit("data", "knn", pts[0][:1], k=2)  # wrong dim
        with pytest.raises(TypeError):
            svc.register("bad", object())

    def test_closed_service_refuses(self):
        pts = _pts(50, seed=13)
        svc = _service(KDTree(pts))
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit("data", "knn", pts[0], k=2)


# ----------------------------------------------------------------------
# background dispatcher
# ----------------------------------------------------------------------
class TestDispatcher:
    def test_threaded_dispatch_resolves(self):
        pts = _pts(200, seed=14)
        tree = KDTree(pts)
        with _service(tree, max_wait=0.001).start() as svc:
            d, i = svc.knn("data", pts[3], 4, timeout=5.0)
            dr, ir = knn(tree, pts[3][None, :], 4, engine="recursive")
            assert np.array_equal(d, dr[0]) and np.array_equal(i, ir[0])

    def test_concurrent_clients_identical_results(self):
        pts = _pts(300, seed=15)
        tree = KDTree(pts)
        dr, ir = knn(tree, pts[:40], 3, engine="recursive")
        svc = _service(tree, max_wait=0.001).start()
        errors = []

        def client(lo, hi):
            try:
                for j in range(lo, hi):
                    d, i = svc.knn("data", pts[j], 3, timeout=10.0)
                    assert np.array_equal(d, dr[j]) and np.array_equal(i, ir[j])
            except Exception as e:  # pragma: no cover
                errors.append(e)

        threads = [threading.Thread(target=client, args=(j * 10, (j + 1) * 10))
                   for j in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        svc.stop()
        assert not errors
        assert svc.snapshot()["completed"] == 40

    def test_stop_drains_pending(self):
        pts = _pts(100, seed=16)
        svc = _service(KDTree(pts), max_wait=0.05)
        tickets = [svc.submit("data", "knn", pts[j], k=2) for j in range(5)]
        svc.start()
        svc.stop()
        for t in tickets:
            t.result(1.0)


# ----------------------------------------------------------------------
# traces & replay
# ----------------------------------------------------------------------
class TestTrace:
    def test_save_load_roundtrip(self, tmp_path):
        pts = _pts(100, seed=17)
        trace = synthetic_trace(pts, 50, repeat_frac=0.2, seed=1)
        p = tmp_path / "trace.jsonl"
        save_trace(p, trace)
        assert load_trace(p) == trace

    def test_replay_matches_unbatched(self):
        pts = _pts(250, seed=18)
        trace = synthetic_trace(pts, 120, kinds=("knn", "ball", "box", "allnn"),
                                repeat_frac=0.3, seed=2)
        svc = _service(KDTree(pts), max_batch=128, max_pending=512,
                       cache_capacity=512)
        report = replay(svc, "data", trace)
        assert report.completed == len(trace) and report.errors == 0
        baseline = run_unbatched(KDTree(pts), trace)
        for a, b in zip(report.results, baseline):
            assert _results_equal(a, b)
        assert report.throughput > 0
        assert "hit-rate" in report.summary()

    def test_replay_with_mutations_matches_unbatched(self):
        rng = np.random.default_rng(19)
        pts = rng.uniform(0, 100, (200, 2))
        extra = rng.uniform(0, 100, (60, 2))
        trace = synthetic_trace(pts, 40, kinds=("knn", "ball"), seed=3)
        trace.insert(10, {"op": "insert", "pts": extra[:30].tolist()})
        trace.insert(25, {"op": "erase", "pts": pts[:20].tolist()})
        trace.insert(30, {"op": "insert", "pts": extra[30:].tolist()})

        def build():
            b = BDLTree(dim=2, buffer_size=32)
            b.insert(pts)
            return b

        svc = GeometryService(max_batch=64, max_pending=512)
        svc.register("data", build())
        report = replay(svc, "data", trace)
        baseline = run_unbatched(build(), trace)
        assert report.errors == 0
        for a, b in zip(report.results, baseline):
            if a is None:
                assert b is None  # mutation ops
                continue
            assert _results_equal(a, b)


# ----------------------------------------------------------------------
# property test: cached answers never go stale across BDL mutations
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "erase", "query"]),
                  st.integers(0, 10**6)),
        min_size=3, max_size=12,
    ),
    seed=st.integers(0, 10**6),
)
def test_cache_never_stale_under_interleaved_mutations(ops, seed):
    """After any interleaving of batch inserts/deletes, a (possibly
    cached) service kNN answer always matches a fresh recursive query
    against the current tree."""
    rng = np.random.default_rng(seed)
    pool = rng.uniform(0, 100, (400, 2))
    inserted = 0

    bdl = BDLTree(dim=2, buffer_size=16)
    bdl.insert(pool[:64])
    inserted = 64
    svc = GeometryService(max_batch=64, cache_capacity=256)
    svc.register("data", bdl)
    queries = pool[:8]  # fixed query points -> repeats exercise the cache

    for op, x in ops:
        if op == "insert" and inserted < len(pool):
            m = min(1 + x % 32, len(pool) - inserted)
            bdl.insert(pool[inserted:inserted + m])
            inserted += m
        elif op == "erase" and len(bdl) > 8:
            alive_before = len(bdl)
            m = 1 + x % min(16, alive_before - 4)
            # erase a slice of points known to be present
            start = x % max(inserted - m, 1)
            bdl.erase(pool[start:start + m])
        q = queries[x % len(queries)]
        k = min(3, len(bdl))
        d, i = svc.knn("data", q, k)
        dr, ir = bdl.knn(q[None, :], k, engine="recursive")
        assert np.array_equal(d, dr[0]), "stale cached distances"
        assert np.array_equal(i, ir[0]), "stale cached neighbors"


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "erase", "query"]),
                  st.integers(0, 10**6)),
        min_size=3, max_size=10,
    ),
    seed=st.integers(0, 10**6),
)
def test_cache_never_stale_with_sharded_index(ops, seed):
    """Same never-stale property through a ShardedIndex: a batch insert
    or erase lands in *one or a few shards* but must bump the facade's
    version, so the service cache can never replay a pre-mutation
    answer."""
    from repro.cluster import ShardedIndex

    rng = np.random.default_rng(seed)
    pool = rng.uniform(0, 100, (400, 2))
    idx = ShardedIndex(pool[:64], 4)
    inserted = 64
    svc = GeometryService(max_batch=64, cache_capacity=256)
    svc.register("data", idx)
    queries = pool[:8]  # fixed query points -> repeats exercise the cache

    for op, x in ops:
        if op == "insert" and inserted < len(pool):
            m = min(1 + x % 32, len(pool) - inserted)
            v0 = idx.version
            idx.insert(pool[inserted:inserted + m])
            assert idx.version > v0, "insert must bump the facade version"
            inserted += m
        elif op == "erase" and len(idx) > 8:
            m = 1 + x % min(16, len(idx) - 4)
            start = x % max(inserted - m, 1)
            idx.erase(pool[start:start + m])
        q = queries[x % len(queries)]
        k = min(3, len(idx))
        d, i = svc.knn("data", q, k)
        dr, ir = idx.knn(q[None, :], k, engine="recursive")
        assert np.array_equal(d, dr[0]), "stale cached distances"
        assert np.array_equal(i, ir[0]), "stale cached neighbors"


# ----------------------------------------------------------------------
# lifecycle: idempotent, drain-safe close
# ----------------------------------------------------------------------
class TestClose:
    def test_double_close_is_noop(self):
        svc = _service(KDTree(_pts(50, seed=20)))
        svc.close()
        svc.close()
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.knn("data", _pts(50, seed=20)[0], 2)

    def test_close_drains_queued_requests(self):
        pts = _pts(300, seed=21)
        svc = _service(KDTree(pts), max_batch=16)
        tickets = [svc.submit("data", "knn", pts[i], k=3) for i in range(40)]
        svc.close()  # manual mode: everything still queued at close time
        for i, t in enumerate(tickets):
            d, ids = t.result(0)  # must already be resolved
            dr, ir = KDTree(pts).knn(pts[i][None, :], 3)
            assert np.array_equal(d, dr[0]) and np.array_equal(ids, ir[0])

    def test_close_while_threaded_dispatcher_running(self):
        pts = _pts(400, seed=22)
        svc = _service(KDTree(pts), max_wait=0.001)
        svc.start()
        tickets = [svc.submit("data", "knn", pts[i], k=2) for i in range(30)]
        svc.close()
        svc.close()
        # every in-flight request completed or got a typed error
        for t in tickets:
            try:
                d, ids = t.result(1.0)
                assert len(d) == 2
            except ServiceClosed:
                pass

    def test_flush_single_dataset_leaves_others_queued(self):
        pts_a, pts_b = _pts(100, seed=23), _pts(100, seed=24)
        svc = _service(KDTree(pts_a), name="a")
        svc.register("b", KDTree(pts_b))
        ta = svc.submit("a", "knn", pts_a[0], k=2)
        tb = svc.submit("b", "knn", pts_b[0], k=2)
        assert svc.pending_for("a") == 1 and svc.pending_for("b") == 1
        svc.flush("a")
        assert ta.done() and not tb.done()
        assert svc.pending_for("a") == 0 and svc.pending_for("b") == 1
        svc.flush()
        assert tb.done()
        svc.close()


# ----------------------------------------------------------------------
# trace validation and load generators
# ----------------------------------------------------------------------
class TestTraceValidation:
    def test_good_trace_passes(self):
        pts = _pts(120, seed=25)
        trace = synthetic_trace(pts, 50, seed=1)
        validate_trace(trace, len(pts), pts.shape[1])

    def test_oversized_k_names_the_mismatch(self):
        trace = [{"op": "knn", "q": [1.0, 2.0], "k": 500}]
        with pytest.raises(TraceMismatch, match="larger dataset"):
            validate_trace(trace, 100, 2)

    def test_dim_mismatch_is_typed(self):
        trace = [{"op": "knn", "q": [1.0, 2.0, 3.0], "k": 2}]
        with pytest.raises(TraceMismatch, match="dim"):
            validate_trace(trace, 100, 2)
        with pytest.raises(TraceMismatch):
            validate_trace([{"op": "ball", "c": [0.0], "r": 1.0}], 100, 2)
        with pytest.raises(TraceMismatch):
            validate_trace([{"op": "box", "lo": [0.0, 0.0], "hi": [1.0]}],
                           100, 2)

    def test_inserts_grow_the_live_count(self):
        # k=150 is only valid because the insert lands first
        trace = [
            {"op": "insert", "pts": [[0.0, 0.0]] * 100},
            {"op": "knn", "q": [0.0, 0.0], "k": 150},
        ]
        validate_trace(trace, 100, 2)
        with pytest.raises(TraceMismatch):
            validate_trace(list(reversed(trace)), 100, 2)

    def test_unknown_op_rejected(self):
        with pytest.raises(TraceMismatch, match="unknown"):
            validate_trace([{"op": "teleport"}], 10, 2)


class TestLoadGenerators:
    def test_zipf_trace_repeats_verbatim(self):
        pts = _pts(500, seed=26)
        trace = zipf_trace(pts, 400, kinds=("knn",), k=4, s=1.5, hot=32,
                           seed=2)
        assert len(trace) == 400
        payloads = [tuple(op["q"]) for op in trace]
        counts = {}
        for p in payloads:
            counts[p] = counts.get(p, 0) + 1
        top = max(counts.values())
        # Zipf s=1.5 over 32 keys: the hottest key dominates, and the
        # repeats are verbatim so the service cache can see them
        assert top > 400 / 32
        assert len(counts) <= 32

    def test_zipf_trace_replayable(self):
        pts = _pts(200, seed=27)
        trace = zipf_trace(pts, 60, seed=3)
        validate_trace(trace, len(pts), pts.shape[1])
        svc = _service(KDTree(pts))
        rep = replay(svc, "data", trace)
        assert rep.errors == 0 and rep.completed == 60
        assert rep.stats["hit_rate"] > 0.0  # verbatim repeats hit
        svc.close()

    def test_open_loop_arrivals_poisson(self):
        offs = open_loop_arrivals(20_000, rate=100.0, seed=4)
        assert len(offs) == 20_000
        assert offs[0] == 0.0
        gaps = np.diff(offs)
        assert np.all(gaps >= 0)
        assert np.mean(gaps) == pytest.approx(1 / 100.0, rel=0.05)

    def test_open_loop_arrivals_bursty_preserves_mean_rate(self):
        offs = open_loop_arrivals(40_000, rate=200.0, pattern="bursty",
                                  burst_factor=8.0, burst_frac=0.1, seed=5)
        gaps = np.diff(offs)
        assert np.mean(gaps) == pytest.approx(1 / 200.0, rel=0.1)
        # bursty arrivals are overdispersed relative to poisson
        pois = np.diff(open_loop_arrivals(40_000, rate=200.0, seed=5))
        cv = np.std(gaps) / np.mean(gaps)
        cv_pois = np.std(pois) / np.mean(pois)
        assert cv > cv_pois * 1.05

    def test_open_loop_rejects_bad_args(self):
        with pytest.raises(ValueError):
            open_loop_arrivals(10, rate=0.0)
        with pytest.raises(ValueError):
            open_loop_arrivals(10, rate=1.0, pattern="fractal")


class TestReplayErrorSurfacing:
    def test_first_error_recorded(self):
        pts = _pts(80, seed=28)
        svc = _service(KDTree(pts))
        trace = [
            {"op": "knn", "q": pts[0].tolist(), "k": 2},
            {"op": "allnn"},
        ]
        svc.register("data", KDTree(pts))  # fresh epoch, fine
        rep = replay(svc, "data", trace)
        assert rep.errors == 0 and rep.first_error is None
        svc.close()
