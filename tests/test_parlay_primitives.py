"""Unit tests for the data-parallel sequence primitives."""

import numpy as np
import pytest

from repro.parlay import (
    pack,
    pack_index,
    pcount,
    pfilter,
    pflatten,
    pmap,
    pmax_index,
    pmin_index,
    preduce,
    pscan,
    pscan_inclusive,
    split_blocks,
    tracker,
)
from repro.parlay.primitives import query_blocks


class TestMapReduce:
    def test_pmap_elementwise(self):
        out = pmap(lambda a: a * 2, np.arange(10))
        assert np.array_equal(out, np.arange(10) * 2)

    def test_preduce_add(self):
        assert preduce(np.arange(101, dtype=float)) == 5050.0

    def test_preduce_min_max(self):
        a = np.array([3.0, -1.0, 7.0, 2.0])
        assert preduce(a, "min") == -1.0
        assert preduce(a, "max") == 7.0

    def test_preduce_empty_add_is_zero(self):
        assert preduce(np.empty(0)) == 0.0

    def test_preduce_empty_min_raises(self):
        with pytest.raises(ValueError):
            preduce(np.empty(0), "min")

    def test_preduce_unknown_op(self):
        with pytest.raises(ValueError):
            preduce(np.ones(3), "mul")

    def test_pmin_pmax_index(self):
        a = np.array([5.0, 1.0, 9.0, 1.0])
        assert pmin_index(a) == 1  # first minimum
        assert pmax_index(a) == 2

    def test_pmin_index_empty_raises(self):
        with pytest.raises(ValueError):
            pmin_index(np.empty(0))


class TestScan:
    def test_exclusive_scan(self):
        prefix, total = pscan(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.array_equal(prefix, [0.0, 1.0, 3.0, 6.0])
        assert total == 10.0

    def test_exclusive_scan_empty(self):
        prefix, total = pscan(np.empty(0))
        assert len(prefix) == 0 and total == 0.0

    def test_inclusive_scan(self):
        out = pscan_inclusive(np.array([1, 2, 3]))
        assert np.array_equal(out, [1, 3, 6])

    def test_scan_matches_cumsum_random(self, rng):
        a = rng.normal(size=1000)
        prefix, total = pscan(a)
        assert np.allclose(prefix[1:], np.cumsum(a)[:-1])
        assert np.isclose(total, a.sum())


class TestPack:
    def test_pfilter_keeps_order(self):
        a = np.arange(10)
        out = pfilter(a, a % 2 == 0)
        assert np.array_equal(out, [0, 2, 4, 6, 8])

    def test_pack_alias(self):
        assert pack is pfilter

    def test_pack_index(self):
        mask = np.array([True, False, True, True])
        assert np.array_equal(pack_index(mask), [0, 2, 3])

    def test_pcount(self):
        assert pcount(np.array([True, False, True])) == 2

    def test_pflatten(self):
        out = pflatten([np.array([1, 2]), np.array([3]), np.array([], dtype=int)])
        assert np.array_equal(out, [1, 2, 3])

    def test_pflatten_empty_list(self):
        assert len(pflatten([])) == 0

    def test_pflatten_empty_list_respects_dtype(self):
        # regression: the empty-input path used to ignore ``dtype`` and
        # always hand back float64, breaking int consumers downstream
        out = pflatten([], dtype=np.int64)
        assert out.dtype == np.int64 and len(out) == 0

    def test_pflatten_empty_list_defaults_to_float64(self):
        assert pflatten([]).dtype == np.float64

    def test_pflatten_coerces_dtype(self):
        out = pflatten([np.array([1, 2]), np.array([3])], dtype=np.float64)
        assert out.dtype == np.float64
        assert np.array_equal(out, [1.0, 2.0, 3.0])


class TestSplitBlocks:
    def test_covers_range_exactly(self):
        blocks = split_blocks(100, 7)
        assert blocks[0][0] == 0 and blocks[-1][1] == 100
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c

    def test_more_blocks_than_items(self):
        blocks = split_blocks(3, 10)
        assert len(blocks) == 3
        assert all(hi - lo == 1 for lo, hi in blocks)

    def test_zero_items(self):
        assert split_blocks(0, 4) == []


class TestQueryBlocks:
    def test_small_batch_is_one_block(self):
        # regression: the old worker-count floor shattered a 10-query
        # batch into single-query shards; now grain bounds the split
        assert query_blocks(10, grain=64) == [(0, 10)]

    def test_block_count_is_ceil_n_over_grain(self):
        blocks = query_blocks(1000, grain=64)
        assert len(blocks) == -(-1000 // 64)
        assert blocks[0][0] == 0 and blocks[-1][1] == 1000
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c

    def test_blocks_never_finer_than_grain(self):
        for n in (1, 63, 64, 65, 129, 512):
            blocks = query_blocks(n, grain=64)
            assert len(blocks) == -(-n // 64)
            assert all(hi > lo for lo, hi in blocks)

    def test_zero_queries(self):
        assert query_blocks(0, grain=64) == []


class TestCostCharging:
    def test_primitives_charge_work(self):
        tracker.reset()
        preduce(np.arange(1000, dtype=float))
        c = tracker.total()
        assert c.work >= 1000
        assert 0 < c.depth < 100

    def test_map_charges_linear_work(self):
        tracker.reset()
        pmap(lambda a: a + 1, np.arange(512))
        assert tracker.total().work >= 512
