"""Tests for WSPD, BCCP, union-find, and EMST."""

import numpy as np
import pytest

from repro.emst import UnionFind, bccp_points, emst
from repro.kdtree import KDTree
from repro.wspd import wspd, well_separated


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = UnionFind(6)
        assert uf.union(0, 1)
        assert not uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert uf.n_components == 4

    def test_transitive_chain(self):
        uf = UnionFind(100)
        for i in range(99):
            uf.union(i, i + 1)
        assert uf.n_components == 1
        assert uf.connected(0, 99)


class TestWSPD:
    def test_requires_singleton_leaves(self, rng):
        t = KDTree(rng.normal(size=(50, 2)), leaf_size=8)
        with pytest.raises(ValueError):
            wspd(t)

    def test_coverage_exact_once(self, rng):
        """Every unordered point pair is covered by exactly one WSP."""
        pts = rng.uniform(0, 10, size=(120, 2))
        t = KDTree(pts, leaf_size=1)
        count = {}
        for p in wspd(t, 2.0):
            for u in t.node_points(p.a):
                for v in t.node_points(p.b):
                    key = (min(u, v), max(u, v))
                    count[key] = count.get(key, 0) + 1
        n = len(pts)
        assert len(count) == n * (n - 1) // 2
        assert set(count.values()) == {1}

    def test_pairs_are_separated(self, rng):
        pts = rng.uniform(0, 10, size=(200, 3))
        t = KDTree(pts, leaf_size=1)
        for p in wspd(t, 2.0):
            assert well_separated(t, p.a, p.b, 2.0)

    def test_linear_pair_count(self):
        """s=2 WSPD has O(n) pairs; verify sub-quadratic growth."""
        from repro.generators import uniform

        n1, n2 = 500, 2000
        c1 = len(wspd(KDTree(uniform(n1, 2, seed=1).coords, leaf_size=1)))
        c2 = len(wspd(KDTree(uniform(n2, 2, seed=1).coords, leaf_size=1)))
        assert c2 < (n2 / n1) ** 1.4 * c1

    def test_higher_separation_more_pairs(self, rng):
        pts = rng.uniform(0, 10, size=(300, 2))
        t = KDTree(pts, leaf_size=1)
        assert len(wspd(t, 4.0)) > len(wspd(t, 2.0))

    def test_invalid_separation(self, rng):
        t = KDTree(rng.normal(size=(10, 2)), leaf_size=1)
        with pytest.raises(ValueError):
            wspd(t, 0)


class TestBCCP:
    def test_matches_bruteforce(self, rng):
        for _ in range(5):
            red = rng.uniform(0, 5, size=(200, 3))
            blue = rng.uniform(3, 8, size=(150, 3))
            d, i, j = bccp_points(red, blue)
            from repro.core.distance import cross_dists_sq

            ref = np.sqrt(cross_dists_sq(red, blue).min())
            assert d == pytest.approx(ref, abs=1e-12)
            assert np.linalg.norm(red[i] - blue[j]) == pytest.approx(d)

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            bccp_points(np.empty((0, 2)), rng.normal(size=(3, 2)))


class TestEMST:
    def test_spanning_and_acyclic(self, rng):
        pts = rng.uniform(0, 10, size=(400, 2))
        e, w = emst(pts)
        assert len(e) == 399
        uf = UnionFind(400)
        for u, v in e:
            assert uf.union(int(u), int(v))  # no cycles
        assert uf.n_components == 1  # spanning

    def test_total_weight_matches_networkx(self, rng):
        import networkx as nx
        from scipy.spatial.distance import pdist, squareform

        for d in (2, 3):
            pts = rng.uniform(0, 10, size=(150, d))
            e, w = emst(pts)
            G = nx.from_numpy_array(squareform(pdist(pts)))
            ref = sum(dd["weight"] for _, _, dd in nx.minimum_spanning_tree(G).edges(data=True))
            assert w.sum() == pytest.approx(ref, rel=1e-9)

    def test_weights_are_euclidean(self, rng):
        pts = rng.uniform(0, 10, size=(100, 2))
        e, w = emst(pts)
        ref = np.linalg.norm(pts[e[:, 0]] - pts[e[:, 1]], axis=1)
        assert np.allclose(w, ref)

    def test_tiny_inputs(self):
        e, w = emst(np.array([[0.0, 0.0]]))
        assert len(e) == 0
        e, w = emst(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert len(e) == 1 and w[0] == pytest.approx(1.0)

    def test_clustered_data(self):
        """EMST must bridge clusters with exactly the shortest links."""
        a = np.random.default_rng(0).normal(size=(50, 2)) * 0.1
        b = a + np.array([100.0, 0.0])
        pts = np.vstack([a, b])
        e, w = emst(pts)
        long_edges = w[w > 50]
        assert len(long_edges) == 1  # exactly one bridge
