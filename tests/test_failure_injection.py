"""Failure-injection and adversarial-input tests.

These exercise the code paths a clean random workload never reaches:
degenerate geometry, pathological distributions, mid-operation
exceptions, and stressed concurrency.
"""

import numpy as np
import pytest
from scipy.spatial import ConvexHull, cKDTree

import repro
from repro.bdl import BDLTree
from repro.hull import quickhull3d_seq, reservation_quickhull3d
from repro.kdtree import KDTree
from repro.parlay import parallel_do, use_backend
from repro.seb import welzl_mtf


class TestDegenerateGeometry:
    def test_hull2d_many_duplicates(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0, 10, size=(20, 2))
        pts = np.vstack([base] * 10)  # every point 10 times
        ref = set(ConvexHull(pts).vertices.tolist())
        h = set(repro.convex_hull(pts, "quickhull").tolist())
        # duplicated hull corners are interchangeable: compare coordinates
        assert {tuple(pts[i]) for i in h} == {tuple(pts[i]) for i in ref}

    def test_hull3d_points_on_grid(self):
        """Highly structured (coplanar-rich) input: vertex sets may
        differ from Qhull by epsilon-classification of coplanar points,
        but the hull *geometry* must match (volume + containment)."""
        from repro.hull import hull_volume_3d, points_in_hull_3d

        xs, ys, zs = np.meshgrid(np.arange(5.0), np.arange(5.0), np.arange(5.0))
        pts = np.column_stack([xs.ravel(), ys.ravel(), zs.ravel()])
        pts += np.random.default_rng(1).normal(scale=1e-9, size=pts.shape)
        quickhull3d_seq(pts)  # must not crash
        assert hull_volume_3d(pts) == pytest.approx(ConvexHull(pts).volume, rel=1e-6)
        assert points_in_hull_3d(pts, pts, tol=1e-6).all()

    def test_seb_all_identical_points(self):
        pts = np.ones((100, 3))
        b = welzl_mtf(pts)
        assert b.radius == pytest.approx(0.0, abs=1e-12)

    def test_seb_two_distinct_values(self):
        pts = np.vstack([np.zeros((50, 2)), np.ones((50, 2))])
        b = welzl_mtf(pts)
        assert b.radius == pytest.approx(np.sqrt(2) / 2, rel=1e-9)

    def test_kdtree_collinear_points(self):
        pts = np.column_stack([np.arange(1000.0), np.zeros(1000)])
        t = KDTree(pts)
        t.check_invariants()
        d, i = t.knn(pts[:10], 3)
        assert np.all(np.isfinite(d))

    def test_kdtree_extreme_coordinates(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(500, 2)) * 1e12
        pts[0] = [1e15, -1e15]
        t = KDTree(pts)
        d, i = t.knn(pts[:20], 4)
        dd, _ = cKDTree(pts).query(pts[:20], k=4)
        assert np.allclose(np.sqrt(d), dd, rtol=1e-9)

    def test_closest_pair_tiny_separation(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1000, size=(500, 2))
        pts = np.vstack([pts, pts[123] + 1e-12])
        d, i, j = repro.closest_pair(pts)
        assert d < 1e-11
        assert {i, j} == {123, 500}


class TestSkewedDistributions:
    def test_hull3d_skewed_exponential(self):
        """Tang et al.'s stack-overflow trigger: long-tailed data."""
        rng = np.random.default_rng(4)
        pts = rng.exponential(scale=1.0, size=(5000, 3)) ** 3
        from repro.hull import hull_volume_3d, pseudo_hull3d

        h, _ = pseudo_hull3d(pts, threshold=32)
        # epsilon-classification of the long tail may differ from Qhull;
        # require geometric agreement: same hull volume, all Qhull
        # vertices either in our hull set or inside our hull
        assert hull_volume_3d(pts) == pytest.approx(ConvexHull(pts).volume, rel=1e-6)
        assert len(h) >= 4

    def test_kdtree_clustered_extreme_density(self):
        rng = np.random.default_rng(5)
        dense = rng.normal(size=(5000, 2)) * 1e-6
        sparse = rng.uniform(-100, 100, size=(50, 2))
        pts = np.vstack([dense, sparse])
        t = KDTree(pts, split="spatial")
        t.check_invariants()
        d, i = t.knn(pts[:10], 5)
        dd, _ = cKDTree(pts).query(pts[:10], k=5)
        assert np.allclose(np.sqrt(d), dd)

    def test_bdl_adversarial_sorted_insertions(self):
        rng = np.random.default_rng(6)
        pts = np.sort(rng.uniform(0, 100, size=(2000, 2)), axis=0)
        t = BDLTree(2, buffer_size=128)
        for i in range(0, 2000, 100):
            t.insert(pts[i : i + 100])
        d, _ = t.knn(pts[:30], 3)
        dd, _ = cKDTree(pts).query(pts[:30], k=3)
        assert np.allclose(np.sqrt(d), dd)


class TestExceptionSafety:
    def test_parallel_do_partial_failure_leaves_tracker_balanced(self):
        from repro.parlay import tracker

        tracker.reset()

        def boom():
            raise RuntimeError("injected")

        with pytest.raises(RuntimeError):
            parallel_do([lambda: 1, boom, lambda: 2])
        # the cost stack must not be corrupted by the exception
        tracker.charge(10, 1)
        assert tracker.total().work >= 10

    def test_scheduler_usable_after_failure(self):
        def boom():
            raise ValueError("x")

        with pytest.raises(ValueError):
            parallel_do([boom])
        assert parallel_do([lambda: 41, lambda: 1]) == [41, 1]

    def test_threads_backend_exception(self):
        with use_backend("threads", 4):
            def boom():
                raise KeyError("thread fail")

            with pytest.raises(KeyError):
                parallel_do([lambda: 1, boom, lambda: 3, lambda: 4])
            assert parallel_do([lambda: 7]) == [7]


class TestConcurrencyStress:
    def test_reservation_hull_under_thread_stress(self):
        """Run the reservation hull repeatedly under real threads with a
        large batch: result must equal Qhull's every time."""
        rng = np.random.default_rng(7)
        pts = rng.normal(size=(2500, 3))
        ref = set(ConvexHull(pts).vertices.tolist())
        with use_backend("threads", 8):
            for _ in range(3):
                h, _ = reservation_quickhull3d(pts, batch=64)
                assert set(h.tolist()) == ref

    def test_bdl_threaded_updates(self):
        rng = np.random.default_rng(8)
        pts = rng.uniform(0, 50, size=(3000, 3))
        with use_backend("threads", 4):
            t = BDLTree(3, buffer_size=256)
            for b in range(10):
                t.insert(pts[b * 300 : (b + 1) * 300])
            t.erase(pts[:900])
            d, _ = t.knn(pts[:40], 4)
        dd, _ = cKDTree(pts[900:]).query(pts[:40], k=4)
        assert np.allclose(np.sqrt(d), dd)

    def test_concurrent_tree_queries_share_no_state(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(0, 10, size=(2000, 2))
        t = KDTree(pts)
        with use_backend("threads", 8):
            outs = parallel_do(
                [lambda q=q: t.knn(pts[q : q + 50], 3) for q in range(0, 400, 50)]
            )
        ref = cKDTree(pts)
        for qi, (d, i) in zip(range(0, 400, 50), outs):
            dd, _ = ref.query(pts[qi : qi + 50], k=3)
            assert np.allclose(np.sqrt(d), dd)
