"""Tests for the Hilbert curve, radix sort, all-NN, and BDL range search."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.bdl import BDLTree
from repro.generators import uniform, visual_var
from repro.kdtree import all_nearest_neighbors
from repro.parlay import radix_argsort, radix_sort
from repro.spatialsort import (
    hilbert_codes,
    hilbert_sort,
    morton_sort,
)


class TestHilbert:
    def test_4x4_grid_is_a_bijection(self):
        g = np.array([[x, y] for x in range(4) for y in range(4)], dtype=float)
        c = hilbert_codes(g, bits=2)
        assert sorted(c.tolist()) == list(range(16))

    def test_curve_is_connected_on_grid(self):
        """Consecutive Hilbert cells are grid neighbors (the defining
        property the Z-order curve lacks)."""
        n = 8
        g = np.array([[x, y] for x in range(n) for y in range(n)], dtype=float)
        c = hilbert_codes(g, bits=3)
        order = np.argsort(c)
        steps = np.abs(np.diff(g[order], axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_better_locality_than_morton(self):
        for d in (2, 3):
            pts = uniform(4000, d, seed=9).coords
            gh = np.linalg.norm(np.diff(hilbert_sort(pts), axis=0), axis=1).mean()
            gm = np.linalg.norm(np.diff(morton_sort(pts), axis=0), axis=1).mean()
            assert gh < gm

    def test_better_locality_than_morton_high_dims(self):
        """Skilling's transpose is dimension-generic: in 4D/5D the
        Hilbert order still beats Z-order on mean neighbor gap."""
        for d in (4, 5):
            pts = uniform(4000, d, seed=11).coords
            gh = np.linalg.norm(np.diff(hilbert_sort(pts), axis=0), axis=1).mean()
            gm = np.linalg.norm(np.diff(morton_sort(pts), axis=0), axis=1).mean()
            assert gh < gm

    def test_high_dim_codes_are_valid(self, rng):
        """d >= 4 is accepted; codes are deterministic and fit the
        default bits budget (bits * d <= 63)."""
        for d in (4, 5, 8):
            pts = rng.normal(size=(200, d))
            c = hilbert_codes(pts)
            assert c.dtype == np.uint64
            assert np.array_equal(c, hilbert_codes(pts))

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ValueError):
            hilbert_codes(rng.normal(size=(5, 1)))  # d < 2
        with pytest.raises(ValueError):
            hilbert_codes(rng.normal(size=(5, 2)), bits=40)  # 80 > 63 bits
        with pytest.raises(ValueError):
            hilbert_codes(rng.normal(size=(5, 4)), bits=16)  # 64 > 63 bits

    def test_empty(self):
        assert len(hilbert_codes(np.empty((0, 2)))) == 0

    def test_deterministic(self, rng):
        pts = rng.normal(size=(100, 3))
        assert np.array_equal(hilbert_codes(pts), hilbert_codes(pts))


class TestRadixSort:
    def test_matches_numpy(self, rng):
        keys = rng.integers(0, 1 << 50, size=10_000).astype(np.uint64)
        assert np.array_equal(radix_sort(keys), np.sort(keys))

    def test_stable(self):
        keys = np.array([3, 1, 3, 1, 3], dtype=np.uint64)
        order = radix_argsort(keys)
        ones = order[keys[order] == 1]
        assert np.array_equal(ones, np.sort(ones))

    def test_small_and_empty(self):
        assert len(radix_argsort(np.empty(0, dtype=np.uint64))) == 0
        assert radix_argsort(np.array([5], dtype=np.uint64)).tolist() == [0]

    def test_rejects_floats(self, rng):
        with pytest.raises(ValueError):
            radix_argsort(rng.normal(size=10))

    def test_single_pass_small_keys(self, rng):
        keys = rng.integers(0, 100, size=5000)
        assert np.array_equal(radix_sort(keys), np.sort(keys))


class TestAllNN:
    def test_matches_scipy(self, rng):
        for d in (2, 3, 5):
            pts = rng.uniform(0, 10, size=(2000, d))
            dist, idx = all_nearest_neighbors(pts)
            dd, ii = cKDTree(pts).query(pts, k=2)
            assert np.allclose(dist, dd[:, 1])
            # indices may differ under exact ties; distances decide
            tie_free = dd[:, 1] < np.nextafter(dd[:, 1], np.inf)
            assert np.allclose(
                np.linalg.norm(pts - pts[idx], axis=1), dd[:, 1]
            )

    def test_clustered(self):
        pts = visual_var(3000, 2, seed=4).coords
        dist, idx = all_nearest_neighbors(pts)
        dd, _ = cKDTree(pts).query(pts, k=2)
        assert np.allclose(dist, dd[:, 1])

    def test_no_self_matches(self, rng):
        pts = rng.normal(size=(500, 2))
        _, idx = all_nearest_neighbors(pts)
        assert np.all(idx != np.arange(500))

    def test_duplicates_pair_up(self):
        pts = np.vstack([np.zeros((2, 2)), np.ones((3, 2))])
        dist, idx = all_nearest_neighbors(pts)
        assert np.allclose(dist[:2], 0)

    def test_too_small(self):
        with pytest.raises(ValueError):
            all_nearest_neighbors(np.zeros((1, 2)))


class TestBDLRange:
    def test_box_across_trees_and_buffer(self, rng):
        pts = rng.uniform(0, 10, size=(1500, 2))
        t = BDLTree(2, buffer_size=127)  # odd size -> nonempty buffer
        for b in range(0, 1500, 300):
            t.insert(pts[b : b + 300])
        got = set(t.range_query_box([3, 3], [6, 6]).tolist())
        ref = set(np.flatnonzero(np.all((pts >= 3) & (pts <= 6), axis=1)).tolist())
        assert got == ref

    def test_ball_respects_deletions(self, rng):
        pts = rng.uniform(0, 10, size=(1000, 3))
        t = BDLTree(3, buffer_size=128)
        t.insert(pts)
        t.erase(pts[:400])
        got = set(t.range_query_ball([5, 5, 5], 3.0).tolist())
        keep = pts[400:]
        ref_local = cKDTree(keep).query_ball_point([5.0, 5, 5], 3.0)
        ref = {r + 400 for r in ref_local}
        assert got == ref

    def test_empty_result(self):
        t = BDLTree(2)
        assert len(t.range_query_box([0, 0], [1, 1])) == 0
