"""White-box tests of the hull machinery internals."""

import numpy as np
import pytest

from repro.hull.facets3d import FacetHull3D, build_initial_tetrahedron
from repro.hull.incremental2d import _EdgeHull2D, _init_hull


class TestFacetHull3DInternals:
    @pytest.fixture
    def hull(self, rng):
        pts = rng.normal(size=(200, 3))
        return build_initial_tetrahedron(pts)

    def test_unit_normals(self, hull):
        for f in range(4):
            assert np.linalg.norm(hull.normal[f]) == pytest.approx(1.0)

    def test_conflict_lists_partition_outside_points(self, hull):
        """Every point is either a corner, inside the tetra, or in
        exactly one conflict list."""
        assigned = np.concatenate([hull.fpts[f] for f in range(4)])
        assert len(assigned) == len(np.unique(assigned))
        for f in range(4):
            for pid in hull.fpts[f]:
                assert hull.facet_of[pid] == f
        inside = np.flatnonzero(hull.facet_of < 0)
        for pid in inside:
            for f in range(4):
                d = float(hull.pts[pid] @ hull.normal[f] - hull.offset[f])
                assert d <= hull.eps

    def test_visible_set_is_connected_region(self, hull):
        pid = int(hull.fpts[0][0]) if len(hull.fpts[0]) else None
        if pid is None:
            pytest.skip("no conflicts on facet 0")
        vis = hull.visible_set(pid)
        assert int(hull.facet_of[pid]) in vis
        for f in vis:
            assert hull.visible_one(f, pid)

    def test_horizon_is_closed_cycle(self, hull):
        for f0 in range(4):
            if not len(hull.fpts[f0]):
                continue
            pid = int(hull.fpts[f0][0])
            vis = hull.visible_set(pid)
            ridges = hull.horizon(vis)
            # every vertex appears exactly once as a ridge start and end
            starts = [u for (u, v, g) in ridges]
            ends = [v for (u, v, g) in ridges]
            assert sorted(starts) == sorted(set(starts))
            assert sorted(starts) == sorted(ends)
            break

    def test_insert_point_maintains_neighbor_symmetry(self, hull):
        inserted = 0
        for f in range(4):
            if len(hull.fpts[f]):
                pid = int(hull.far[f][1])
                vis = hull.visible_set(pid)
                hull.insert_point(pid, vis)
                inserted += 1
                break
        assert inserted
        for f in range(len(hull.va)):
            if not hull.alive[f]:
                continue
            for g in hull.nbr[f]:
                assert g >= 0 and hull.alive[g]
                assert f in hull.nbr[g]

    def test_check_convex_after_insertions(self, rng):
        pts = rng.normal(size=(300, 3))
        from repro.hull import quickhull3d_seq

        quickhull3d_seq(pts)  # public API; then verify via fresh build
        h = build_initial_tetrahedron(pts)
        # finish it manually
        while True:
            f = next(
                (f for f in range(len(h.va)) if h.alive[f] and h.far[f][1] >= 0),
                None,
            )
            if f is None:
                break
            pid = h.far[f][1]
            h.insert_point(pid, h.visible_set(pid))
        assert h.check_convex() <= h.eps * 10


class TestEdgeHull2DInternals:
    @pytest.fixture
    def hull2(self, rng):
        pts = rng.normal(size=(100, 2))
        h, live = _init_hull(pts)
        return h, live

    def test_initial_triangle_is_circular(self, hull2):
        h, _ = hull2
        e = 0
        seen = []
        for _ in range(3):
            seen.append(e)
            e = h.enext[e]
        assert e == 0 and sorted(seen) == [0, 1, 2]
        for e in range(3):
            assert h.eprev[h.enext[e]] == e

    def test_conflicts_visible_and_unique(self, hull2):
        h, live = hull2
        for e in range(3):
            for pid in h.epts[e]:
                assert h.visible_one(e, int(pid))
                assert h.facet_of[pid] == e
        all_pts = np.concatenate([h.epts[e] for e in range(3)])
        assert len(all_pts) == len(np.unique(all_pts))

    def test_far_cache_is_true_maximum(self, hull2):
        h, _ = hull2
        for e in range(3):
            if len(h.epts[e]) == 0:
                continue
            dists = h.vis_dist(e, h.epts[e])
            assert h.far[e][0] == pytest.approx(float(dists.max()))

    def test_insert_point_splices_consistently(self, hull2):
        h, live = hull2
        pid = int(live[0])
        chain = h.visible_chain(pid)
        n_alive_before = sum(h.alive)
        h.insert_point(pid, chain)
        assert sum(h.alive) == n_alive_before - len(chain) + 2
        # walk the hull: circular, consistent, contains pid
        start = next(e for e in range(len(h.eu)) if h.alive[e])
        verts = []
        e = start
        for _ in range(sum(h.alive)):
            assert h.alive[e]
            assert h.ev[e] == h.eu[h.enext[e]]
            verts.append(h.eu[e])
            e = h.enext[e]
        assert e == start
        assert pid in verts

    def test_stats_accumulate(self, hull2):
        h, live = hull2
        pid = int(live[0])
        chain = h.visible_chain(pid)
        touched_before = h.stats.facets_touched
        assert touched_before >= len(chain)
        h.insert_point(pid, chain)
        assert h.stats.points_touched > 0
        assert h.stats.facets_created == 3 + 2
