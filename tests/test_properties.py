"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.predicates import incircle, orient2d, orient3d
from repro.kdtree import KDTree, KNNBuffer
from repro.parlay import pscan, sample_sort
from repro.seb import welzl_mtf
from repro.spatialsort import morton_codes

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64)


def points_strategy(d, min_n=4, max_n=60):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.just(d)),
        elements=finite,
    )


class TestPredicateProperties:
    @given(arrays(np.float64, (3, 2), elements=finite))
    @settings(max_examples=100, deadline=None)
    def test_orient2d_antisymmetric(self, tri):
        a, b, c = tri
        assert orient2d(a, b, c) == -orient2d(b, a, c)
        assert orient2d(a, b, c) == orient2d(b, c, a)  # cyclic

    @given(arrays(np.float64, (4, 3), elements=finite))
    @settings(max_examples=60, deadline=None)
    def test_orient3d_swap_antisymmetry(self, q):
        a, b, c, d = q
        assert orient3d(a, b, c, d) == -orient3d(a, c, b, d)

    @given(arrays(np.float64, (3, 2), elements=finite))
    @settings(max_examples=60, deadline=None)
    def test_incircle_of_vertex_is_zero(self, tri):
        a, b, c = tri
        if orient2d(a, b, c) <= 0:
            return
        assert incircle(a, b, c, a) == 0
        assert incircle(a, b, c, b) == 0


class TestParlayProperties:
    @given(arrays(np.float64, st.integers(0, 500), elements=finite))
    @settings(max_examples=50, deadline=None)
    def test_sort_is_sorted_permutation(self, a):
        out = sample_sort(a)
        assert np.array_equal(np.sort(a), out)

    @given(arrays(np.float64, st.integers(0, 300), elements=finite))
    @settings(max_examples=50, deadline=None)
    def test_scan_total_is_sum(self, a):
        prefix, total = pscan(a)
        assert np.isclose(total, a.sum(), rtol=1e-9, atol=1e-6)
        if len(a):
            assert prefix[0] == 0


class TestKNNBufferProperties:
    @given(
        st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=200),
        st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_buffer_keeps_k_smallest(self, vals, k):
        buf = KNNBuffer(k)
        for i, v in enumerate(vals):
            buf.insert(v, i)
        d, _ = buf.result()
        ref = np.sort(np.asarray(vals))[: min(k, len(vals))]
        assert np.allclose(np.sort(d), ref)


class TestKDTreeProperties:
    @given(points_strategy(2, min_n=2, max_n=80), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_knn_matches_bruteforce(self, pts, k):
        k = min(k, len(pts))
        t = KDTree(pts)
        d, i = t.knn(pts[:5], k)
        for qi in range(min(5, len(pts))):
            ref = np.sort(((pts - pts[qi]) ** 2).sum(axis=1))[:k]
            assert np.allclose(np.sort(d[qi][np.isfinite(d[qi])]), ref, rtol=1e-9)

    @given(points_strategy(3, min_n=1, max_n=100))
    @settings(max_examples=30, deadline=None)
    def test_build_invariants_hold(self, pts):
        t = KDTree(pts)
        t.check_invariants()


class TestSEBProperties:
    @given(points_strategy(2, min_n=1, max_n=50))
    @settings(max_examples=40, deadline=None)
    def test_ball_contains_everything(self, pts):
        b = welzl_mtf(pts)
        assert b.contains_all(pts, tol=1e-7)

    @given(points_strategy(3, min_n=2, max_n=40))
    @settings(max_examples=30, deadline=None)
    def test_ball_is_tight(self, pts):
        """The furthest point must be (numerically) on the boundary."""
        b = welzl_mtf(pts)
        d = np.linalg.norm(pts - b.center, axis=1)
        scale = max(b.radius, 1e-9)
        assert d.max() >= b.radius - 1e-6 * scale


class TestMortonProperties:
    @given(points_strategy(2, min_n=2, max_n=100))
    @settings(max_examples=40, deadline=None)
    def test_codes_respect_dominance(self, pts):
        """If p dominates q coordinate-wise (strictly), code(p) > code(q)
        whenever they quantize differently in every coordinate."""
        codes = morton_codes(pts)
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        bits = max(1, 62 // 2)
        scale = (1 << bits) - 1
        q = ((pts - lo) / span * scale).astype(np.uint64)
        for i in range(min(len(pts), 10)):
            for j in range(min(len(pts), 10)):
                if np.all(q[i] > q[j]):
                    assert codes[i] > codes[j]


class TestHullProperties:
    @given(points_strategy(2, min_n=3, max_n=100))
    @settings(max_examples=40, deadline=None)
    def test_hull_contains_all_points(self, pts):
        from repro.hull import quickhull2d_seq

        h = quickhull2d_seq(pts)
        if len(h) < 3:
            return  # collinear degenerate
        poly = pts[h]
        for i in range(len(poly)):
            a, b = poly[i], poly[(i + 1) % len(poly)]
            cr = (b[0] - a[0]) * (pts[:, 1] - a[1]) - (b[1] - a[1]) * (pts[:, 0] - a[0])
            span = max(np.abs(pts).max(), 1.0)
            assert cr.min() >= -1e-7 * span * span
