"""Tests for priority writes (the reservation primitive)."""

import numpy as np

from repro.parlay import (
    NO_RESERVATION,
    ReservationArray,
    parallel_do,
    use_backend,
    write_max_batch,
    write_min_batch,
)


class TestReservationArray:
    def test_initially_unreserved(self):
        r = ReservationArray(4)
        assert np.all(r.values == NO_RESERVATION)

    def test_write_min_wins_with_smaller(self):
        r = ReservationArray(2)
        assert r.write_min(0, 10)
        assert not r.write_min(0, 20)
        assert r.write_min(0, 5)
        assert r.values[0] == 5

    def test_check_requires_all_slots(self):
        r = ReservationArray(3)
        r.write_min_many(np.array([0, 1]), 7)
        assert r.check(np.array([0, 1]), 7)
        r.write_min(1, 3)
        assert not r.check(np.array([0, 1]), 7)

    def test_reset_all(self):
        r = ReservationArray(3)
        r.write_min(2, 1)
        r.reset()
        assert np.all(r.values == NO_RESERVATION)

    def test_reset_subset(self):
        r = ReservationArray(3)
        r.write_min_many(np.array([0, 1, 2]), 4)
        r.reset(np.array([1]))
        assert r.values[1] == NO_RESERVATION
        assert r.values[0] == 4

    def test_concurrent_min_is_deterministic(self):
        """Under real threads, the smallest priority always ends up
        winning every contended slot, regardless of interleaving."""
        with use_backend("threads", 4):
            r = ReservationArray(8)
            idx = np.arange(8)
            parallel_do(
                [lambda p=p: r.write_min_many(idx, p) for p in range(20, 0, -1)]
            )
            assert np.all(r.values == 1)


class TestBatchWrites:
    def test_write_min_batch_duplicates(self):
        v = np.full(4, 100, dtype=np.int64)
        write_min_batch(v, np.array([1, 1, 2]), np.array([7, 3, 9]))
        assert v[1] == 3 and v[2] == 9 and v[0] == 100

    def test_write_max_batch(self):
        v = np.zeros(3, dtype=np.int64)
        write_max_batch(v, np.array([0, 0, 2]), np.array([5, 9, 1]))
        assert v[0] == 9 and v[2] == 1

    def test_batch_matches_sequential_semantics(self, rng):
        v1 = np.full(16, 1 << 30, dtype=np.int64)
        v2 = v1.copy()
        idx = rng.integers(0, 16, size=200)
        pri = rng.integers(0, 1000, size=200)
        write_min_batch(v1, idx, pri)
        for i, p in zip(idx, pri):
            v2[i] = min(v2[i], p)
        assert np.array_equal(v1, v2)
