"""Tests for hull measures, point-set I/O, and the CLI."""

import os

import numpy as np
import pytest
from scipy.spatial import ConvexHull

import repro
from repro.generators import load_points, save_points
from repro.hull import (
    hull_area_2d,
    hull_surface_area_3d,
    hull_volume_3d,
    points_in_hull_2d,
    points_in_hull_3d,
    polygon_area,
    quickhull2d_seq,
)


class TestMeasures:
    def test_polygon_area_unit_square(self):
        sq = np.array([[0.0, 0], [1, 0], [1, 1], [0, 1]])
        assert polygon_area(sq) == pytest.approx(1.0)
        assert polygon_area(sq[::-1]) == pytest.approx(-1.0)

    def test_hull_area_matches_qhull(self, rng):
        pts = rng.normal(size=(500, 2))
        assert hull_area_2d(pts) == pytest.approx(ConvexHull(pts).volume, rel=1e-9)

    def test_hull_volume_matches_qhull(self, rng):
        pts = rng.normal(size=(400, 3))
        ref = ConvexHull(pts)
        assert hull_volume_3d(pts) == pytest.approx(ref.volume, rel=1e-9)
        assert hull_surface_area_3d(pts) == pytest.approx(ref.area, rel=1e-9)

    def test_points_in_hull_2d(self, rng):
        pts = rng.uniform(0, 10, size=(200, 2))
        poly = pts[quickhull2d_seq(pts)]
        inside = points_in_hull_2d(poly, pts)
        assert inside.all()  # hull contains its own points
        outside = points_in_hull_2d(poly, np.array([[100.0, 100.0]]))
        assert not outside[0]

    def test_points_in_hull_3d(self, rng):
        pts = rng.uniform(0, 10, size=(150, 3))
        inside = points_in_hull_3d(pts, pts)
        assert inside.all()
        assert not points_in_hull_3d(pts, np.array([[99.0, 99, 99]]))[0]

    def test_degenerate_small(self):
        assert hull_area_2d(np.zeros((2, 2))) == 0.0


class TestIO:
    @pytest.mark.parametrize("ext", ["npy", "csv", "txt", "pbbs"])
    def test_roundtrip(self, ext, rng, tmp_path):
        pts = rng.normal(size=(50, 3))
        path = tmp_path / f"pts.{ext}"
        save_points(path, pts)
        back = load_points(path)
        assert np.allclose(back.coords, pts)

    def test_pbbs_header(self, rng, tmp_path):
        pts = rng.normal(size=(10, 2))
        path = tmp_path / "pts.pbbs"
        save_points(path, pts)
        first = path.read_text().splitlines()[0]
        assert first == "pbbs_sequencePoint2d"

    def test_single_row_text(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("1.5,2.5\n")
        ps = load_points(path)
        assert ps.coords.shape == (1, 2)

    def test_unknown_format_rejected(self, rng, tmp_path):
        with pytest.raises(ValueError):
            save_points(tmp_path / "pts.xyz", rng.normal(size=(3, 2)))

    def test_load_unknown_extension_names_supported_formats(self, tmp_path):
        path = tmp_path / "pts.parquet"
        path.write_text("not points")
        with pytest.raises(ValueError) as ei:
            load_points(path)
        msg = str(ei.value)
        assert ".parquet" in msg
        for ext in (".npy", ".csv", ".pbbs"):
            assert ext in msg


class TestCLI:
    def _run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_generate_and_hull(self, tmp_path, capsys):
        f = str(tmp_path / "p.npy")
        assert self._run("generate", "2D-U-500", "-o", f) == 0
        assert self._run("hull", f, "--method", "quickhull") == 0
        out = capsys.readouterr().out
        assert "hull:" in out

    def test_seb_and_knn(self, tmp_path, capsys):
        f = str(tmp_path / "p.npy")
        self._run("generate", "3D-IS-400", "-o", f)
        assert self._run("seb", f, "--method", "sampling") == 0
        nn = str(tmp_path / "nn.csv")
        assert self._run("knn", f, "-k", "3", "-o", nn) == 0
        mat = np.loadtxt(nn, delimiter=",")
        assert mat.shape == (400, 3)

    def test_knn_engines_agree(self, tmp_path, capsys):
        f = str(tmp_path / "p.npy")
        self._run("generate", "2D-U-300", "-o", f)
        batched = str(tmp_path / "nn_batched.csv")
        recursive = str(tmp_path / "nn_recursive.csv")
        assert self._run("knn", f, "-k", "4", "--engine", "batched", "-o", batched) == 0
        assert self._run("knn", f, "-k", "4", "--engine", "recursive", "-o", recursive) == 0
        out = capsys.readouterr().out
        assert "batched engine" in out and "recursive engine" in out
        a = np.loadtxt(batched, delimiter=",")
        b = np.loadtxt(recursive, delimiter=",")
        assert a.shape == (300, 4)
        assert np.array_equal(a, b)

    def test_emst_and_graph(self, tmp_path, capsys):
        f = str(tmp_path / "p.npy")
        self._run("generate", "2D-U-300", "-o", f)
        e = str(tmp_path / "mst.csv")
        assert self._run("emst", f, "-o", e) == 0
        mst = np.loadtxt(e, delimiter=",")
        assert len(mst) == 299
        assert self._run("graph", f, "--kind", "gabriel") == 0

    def test_cluster(self, tmp_path, capsys):
        f = str(tmp_path / "p.npy")
        self._run("generate", "2D-V-400", "-o", f)
        labels = str(tmp_path / "labels.txt")
        assert self._run("cluster", f, "--eps", "1.0", "-o", labels) == 0
        lab = np.loadtxt(labels)
        assert len(lab) == 400

    def test_bad_input_exits_2_with_message(self, tmp_path, capsys):
        bad = tmp_path / "pts.parquet"
        bad.write_text("nope")
        for cmd in (["hull", str(bad)], ["knn", str(bad)], ["seb", str(bad)]):
            with pytest.raises(SystemExit) as ei:
                self._run(*cmd)
            assert ei.value.code == 2
            err = capsys.readouterr().err
            assert err.startswith("error:") and ".npy" in err

    def test_missing_input_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as ei:
            self._run("hull", str(tmp_path / "missing.npy"))
        assert ei.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_replay(self, tmp_path, capsys):
        f = str(tmp_path / "p.npy")
        self._run("generate", "2D-U-500", "-o", f)
        trace = str(tmp_path / "trace.jsonl")
        assert self._run("serve-replay", f, "--synthetic", "60",
                         "--repeat-frac", "0.3", "--save-trace", trace,
                         "--compare") == 0
        out = capsys.readouterr().out
        assert "hit-rate" in out and "faster" in out
        # replaying the saved trace gives the same request count
        assert self._run("serve-replay", f, "--trace", trace, "--dynamic") == 0
        assert "60/60 requests" in capsys.readouterr().out

    def test_knn_sharded_matches_monolithic(self, tmp_path, capsys):
        f = str(tmp_path / "p.npy")
        self._run("generate", "2D-U-400", "-o", f)
        mono = str(tmp_path / "nn_mono.csv")
        shard = str(tmp_path / "nn_shard.csv")
        assert self._run("knn", f, "-k", "4", "-o", mono) == 0
        assert self._run("knn", f, "-k", "4", "--shards", "8", "-o", shard) == 0
        out = capsys.readouterr().out
        assert "8 shards" in out and "shards touched/query" in out
        assert np.array_equal(
            np.loadtxt(mono, delimiter=","), np.loadtxt(shard, delimiter=",")
        )

    def test_serve_replay_sharded(self, tmp_path, capsys):
        f = str(tmp_path / "p.npy")
        self._run("generate", "2D-V-400", "-o", f)
        assert self._run("serve-replay", f, "--synthetic", "40",
                         "--shards", "8") == 0
        out = capsys.readouterr().out
        assert "ShardedIndex[8]" in out and "40/40 requests" in out

    def test_cluster_bench(self, tmp_path, capsys):
        f = str(tmp_path / "p.npy")
        self._run("generate", "2D-V-600", "-o", f)
        rec = str(tmp_path / "bench.json")
        assert self._run("cluster-bench", f, "--shards", "8",
                         "--queries", "80", "--json-out", rec) == 0
        out = capsys.readouterr().out
        assert "cluster-bench:" in out and "scatter-gather" in out
        import json

        data = json.loads(open(rec).read())
        assert data["knn_distances_equal"] and data["ball_results_equal"]
        assert 0 < data["pruning"]["mean_touched_frac"] <= 1.0


class TestRNGGraph:
    def test_rng_is_beta2(self, rng):
        from repro.graphs import beta_skeleton, relative_neighborhood_graph

        pts = rng.uniform(0, 10, size=(150, 2))
        a = set(map(tuple, relative_neighborhood_graph(pts).edges.tolist()))
        b = set(map(tuple, beta_skeleton(pts, 2.0).edges.tolist()))
        assert a == b

    def test_rng_between_emst_and_gabriel(self, rng):
        from repro.graphs import emst_graph, gabriel_graph, relative_neighborhood_graph

        pts = rng.uniform(0, 10, size=(200, 2))
        e = set(map(tuple, emst_graph(pts).edges.tolist()))
        r = set(map(tuple, relative_neighborhood_graph(pts).edges.tolist()))
        g = set(map(tuple, gabriel_graph(pts).edges.tolist()))
        assert e <= r <= g
