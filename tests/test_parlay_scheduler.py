"""Tests for the fork-join scheduler and its backends."""

import os
import threading

import numpy as np
import pytest

from repro.parlay import (
    BACKENDS,
    Scheduler,
    get_scheduler,
    parallel_do,
    parallel_for,
    set_backend,
    tracker,
    use_backend,
)
from repro.parlay.workdepth import simulated_speedup


class TestParallelDo:
    def test_results_in_order(self, any_backend):
        out = any_backend.parallel_do([lambda i=i: i * i for i in range(10)])
        assert out == [i * i for i in range(10)]

    def test_empty(self, any_backend):
        assert any_backend.parallel_do([]) == []

    def test_single_task(self, any_backend):
        assert any_backend.parallel_do([lambda: 42]) == [42]

    def test_exception_propagates(self, any_backend):
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            any_backend.parallel_do([boom, lambda: 1])

    def test_nested_fork_join(self, any_backend):
        def outer(i):
            return sum(any_backend.parallel_do([lambda j=j: i + j for j in range(3)]))

        out = any_backend.parallel_do([lambda i=i: outer(i) for i in range(4)])
        assert out == [sum(i + j for j in range(3)) for i in range(4)]

    def test_threads_actually_use_pool(self):
        with use_backend("threads", 4) as sched:
            names = sched.parallel_do(
                [lambda: threading.current_thread().name for _ in range(8)]
            )
        assert any("parlay" in n for n in names)

    def test_sequential_stays_on_caller_thread(self):
        with use_backend("sequential") as sched:
            names = sched.parallel_do(
                [lambda: threading.current_thread().name for _ in range(4)]
            )
        assert all(n == threading.current_thread().name for n in names)


class TestParallelFor:
    def test_visits_all_indices(self, any_backend):
        seen = [False] * 100
        any_backend.parallel_for(100, lambda i: seen.__setitem__(i, True), grain=8)
        assert all(seen)

    def test_zero_iterations(self, any_backend):
        any_backend.parallel_for(0, lambda i: 1 / 0)

    def test_grain_chunks(self, any_backend):
        acc = []
        any_backend.parallel_for(10, acc.append, grain=3)
        assert sorted(acc) == list(range(10))


class TestBackendManagement:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Scheduler("mpi")

    def test_backends_tuple(self):
        assert BACKENDS == ("sequential", "threads", "processes")

    def test_default_workers_env_override(self, monkeypatch):
        from repro.parlay.scheduler import _default_workers

        monkeypatch.setenv("REPRO_NUM_WORKERS", "7")
        assert _default_workers() == 7
        monkeypatch.delenv("REPRO_NUM_WORKERS")
        auto = _default_workers()
        assert 1 <= auto <= 32
        assert auto == min(os.cpu_count() or 1, 32)

    def test_proc_pool_requires_processes_backend(self):
        with pytest.raises(RuntimeError):
            Scheduler("threads").proc_pool()

    def test_use_backend_restores(self):
        before = get_scheduler()
        with use_backend("threads", 2):
            assert get_scheduler().backend == "threads"
        assert get_scheduler() is before

    def test_set_backend_switches(self):
        old = get_scheduler()
        try:
            set_backend("threads", 3)
            assert get_scheduler().backend == "threads"
            assert get_scheduler().workers == 3
        finally:
            set_backend(old.backend, old.workers)

    def test_module_level_helpers(self):
        out = parallel_do([lambda: 1, lambda: 2])
        assert out == [1, 2]
        box = []
        parallel_for(5, box.append)
        assert sorted(box) == list(range(5))


class TestProcessBackend:
    def test_generic_thunks_run_inline(self):
        """Closures can't cross the process boundary; parallel_do under
        the processes backend stays on the calling process."""
        with use_backend("processes", 2) as sched:
            pids = sched.parallel_do([os.getpid for _ in range(4)])
        assert set(pids) == {os.getpid()}

    @pytest.mark.slow
    def test_process_map_runs_on_workers(self):
        with use_backend("processes", 2) as sched:
            out = sched.process_map(
                "tests.test_parlay_scheduler:_pid_task", [(i, None) for i in range(6)]
            )
            assert set(out) <= set(sched.proc_pool().pids())
            assert os.getpid() not in out

    @pytest.mark.slow
    def test_process_map_merges_parallel_charges(self):
        """Worker-side charges must compose exactly like inline ones."""
        tasks = [(i, None) for i in range(4)]
        with use_backend("processes", 2) as sched:
            tracker.reset()
            sched.process_map("tests.test_parlay_scheduler:_charge_task", tasks)
            remote = tracker.reset()
        with use_backend("sequential") as sched:
            tracker.reset()
            sched.process_map("tests.test_parlay_scheduler:_charge_task", tasks)
            inline = tracker.reset()
        assert remote.work == inline.work
        assert remote.depth == inline.depth

    def test_process_map_inline_on_other_backends(self):
        with use_backend("threads", 2) as sched:
            out = sched.process_map("tests.test_parlay_scheduler:_pid_task", [(0, None), (1, None)])
        assert out == [os.getpid(), os.getpid()]

    @pytest.mark.slow
    def test_shutdown_hook_runs(self):
        from repro.parlay.scheduler import register_process_shutdown_hook

        fired = []
        hook = fired.append
        register_process_shutdown_hook(lambda: hook("x"))
        with use_backend("processes", 1) as sched:
            sched.process_map("tests.test_parlay_scheduler:_pid_task", [(0, None)])
        assert fired  # hook ran at scheduler shutdown


def _pid_task(_payload):
    return os.getpid()


def _charge_task(_payload):
    from repro.parlay.workdepth import charge

    charge(1000, 25)


class TestCostComposition:
    def test_parallel_depth_is_max_not_sum(self):
        from repro.parlay.workdepth import charge

        tracker.reset()
        parallel_do([lambda: charge(100, 10) for _ in range(8)])
        c = tracker.total()
        assert c.work >= 800
        # depth ~ max(10) + log-ish fork overhead, far below 80
        assert c.depth < 40

    def test_serial_depth_accumulates(self):
        from repro.parlay.workdepth import charge

        tracker.reset()
        for _ in range(8):
            charge(100, 10)
        assert tracker.total().depth >= 80

    def test_parallel_work_beats_serial_speedup(self):
        """A wide parallel computation should show model speedup."""
        from repro.parlay.workdepth import charge

        tracker.reset()
        parallel_do([lambda: charge(10_000, 14) for _ in range(32)])
        c = tracker.total()
        assert simulated_speedup(c, 36.0) > 8
