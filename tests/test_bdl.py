"""Tests for the BDL-tree and the B1/B2 baselines."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.bdl import BDLTree, InPlaceTree, RebuildTree
from repro.generators import uniform

ALL_TREES = [BDLTree, RebuildTree, InPlaceTree]


def make(cls, dim, **kw):
    if cls is BDLTree:
        return cls(dim, buffer_size=64, **kw)
    return cls(dim, **kw)


class TestInsert:
    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_bulk_then_knn(self, cls, rng):
        pts = rng.uniform(0, 10, size=(2000, 3))
        t = make(cls, 3)
        gids = t.insert(pts)
        assert np.array_equal(gids, np.arange(2000))
        assert t.size() == 2000
        d, i = t.knn(pts[:50], 5)
        dd, _ = cKDTree(pts).query(pts[:50], k=5)
        assert np.allclose(np.sqrt(d), dd)

    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_incremental_batches(self, cls, rng):
        pts = rng.uniform(0, 10, size=(1000, 2))
        t = make(cls, 2)
        for b in range(10):
            t.insert(pts[b * 100 : (b + 1) * 100])
        assert t.size() == 1000
        d, i = t.knn(pts[:30], 4)
        dd, _ = cKDTree(pts).query(pts[:30], k=4)
        assert np.allclose(np.sqrt(d), dd)

    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_empty_batch(self, cls):
        t = make(cls, 2)
        gids = t.insert(np.empty((0, 2)))
        assert len(gids) == 0 and t.size() == 0

    def test_bdl_dimension_mismatch(self, rng):
        t = BDLTree(2)
        with pytest.raises(ValueError):
            t.insert(rng.normal(size=(5, 3)))

    def test_bdl_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            BDLTree(2, buffer_size=0)


class TestBitmask:
    def test_logarithmic_growth(self, rng):
        """Inserting k*X points occupies the trees spelled by binary(k)."""
        X = 32
        t = BDLTree(2, buffer_size=X)
        t.insert(rng.normal(size=(X, 2)))
        assert t.bitmask == 0b1
        t.insert(rng.normal(size=(X, 2)))
        assert t.bitmask == 0b10
        t.insert(rng.normal(size=(X, 2)))
        assert t.bitmask == 0b11
        t.insert(rng.normal(size=(4 * X, 2)))  # total 7X -> 0b111
        assert t.bitmask == 0b111

    def test_buffer_holds_remainder(self, rng):
        X = 32
        t = BDLTree(2, buffer_size=X)
        t.insert(rng.normal(size=(X + 5, 2)))
        assert len(t.buf_pts) == 5
        assert t.bitmask == 0b1

    def test_figure7_sequence(self, rng):
        """The exact insert sequence of paper Figure 7 (X points, then
        X+1, X+1, X-1) drives the bitmask through 1, 2, 3, 4."""
        X = 16
        t = BDLTree(2, buffer_size=X)
        t.insert(rng.normal(size=(X, 2)))
        assert t.bitmask == 1 and len(t.buf_pts) == 0
        t.insert(rng.normal(size=(X + 1, 2)))
        assert t.bitmask == 2 and len(t.buf_pts) == 1
        t.insert(rng.normal(size=(X + 1, 2)))
        assert t.bitmask == 3 and len(t.buf_pts) == 2
        t.insert(rng.normal(size=(X - 1, 2)))
        assert t.bitmask == 4 and len(t.buf_pts) == 1


class TestDelete:
    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_delete_and_query(self, cls, rng):
        pts = rng.uniform(0, 10, size=(1200, 3))
        t = make(cls, 3)
        t.insert(pts)
        assert t.erase(pts[:400]) == 400
        assert t.size() == 800
        d, i = t.knn(pts[:30], 3)
        dd, _ = cKDTree(pts[400:]).query(pts[:30], k=3)
        assert np.allclose(np.sqrt(d), dd)

    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_delete_absent(self, cls, rng):
        t = make(cls, 2)
        t.insert(rng.uniform(0, 1, size=(100, 2)))
        assert t.erase(rng.uniform(5, 6, size=(20, 2))) == 0
        assert t.size() == 100

    def test_bdl_rebalance_reinserts(self, rng):
        """Deleting most of a tree pushes its survivors down the
        structure (Alg. 4's half-capacity rule)."""
        X = 32
        pts = rng.uniform(0, 10, size=(4 * X, 2))
        t = BDLTree(2, buffer_size=X)
        t.insert(pts)  # occupies tree 2 (bit 0b100)
        assert t.bitmask == 0b100
        t.erase(pts[: 3 * X])  # drops below half of 4X
        assert t.size() == X
        # survivors must have been reinserted into a smaller tree
        assert t.bitmask == 0b1
        d, i = t.knn(pts[3 * X :], 1)
        assert np.allclose(d[:, 0], 0)

    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_delete_everything_then_insert(self, cls, rng):
        pts = rng.uniform(0, 10, size=(300, 2))
        t = make(cls, 2)
        t.insert(pts)
        assert t.erase(pts) == 300
        assert t.size() == 0
        t.insert(pts[:10])
        assert t.size() == 10


class TestMixedWorkload:
    @pytest.mark.parametrize("cls", ALL_TREES)
    def test_interleaved_updates_match_reference(self, cls, rng):
        """Randomized insert/delete interleaving; k-NN must always match
        a fresh scipy tree over the live set."""
        t = make(cls, 2)
        live = np.empty((0, 2))
        for step in range(8):
            batch = rng.uniform(0, 10, size=(150, 2))
            t.insert(batch)
            live = np.vstack([live, batch])
            if step % 2 == 1:
                kill = live[:60]
                t.erase(kill)
                live = live[60:]
            assert t.size() == len(live)
        q = rng.uniform(0, 10, size=(25, 2))
        d, i = t.knn(q, 4)
        dd, _ = cKDTree(live).query(q, k=4)
        assert np.allclose(np.sqrt(d), dd)

    def test_bdl_gather_points_complete(self, rng):
        pts = rng.uniform(0, 10, size=(500, 2))
        t = BDLTree(2, buffer_size=64)
        t.insert(pts)
        t.erase(pts[:100])
        coords, gids = t.gather_points()
        assert len(coords) == 400
        assert set(gids.tolist()) == set(range(100, 500))


class TestB2Skew:
    def test_incremental_build_degrades_leaves(self, rng):
        """B2 never restructures: many small batches leave far bigger
        leaves than one bulk build — the effect behind paper Fig. 14
        (k-NN scan cost grows with leaf size)."""

        def max_leaf(t):
            out = [0]

            def rec(n):
                if n is None:
                    return
                if n.is_leaf:
                    out[0] = max(out[0], sum(n.alive))
                else:
                    rec(n.left)
                    rec(n.right)

            rec(t.root)
            return out[0]

        pts = rng.uniform(0, 10, size=(4000, 2))
        bulk = InPlaceTree(2)
        bulk.insert(pts)
        inc = InPlaceTree(2)
        for b in range(40):
            inc.insert(pts[b * 100 : (b + 1) * 100])
        assert max_leaf(inc) > 4 * max_leaf(bulk)
        # queries still exact despite the skew
        d, _ = inc.knn(pts[:20], 3)
        dd, _ = cKDTree(pts).query(pts[:20], k=3)
        assert np.allclose(np.sqrt(d), dd)
