"""Tests for the static vEB kd-tree: build, k-NN, range, deletion."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.generators import uniform, visual_var
from repro.kdtree import (
    KDTree,
    KNNBuffer,
    OBJECT_MEDIAN,
    SPATIAL_MEDIAN,
    hyperceiling,
    knn,
    knn_single,
    range_query_ball,
    range_query_box,
)


class TestHyperceiling:
    def test_values(self):
        assert [hyperceiling(i) for i in (1, 2, 3, 4, 5, 8, 9)] == [1, 2, 4, 4, 8, 8, 16]

    def test_zero_and_negative(self):
        assert hyperceiling(0) == 1
        assert hyperceiling(-3) == 1


class TestBuild:
    @pytest.mark.parametrize("split", [OBJECT_MEDIAN, SPATIAL_MEDIAN])
    @pytest.mark.parametrize("n,d", [(1, 2), (2, 2), (17, 3), (1000, 2), (3000, 5)])
    def test_invariants(self, split, n, d, rng):
        pts = rng.uniform(0, 10, size=(n, d))
        t = KDTree(pts, split=split)
        t.check_invariants()

    def test_rejects_bad_args(self, rng):
        pts = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            KDTree(pts, split="weird")
        with pytest.raises(ValueError):
            KDTree(pts, leaf_size=0)
        with pytest.raises(ValueError):
            KDTree(pts, gids=np.arange(5))

    def test_empty_tree(self):
        t = KDTree(np.empty((0, 2)))
        assert t.root == -1 and t.size() == 0

    def test_duplicate_points(self):
        pts = np.ones((64, 2))
        t = KDTree(pts)
        t.check_invariants()
        assert t.size() == 64

    def test_leaf_size_one_gives_singleton_leaves(self, rng):
        pts = rng.normal(size=(128, 2))
        t = KDTree(pts, leaf_size=1)
        for i in range(len(t.used)):
            if t.used[i] and t.is_leaf[i]:
                assert t.end[i] - t.start[i] == 1

    def test_object_median_is_balanced(self, rng):
        pts = rng.normal(size=(4096, 3))
        t = KDTree(pts, split=OBJECT_MEDIAN, leaf_size=16)
        # a balanced tree over 4096 points with leaf 16 has height ~9
        assert t.height() <= 10

    def test_gids_roundtrip(self, rng):
        pts = rng.normal(size=(50, 2))
        gids = np.arange(100, 150)
        t = KDTree(pts, gids=gids)
        assert np.array_equal(np.sort(t.gids[t.gather_alive()]), gids)

    def test_build_under_threads(self, rng, any_backend):
        pts = rng.uniform(0, 10, size=(20000, 3))
        t = KDTree(pts)
        t.check_invariants()


class TestKNN:
    @pytest.mark.parametrize("split", [OBJECT_MEDIAN, SPATIAL_MEDIAN])
    def test_matches_scipy(self, split, rng):
        pts = rng.uniform(0, 10, size=(3000, 3))
        t = KDTree(pts, split=split)
        q = rng.uniform(0, 10, size=(100, 3))
        d, i = knn(t, q, 7)
        dd, ii = cKDTree(pts).query(q, k=7)
        assert np.allclose(np.sqrt(d), dd)

    def test_exclude_self(self, rng):
        pts = rng.normal(size=(500, 2))
        t = KDTree(pts)
        d, i = knn(t, pts, 3, exclude_self=True)
        assert not np.any(i == np.arange(500)[:, None])
        assert np.all(d > 0)

    def test_k_larger_than_n(self, rng):
        pts = rng.normal(size=(5, 2))
        t = KDTree(pts)
        d, i = knn(t, pts[:1], 10)
        assert np.isfinite(d[0, :5]).all()
        assert np.isinf(d[0, 5:]).all()
        assert np.all(i[0, 5:] == -1)

    def test_knn_single(self, rng):
        pts = rng.normal(size=(300, 2))
        t = KDTree(pts)
        buf = knn_single(t, pts[0], 4)
        d, i = buf.result()
        dd, ii = cKDTree(pts).query(pts[0], k=4)
        assert np.allclose(np.sqrt(d), dd)

    def test_rows_sorted_by_distance(self, rng):
        pts = rng.normal(size=(400, 3))
        t = KDTree(pts)
        d, _ = knn(t, pts[:20], 6)
        assert np.all(np.diff(d, axis=1) >= 0)

    def test_clustered_data(self, rng):
        pts = visual_var(2000, 2, seed=3).coords
        t = KDTree(pts)
        d, i = knn(t, pts[:50], 5)
        dd, _ = cKDTree(pts).query(pts[:50], k=5)
        assert np.allclose(np.sqrt(d), dd)


class TestKNNBuffer:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNNBuffer(0)

    def test_keeps_k_smallest(self, rng):
        buf = KNNBuffer(3)
        vals = rng.permutation(100).astype(float)
        for v in vals:
            buf.insert(v, int(v))
        d, i = buf.result()
        assert np.array_equal(d, [0, 1, 2])

    def test_bound_tightens(self):
        buf = KNNBuffer(2)
        for v in (10.0, 9.0, 1.0, 0.5):
            buf.insert(v, 0)
        assert buf.bound <= 1.0

    def test_batch_insert_equivalent(self, rng):
        vals = rng.uniform(0, 100, size=500)
        ids = np.arange(500)
        b1, b2 = KNNBuffer(7), KNNBuffer(7)
        for v, i in zip(vals, ids):
            b1.insert(float(v), int(i))
        b2.insert_batch(vals, ids)
        d1, i1 = b1.result()
        d2, i2 = b2.result()
        assert np.allclose(d1, d2)

    def test_result_partial(self):
        buf = KNNBuffer(5)
        buf.insert(3.0, 1)
        d, i = buf.result()
        assert len(d) == 1 and i[0] == 1


class TestRangeSearch:
    def test_box_matches_bruteforce(self, rng):
        pts = rng.uniform(0, 10, size=(2000, 3))
        t = KDTree(pts)
        lo, hi = np.array([2.0, 3.0, 1.0]), np.array([6.0, 7.0, 8.0])
        got = set(range_query_box(t, lo, hi).tolist())
        ref = set(np.flatnonzero(np.all((pts >= lo) & (pts <= hi), axis=1)).tolist())
        assert got == ref

    def test_ball_matches_scipy(self, rng):
        pts = rng.uniform(0, 10, size=(2000, 2))
        t = KDTree(pts)
        c = np.array([5.0, 5.0])
        got = set(range_query_ball(t, c, 2.5).tolist())
        ref = set(cKDTree(pts).query_ball_point(c, 2.5))
        assert got == ref

    def test_empty_region(self, rng):
        pts = rng.uniform(0, 1, size=(100, 2))
        t = KDTree(pts)
        assert len(range_query_box(t, [5, 5], [6, 6])) == 0
        assert len(range_query_ball(t, [50, 50], 0.5)) == 0

    def test_whole_space(self, rng):
        pts = rng.uniform(0, 1, size=(100, 2))
        t = KDTree(pts)
        assert len(range_query_box(t, [-1, -1], [2, 2])) == 100


class TestDeletion:
    def test_delete_then_queries_exclude(self, rng):
        pts = rng.uniform(0, 10, size=(1000, 2))
        t = KDTree(pts)
        assert t.erase(pts[:300]) == 300
        assert t.size() == 700
        ids = range_query_box(t, [-1, -1], [11, 11])
        assert len(ids) == 700
        assert np.all(ids >= 300)

    def test_delete_absent_points_noop(self, rng):
        pts = rng.uniform(0, 10, size=(200, 2))
        t = KDTree(pts)
        missing = rng.uniform(20, 30, size=(50, 2))
        assert t.erase(missing) == 0
        assert t.size() == 200

    def test_delete_everything(self, rng):
        pts = rng.uniform(0, 10, size=(128, 3))
        t = KDTree(pts)
        assert t.erase(pts) == 128
        assert t.size() == 0
        assert t.root == -1

    def test_delete_contracts_structure(self, rng):
        """Deleting a spatial half should remove that whole subtree."""
        pts = rng.uniform(0, 10, size=(2048, 2))
        t = KDTree(pts)
        h_before = t.height()
        left_half = pts[pts[:, 0] <= np.median(pts[:, 0])]
        t.erase(left_half)
        assert t.height() <= h_before
        d, i = knn(t, pts[:10], 2)
        live = np.flatnonzero(t.alive)
        assert set(i.ravel().tolist()) <= set(live.tolist())

    def test_knn_correct_after_delete(self, rng):
        pts = rng.uniform(0, 10, size=(1500, 3))
        t = KDTree(pts)
        t.erase(pts[500:900])
        keep = np.concatenate([np.arange(500), np.arange(900, 1500)])
        ref = cKDTree(pts[keep])
        d, i = knn(t, pts[:40], 5)
        dd, _ = ref.query(pts[:40], k=5)
        assert np.allclose(np.sqrt(d), dd)

    def test_delete_dimension_mismatch(self, rng):
        t = KDTree(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            t.erase(rng.normal(size=(3, 3)))

    def test_duplicate_rows_all_deleted(self):
        pts = np.vstack([np.zeros((5, 2)), np.ones((5, 2))])
        t = KDTree(pts)
        assert t.erase(np.zeros((1, 2))) == 5
        assert t.size() == 5
