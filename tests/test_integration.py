"""Cross-module integration tests: full pipelines through the public API."""

import numpy as np
import pytest

import repro
from repro.bench import measure
from repro.parlay import tracker, use_backend


class TestPublicAPI:
    def test_quickstart_flow(self):
        pts = repro.uniform(2000, 2, seed=0)
        hull = repro.convex_hull(pts)
        assert len(hull) >= 3
        ball = repro.smallest_enclosing_ball(pts)
        assert ball.contains_all(pts.coords, tol=1e-8)
        tree = repro.KDTree(pts)
        d, i = tree.knn(pts.coords[:10], k=5)
        assert d.shape == (10, 5)

    def test_convex_hull_method_dispatch(self):
        pts2 = repro.uniform(500, 2, seed=1)
        pts3 = repro.uniform(500, 3, seed=1)
        refs2 = set(repro.convex_hull(pts2, "divide_conquer").tolist())
        refs3 = set(repro.convex_hull(pts3, "divide_conquer").tolist())
        for m in ("quickhull", "randinc"):
            assert set(repro.convex_hull(pts2, m).tolist()) == refs2
            assert set(repro.convex_hull(pts3, m).tolist()) == refs3
        assert set(repro.convex_hull(pts3, "pseudo").tolist()) == refs3
        with pytest.raises(ValueError):
            repro.convex_hull(pts2, "nope")
        with pytest.raises(ValueError):
            repro.convex_hull(repro.uniform(10, 5, seed=0))

    def test_version(self):
        assert repro.__version__


class TestPipelines:
    def test_hull_of_emst_leaves(self):
        """Compose modules: EMST leaves (degree-1) are on the data's
        periphery-ish; hull of the full set contains hull of leaves."""
        pts = repro.uniform(800, 2, seed=3).coords
        g = repro.emst_graph(pts)
        deg = g.degree()
        leaves = np.flatnonzero(deg == 1)
        assert len(leaves) >= 2
        full_h = set(repro.convex_hull(pts).tolist())
        # every hull vertex of the full set has degree <= 3 in the EMST
        assert np.all(deg[list(full_h)] <= 6)

    def test_knn_graph_connectivity_feeds_clustering(self):
        pts = repro.visual_var(600, 2, seed=4).coords
        dend = repro.hdbscan(pts, min_pts=4)
        labels = dend.cut(np.median(dend.heights))
        assert labels.min() >= 0

    def test_dynamic_then_static_agreement(self):
        """Points streamed through a BDL-tree answer the same k-NN as a
        static tree over the final set."""
        pts = repro.uniform(1500, 3, seed=5).coords
        bdl = repro.BDLTree(3, buffer_size=128)
        for i in range(0, 1500, 250):
            bdl.insert(pts[i : i + 250])
        bdl.erase(pts[:200])
        static = repro.KDTree(pts[200:], gids=np.arange(200, 1500))
        q = pts[:40]
        d1, i1 = bdl.knn(q, 4)
        d2, i2 = static.knn(q, 4)
        assert np.allclose(d1, d2)
        assert np.array_equal(i1, i2)

    def test_zdtree_vs_bdl_same_answers(self):
        pts = repro.uniform(1200, 3, seed=6).coords
        z = repro.ZdTree(3)
        b = repro.BDLTree(3, buffer_size=128)
        z.insert(pts)
        b.insert(pts)
        dz, _ = z.knn(pts[:30], 5)
        db, _ = b.knn(pts[:30], 5)
        assert np.allclose(dz, db)

    def test_spanner_approximates_emst_weight(self):
        """MST computed on the spanner is within the stretch factor of
        the true EMST weight."""
        import networkx as nx

        pts = repro.uniform(300, 2, seed=7).coords
        _, w = repro.emst(pts)
        sp = repro.wspd_spanner(pts, s=8).to_networkx()
        t = nx.minimum_spanning_tree(sp)
        w_sp = sum(d["weight"] for _, _, d in t.edges(data=True))
        assert w.sum() <= w_sp <= 1.5 * w.sum() + 1e-9


class TestBackendsAgree:
    def test_same_results_both_backends(self):
        pts = repro.uniform(3000, 2, seed=8).coords
        results = {}
        for backend in ("sequential", "threads"):
            with use_backend(backend, 4):
                h = repro.convex_hull(pts)
                b = repro.smallest_enclosing_ball(pts)
                t = repro.KDTree(pts)
                d, _ = t.knn(pts[:20], 3)
                results[backend] = (set(h.tolist()), b.radius, d.copy())
        assert results["sequential"][0] == results["threads"][0]
        assert results["sequential"][1] == pytest.approx(results["threads"][1])
        assert np.allclose(results["sequential"][2], results["threads"][2])


class TestHarness:
    def test_measure_captures_cost(self):
        m = measure("hull", repro.convex_hull, repro.uniform(2000, 2, seed=9))
        assert m.t1 > 0
        assert m.cost.work > 0
        assert m.speedup(36) >= 1.0
        assert m.tp(36) <= m.t1 * 1.01

    def test_tracker_clean_after_measure(self):
        measure("x", lambda: repro.convex_hull(repro.uniform(500, 2, seed=1)))
        assert tracker.total().work == 0

    def test_table_renders(self):
        from repro.bench import Table

        t = Table("demo")
        m = measure("row", lambda: 1)
        t.add(m)
        out = t.render()
        assert "demo" in out and "row" in out
