"""Tests for repro.frontend: quotas, fair dispatch, admission, degradation."""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardedIndex
from repro.frontend import (
    DEGRADED,
    NORMAL,
    OVERLOADED,
    AdmissionController,
    Frontend,
    Overloaded,
    QuotaExceeded,
    RequestTimeout,
    ServiceClosed,
    TokenBucket,
    UnknownTenant,
    WeightedFairScheduler,
)
from repro.frontend.load import (
    TenantLoad,
    percentile,
    run_open_loop,
    verify_degraded,
)
from repro.kdtree import KDTree
from repro.serve import zipf_trace


def _pts(n=500, d=2, seed=0):
    return np.random.default_rng(seed).uniform(0, 100, (n, d))


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# ---------------------------------------------------------------------------
# token bucket
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_unlimited_always_admits(self):
        b = TokenBucket(None)
        assert all(b.try_acquire() == 0.0 for _ in range(10_000))

    def test_burst_then_refill(self):
        clk = FakeClock()
        b = TokenBucket(rate=10.0, burst=3.0, clock=clk)
        assert [b.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = b.try_acquire()
        assert wait == pytest.approx(0.1)  # 1 token at 10/s
        clk.advance(wait)
        assert b.try_acquire() == 0.0

    def test_all_or_nothing(self):
        clk = FakeClock()
        b = TokenBucket(rate=1.0, burst=2.0, clock=clk)
        assert b.try_acquire(2.0) == 0.0
        # a rejected acquire must not consume partial quota
        w1 = b.try_acquire(1.0)
        w2 = b.try_acquire(1.0)
        assert w1 == pytest.approx(1.0) and w2 == pytest.approx(1.0)

    def test_tokens_cap_at_burst(self):
        clk = FakeClock()
        b = TokenBucket(rate=100.0, burst=5.0, clock=clk)
        clk.advance(60.0)
        assert b.tokens == 5.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0.5)


# ---------------------------------------------------------------------------
# weighted fair scheduler
# ---------------------------------------------------------------------------
class TestWeightedFairScheduler:
    def test_weights_set_long_run_shares(self):
        s = WeightedFairScheduler()
        s.add("a", 3.0)
        s.add("b", 1.0)
        s.arrive("a", 4000)
        s.arrive("b", 4000)
        served = {"a": 0, "b": 0}
        for _ in range(400):
            t = s.pick()
            s.dispatched(t, 10)
            served[t] += 10
        assert served["a"] == pytest.approx(3000, rel=0.05)
        assert served["b"] == pytest.approx(1000, rel=0.05)

    def test_reactivation_hoards_no_credit(self):
        s = WeightedFairScheduler()
        s.add("busy", 1.0)
        s.add("idle", 1.0)
        s.arrive("busy", 10_000)
        for _ in range(100):  # busy runs alone for a long time
            s.dispatched(s.pick(), 10)
        s.arrive("idle", 10_000)
        served = {"busy": 0, "idle": 0}
        for _ in range(100):
            t = s.pick()
            s.dispatched(t, 10)
            served[t] += 10
        # the returning tenant gets ~half from now on, not a catch-up burst
        assert served["idle"] == pytest.approx(500, rel=0.2)

    def test_tie_breaks_to_heavier_weight(self):
        s = WeightedFairScheduler()
        s.add("bulk", 1.0)
        s.add("prio", 8.0)
        s.arrive("bulk", 100)
        s.dispatched("bulk", 10)
        s.arrive("prio", 1)  # reactivates at vnow == bulk's tag
        assert s.pick() == "prio"

    def test_light_tenant_delay_bounded_by_quanta(self):
        # the fairness property behind the p99 gate: with the heavy
        # tenant massively backlogged, a light arrival is served within
        # a couple of quanta, not after the heavy backlog drains
        s = WeightedFairScheduler()
        s.add("heavy", 1.0)
        s.add("light", 4.0)
        s.arrive("heavy", 100_000)
        for _ in range(7):
            s.dispatched(s.pick(), 64)
        s.arrive("light", 1)
        picks = []
        for _ in range(3):
            t = s.pick()
            picks.append(t)
            s.dispatched(t, 64 if t == "heavy" else 1)
        assert "light" in picks[:2]

    def test_bookkeeping_and_errors(self):
        s = WeightedFairScheduler()
        s.add("a")
        with pytest.raises(ValueError):
            s.add("a")
        with pytest.raises(ValueError):
            s.add("b", weight=0.0)
        s.arrive("a", 3)
        assert s.backlog("a") == 3 and s.total_backlog() == 3
        s.dispatched("a", 5)  # over-dispatch clamps at zero
        assert s.backlog("a") == 0
        assert s.pick() is None
        s.remove("a")
        assert s.total_backlog() == 0


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------
class TestAdmissionController:
    def _ac(self, depth, **kw):
        holder = {"d": depth}
        kw.setdefault("degrade_at", 10)
        kw.setdefault("reject_at", 20)
        ac = AdmissionController(lambda: holder["d"], **kw)
        return ac, holder

    def test_states_and_flags(self):
        ac, h = self._ac(0)
        assert ac.decide().state == NORMAL and ac.decide().admit
        h["d"] = 10
        d = ac.decide()
        assert d.state == DEGRADED and d.admit and d.degrade
        h["d"] = 25
        d = ac.decide()
        assert d.state == OVERLOADED and not d.admit
        assert d.retry_after and d.retry_after > 0

    def test_hysteresis_no_flapping(self):
        ac, h = self._ac(35, reject_at=30)
        assert ac.decide().state == OVERLOADED
        # dipping just under reject_at does NOT leave overloaded
        h["d"] = 25
        assert ac.decide().state == OVERLOADED
        # resuming requires depth < resume_frac * reject_at (15 here);
        # a still-elevated depth resumes into DEGRADED, not NORMAL
        h["d"] = 12
        assert ac.decide().state == DEGRADED
        h["d"] = 4
        assert ac.decide().state == NORMAL

    def test_degraded_resumes_below_fraction(self):
        ac, h = self._ac(10)
        assert ac.decide().state == DEGRADED
        h["d"] = 6
        assert ac.decide().state == DEGRADED  # 6 >= 0.5*10
        h["d"] = 4
        assert ac.decide().state == NORMAL

    def test_retry_after_tracks_drain_rate(self):
        ac, h = self._ac(40)
        ac.note_drained(100, 1.0)  # 100 req/s
        ra_fast = ac.decide().retry_after
        ac2, _ = self._ac(40)
        ac2.note_drained(10, 1.0)  # 10 req/s
        ra_slow = ac2.decide().retry_after
        assert ra_slow > ra_fast
        assert 0.001 <= ra_slow <= 30.0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AdmissionController(lambda: 0, degrade_at=5, reject_at=4)
        with pytest.raises(ValueError):
            AdmissionController(lambda: 0, degrade_at=1, reject_at=2,
                                resume_frac=0.0)


# ---------------------------------------------------------------------------
# the frontend itself
# ---------------------------------------------------------------------------
def _frontend(index=None, **kw):
    kw.setdefault("max_batch", 32)
    kw.setdefault("queue_depth", 128)
    kw.setdefault("degrade_at", 10_000)  # effectively never, unless set
    kw.setdefault("reject_at", 20_000)
    fe = Frontend(**kw)
    if index is not None:
        fe.register_tenant("t", index)
    return fe


class TestFrontendQueries:
    def test_exact_answers_match_direct_queries(self):
        pts = _pts(400)
        tree = KDTree(pts)

        async def go():
            async with _frontend(tree) as fe:
                r = await fe.knn("t", [50.0, 50.0], k=5)
                assert not r.approximate and r.tenant == "t" and r.kind == "knn"
                d2, gid = tree.knn(np.array([[50.0, 50.0]]), 5)
                assert np.allclose(r.value[0], d2[0])
                assert np.array_equal(r.value[1], gid[0])

                rb = await fe.ball("t", [50.0, 50.0], 10.0)
                direct = tree.range_query_ball(np.array([50.0, 50.0]), 10.0)
                assert np.array_equal(np.sort(rb.value), np.sort(direct))

                rx = await fe.box("t", [0.0, 0.0], [25.0, 25.0])
                assert not rx.approximate

                ra = await fe.allnn("t")
                assert len(ra.value[0]) == len(pts)

        asyncio.run(go())

    def test_verbatim_repeat_hits_cache(self):
        async def go():
            async with _frontend(KDTree(_pts())) as fe:
                first = await fe.knn("t", [10.0, 10.0], k=4)
                again = await fe.knn("t", [10.0, 10.0], k=4)
                assert not first.cache_hit and again.cache_hit
                assert np.allclose(first.value[0], again.value[0])

        asyncio.run(go())

    def test_unknown_tenant_and_duplicate_registration(self):
        async def go():
            async with _frontend(KDTree(_pts())) as fe:
                with pytest.raises(UnknownTenant):
                    await fe.knn("ghost", [0.0, 0.0], 1)
                with pytest.raises(ValueError):
                    fe.register_tenant("t", KDTree(_pts()))
                with pytest.raises(ValueError):
                    await fe.submit("t", "frobnicate")

        asyncio.run(go())

    def test_many_concurrent_requests_all_exact(self):
        pts = _pts(600)

        async def go():
            async with _frontend(KDTree(pts), queue_depth=512) as fe:
                rng = np.random.default_rng(3)
                qs = rng.uniform(0, 100, (150, 2))
                replies = await asyncio.gather(*[
                    fe.knn("t", q.tolist(), 3) for q in qs
                ])
                exact_d2, _ = KDTree(pts).knn(qs, 3)
                for i, r in enumerate(replies):
                    assert not r.approximate
                    assert np.allclose(r.value[0], exact_d2[i])

        asyncio.run(go())


class TestQuota:
    def test_quota_exhaustion_is_typed_and_state_safe(self):
        clk = FakeClock()

        async def go():
            fe = _frontend(clock=clk)
            fe.register_tenant("q", KDTree(_pts()), rate=10.0, burst=2.0)
            assert (await fe.knn("q", [1.0, 1.0], 2)).tenant == "q"
            assert (await fe.knn("q", [2.0, 2.0], 2)).tenant == "q"
            with pytest.raises(QuotaExceeded) as ei:
                await fe.knn("q", [3.0, 3.0], 2)
            assert ei.value.retry_after == pytest.approx(0.1)
            assert isinstance(ei.value, Overloaded)  # subtype, one except arm
            # queue state is not corrupted: depth 0, next request fine
            assert fe.pending("q") == 0
            clk.advance(0.2)
            r = await fe.knn("q", [4.0, 4.0], 2)
            assert not r.approximate
            snap = fe.snapshot()["per_tenant"]["q"]
            assert snap["quota_rejections"] == 1
            assert snap["completed"] == 3
            await fe.close()

        asyncio.run(go())


class TestOverload:
    def test_per_tenant_depth_bound_rejects_typed(self):
        async def go():
            fe = _frontend(max_batch=4, queue_depth=8)
            fe.register_tenant("t", KDTree(_pts(2000, seed=1)))
            rng = np.random.default_rng(0)
            tasks = [
                asyncio.ensure_future(fe.knn("t", rng.uniform(0, 100, 2), 4))
                for _ in range(200)
            ]
            outs = await asyncio.gather(*tasks, return_exceptions=True)
            ok = [o for o in outs if not isinstance(o, Exception)]
            shed = [o for o in outs if isinstance(o, Exception)]
            assert shed, "200 instant arrivals into depth-8 must shed"
            assert all(isinstance(e, Overloaded) for e in shed)
            assert all(not r.approximate for r in ok)
            # queue never exceeded its bound and drains to zero
            assert fe.pending("t") == 0
            await fe.close()

        asyncio.run(go())

    def test_global_overload_sets_retry_after(self):
        async def go():
            fe = Frontend(max_batch=4, queue_depth=64,
                          degrade_at=2, reject_at=4)
            fe.register_tenant("t", KDTree(_pts()))
            rng = np.random.default_rng(0)
            tasks = [
                asyncio.ensure_future(fe.knn("t", rng.uniform(0, 100, 2), 4))
                for _ in range(50)
            ]
            outs = await asyncio.gather(*tasks, return_exceptions=True)
            rejected = [o for o in outs if isinstance(o, Overloaded)]
            assert rejected
            assert all(e.retry_after is not None and e.retry_after > 0
                       for e in rejected)
            await fe.close()

        asyncio.run(go())


class TestDegradation:
    def test_degraded_replies_labelled_and_dominated(self):
        pts = _pts(1200, seed=7)
        idx = ShardedIndex(pts, 8)

        async def go():
            fe = Frontend(max_batch=8, queue_depth=256,
                          degrade_at=1, reject_at=10_000)
            fe.register_tenant("s", idx)
            rng = np.random.default_rng(11)
            qs = rng.uniform(0, 100, (60, 2))
            outs = await asyncio.gather(*[
                fe.knn("s", q.tolist(), 6) for q in qs
            ])
            degraded = [(q, r) for q, r in zip(qs, outs) if r.approximate]
            assert degraded, "degrade_at=1 must degrade queued kNN"
            exact_d2, _ = idx.knn(qs, 6)
            for i, (q, r) in enumerate(zip(qs, outs)):
                d2 = np.asarray(r.value[0])
                if r.approximate:
                    # rank-wise distance dominance vs the exact answer
                    e = exact_d2[i]
                    fin = np.isfinite(d2) & np.isfinite(e)
                    assert np.all(d2[fin] >= e[fin] - 1e-9)
                else:
                    assert np.allclose(d2, exact_d2[i])
            samples = [{"q": q, "k": 6, "d2": np.asarray(r.value[0]),
                        "gid": np.asarray(r.value[1])} for q, r in degraded]
            assert verify_degraded(idx, samples) == len(samples)
            assert fe.snapshot()["per_tenant"]["s"]["degraded"] == len(degraded)
            await fe.close()

        asyncio.run(go())

    def test_unsharded_tenant_never_degrades(self):
        async def go():
            fe = Frontend(max_batch=8, queue_depth=256,
                          degrade_at=1, reject_at=10_000)
            fe.register_tenant("k", KDTree(_pts()))
            outs = await asyncio.gather(*[
                fe.knn("k", [float(i), 0.0], 3) for i in range(40)
            ])
            assert all(not r.approximate for r in outs)
            await fe.close()

        asyncio.run(go())

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100), k=st.integers(1, 12))
    def test_property_degraded_knn_dominated_and_labelled(self, seed, k):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 100, (rng.integers(50, 400), 2))
        idx = ShardedIndex(pts, int(rng.integers(2, 9)))

        async def go():
            fe = Frontend(max_batch=4, queue_depth=512,
                          degrade_at=1, reject_at=10_000)
            fe.register_tenant("s", idx)
            qs = rng.uniform(0, 100, (16, 2))
            outs = await asyncio.gather(*[
                fe.knn("s", q.tolist(), k) for q in qs
            ])
            exact_d2, _ = idx.knn(qs, k)
            for i, r in enumerate(outs):
                d2 = np.asarray(r.value[0])
                fin = np.isfinite(d2) & np.isfinite(exact_d2[i])
                # degraded or not: answers never beat the exact kNN,
                # and only degraded ones may differ from it
                assert np.all(d2[fin] >= exact_d2[i][fin] - 1e-9)
                if not r.approximate:
                    assert np.allclose(d2, exact_d2[i])
            await fe.close()

        asyncio.run(go())


class TestCancellationAndTimeout:
    def test_timeout_is_typed_and_dispatcher_survives(self):
        async def go():
            fe = _frontend(KDTree(_pts(3000, seed=2)), max_batch=4)
            with pytest.raises(RequestTimeout):
                await fe.knn("t", [1.0, 1.0], 4, timeout=1e-9)
            # the dispatcher skipped the cancelled future and keeps serving
            r = await fe.knn("t", [2.0, 2.0], 4)
            assert not r.approximate
            await fe.close()

        asyncio.run(go())

    def test_cancelled_task_does_not_wedge_queue(self):
        async def go():
            fe = _frontend(KDTree(_pts()), max_batch=4)
            task = asyncio.ensure_future(fe.knn("t", [5.0, 5.0], 3))
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            outs = await asyncio.gather(*[
                fe.knn("t", [float(i), 1.0], 3) for i in range(20)
            ])
            assert len(outs) == 20
            assert fe.pending() == 0
            await fe.close()

        asyncio.run(go())


class TestClose:
    def test_close_is_idempotent(self):
        async def go():
            fe = _frontend(KDTree(_pts()))
            await fe.knn("t", [0.0, 0.0], 1)
            await fe.close()
            await fe.close()
            await fe.close()
            with pytest.raises(ServiceClosed):
                await fe.knn("t", [0.0, 0.0], 1)
            with pytest.raises(ServiceClosed):
                fe.register_tenant("new", KDTree(_pts()))

        asyncio.run(go())

    def test_close_drains_queued_requests(self):
        async def go():
            fe = _frontend(KDTree(_pts(2000, seed=3)), max_batch=8)
            tasks = [
                asyncio.ensure_future(fe.knn("t", [float(i % 50), 2.0], 3))
                for i in range(60)
            ]
            await asyncio.sleep(0)  # let them enqueue
            await fe.close()  # drain=True: everything completes
            outs = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(not isinstance(o, Exception) for o in outs)

        asyncio.run(go())

    def test_close_nodrain_rejects_typed(self):
        async def go():
            fe = _frontend(KDTree(_pts(2000, seed=4)), max_batch=4)
            tasks = [
                asyncio.ensure_future(fe.knn("t", [float(i % 50), 3.0], 3))
                for i in range(60)
            ]
            await asyncio.sleep(0)
            await fe.close(drain=False)
            outs = await asyncio.gather(*tasks, return_exceptions=True)
            errs = [o for o in outs if isinstance(o, Exception)]
            assert errs, "undrained queue must be rejected"
            assert all(isinstance(e, ServiceClosed) for e in errs)

        asyncio.run(go())


class TestFrontendMetrics:
    def test_per_tenant_labels_in_prometheus_text(self):
        async def go():
            fe = _frontend()
            fe.register_tenant("acme", KDTree(_pts()))
            fe.register_tenant("zen", KDTree(_pts(seed=5)))
            await fe.knn("acme", [1.0, 1.0], 2)
            await fe.knn("acme", [1.0, 1.0], 2)
            await fe.knn("zen", [2.0, 2.0], 2)
            text = fe.metrics_text()
            assert 'frontend_requests_total{tenant="acme"} 2' in text
            assert 'frontend_requests_total{tenant="zen"} 1' in text
            assert 'frontend_queue_depth{tenant="acme"} 0' in text
            assert 'frontend_hit_rate{tenant="acme"} 0.5' in text
            snap = fe.registry.snapshot()
            fam = snap["frontend_completed_total"]
            assert fam['{tenant="acme"}'] == 2
            await fe.close()

        asyncio.run(go())


# ---------------------------------------------------------------------------
# open-loop load harness
# ---------------------------------------------------------------------------
class TestLoadHarness:
    def test_percentile_helper(self):
        assert percentile([], 99) == 0.0
        assert percentile([1.0, 2.0, 3.0], 50) == pytest.approx(2.0)

    def test_run_open_loop_accounts_everything(self):
        pts = _pts(800, seed=9)

        async def go():
            fe = Frontend(max_batch=32, queue_depth=64,
                          degrade_at=8, reject_at=64)
            fe.register_tenant("heavy", ShardedIndex(pts, 8), weight=1.0)
            fe.register_tenant("light", KDTree(pts), weight=4.0)
            loads = [
                TenantLoad("heavy", zipf_trace(pts, 300, kinds=("knn",), k=5,
                                               seed=1),
                           rate=20_000.0, pattern="bursty", seed=2),
                TenantLoad("light", zipf_trace(pts, 40, kinds=("knn", "ball"),
                                               k=5, seed=3),
                           rate=400.0, seed=4),
            ]
            rep = await run_open_loop(fe, loads, max_degraded_samples=16)
            await fe.close()
            return rep

        rep = asyncio.run(go())
        h, li = rep.per_tenant["heavy"], rep.per_tenant["light"]
        assert h.offered == 300 and li.offered == 40
        # every request is accounted exactly once
        assert (h.completed + h.rejected + h.quota_rejected + h.timeouts
                + h.errors) == 300
        assert h.errors == 0 and li.errors == 0
        # bounded: at worst reject_at held at trip time plus the
        # under-share tenant filling its weighted share afterwards
        assert rep.queue_high_watermark <= 2 * 64
        d = rep.to_json()
        assert d["offered"] == 340
        assert 0.0 <= d["rejection_rate"] <= 1.0
        assert "p999" in d["per_tenant"]["light"]
        assert isinstance(rep.summary(), str)

    def test_verify_degraded_detects_tampering(self):
        pts = _pts(400, seed=13)
        idx = ShardedIndex(pts, 4)
        d2, gid = idx.knn_home(pts[:1], 4)
        good = [{"q": pts[0], "k": 4, "d2": d2[0], "gid": gid[0]}]
        assert verify_degraded(idx, good) == 1
        bad = [{"q": pts[0], "k": 4,
                "d2": d2[0] * 0.5, "gid": gid[0]}]  # fabricated distances
        with pytest.raises(AssertionError):
            verify_degraded(idx, bad)
