"""Tests for the ``processes`` backend and shared-memory shard snapshots.

The contract under test: ``use_backend("processes")`` is a drop-in swap
for ``sequential``/``threads`` — identical results (bitwise), identical
work/depth charges, spans forwarded from workers — and no shared-memory
segment survives pool shutdown.
"""

import glob
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdl import BDLTree
from repro.cluster import ShardedIndex
from repro.cluster.snapshot import SnapshotManager, attach_snapshot
from repro.kdtree.flat import attach_tree, pack_tree, tree_nbytes
from repro.kdtree.tree import KDTree
from repro.parlay.procpool import ProcPool
from repro.parlay.scheduler import use_backend
from repro.parlay.workdepth import tracker

BACKENDS = ("sequential", "threads", "processes")


def _points(n, d, seed):
    return np.random.default_rng(seed).normal(size=(n, d))


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


# ----------------------------------------------------------------------
# flat snapshots: pack / attach round trip
# ----------------------------------------------------------------------
class TestFlatTree:
    def test_attached_kdtree_answers_identically(self, rng):
        pts = rng.normal(size=(500, 3))
        tree = KDTree(pts)
        tree.erase(pts[::7])  # exercise the alive mask
        buf = bytearray(tree_nbytes(tree))
        spec, end = pack_tree(tree, buf)
        assert end <= len(buf)
        att = attach_tree(spec, buf)

        qs = rng.normal(size=(60, 3))
        for engine in ("batched", "recursive"):
            d1, g1 = tree.knn(qs, 4, engine=engine)
            d2, g2 = att.knn(qs, 4, engine=engine)
            assert np.array_equal(d1, d2) and np.array_equal(g1, g2)

    def test_attached_views_are_read_only(self, rng):
        tree = KDTree(rng.normal(size=(100, 2)))
        buf = bytearray(tree_nbytes(tree))
        spec, _ = pack_tree(tree, buf)
        att = attach_tree(spec, buf)
        with pytest.raises(ValueError):
            att.points[0, 0] = 0.0

    def test_snapshot_roundtrip_bdl(self, rng):
        pts = rng.normal(size=(700, 2))
        bdl = BDLTree(dim=2, buffer_size=64)
        bdl.insert(pts)
        bdl.erase(pts[::5])
        mgr = SnapshotManager()
        try:

            class _Shard:  # duck-typed: SnapshotManager reads .tree only
                tree = bdl

            spec = mgr.spec_for(0, _Shard)
            shm, att = attach_snapshot(spec)
            try:
                qs = rng.normal(size=(40, 2))
                d1, g1 = bdl.knn(qs, 3, engine="batched")
                d2, g2 = att.knn(qs, 3, engine="batched")
                assert np.array_equal(d1, d2) and np.array_equal(g1, g2)
                b1 = bdl.range_query_ball_batch(qs[:10], 0.4)
                b2 = att.range_query_ball_batch(qs[:10], 0.4)
                assert all(np.array_equal(a, b) for a, b in zip(b1, b2))
            finally:
                att = None
                shm.close()
        finally:
            mgr.release_all()

    def test_version_bump_repacks(self, rng):
        bdl = BDLTree(dim=2, buffer_size=32)
        bdl.insert(rng.normal(size=(100, 2)))

        class _Shard:
            tree = bdl

        mgr = SnapshotManager()
        try:
            s1 = mgr.spec_for(0, _Shard)
            assert mgr.spec_for(0, _Shard) is s1  # cached at same version
            bdl.insert(rng.normal(size=(10, 2)))
            s2 = mgr.spec_for(0, _Shard)
            assert s2["shm"] != s1["shm"]
            assert len(mgr) == 1  # stale segment released
        finally:
            mgr.release_all()


# ----------------------------------------------------------------------
# worker pool mechanics
# ----------------------------------------------------------------------
def _square(payload):
    return payload * payload


def _whoami(payload):
    return os.getpid()


def _explode(payload):
    raise RuntimeError(f"kaboom-{payload}")


class TestProcPool:
    def test_results_in_task_order(self):
        pool = ProcPool(2)
        try:
            out = pool.run_tasks(
                "tests.test_procs:_square", [(i, i) for i in range(10)]
            )
            assert [r.result for r in out] == [i * i for i in range(10)]
        finally:
            pool.shutdown()

    def test_affinity_pins_tasks_to_workers(self):
        pool = ProcPool(2)
        try:
            out = pool.run_tasks(
                "tests.test_procs:_whoami", [(7, None) for _ in range(6)]
            )
            pids = {r.result for r in out}
            assert len(pids) == 1  # same affinity -> same worker
            assert out[0].pid == out[0].result
            mixed = pool.run_tasks(
                "tests.test_procs:_whoami", [(i, None) for i in range(8)]
            )
            assert len({r.result for r in mixed}) == 2
        finally:
            pool.shutdown()

    def test_remote_error_carries_traceback(self):
        pool = ProcPool(1)
        try:
            with pytest.raises(RuntimeError, match="kaboom-3"):
                pool.run_tasks("tests.test_procs:_explode", [(0, 3)])
            # the pool survives a task failure
            out = pool.run_tasks("tests.test_procs:_square", [(0, 5)])
            assert out[0].result == 25
        finally:
            pool.shutdown()

    def test_shutdown_idempotent(self):
        pool = ProcPool(2)
        pool.pids()
        pool.shutdown()
        pool.shutdown()
        assert not pool.started


# ----------------------------------------------------------------------
# drop-in equivalence across backends
# ----------------------------------------------------------------------
def _run_workload(index, qs, k):
    """The scatter-gather mix; returns results + the charged cost."""
    tracker.reset()
    d2, gid = index.knn(qs, k, exclude_self=False, engine="batched")
    balls = index.range_query_ball_batch(qs[: len(qs) // 2], 0.5)
    boxes = index.range_query_box_batch(qs[:10] - 0.3, qs[:10] + 0.3)
    return d2, gid, balls, boxes, tracker.reset()


def _assert_same(res_a, res_b):
    d2a, ga, balls_a, boxes_a, ca = res_a
    d2b, gb, balls_b, boxes_b, cb = res_b
    assert np.array_equal(d2a, d2b)
    assert np.array_equal(ga, gb)
    assert all(np.array_equal(x, y) for x, y in zip(balls_a, balls_b))
    assert all(np.array_equal(x, y) for x, y in zip(boxes_a, boxes_b))
    assert ca.work == cb.work and ca.depth == cb.depth


@pytest.mark.slow
class TestCrossBackendEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(300, 1200),
        k=st.integers(1, 8),
        shards=st.integers(2, 6),
    )
    def test_sharded_index_knn_box_ball(self, seed, n, k, shards):
        pts = _points(n, 2, seed)
        qs = _points(80, 2, seed + 1)
        idx = ShardedIndex(pts, shards)
        try:
            results = {}
            for backend in BACKENDS:
                with use_backend(backend, 4):
                    results[backend] = _run_workload(idx, qs, k)
            _assert_same(results["sequential"], results["threads"])
            _assert_same(results["sequential"], results["processes"])
        finally:
            idx.close()

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 6))
    def test_kdtree_inline_fallback(self, seed, k):
        """A plain KDTree has no remote slabs — the processes backend
        runs its fork-join inline, with unchanged results and charges."""
        pts = _points(600, 3, seed)
        qs = _points(50, 3, seed + 1)
        tree = KDTree(pts)
        results = {}
        for backend in BACKENDS:
            with use_backend(backend, 4):
                tracker.reset()
                d2, gid = tree.knn(qs, k, engine="batched")
                results[backend] = (d2, gid, tracker.reset())
        for backend in ("threads", "processes"):
            d2a, ga, ca = results["sequential"]
            d2b, gb, cb = results[backend]
            assert np.array_equal(d2a, d2b) and np.array_equal(ga, gb)
            assert ca.work == cb.work and ca.depth == cb.depth

    def test_equivalence_after_insert_and_erase(self, rng):
        """Mutations bump the version; workers must re-snapshot."""
        pts = rng.normal(size=(900, 2))
        idx = ShardedIndex(pts, 4)
        qs = rng.normal(size=(60, 2))
        try:
            with use_backend("processes", 2):
                _run_workload(idx, qs, 3)  # workers attach v0 snapshots
                idx.insert(rng.normal(size=(300, 2)))
                idx.erase(pts[::5])
                after_p = _run_workload(idx, qs, 3)
            with use_backend("sequential"):
                after_s = _run_workload(idx, qs, 3)
            _assert_same(after_p, after_s)
        finally:
            idx.close()

    def test_rebalance_forces_resnapshot(self, rng):
        """A split replaces Shard objects in-place; identity check must
        invalidate the old slots' snapshots."""
        base = rng.normal(size=(2000, 2)) * 0.01  # clustered -> skewed
        idx = ShardedIndex(rng.normal(size=(1500, 2)), 3,
                           rebalance_min=512, skew_threshold=1.5)
        qs = rng.normal(size=(40, 2))
        try:
            with use_backend("processes", 2):
                _run_workload(idx, qs, 3)
                idx.insert(base)  # triggers splits
                got = _run_workload(idx, qs, 3)
            with use_backend("sequential"):
                want = _run_workload(idx, qs, 3)
            _assert_same(got, want)
        finally:
            idx.close()


# ----------------------------------------------------------------------
# construction engines across backends
# ----------------------------------------------------------------------
_TREE_FIELDS = (
    "used", "is_leaf", "split_dim", "split_val", "left", "right",
    "start", "end", "live", "perm", "box_lo", "box_hi", "gids",
)


def _assert_same_tree(ta, tb, label=""):
    for f in _TREE_FIELDS:
        assert np.array_equal(getattr(ta, f), getattr(tb, f)), \
            f"{label} field {f} differs"


class TestBuildEngineAcrossBackends:
    def test_kdtree_build_identical_on_every_backend(self):
        """Both engines, all backends: one bitwise-identical tree and
        one identical cost — construction forks above the grain cutoff,
        so n must exceed it to exercise the parallel composition."""
        pts = _points(6000, 3, seed=11)
        built = {}
        for backend in BACKENDS:
            for engine in ("recursive", "batched"):
                with use_backend(backend, 4):
                    tracker.reset()
                    t = KDTree(pts.copy(), engine=engine)
                    built[backend, engine] = (t, tracker.reset())
        ref_t, ref_c = built["sequential", "recursive"]
        for key, (t, c) in built.items():
            _assert_same_tree(ref_t, t, str(key))
            assert c.work == ref_c.work, key
            assert np.isclose(c.depth, ref_c.depth, rtol=1e-9), key

    def test_bdl_insert_erase_rebuilds_across_backends(self):
        """The log-structure's rebuild cascade (unit conversions plus
        under-half-capacity reinserts) lands on the same static trees
        for every (engine, backend) combination."""
        pts = _points(2000, 2, seed=23)
        outcomes = {}
        for backend in BACKENDS:
            for engine in ("recursive", "batched"):
                with use_backend(backend, 2):
                    b = BDLTree(2, buffer_size=256, build_engine=engine)
                    for i in range(0, 2000, 500):
                        b.insert(pts[i : i + 500])
                    b.erase(pts[::3])
                    b.insert(pts[:100])
                    outcomes[backend, engine] = b
        ref = outcomes["sequential", "recursive"]
        qs = _points(60, 2, seed=24)
        dr, gr = ref.knn(qs, 4, engine="batched")
        for key, b in outcomes.items():
            assert b.bitmask == ref.bitmask, key
            for ta, tb in zip(ref.trees, b.trees):
                assert (ta is None) == (tb is None)
                if ta is not None:
                    _assert_same_tree(ta, tb, str(key))
                    assert np.array_equal(ta.alive, tb.alive)
            d2, g2 = b.knn(qs, 4, engine="batched")
            assert np.array_equal(dr, d2) and np.array_equal(gr, g2)


# ----------------------------------------------------------------------
# observability across the process boundary
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestWorkerSpans:
    def test_worker_spans_forwarded_with_pid(self, rng):
        from repro.obs.span import trace

        idx = ShardedIndex(rng.normal(size=(800, 2)), 4)
        try:
            with use_backend("processes", 2) as sched:
                with trace("run") as rec:
                    idx.knn(rng.normal(size=(50, 2)), 3, engine="batched")
                worker_pids = set(sched.proc_pool().pids())
            spans = rec.spans()
            tagged = {s.meta["pid"] for s in spans
                      if s.meta and "pid" in s.meta}
            assert tagged and tagged <= worker_pids
            # forwarded spans stay parented inside the recorded tree
            sids = {s.sid for s in spans}
            assert all(s.parent is None or s.parent in sids for s in spans)
            assert any("shard" in s.name for s in spans
                       if s.meta and "pid" in s.meta)
        finally:
            idx.close()

    def test_disabled_tracing_records_nothing(self, rng):
        from repro.obs.span import active_recorder

        idx = ShardedIndex(rng.normal(size=(400, 2)), 3)
        try:
            with use_backend("processes", 2):
                assert active_recorder() is None
                idx.knn(rng.normal(size=(20, 2)), 3, engine="batched")
                assert active_recorder() is None
        finally:
            idx.close()

    def test_chrome_export_gets_worker_lanes(self, rng):
        from repro.obs.export import chrome_trace, validate_chrome_trace
        from repro.obs.span import trace

        idx = ShardedIndex(rng.normal(size=(600, 2)), 3)
        try:
            with use_backend("processes", 2):
                with trace("run") as rec:
                    idx.knn(rng.normal(size=(30, 2)), 3, engine="batched")
            obj = chrome_trace(rec.spans(), workers=4)
            assert validate_chrome_trace(obj) == []
            lanes = [e["args"]["name"] for e in obj["traceEvents"]
                     if e.get("name") == "process_name"]
            assert sum(1 for x in lanes if x.startswith("worker pid ")) == 2
        finally:
            idx.close()


# ----------------------------------------------------------------------
# shared-memory hygiene
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSharedMemoryLifecycle:
    def test_segments_unlinked_on_backend_exit(self, rng):
        before = _shm_segments()
        idx = ShardedIndex(rng.normal(size=(700, 2)), 4)
        qs = rng.normal(size=(30, 2))
        try:
            with use_backend("processes", 2):
                idx.knn(qs, 3, engine="batched")
                assert len(_shm_segments() - before) >= 1
            # use_backend exit shuts the scheduler down -> the shutdown
            # hook releases every snapshot
            assert _shm_segments() - before == set()
        finally:
            idx.close()

    def test_index_close_unlinks(self, rng):
        before = _shm_segments()
        idx = ShardedIndex(rng.normal(size=(500, 2)), 3)
        with use_backend("processes", 2):
            idx.knn(rng.normal(size=(20, 2)), 3, engine="batched")
            idx.close()
            assert _shm_segments() - before == set()

    def test_no_resource_tracker_warnings_in_subprocess(self, tmp_path):
        """End to end in a clean interpreter: run the workload, exit,
        and assert the resource tracker stayed silent and /dev/shm
        came back clean."""
        import subprocess
        import sys

        code = (
            "import numpy as np\n"
            "from repro.cluster import ShardedIndex\n"
            "from repro.parlay.scheduler import use_backend\n"
            "rng = np.random.default_rng(0)\n"
            "idx = ShardedIndex(rng.normal(size=(600, 2)), 3)\n"
            "with use_backend('processes', 2):\n"
            "    idx.knn(rng.normal(size=(40, 2)), 3, engine='batched')\n"
            "    idx.insert(rng.normal(size=(100, 2)))\n"
            "    idx.knn(rng.normal(size=(40, 2)), 3, engine='batched')\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr
