"""Tests for the benchmark harness itself."""

import numpy as np
import pytest

from repro.bench import Measurement, PAPER_CORES, Table, bench_scale, measure
from repro.parlay.workdepth import Cost


class TestMeasure:
    def test_returns_result_and_time(self):
        m = measure("x", lambda a: a * 2, 21)
        assert m.result == 42
        assert m.t1 >= 0

    def test_repeat_keeps_best(self):
        m = measure("x", sum, [1, 2, 3], repeat=3)
        assert m.result == 6

    def test_speedup_clamped_at_one(self):
        m = Measurement("deep", 1.0, Cost(work=10, depth=1e9))
        assert m.speedup() == 1.0
        assert m.tp() == pytest.approx(1.0)

    def test_tp_scales_with_speedup(self):
        m = Measurement("wide", 2.0, Cost(work=1e8, depth=10))
        assert m.tp(36) < 2.0 / 10

    def test_paper_cores_constant(self):
        assert 36 < PAPER_CORES < 72


class TestTable:
    def test_render_contains_rows(self):
        t = Table("demo", columns=("a", "b"))
        t.add_raw("row1", 1.5, "x")
        out = t.render()
        assert "demo" in out and "row1" in out and "1.5" in out

    def test_add_measurement(self):
        t = Table("demo")
        t.add(Measurement("m", 1.0, Cost(1000, 5)))
        assert len(t.rows) == 1
        name, t1, tp, sp, extra = t.rows[0]
        assert name == "m" and t1 == 1.0 and sp >= 1.0

    def test_show_prints(self, capsys):
        t = Table("demo")
        t.add_raw("r", 1.0)
        t.show()
        assert "demo" in capsys.readouterr().out


class TestBenchScale:
    def test_default_identity(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale(1000) == 1000

    def test_env_scaling(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale(1000) == 500

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert bench_scale(1000) >= 16
